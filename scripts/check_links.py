#!/usr/bin/env python
"""Fail on dead relative links in the repository's Markdown docs.

Scans README.md and docs/*.md (plus any extra paths given on the
command line) for Markdown links, resolves every relative target
against the file that contains it, and exits non-zero listing each
target that does not exist.  External links (http/https/mailto) and
pure in-page anchors (``#section``) are skipped — this checker guards
the repo's internal cross-references (README -> docs/*.md,
docs <-> docs, docs -> source files), which silently rot as files move.

Usage::

    python scripts/check_links.py            # README.md + docs/*.md
    python scripts/check_links.py FILE...    # explicit file list

Run from anywhere; paths are resolved relative to the repo root (the
parent of this script's directory).  CI runs this in the
``parallel-smoke`` job (.github/workflows/ci.yml).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` / ``[text](target#anchor)``; the target group
#: deliberately excludes whitespace and ``)`` so titled links like
#: ``[t](url "title")`` yield just the url.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(#[^)]*)?\)")

#: Schemes that are not this checker's business.
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_links(path: Path) -> list[tuple[int, str]]:
    """``(line_number, target)`` for every checkable link in ``path``."""
    links: list[tuple[int, str]] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            links.append((lineno, target))
    return links


def check_file(path: Path) -> list[str]:
    """Human-readable problem lines for ``path`` (empty == clean)."""
    problems = []
    for lineno, target in iter_links(path):
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{path}:{lineno}: dead link -> {target}")
    return problems


def default_targets(root: Path) -> list[Path]:
    targets = []
    readme = root / "README.md"
    if readme.exists():
        targets.append(readme)
    targets.extend(sorted((root / "docs").glob("*.md")))
    return targets


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(__file__).resolve().parent.parent
    files = [Path(a) for a in argv] if argv else default_targets(root)
    missing = [str(f) for f in files if not f.exists()]
    if missing:
        print("no such file: " + ", ".join(missing), file=sys.stderr)
        return 2
    problems = [p for f in files for p in check_file(f)]
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} dead link(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
