#!/usr/bin/env python
"""Fail on dead relative links and dead anchors in the Markdown docs.

Scans README.md, ISSUE.md, CHANGES.md, ROADMAP.md and docs/*.md (plus
any extra paths given on the command line) for Markdown links and
checks two things:

* every relative target, resolved against the file that contains it,
  must exist on disk (external http/https/mailto links are skipped);
* every ``#fragment`` pointing into a Markdown file — in-page
  (``[x](#section)``) or cross-file (``[x](GUIDE.md#section)``) — must
  match a heading anchor of that file, using GitHub's slugification
  (lowercased, punctuation stripped, spaces to hyphens, duplicate
  headings suffixed ``-1``, ``-2``, ...).

This guards the repo's internal cross-references (README -> docs/*.md,
docs <-> docs, docs -> source files), which silently rot as files move
and sections are renamed.

Usage::

    python scripts/check_links.py            # root pages + docs/*.md
    python scripts/check_links.py FILE...    # explicit file list

Run from anywhere; paths are resolved relative to the repo root (the
parent of this script's directory).  CI runs this in the
``parallel-smoke`` job (.github/workflows/ci.yml).
"""

from __future__ import annotations

import re
import sys
import urllib.parse
from pathlib import Path

#: ``[text](target)`` / ``[text](target#anchor)`` / ``[text](#anchor)``;
#: the target group deliberately excludes whitespace and ``)`` so titled
#: links like ``[t](url "title")`` yield just the url.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)#\s]*)(#[^)\s]*)?\)")

#: ATX headings (``## Title``) — the anchor sources GitHub renders.
_HEADING_RE = re.compile(r"\A(#{1,6})\s+(.*?)\s*#*\s*\Z")

#: Characters GitHub's slugifier drops (everything that is not a word
#: character, hyphen or space; ``\w`` keeps underscores).
_SLUG_STRIP_RE = re.compile(r"[^\w\- ]")

#: Explicit HTML anchors (``<a id="x">`` / ``<a name="x">``) also work
#: as fragment targets.
_HTML_ANCHOR_RE = re.compile(r"<a\s+(?:id|name)=\"([^\"]+)\"")

#: Schemes that are not this checker's business.
_EXTERNAL = ("http://", "https://", "mailto:")

#: Extensions whose fragments we can verify.
_MARKDOWN_SUFFIXES = (".md", ".markdown")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for one heading's text."""
    text = _SLUG_STRIP_RE.sub("", heading.strip().lower())
    return text.replace(" ", "-")


def heading_anchors(text: str) -> set[str]:
    """Every anchor a Markdown document exposes.

    Walks ATX headings outside fenced code blocks, slugifies each, and
    applies GitHub's duplicate policy (second ``## Setup`` becomes
    ``setup-1``).  Explicit ``<a id=...>`` / ``<a name=...>`` anchors
    are included verbatim.
    """
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slug = github_slug(match.group(2))
            seen = counts.get(slug, 0)
            counts[slug] = seen + 1
            anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    anchors.update(_HTML_ANCHOR_RE.findall(text))
    return anchors


def iter_links(path: Path) -> list[tuple[int, str, str]]:
    """``(line_number, target, fragment)`` for every checkable link.

    ``target`` is empty for pure in-page anchors (``[x](#section)``);
    ``fragment`` is empty when the link has none (the leading ``#`` is
    stripped).
    """
    links: list[tuple[int, str, str]] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            fragment = (match.group(2) or "").lstrip("#")
            if target.startswith(_EXTERNAL):
                continue
            if not target and not fragment:
                continue
            links.append((lineno, target, fragment))
    return links


#: Per-run anchor cache: resolved path -> its anchor set.
_ANCHOR_CACHE: dict[Path, set[str]] = {}


def _anchors_of(path: Path) -> set[str]:
    anchors = _ANCHOR_CACHE.get(path)
    if anchors is None:
        anchors = heading_anchors(path.read_text(encoding="utf-8"))
        _ANCHOR_CACHE[path] = anchors
    return anchors


def check_file(path: Path) -> list[str]:
    """Human-readable problem lines for ``path`` (empty == clean)."""
    problems = []
    for lineno, target, fragment in iter_links(path):
        resolved = (path.parent / target).resolve() if target else path
        if not resolved.exists():
            problems.append(f"{path}:{lineno}: dead link -> {target}")
            continue
        if not fragment or resolved.suffix.lower() not in _MARKDOWN_SUFFIXES:
            continue
        anchor = urllib.parse.unquote(fragment)
        if anchor not in _anchors_of(resolved):
            where = target or path.name
            problems.append(
                f"{path}:{lineno}: dead anchor -> {where}#{fragment}"
            )
    return problems


#: Root-level pages scanned by default alongside README.md — the
#: project-log files whose relative links used to rot unchecked.
_ROOT_PAGES = ("README.md", "ISSUE.md", "CHANGES.md", "ROADMAP.md")


def default_targets(root: Path) -> list[Path]:
    targets = []
    for name in _ROOT_PAGES:
        page = root / name
        if page.exists():
            targets.append(page)
    targets.extend(sorted((root / "docs").glob("*.md")))
    return targets


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(__file__).resolve().parent.parent
    files = [Path(a) for a in argv] if argv else default_targets(root)
    missing = [str(f) for f in files if not f.exists()]
    if missing:
        print("no such file: " + ", ".join(missing), file=sys.stderr)
        return 2
    _ANCHOR_CACHE.clear()
    problems = [p for f in files for p in check_file(f)]
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} dead link(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    print(f"checked {len(files)} file(s): all relative links and "
          f"anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
