#!/usr/bin/env python
"""CI smoke test for the detection-as-a-service front end.

Boots ``repro-das serve`` as a subprocess on an ephemeral port, runs
three concurrent synthetic clients against it — one of them injecting
a corrupt (all-NaN) frame — and asserts the serving contract:

* every session receives exactly its own frames, in order;
* ``frames_failed == 1`` for the faulty session and 0 for the others
  (per-frame fault isolation);
* ``/metrics`` is scrapeable Prometheus text exposition with coherent
  ``serve.*`` counters;
* SIGINT produces a clean drain and exit code 0.

The whole contract is exercised twice: once with the default
one-task-per-frame, one-request-per-connection configuration, and once
with ``--max-batch 4 --batch-window-ms 5 --keep-alive`` — where the
metrics must additionally prove that at least one multi-frame batch
was coalesced and that connections were reused (fewer connections than
requests).  Batching and keep-alive are transport optimizations;
everything the first scenario asserts must hold identically in the
second.

Run from the repo root: ``PYTHONPATH=src python scripts/serve_smoke.py``
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

import numpy as np  # noqa: E402

from repro.serve.client import ServeClient  # noqa: E402

FRAMES_PER_CLIENT = 6
FAULTY_CLIENT = 1
CORRUPT_INDEX = 3
STARTUP_TIMEOUT_S = 180.0

SCENARIOS = (
    ("default", []),
    ("batched+keep-alive",
     ["--max-batch", "4", "--batch-window-ms", "5", "--keep-alive"]),
)


def start_server(extra_args: list[str]) -> tuple[
    subprocess.Popen, int, list[str]
]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONUNBUFFERED"] = "1"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--workers", "2", "--scales", "1.0",
         "--max-pending", "16", *extra_args],
        cwd=REPO, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True,
    )
    stderr_lines: list[str] = []
    port_holder: list[int] = []
    ready = threading.Event()

    def pump() -> None:
        assert process.stderr is not None
        for line in process.stderr:
            stderr_lines.append(line.rstrip("\n"))
            match = re.search(r"serving on http://[^:]+:(\d+)", line)
            if match:
                port_holder.append(int(match.group(1)))
                ready.set()
        ready.set()  # EOF: unblock the waiter even on startup failure

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    if not ready.wait(STARTUP_TIMEOUT_S) or not port_holder:
        process.kill()
        raise SystemExit(
            "server never announced its port; stderr was:\n"
            + "\n".join(stderr_lines)
        )
    return process, port_holder[0], stderr_lines


def run_client(port: int, client_index: int,
               outcomes: dict[int, list[dict]]) -> None:
    client = ServeClient(port=port)
    try:
        session = client.open_session()
        rng = np.random.default_rng(client_index)
        for i in range(FRAMES_PER_CLIENT):
            if client_index == FAULTY_CLIENT and i == CORRUPT_INDEX:
                frame = np.full((160, 96), np.nan)
            else:
                frame = rng.random((160, 96))
            ticket = client.submit_frame(session, frame)
            assert ticket["accepted"], f"client {client_index}: {ticket}"
        results = client.collect(session, FRAMES_PER_CLIENT)
        report = client.close_session(session)
        outcomes[client_index] = [results, report]
    finally:
        client.close()


def run_scenario(name: str, extra_args: list[str]) -> None:
    print(f"--- scenario: {name} "
          f"({' '.join(extra_args) or 'default flags'}) ---")
    process, port, stderr_lines = start_server(extra_args)
    batched = "--max-batch" in extra_args
    keep_alive = "--keep-alive" in extra_args
    try:
        client = ServeClient(port=port)
        assert client.health(), "/healthz not OK"
        assert client.ready(), "/readyz not ready"

        outcomes: dict[int, list] = {}
        threads = [
            threading.Thread(target=run_client,
                             args=(port, i, outcomes))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert len(outcomes) == 3, f"only {sorted(outcomes)} finished"

        for client_index, (results, report) in sorted(outcomes.items()):
            seqs = [r["index"] for r in results]
            assert seqs == list(range(FRAMES_PER_CLIENT)), (
                f"client {client_index}: out-of-order results {seqs}"
            )
            failed = [r for r in results if r["status"] == "failed"]
            expected_failed = (
                1 if client_index == FAULTY_CLIENT else 0
            )
            assert len(failed) == expected_failed, (
                f"client {client_index}: {len(failed)} failed frames, "
                f"expected {expected_failed}: {failed}"
            )
            if failed:
                assert failed[0]["index"] == CORRUPT_INDEX, failed
            assert report["failed"] == expected_failed, report
            assert report["ok"] == (
                FRAMES_PER_CLIENT - expected_failed
            ), report
            print(f"client {client_index}: {report['ok']} ok, "
                  f"{report['failed']} failed, in order — OK")

        metrics = client.metrics()  # raises if not scrapeable
        samples = metrics["samples"]
        submitted = samples[("repro_serve_frames_submitted", ())]
        failed_total = samples[("repro_serve_frames_failed", ())]
        assert submitted == 3 * FRAMES_PER_CLIENT, submitted
        assert failed_total == 1, failed_total
        assert metrics["types"]["repro_serve_latency_ms"] == "summary"
        assert ("repro_serve_latency_ms_bucket", ()) not in samples
        print(f"/metrics scrapeable: {len(samples)} samples, "
              f"submitted={submitted:g} failed={failed_total:g} — OK")

        if batched:
            multi = samples.get(
                ("repro_serve_batch_multi_frame", ()), 0
            )
            assert multi >= 1, (
                "three concurrent clients never coalesced a "
                "multi-frame batch"
            )
            print(f"micro-batching: {multi:g} multi-frame "
                  f"batch(es) — OK")
        if keep_alive:
            connections = samples[("repro_serve_http_connections", ())]
            requests = samples[("repro_serve_http_requests", ())]
            assert connections < requests, (
                f"keep-alive reused nothing: {connections:g} "
                f"connections for {requests:g} requests"
            )
            print(f"keep-alive: {connections:g} connections served "
                  f"{requests:g} requests — OK")
        client.close()
    except BaseException:
        process.kill()
        process.wait()
        print("server stderr:\n" + "\n".join(stderr_lines),
              file=sys.stderr)
        raise

    process.send_signal(signal.SIGINT)
    returncode = process.wait(timeout=60)
    time.sleep(0.2)  # let the stderr pump drain
    drained = [line for line in stderr_lines
               if line.startswith("drained")]
    assert returncode == 0, (
        f"server exited {returncode}; stderr:\n"
        + "\n".join(stderr_lines)
    )
    assert drained and "clean" in drained[0], stderr_lines
    print(f"clean drain on SIGINT ({drained[0]!r}) — OK")


def main() -> int:
    for name, extra_args in SCENARIOS:
        run_scenario(name, extra_args)
    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
