"""Drive the FPGA accelerator model end to end.

Commits a trained pedestrian model to the behavioural hardware model
(fixed-point MACBAR array, shift-add feature scalers), processes a
frame, and prints:

* detections from the fixed-point pipeline;
* agreement with the floating-point software path;
* the frame timing report (the paper's 1,200,420 cycles / 60 fps math);
* the Zynq ZC7020 resource estimate (Table 2).

    python examples/hardware_accelerator.py
"""

import numpy as np

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.dataset import DatasetSizes, SyntheticPedestrianDataset
from repro.detect import classify_grid
from repro.hardware import AcceleratorConfig, Zc7020


def main() -> None:
    dataset = SyntheticPedestrianDataset(
        seed=2, sizes=DatasetSizes(120, 240, 20, 80)
    )
    print("Training detector...")
    detector = MultiScalePedestrianDetector.train_default(
        dataset, config=DetectorConfig(scales=(1.0, 1.2), threshold=0.5)
    )

    print("Committing model to the accelerator (Q16 fixed point, "
          "3-term shift-add scalers)...")
    accelerator = detector.to_accelerator(
        AcceleratorConfig(scales=(1.0, 1.2), image_height=320, image_width=480)
    )

    scene = dataset.make_scene(height=320, width=480, n_pedestrians=2,
                               pedestrian_heights=(128, 180))
    print("Processing one frame through the fixed-point pipeline...")
    result = accelerator.process_frame(scene.image)

    print(f"\n{len(result.detections)} hardware detections "
          f"({result.total_windows} windows classified):")
    for d in result.detections:
        print(f"  top={d.top:6.1f} left={d.left:6.1f} score={d.score:+.2f} "
              f"scale={d.scale:.1f}")

    # Fixed-point vs floating-point agreement at scale 1.
    grid = detector.extractor.extract(scene.image)
    hw_scores = accelerator.classifier.classify_grid(grid).scores
    sw_scores = classify_grid(grid, detector.model)
    print(f"\nmax |fixed-point - float| score difference: "
          f"{np.abs(hw_scores - sw_scores).max():.5f} "
          f"(one Q16 LSB is {2.0 ** -12:.5f} on weights)")

    print("\n--- Frame timing at the paper's operating point (HDTV) ---")
    report = accelerator.timing_report(image_height=1080, image_width=1920)
    t1 = accelerator.timing_model(1080, 1920).scale_timing(1.0)
    print(f"  classifier cycles/frame : {t1.cycles:,}")
    print(f"  classifier time         : {t1.cycles / 125e6 * 1e3:.2f} ms")
    print(f"  extractor cycles/frame  : {report.extractor_cycles:,}")
    print(f"  frame interval          : {report.frame_time_s * 1e3:.2f} ms")
    print(f"  throughput              : {report.frames_per_second:.2f} fps "
          f"(paper: 60 fps)")

    print("\n--- Zynq ZC7020 resource estimate ---")
    usage = accelerator.resource_estimate()
    util = usage.utilization(Zc7020)
    for field in ("lut", "ff", "lutram", "bram36", "dsp48", "bufg"):
        print(f"  {field.upper():7s}: {getattr(usage, field):9.1f}  "
              f"({util[field]:5.1f} %)")
    print(f"  fits device: {usage.fits(Zc7020)}")


if __name__ == "__main__":
    main()
