"""Quickstart: train a pedestrian detector and run it on a street scene.

Runs the paper's full pipeline end to end on synthetic data:

1. generate an INRIA-style window dataset;
2. train the HOG+SVM model (LibLinear-style dual coordinate descent);
3. detect pedestrians in a full frame with the HOG *feature pyramid*
   (the paper's multi-scale method);
4. print detections, per-stage timings and scene-level recall.

    python examples/quickstart.py
"""

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.dataset import DatasetSizes, SyntheticPedestrianDataset
from repro.eval import match_detections


def main() -> None:
    print("Generating synthetic pedestrian dataset...")
    dataset = SyntheticPedestrianDataset(
        seed=0, sizes=DatasetSizes(150, 300, 50, 200)
    )

    print("Training HOG+SVM detector (dual coordinate descent)...")
    detector = MultiScalePedestrianDetector.train_default(
        dataset,
        config=DetectorConfig(
            scales=(1.0, 1.2, 1.44, 1.73),
            threshold=0.75,
            chained_pyramid=False,  # resample each level from the base grid
        ),
    )

    print("Rendering a 480x640 street scene with 3 pedestrians...")
    scene = dataset.make_scene(height=480, width=640, n_pedestrians=3,
                               pedestrian_heights=(128, 220))

    print("Detecting (feature-pyramid strategy)...")
    result = detector.detect(scene.image)

    print(f"\n{len(result.detections)} detections "
          f"({result.n_windows_evaluated} windows evaluated at scales "
          f"{[round(s, 2) for s in result.scales_used]}):")
    for d in result.detections:
        print(f"  box top={d.top:6.1f} left={d.left:6.1f} "
              f"{d.height:.0f}x{d.width:.0f}px  score={d.score:+.2f} "
              f"scale={d.scale:.2f}")

    match = match_detections(result.detections, scene.boxes)
    print(f"\nGround truth: {len(scene.boxes)} pedestrians  ->  "
          f"recall {match.recall:.2f}, precision {match.precision:.2f}")

    t = result.timings
    print("\nStage timings (the paper's argument in software):")
    print(f"  HOG extraction : {t.extraction * 1e3:7.1f} ms   (once, "
          "regardless of scale count)")
    print(f"  feature pyramid: {t.pyramid * 1e3:7.1f} ms   (cheap resampling "
          "per extra scale)")
    print(f"  classification : {t.classification * 1e3:7.1f} ms")
    print(f"  NMS            : {t.nms * 1e3:7.1f} ms")
    print(f"  total          : {t.total * 1e3:7.1f} ms")


if __name__ == "__main__":
    main()
