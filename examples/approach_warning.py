"""End-to-end DAS flow: detect, track, estimate time-to-collision.

Simulates what the accelerator's 60 fps detection stream is *for*: a
pedestrian approaches the camera over a short synthetic sequence (their
image grows frame by frame), the multi-scale detector finds them per
frame, an IoU tracker links the detections, and the looming rate of the
tracked box yields a time-to-collision estimate that triggers a warning
when it drops under the driver's reaction budget (PRT 1.5 s, paper
Section 1).

    python examples/approach_warning.py
"""

import numpy as np

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.das import NOMINAL_PRT_S, IouTracker, time_to_collision
from repro.dataset import DatasetSizes, SyntheticPedestrianDataset
from repro.dataset.background import textured_background
from repro.dataset.pedestrian import render_pedestrian, sample_appearance
from repro.imgproc import alpha_blend_region, gaussian_blur

FRAME_RATE = 10.0  # simulated sequence rate (hardware runs 60 fps)
GROWTH_PER_FRAME = 0.06  # ~6 % looming per frame -> TTC ~ 1.7 s


def render_sequence(rng, n_frames=10, height=320, width=320):
    """An approaching pedestrian: same pose, growing projection."""
    appearance = sample_appearance(rng)
    backdrop = gaussian_blur(textured_background(rng, height, width), 0.8)
    frames = []
    win_h = 130.0
    for _ in range(n_frames):
        h = int(round(win_h / 2)) * 2
        w = h // 2
        patch, _ = render_pedestrian(
            np.random.default_rng(7), h, w, appearance=appearance,
            with_clutter=False,
        )
        canvas = backdrop.copy()
        top = height // 2 - h // 2
        left = width // 2 - w // 2
        alpha_blend_region(canvas, patch, top, left, alpha=0.95)
        canvas += rng.normal(0.0, 0.01, size=canvas.shape)
        frames.append(np.clip(canvas, 0.0, 1.0))
        win_h *= 1.0 + GROWTH_PER_FRAME
    return frames


def main() -> None:
    print("Training detector...")
    dataset = SyntheticPedestrianDataset(
        seed=6, sizes=DatasetSizes(120, 240, 1, 1)
    )
    # The demo spans scales 1.0-1.8 — beyond the paper's s<1.5 envelope
    # where feature scaling is accuracy-neutral — so it runs the
    # conventional image pyramid; the tracking/TTC layer is agnostic.
    detector = MultiScalePedestrianDetector.train_default(
        dataset,
        config=DetectorConfig(
            scales=(1.0, 1.15, 1.32, 1.52, 1.75),
            strategy="image",
            threshold=0.4,
        ),
    )

    print(f"Rendering a {FRAME_RATE:.0f} fps approach sequence "
          f"({GROWTH_PER_FRAME * 100:.0f} % looming per frame)...\n")
    frames = render_sequence(np.random.default_rng(11))

    tracker = IouTracker(min_hits=2)
    print("frame  detections  track  box height  TTC estimate")
    for i, frame in enumerate(frames):
        result = detector.detect(frame)
        tracker.update(result.detections)
        confirmed = tracker.confirmed_tracks()
        if confirmed:
            track = max(confirmed, key=lambda t: t.age)
            ttc = time_to_collision(track, FRAME_RATE)
            ttc_text = f"{ttc:5.2f} s" if np.isfinite(ttc) else "   inf"
            warn = "  << BRAKE WARNING" if ttc < NOMINAL_PRT_S else ""
            print(f"{i:5d}  {len(result.detections):10d}  "
                  f"#{track.track_id:<4d}  {track.last.height:7.0f} px  "
                  f"{ttc_text}{warn}")
        else:
            print(f"{i:5d}  {len(result.detections):10d}  "
                  f"{'-':5s}  {'-':10s}  (acquiring)")

    print(f"\nGround truth looming: {GROWTH_PER_FRAME * 100:.0f} %/frame "
          f"-> TTC = {1.0 / GROWTH_PER_FRAME / FRAME_RATE:.2f} s; the "
          f"estimate converges as the track history grows.")
    print(f"Warning threshold: the driver's {NOMINAL_PRT_S} s "
          "perception-brake reaction time (paper Section 1).")


if __name__ == "__main__":
    main()
