"""Figure 4 in miniature: ROC curves, AUC and EER for both methods.

Prints the summary table plus an ASCII ROC plot, so the trade-off the
paper tunes with the classifier threshold (equation (5)-(6)) is visible
without a plotting stack.

    python examples/roc_analysis.py
"""

import numpy as np

from repro.core import run_roc_experiment
from repro.dataset import DatasetSizes, SyntheticPedestrianDataset


def ascii_roc(curves: dict, width: int = 56, height: int = 18) -> str:
    """Render several ROC curves into one ASCII plot."""
    canvas = [[" "] * width for _ in range(height)]
    for mark, curve in curves.items():
        fpr, tpr = curve.sample(200)
        for f, t in zip(fpr, tpr):
            col = min(width - 1, int(f * (width - 1)))
            row = min(height - 1, int((1.0 - t) * (height - 1)))
            canvas[row][col] = mark
    lines = ["TPR"]
    for row in canvas:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width + " FPR")
    return "\n".join(lines)


def main() -> None:
    dataset = SyntheticPedestrianDataset(
        seed=4, sizes=DatasetSizes(150, 300, 80, 320)
    )
    print("Running the ROC experiment (scale 1.1, both methods)...")
    result = run_roc_experiment(dataset, scales=(1.1,))
    print()
    print(result.format())

    print("\nASCII ROC ('o' original, 'i' image scaling, 'h' HOG scaling):")
    print(
        ascii_roc(
            {
                "o": result.baseline,
                "i": result.image_curves[1.1],
                "h": result.feature_curves[1.1],
            }
        )
    )

    # The operating-point sweep the curves summarize:
    print("\nThreshold sweep (HOG scaling, s=1.1):")
    curve = result.feature_curves[1.1]
    for target_fpr in (0.01, 0.05, 0.10):
        idx = int(np.searchsorted(curve.false_positive_rate, target_fpr))
        idx = min(idx, curve.thresholds.size - 1)
        print(f"  FPR <= {target_fpr:.2f}: threshold "
              f"{curve.thresholds[idx]:+.2f} gives TPR "
              f"{curve.true_positive_rate[idx]:.3f}")


if __name__ == "__main__":
    main()
