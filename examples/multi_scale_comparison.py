"""The paper's Section 4 verification, miniature edition.

Reruns the Figure 3 experiment — up-sample the test windows, then shrink
them back either in the pixel domain (conventional) or in HOG feature
space (proposed) — and prints a Table-1-style comparison plus the
wall-clock advantage of the feature path.

    python examples/multi_scale_comparison.py
"""

import time

from repro.core.experiments import run_scaling_experiment
from repro.dataset import DatasetSizes, SyntheticPedestrianDataset
from repro.hog import FeatureScaler, HogExtractor
from repro.imgproc import rescale


def main() -> None:
    dataset = SyntheticPedestrianDataset(
        seed=1, sizes=DatasetSizes(150, 300, 60, 240)
    )
    scales = (1.1, 1.3, 1.5, 1.8)
    print(f"Running the Figure 3 protocol at scales {scales} "
          f"({len(dataset.test_windows())} test windows)...")
    experiment = run_scaling_experiment(dataset, scales=scales)
    print()
    print(experiment.table1().format())

    print("\nPer-level cost (one 480x640 frame):")
    import numpy as np

    frame = np.random.default_rng(0).random((480, 640))
    extractor = HogExtractor()
    start = time.perf_counter()
    base = extractor.extract(frame)
    t_extract = time.perf_counter() - start

    scaler = FeatureScaler()
    start = time.perf_counter()
    scaler.scale_grid(base, 1.3)
    t_feature = time.perf_counter() - start

    start = time.perf_counter()
    extractor.extract(rescale(frame, 1.0 / 1.3))
    t_image = time.perf_counter() - start

    print(f"  HOG extraction (once)         : {t_extract * 1e3:6.1f} ms")
    print(f"  extra scale via feature space : {t_feature * 1e3:6.1f} ms")
    print(f"  extra scale via image pyramid : {t_image * 1e3:6.1f} ms")
    print(f"  -> per-level speedup          : {t_image / t_feature:6.1f}x")


if __name__ == "__main__":
    main()
