"""Multi-object detection: pedestrians AND vehicles, one extraction.

The paper's architecture runs several SVM classifier instances against
one shared feature memory; this example does the same in software — a
pedestrian model (64x128 portrait window) and a vehicle model (128x64
landscape window) slide over the *same* HOG grid and feature pyramid.

    python examples/traffic_detection.py
"""

import numpy as np

from repro.core import MultiObjectDetector, ObjectClass
from repro.core.experiments import extract_descriptors
from repro.dataset import (
    DatasetSizes,
    SyntheticPedestrianDataset,
    VEHICLE_HOG_PARAMETERS,
    make_traffic_scene,
    vehicle_window_set,
)
from repro.eval import match_detections
from repro.hog import HogExtractor, HogParameters
from repro.svm import train_linear_svm


def main() -> None:
    print("Training the pedestrian model (64x128 portrait window)...")
    ped_data = SyntheticPedestrianDataset(
        seed=3, sizes=DatasetSizes(120, 240, 1, 1)
    )
    ped_train = ped_data.train_windows()
    ped_extractor = HogExtractor(HogParameters())
    ped_model = train_linear_svm(
        extract_descriptors(ped_extractor, ped_train.images), ped_train.labels
    )

    print("Training the vehicle model (128x64 landscape window)...")
    rng = np.random.default_rng(30)
    veh_train = vehicle_window_set(rng, 120, 240)
    veh_extractor = HogExtractor(VEHICLE_HOG_PARAMETERS)
    veh_model = train_linear_svm(
        extract_descriptors(veh_extractor, veh_train.images), veh_train.labels
    )

    # Per-class operating points: the vehicle model sits closer to its
    # decision boundary on full scenes, so it runs at a lower threshold
    # — exactly the per-classifier threshold knob of equations (5)-(6).
    detector = MultiObjectDetector(
        [
            ObjectClass("pedestrian", ped_model, HogParameters(),
                        scales=(1.0, 1.2, 1.44), threshold=0.6),
            ObjectClass("vehicle", veh_model, VEHICLE_HOG_PARAMETERS,
                        scales=(1.0, 1.15, 1.3, 1.44), threshold=0.25),
        ],
        # The classes share a dense scale ladder; scale each level from
        # the base grid instead of chaining (less accumulated error).
        chained=False,
    )

    print("Rendering a traffic scene (2 pedestrians + 2 vehicles)...")
    scene = make_traffic_scene(
        np.random.default_rng(5), 480, 640, n_pedestrians=2, n_vehicles=2,
        pedestrian_heights=(128, 180), vehicle_heights=(64, 90),
    )
    result = detector.detect(scene.image)

    print(f"\n{len(result.detections)} detections "
          f"({result.n_windows_evaluated} windows over scales "
          f"{result.scales_used}, ONE extraction for both classes):")
    for d in result.detections:
        print(f"  {d.label:10s} top={d.top:6.1f} left={d.left:6.1f} "
              f"{d.height:.0f}x{d.width:.0f}px score={d.score:+.2f}")

    for label in ("pedestrian", "vehicle"):
        gts = scene.boxes_of(label)
        dets = [d for d in result.detections if d.label == label]
        match = match_detections(dets, gts)
        print(f"\n{label}: {len(gts)} planted, recall {match.recall:.2f}, "
              f"precision {match.precision:.2f}")

    t = result.timings
    print(f"\nTimings: extract {t.extraction * 1e3:.0f} ms (shared), "
          f"pyramid {t.pyramid * 1e3:.0f} ms, classify both classes "
          f"{t.classification * 1e3:.0f} ms")


if __name__ == "__main__":
    main()
