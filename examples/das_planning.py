"""Driver-assistance mission planning: from stopping distances to scales.

Reproduces the paper's Section 1 arithmetic and carries it one step
further: with a pinhole camera model, the 20-60 m detection range maps
to pedestrian pixel heights in the HDTV frame, which dictates which
pyramid scales the detector must cover — connecting the safety budget
to the accelerator's two-scale (extendable) design.

    python examples/das_planning.py
"""

from repro.das import (
    StoppingScenario,
    detection_range_requirement,
    latency_distance_penalty,
)
from repro.hardware import FrameTimingModel

#: Assumed pedestrian height in metres.
PERSON_HEIGHT_M = 1.7
#: Pinhole focal length in pixels — a long-range telephoto DAS camera
#: chosen so the *base* 64x128 window matches a pedestrian at the far
#: end of the stopping budget (~60 m).
FOCAL_PX = 3400.0
#: The trained window sees a ~96 px person inside its 128 px height.
PERSON_PX_IN_WINDOW = 96.0


def person_height_px(distance_m: float) -> float:
    """Projected pedestrian height at ``distance_m``."""
    return FOCAL_PX * PERSON_HEIGHT_M / distance_m


def scale_for_distance(distance_m: float) -> float:
    """Pyramid scale whose window matches a pedestrian at this range."""
    return person_height_px(distance_m) / PERSON_PX_IN_WINDOW


def main() -> None:
    print("--- Stopping-distance budget (paper Section 1) ---")
    for speed in (50.0, 70.0):
        s = StoppingScenario(speed)
        print(f"  {speed:3.0f} km/h: reaction {s.perception_reaction_distance_m:5.2f} m"
              f" + braking {s.braking_distance_m:5.2f} m"
              f" = stopping {s.total_stopping_distance_m:5.2f} m")
    lo, hi = detection_range_requirement()
    print(f"  => detection range requirement: {lo:.1f} .. {hi:.1f} m "
          "(paper: ~20 .. 60 m)")

    print("\n--- What that range means for multi-scale detection ---")
    print(f"  camera: 1080p telephoto, focal {FOCAL_PX:.0f} px; person "
          f"{PERSON_HEIGHT_M} m tall")
    for d in (60, 50, 40, 30, 20):
        px = person_height_px(d)
        s = scale_for_distance(d)
        if s < 0.9:
            note = "beyond range (person smaller than the base window)"
        elif s <= 1.3:
            note = "covered by the 2-scale hardware (scales 1.0 / 1.2)"
        else:
            note = f"needs a scale-{s:.1f} classifier instance"
        print(f"  at {d:3d} m: person is {px:5.0f} px -> scale {s:4.2f}  ({note})")
    print("  The paper's 2-scale hardware covers the far end (~45-60 m);")
    print("  each extra classifier instance extends coverage nearer — the")
    print("  extension Table 2 prices and Section 5 proposes for larger parts.")

    print("\n--- Latency is distance (why 60 fps matters) ---")
    timing = FrameTimingModel().frame_report(scales=(1.0, 1.2))
    frame_s = timing.frame_time_s
    for speed in (50.0, 70.0):
        per_frame = latency_distance_penalty(speed, frame_s)
        three_frames = latency_distance_penalty(speed, 3 * frame_s)
        print(f"  {speed:3.0f} km/h: one {frame_s * 1e3:.1f} ms frame = "
              f"{per_frame:.2f} m of road; a 3-frame pipeline = "
              f"{three_frames:.2f} m")


if __name__ == "__main__":
    main()
