"""Tests for the fixed-point HOG front-end model ([10]'s arithmetic)."""

import numpy as np
import pytest

from repro.errors import HardwareConfigError, ShapeError
from repro.hardware import HardwareHogFrontEnd, alpha_max_beta_min
from repro.hog import HogExtractor, HogParameters


@pytest.fixture(scope="module")
def frame():
    return np.random.default_rng(71).random((160, 128))


class TestAlphaMaxBetaMin:
    def test_exact_on_axes(self):
        assert alpha_max_beta_min(np.array(3.0), np.array(0.0)) == 3.0
        assert alpha_max_beta_min(np.array(0.0), np.array(-4.0)) == 4.0

    def test_error_bound(self):
        """Worst-case relative error of max + 0.5*min is < 12 %."""
        angles = np.linspace(0, 2 * np.pi, 1000)
        fx, fy = np.cos(angles), np.sin(angles)
        approx = alpha_max_beta_min(fx, fy)
        err = np.abs(approx - 1.0)
        assert err.max() < 0.12

    def test_never_underestimates_much(self):
        rng = np.random.default_rng(0)
        fx = rng.normal(size=1000)
        fy = rng.normal(size=1000)
        exact = np.hypot(fx, fy)
        approx = alpha_max_beta_min(fx, fy)
        assert np.all(approx >= exact * 0.99)


class TestFrontEndStages:
    def test_pixel_quantization_levels(self, frame):
        fe = HardwareHogFrontEnd(pixel_bits=4)
        q = fe.quantize_pixels(frame)
        assert q.max() <= 15
        assert np.all(q == np.round(q))

    def test_gradients_are_integers(self, frame):
        fe = HardwareHogFrontEnd()
        fx, fy = fe.gradients(fe.quantize_pixels(frame))
        assert np.all(fx == np.round(fx))
        assert np.abs(fx).max() <= 255

    def test_hard_binning_range(self, frame):
        fe = HardwareHogFrontEnd()
        fx, fy = fe.gradients(fe.quantize_pixels(frame))
        bins = fe.bin_of(fx, fy)
        assert bins.min() >= 0
        assert bins.max() <= 8

    def test_bin_of_matches_angle_floor(self):
        fe = HardwareHogFrontEnd()
        angles = np.linspace(0.01, np.pi - 0.01, 90)
        fx = np.cos(angles)
        fy = np.sin(angles)
        expected = np.floor(angles / (np.pi / 9)).astype(int)
        np.testing.assert_array_equal(fe.bin_of(fx, fy), expected)

    def test_magnitude_modes(self, frame):
        fx = np.array([[3.0]])
        fy = np.array([[4.0]])
        assert HardwareHogFrontEnd(magnitude="exact").magnitude_of(fx, fy)[0, 0] == 5.0
        assert HardwareHogFrontEnd(magnitude="l1").magnitude_of(fx, fy)[0, 0] == 7.0
        assert HardwareHogFrontEnd(magnitude="alpha-beta").magnitude_of(fx, fy)[0, 0] == 5.5

    def test_rejects_bad_mode(self):
        with pytest.raises(HardwareConfigError, match="magnitude"):
            HardwareHogFrontEnd(magnitude="l3")

    def test_rejects_zero_pixel_bits(self):
        with pytest.raises(HardwareConfigError, match="pixel_bits"):
            HardwareHogFrontEnd(pixel_bits=0)


class TestExtraction:
    def test_grid_shape_matches_software(self, frame):
        hw = HardwareHogFrontEnd().extract(frame)
        sw = HogExtractor().extract(frame)
        assert hw.cells.shape == sw.cells.shape
        assert hw.blocks.shape == sw.blocks.shape

    def test_features_on_quantization_grid(self, frame):
        fe = HardwareHogFrontEnd()
        grid = fe.extract(frame)
        res = fe.feature_format.resolution
        np.testing.assert_array_equal(
            grid.blocks, np.round(grid.blocks / res) * res
        )

    def test_tracks_software_features(self, frame):
        """The fixed-point front end approximates the float extractor:
        high cosine similarity despite hard binning and alpha-beta
        magnitude."""
        hw = HardwareHogFrontEnd().extract(frame)
        # Compare against the software extractor in its hardware-like
        # configuration (no spatial interpolation).
        sw = HogExtractor(
            HogParameters(spatial_interpolation=False)
        ).extract(frame)
        a, b = hw.blocks.ravel(), sw.blocks.ravel()
        cos = float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
        assert cos > 0.9

    def test_descriptor_usable_by_software_model(self, frame, trained_model):
        """A model trained on software features still classifies
        hardware-extracted features consistently for confident windows."""
        from repro.detect import classify_grid

        hw_grid = HardwareHogFrontEnd().extract(frame)
        sw_grid = HogExtractor().extract(frame)
        s_hw = classify_grid(hw_grid, trained_model).ravel()
        s_sw = classify_grid(sw_grid, trained_model).ravel()
        confident = np.abs(s_sw) > 1.0
        if confident.any():
            agree = np.mean((s_hw[confident] > 0) == (s_sw[confident] > 0))
            assert agree > 0.9

    def test_window_extraction_api(self, rng):
        fe = HardwareHogFrontEnd()
        window = rng.random((128, 64))
        desc = fe.extract_window(window)
        assert desc.size == 3780
        with pytest.raises(ShapeError, match="expected"):
            fe.extract_window(rng.random((64, 64)))

    def test_bilinear_vote_option_closer_to_software(self, frame):
        sw = HogExtractor(
            HogParameters(spatial_interpolation=False)
        ).extract(frame)

        def cos(grid):
            a, b = grid.blocks.ravel(), sw.blocks.ravel()
            return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))

        hard = cos(HardwareHogFrontEnd(hard_binning=True).extract(frame))
        soft = cos(HardwareHogFrontEnd(hard_binning=False).extract(frame))
        assert soft >= hard
