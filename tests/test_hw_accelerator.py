"""Integration tests for the assembled accelerator model."""

import pytest

from repro.errors import HardwareConfigError
from repro.hardware import (
    AcceleratorConfig,
    PedestrianDetectorAccelerator,
    Zc7020,
)
from repro.hardware.resources import PAPER_TABLE2


@pytest.fixture(scope="module")
def accelerator(trained_model):
    return PedestrianDetectorAccelerator(
        trained_model,
        config=AcceleratorConfig(scales=(1.0, 1.2), image_height=256,
                                 image_width=320),
    )


class TestConfig:
    def test_defaults_are_paper(self):
        cfg = AcceleratorConfig()
        assert cfg.scales == (1.0, 1.2)
        assert cfg.clock_hz == 125e6
        assert (cfg.image_height, cfg.image_width) == (1080, 1920)

    def test_rejects_missing_base_scale(self):
        with pytest.raises(HardwareConfigError, match="1.0"):
            AcceleratorConfig(scales=(1.2, 1.5))

    def test_rejects_empty_scales(self):
        with pytest.raises(HardwareConfigError, match="non-empty"):
            AcceleratorConfig(scales=())


class TestReports:
    def test_paper_timing_at_hdtv(self, trained_model):
        acc = PedestrianDetectorAccelerator(trained_model)
        report = acc.timing_report()
        # With the software 7x15 window geometry the classifier is even
        # faster than the paper's 16x8 count; the extractor still paces
        # the pipeline at exactly 60.28 fps.
        assert report.frames_per_second == pytest.approx(60.28, abs=0.01)

    def test_resource_estimate_near_table2(self, trained_model):
        acc = PedestrianDetectorAccelerator(trained_model)
        usage = acc.resource_estimate()
        # The software geometry (7 MACBARs x 15 MACs vs the paper's
        # 8 x 16) gives slightly fewer MACs; totals stay in Table 2's
        # neighbourhood and on-device.
        assert usage.lut == pytest.approx(PAPER_TABLE2.lut, rel=0.10)
        assert usage.fits(Zc7020)

    def test_fits_device(self, accelerator):
        assert accelerator.fits_device()


class TestProcessFrame:
    @pytest.fixture(scope="class")
    def scene_and_result(self, tiny_dataset, trained_model):
        scene = tiny_dataset.make_scene(
            height=256, width=320, n_pedestrians=1,
            pedestrian_heights=(128, 150), scene_index=4,
        )
        acc = PedestrianDetectorAccelerator(
            trained_model,
            config=AcceleratorConfig(scales=(1.0, 1.2), image_height=256,
                                     image_width=320),
        )
        return scene, acc.process_frame(scene.image)

    def test_detects_planted_pedestrian(self, scene_and_result):
        scene, result = scene_and_result
        gt = scene.boxes[0]
        hits = [
            d
            for d in result.detections
            if abs(d.top - gt.top) < 32 and abs(d.left - gt.left) < 24
        ]
        assert hits

    def test_reports_per_scale(self, scene_and_result):
        _, result = scene_and_result
        assert set(result.scale_reports) == {1.0, 1.2}
        assert result.total_windows > 0

    def test_cycles_decrease_with_scale(self, scene_and_result):
        _, result = scene_and_result
        assert (
            result.scale_reports[1.2].cycles < result.scale_reports[1.0].cycles
        )

    def test_timing_uses_actual_frame(self, scene_and_result):
        _, result = scene_and_result
        assert result.timing.extractor_cycles == 256 * 320

    def test_matches_software_detector_on_strong_detections(
        self, tiny_dataset, trained, scene_and_result
    ):
        """The accelerator's confident detections coincide with the
        software feature-pyramid detector's."""
        from repro.detect import SlidingWindowDetector

        scene, hw_result = scene_and_result
        model, extractor = trained
        sw = SlidingWindowDetector(
            model, extractor, strategy="feature", scales=[1.0, 1.2],
            threshold=0.0,
        ).detect(scene.image)
        hw_strong = {
            (round(d.top), round(d.left))
            for d in hw_result.detections
            if d.score > 0.5
        }
        sw_all = {(round(d.top), round(d.left)) for d in sw.detections}
        # Strong hardware detections are a subset of software detections
        # up to NMS tie-breaking; require at least the intersection to
        # be non-trivial when anything was found.
        if hw_strong:
            assert hw_strong & sw_all
