"""Unit tests for MAC cells, MACBARs and the classifier array."""

import numpy as np
import pytest

from repro.errors import HardwareConfigError, ShapeError
from repro.hardware import MacBar, MacUnit, SvmClassifierArray
from repro.hardware.fixed_point import (
    FEATURE_FORMAT,
    FixedPointFormat,
    WEIGHT_FORMAT,
    quantize,
)
from repro.hardware.mac import ClassifierGeometry


class TestMacUnit:
    def test_single_step(self):
        mac = MacUnit()
        out = mac.step(0.5, 0.25)
        assert out == pytest.approx(0.125)

    def test_accumulates(self):
        mac = MacUnit()
        mac.step(1.0, 1.0)
        mac.step(0.5, 1.0)
        assert mac.accumulator == pytest.approx(1.5)

    def test_reset(self):
        mac = MacUnit()
        mac.step(1.0, 1.0)
        mac.reset()
        assert mac.accumulator == 0.0

    def test_op_count(self):
        mac = MacUnit()
        for _ in range(5):
            mac.step(0.1, 0.1)
        assert mac.n_ops == 5

    def test_inputs_quantized(self):
        """The MAC quantizes its operands, so a sub-LSB input vanishes."""
        mac = MacUnit()
        tiny = FEATURE_FORMAT.resolution / 4.0
        mac.step(tiny, 1.0)
        assert mac.accumulator == 0.0

    def test_sequential_equals_wide_dot_product(self):
        """The exact-accumulation contract: a MAC chain over quantized
        inputs is bit-exact equal to one wide dot product."""
        rng = np.random.default_rng(0)
        f = quantize(rng.uniform(-1, 1, 200), FEATURE_FORMAT)
        w = quantize(rng.uniform(-2, 2, 200), WEIGHT_FORMAT)
        mac = MacUnit()
        for fi, wi in zip(f, w):
            mac.step(fi, wi)
        assert mac.accumulator == float(f @ w)

    def test_rejects_insufficient_accumulator(self):
        with pytest.raises(HardwareConfigError, match="fractional bits"):
            MacUnit(accumulator_format=FixedPointFormat(16, 8))


class TestMacBar:
    def test_parallel_lanes_independent(self):
        bar = MacBar(n_macs=4)
        bar.step(np.array([1.0, 0.5, 0.0, -1.0]), np.ones(4))
        accs = [m.accumulator for m in bar.macs]
        assert accs == [1.0, 0.5, 0.0, -1.0]

    def test_process_column_returns_dot(self):
        rng = np.random.default_rng(1)
        f = quantize(rng.uniform(-1, 1, (36, 16)), FEATURE_FORMAT)
        w = quantize(rng.uniform(-1, 1, (36, 16)), WEIGHT_FORMAT)
        bar = MacBar(n_macs=16)
        total, cycles = bar.process_column(f, w)
        assert cycles == 36
        assert total == pytest.approx(float((f * w).sum()), abs=1e-12)

    def test_rejects_wrong_lane_count(self):
        bar = MacBar(n_macs=4)
        with pytest.raises(ShapeError, match="fed"):
            bar.step(np.ones(3), np.ones(3))

    def test_rejects_zero_macs(self):
        with pytest.raises(HardwareConfigError):
            MacBar(n_macs=0)


class TestClassifierGeometry:
    def test_paper_geometry(self):
        g = ClassifierGeometry()
        assert g.column_dim == 16 * 36
        assert g.window_dim == 4608

    def test_software_geometry(self):
        g = ClassifierGeometry(block_rows=15, block_cols=7)
        assert g.window_dim == 3780


class TestSvmClassifierArray:
    @pytest.fixture()
    def geometry(self):
        return ClassifierGeometry(block_rows=3, block_cols=2,
                                  features_per_block=4)

    def test_fill_cycles(self, geometry):
        arr = SvmClassifierArray(geometry, cycles_per_column=4)
        assert arr.fill_cycles == 8
        paper = SvmClassifierArray()  # defaults: 8 x 36
        assert paper.fill_cycles == 288

    def test_scores_equal_quantized_dot(self, geometry):
        rng = np.random.default_rng(2)
        arr = SvmClassifierArray(geometry, cycles_per_column=4)
        n_cols = 5
        cols = rng.uniform(-1, 1, (n_cols, geometry.column_dim))
        weights = rng.uniform(-1, 1, geometry.window_dim)
        bias = 0.125
        scores, cycles = arr.classify_row(cols, weights, bias)
        assert cycles == arr.fill_cycles + 4 * n_cols
        qc = quantize(cols, arr.feature_format)
        qw = quantize(weights, arr.weight_format).reshape(2, -1)
        for a in range(n_cols - 1):
            expected = qc[a] @ qw[0] + qc[a + 1] @ qw[1] + quantize(
                bias, arr.weight_format
            )
            assert scores[a] == pytest.approx(float(expected), abs=1e-9)

    def test_anchor_count(self, geometry):
        arr = SvmClassifierArray(geometry, cycles_per_column=4)
        cols = np.zeros((7, geometry.column_dim))
        scores, _ = arr.classify_row(cols, np.zeros(geometry.window_dim), 0.0)
        assert scores.size == 7 - 2 + 1

    def test_too_few_columns_gives_empty(self, geometry):
        arr = SvmClassifierArray(geometry, cycles_per_column=4)
        scores, cycles = arr.classify_row(
            np.zeros((1, geometry.column_dim)),
            np.zeros(geometry.window_dim),
            0.0,
        )
        assert scores.size == 0
        assert cycles > 0

    def test_rejects_wrong_column_dim(self, geometry):
        arr = SvmClassifierArray(geometry)
        with pytest.raises(ShapeError, match="column"):
            arr.classify_row(np.zeros((3, 5)), np.zeros(geometry.window_dim), 0.0)

    def test_rejects_wrong_weight_dim(self, geometry):
        arr = SvmClassifierArray(geometry)
        with pytest.raises(ShapeError, match="weights"):
            arr.classify_row(
                np.zeros((3, geometry.column_dim)), np.zeros(7), 0.0
            )

    def test_macbar_and_array_agree(self):
        """The cycle-level MacBar and the vectorized array compute the
        same column contribution."""
        rng = np.random.default_rng(3)
        g = ClassifierGeometry(block_rows=16, block_cols=1,
                               features_per_block=36)
        arr = SvmClassifierArray(g, cycles_per_column=36)
        col = rng.uniform(-1, 1, (1, g.column_dim))
        w = rng.uniform(-1, 1, g.window_dim)
        scores, _ = arr.classify_row(col, w, 0.0)

        qf = quantize(col[0], FEATURE_FORMAT).reshape(16, 36).T  # (36, 16)
        qw = quantize(w, WEIGHT_FORMAT).reshape(16, 36).T
        bar = MacBar(n_macs=16)
        total, _ = bar.process_column(qf, qw)
        assert scores[0] == pytest.approx(total, abs=1e-12)
