"""Unit tests for the synthetic dataset facade, augmentation and scenes."""

import numpy as np
import pytest

from repro.dataset import (
    DatasetSizes,
    SyntheticPedestrianDataset,
    upsample_window,
    upsample_window_set,
)
from repro.dataset.augment import PAPER_SCALES, TABLE1_SCALES
from repro.dataset.scene import make_street_scene
from repro.errors import ParameterError


class TestDatasetSizes:
    def test_paper_test_split_defaults(self):
        sizes = DatasetSizes()
        assert sizes.test_positive == 1126
        assert sizes.test_negative == 4530

    def test_scaled(self):
        s = DatasetSizes(100, 200, 50, 100).scaled(0.1)
        assert (s.train_positive, s.train_negative) == (10, 20)

    def test_scaled_minimum_one(self):
        s = DatasetSizes(1, 1, 1, 1).scaled(0.01)
        assert s.test_positive == 1

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            DatasetSizes(train_positive=-1)


class TestSyntheticDataset:
    @pytest.fixture(scope="class")
    def data(self):
        return SyntheticPedestrianDataset(
            seed=3, sizes=DatasetSizes(5, 8, 4, 6)
        )

    def test_split_sizes(self, data):
        train = data.train_windows()
        test = data.test_windows()
        assert train.n_positive == 5 and train.n_negative == 8
        assert test.n_positive == 4 and test.n_negative == 6

    def test_window_geometry(self, data):
        assert data.train_windows().images[0].shape == (128, 64)

    def test_deterministic_across_instances(self):
        sizes = DatasetSizes(3, 3, 2, 2)
        a = SyntheticPedestrianDataset(seed=9, sizes=sizes).train_windows()
        b = SyntheticPedestrianDataset(seed=9, sizes=sizes).train_windows()
        np.testing.assert_array_equal(a.images[0], b.images[0])
        np.testing.assert_array_equal(a.images[-1], b.images[-1])

    def test_different_seeds_differ(self):
        sizes = DatasetSizes(2, 2, 1, 1)
        a = SyntheticPedestrianDataset(seed=1, sizes=sizes).train_windows()
        b = SyntheticPedestrianDataset(seed=2, sizes=sizes).train_windows()
        assert not np.allclose(a.images[0], b.images[0])

    def test_train_test_independent(self, data):
        train = data.train_windows()
        test = data.test_windows()
        assert not np.allclose(train.images[0], test.images[0])

    def test_caching_returns_same_object(self, data):
        assert data.train_windows() is data.train_windows()

    def test_rejects_tiny_window(self):
        with pytest.raises(ParameterError, match="too small"):
            SyntheticPedestrianDataset(window_height=8, window_width=4)


class TestAugment:
    def test_paper_scale_lists(self):
        assert PAPER_SCALES[0] == 1.1
        assert PAPER_SCALES[-1] == 2.0
        assert len(PAPER_SCALES) == 10
        assert TABLE1_SCALES == (1.1, 1.2, 1.3, 1.4, 1.5)

    def test_upsample_window_size(self):
        img = np.zeros((128, 64))
        up = upsample_window(img, 1.5)
        assert up.shape == (192, 96)

    def test_upsample_rounding(self):
        up = upsample_window(np.zeros((128, 64)), 1.1)
        assert up.shape == (141, 70)

    def test_upsample_set(self):
        ws_images = [np.zeros((128, 64))] * 3
        from repro.dataset import WindowSet

        ws = WindowSet(images=ws_images, labels=np.array([1, 0, 1]))
        up = upsample_window_set(ws, 2.0)
        assert up.images[0].shape == (256, 128)
        np.testing.assert_array_equal(up.labels, ws.labels)

    def test_rejects_downscale(self):
        with pytest.raises(ParameterError, match="up-samples"):
            upsample_window(np.zeros((128, 64)), 0.9)


class TestScene:
    def test_scene_has_requested_pedestrians(self, rng):
        scene = make_street_scene(rng, 320, 480, n_pedestrians=3)
        assert len(scene.boxes) == 3
        assert scene.image.shape == (320, 480)

    def test_boxes_inside_frame(self, rng):
        scene = make_street_scene(rng, 300, 400, n_pedestrians=4)
        for b in scene.boxes:
            assert 0 <= b.top and b.bottom <= 300
            assert 0 <= b.left and b.right <= 400

    def test_boxes_do_not_overlap(self, rng):
        scene = make_street_scene(rng, 480, 640, n_pedestrians=4)
        for i, a in enumerate(scene.boxes):
            for b in scene.boxes[i + 1 :]:
                no_overlap = (
                    a.bottom <= b.top
                    or b.bottom <= a.top
                    or a.right <= b.left
                    or b.right <= a.left
                )
                assert no_overlap

    def test_box_aspect_is_window_like(self, rng):
        scene = make_street_scene(rng, 480, 640, n_pedestrians=2)
        for b in scene.boxes:
            assert b.width * 2 == b.height

    def test_height_range_respected(self, rng):
        scene = make_street_scene(
            rng, 480, 640, n_pedestrians=3, pedestrian_heights=(128, 140)
        )
        for b in scene.boxes:
            assert 128 <= b.height <= 140

    def test_dataset_scene_deterministic(self):
        data = SyntheticPedestrianDataset(seed=5, sizes=DatasetSizes(1, 1, 1, 1))
        a = data.make_scene(scene_index=2)
        b = data.make_scene(scene_index=2)
        np.testing.assert_array_equal(a.image, b.image)

    def test_rejects_negative_count(self, rng):
        with pytest.raises(ParameterError):
            make_street_scene(rng, 200, 200, n_pedestrians=-1)
