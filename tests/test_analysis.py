"""Tests for the project linter (repro.analysis).

Each rule is exercised against small fixture modules written to
``tmp_path`` — a clean snippet that must produce no findings and a
violating snippet that must produce exactly the expected finding —
plus pragma suppression, the reporters' schemas and the CLI contract
(exit codes, ``--list-rules``, ``--format json``).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    JSON_REPORT_VERSION,
    RULE_COVERAGE,
    SARIF_SCHEMA,
    SARIF_VERSION,
    Finding,
    PragmaIndex,
    all_rule_classes,
    get_rules,
    iter_python_files,
    lint_paths,
    render_json_report,
    render_sarif_report,
    render_text_report,
)
from repro.cli import main as cli_main
from repro.errors import ParameterError

EXPECTED_RULES = (
    "arena-loan-escape",
    "async-blocking-call",
    "lock-held-across-await",
    "loop-thread-telemetry",
    "ndarray-boundary-contract",
    "shm-lifecycle",
    "telemetry-names",
    "telemetry-ownership",
    "unseeded-randomness",
)


def lint_snippet(tmp_path, rule, source, relpath="pkg/mod.py"):
    """Lint one snippet with one rule; root is tmp_path (no docs check)."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint_paths([path], rules=get_rules([rule]), root=tmp_path)


class TestRegistry:
    def test_all_rules_registered(self):
        names = tuple(cls.name for cls in all_rule_classes())
        assert names == EXPECTED_RULES  # sorted by name

    def test_every_rule_has_a_description(self):
        assert all(cls.description for cls in all_rule_classes())

    def test_get_rules_unknown_name_raises(self):
        with pytest.raises(ParameterError, match="unknown lint rule"):
            get_rules(["no-such-rule"])

    def test_get_rules_subset(self):
        (rule,) = get_rules(["unseeded-randomness"])
        assert rule.name == "unseeded-randomness"


class TestPragmaIndex:
    def test_line_pragma_suppresses_only_that_line(self):
        idx = PragmaIndex.from_source(
            "x = 1\ny = 2  # repro-lint: disable=rule-a\n"
        )
        assert idx.suppresses("rule-a", 2)
        assert not idx.suppresses("rule-a", 1)
        assert not idx.suppresses("rule-b", 2)

    def test_comma_separated_rules(self):
        idx = PragmaIndex.from_source(
            "x = 1\ny = 2  # repro-lint: disable=rule-a, rule-b\n"
        )
        assert idx.suppresses("rule-a", 2) and idx.suppresses("rule-b", 2)

    def test_file_pragma_suppresses_everywhere(self):
        idx = PragmaIndex.from_source(
            "# repro-lint: disable-file=rule-a\nx = 1\n"
        )
        assert idx.suppresses("rule-a", 999)


class TestTelemetryNamesRule:
    RULE = "telemetry-names"

    def test_registered_counter_is_clean(self, tmp_path):
        src = "tm.inc('detect.frames')\n"
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_unknown_name_is_flagged(self, tmp_path):
        src = "tm.inc('detect.no_such_counter')\n"
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert finding.rule == self.RULE
        assert "not in the" in finding.message
        assert "detect.no_such_counter" in finding.message

    def test_kind_mismatch_is_flagged(self, tmp_path):
        # detect.frame is registered as a span; inc() records a counter.
        src = "tm.inc('detect.frame')\n"
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "registered as a span" in finding.message
        assert "counter" in finding.message

    def test_fstring_resolves_via_template(self, tmp_path):
        src = (
            "def f(tm, s):\n"
            "    with tm.span(f'detect.scale[{s:.2f}].partial_matmul'):\n"
            "        pass\n"
        )
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_partial_fstring_cannot_resolve(self, tmp_path):
        src = "tm.inc(f'{prefix}.windows_scanned')\n"
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "<>.windows_scanned" in finding.message

    def test_dynamic_names_are_not_vouched_for(self, tmp_path):
        # A bare variable is invisible to the literal matcher.
        src = "tm.inc(name)\n"
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_tests_directory_is_exempt(self, tmp_path):
        src = "tm.inc('made.up.name')\n"
        findings = lint_snippet(
            tmp_path, self.RULE, src, relpath="tests/test_x.py"
        )
        assert findings == []


class TestTelemetryOwnershipRule:
    RULE = "telemetry-ownership"

    def test_constructed_object_is_clean(self, tmp_path):
        src = (
            "def wire(tm):\n"
            "    ext = HogExtractor()\n"
            "    ext.telemetry = tm\n"
        )
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_self_assignment_is_clean(self, tmp_path):
        src = (
            "class D:\n"
            "    def __init__(self, tm):\n"
            "        self.telemetry = tm\n"
        )
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_borrowed_object_is_flagged(self, tmp_path):
        src = (
            "def wire(extractor, tm):\n"
            "    extractor.telemetry = tm\n"
        )
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert finding.rule == self.RULE
        assert "did not construct extractor" in finding.message

    def test_conditional_construction_is_clean(self, tmp_path):
        # The PR 2 fix's own shape: construct-or-borrow, then assign.
        src = (
            "class D:\n"
            "    def __init__(self, ext, tm):\n"
            "        self.ext = ext if ext is not None "
            "else HogExtractor()\n"
            "        self.ext.telemetry = tm\n"
        )
        assert lint_snippet(tmp_path, self.RULE, src) == []


class TestUnseededRandomnessRule:
    RULE = "unseeded-randomness"

    def test_seeded_default_rng_is_clean(self, tmp_path):
        src = "rng = np.random.default_rng(1234)\n"
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_legacy_global_call_is_flagged(self, tmp_path):
        src = "x = np.random.rand(3)\n"
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "np.random.rand" in finding.message

    def test_numpy_spelling_is_flagged_too(self, tmp_path):
        src = "numpy.random.seed(0)\n"
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert finding.rule == self.RULE

    def test_argless_default_rng_is_flagged(self, tmp_path):
        src = "rng = np.random.default_rng()\n"
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "nondeterministic" in finding.message

    def test_tests_directory_is_exempt(self, tmp_path):
        src = "x = np.random.rand(3)\n"
        findings = lint_snippet(
            tmp_path, self.RULE, src, relpath="tests/test_x.py"
        )
        assert findings == []


class TestNdarrayBoundaryContractRule:
    RULE = "ndarray-boundary-contract"
    RELPATH = "imgproc/ops.py"

    def test_unchecked_public_function_is_flagged(self, tmp_path):
        src = (
            "import numpy as np\n"
            "def blur(image: np.ndarray) -> np.ndarray:\n"
            "    return image\n"
        )
        (finding,) = lint_snippet(
            tmp_path, self.RULE, src, relpath=self.RELPATH
        )
        assert "blur()" in finding.message
        assert "(image)" in finding.message

    def test_check_array_call_satisfies(self, tmp_path):
        src = (
            "import numpy as np\n"
            "def blur(image: np.ndarray) -> np.ndarray:\n"
            "    check_array(image, 'image', ndim=2)\n"
            "    return image\n"
        )
        findings = lint_snippet(
            tmp_path, self.RULE, src, relpath=self.RELPATH
        )
        assert findings == []

    def test_array_contract_decorator_satisfies(self, tmp_path):
        src = (
            "import numpy as np\n"
            "@array_contract(image='(H, W)')\n"
            "def blur(image: np.ndarray) -> np.ndarray:\n"
            "    return image\n"
        )
        findings = lint_snippet(
            tmp_path, self.RULE, src, relpath=self.RELPATH
        )
        assert findings == []

    def test_private_functions_are_exempt(self, tmp_path):
        src = (
            "import numpy as np\n"
            "def _helper(image: np.ndarray):\n"
            "    return image\n"
        )
        findings = lint_snippet(
            tmp_path, self.RULE, src, relpath=self.RELPATH
        )
        assert findings == []

    def test_non_boundary_packages_are_exempt(self, tmp_path):
        src = (
            "import numpy as np\n"
            "def blur(image: np.ndarray):\n"
            "    return image\n"
        )
        findings = lint_snippet(
            tmp_path, self.RULE, src, relpath="telemetry/ops.py"
        )
        assert findings == []


class TestPragmasEndToEnd:
    def test_line_pragma_suppresses_finding(self, tmp_path):
        src = (
            "x = np.random.rand(3)"
            "  # repro-lint: disable=unseeded-randomness\n"
        )
        findings = lint_snippet(tmp_path, "unseeded-randomness", src)
        assert findings == []

    def test_file_pragma_suppresses_whole_module(self, tmp_path):
        src = (
            "# repro-lint: disable-file=unseeded-randomness\n"
            "x = np.random.rand(3)\n"
            "y = np.random.rand(4)\n"
        )
        findings = lint_snippet(tmp_path, "unseeded-randomness", src)
        assert findings == []

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        src = (
            "x = np.random.rand(3)"
            "  # repro-lint: disable=telemetry-names\n"
        )
        findings = lint_snippet(tmp_path, "unseeded-randomness", src)
        assert len(findings) == 1


class TestRunner:
    def test_syntax_error_becomes_parse_error_finding(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        (finding,) = lint_paths([path], rules=get_rules([]), root=tmp_path)
        assert finding.rule == "parse-error"
        assert "syntax error" in finding.message

    def test_iter_python_files_skips_caches_and_dedupes(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-310.pyc.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path, tmp_path / "a.py"])
        assert files == [tmp_path / "a.py"]

    def test_findings_are_sorted(self, tmp_path):
        (tmp_path / "b.py").write_text("x = np.random.rand(1)\n")
        (tmp_path / "a.py").write_text(
            "x = np.random.rand(1)\ny = np.random.rand(1)\n"
        )
        findings = lint_paths(
            [tmp_path], rules=get_rules(["unseeded-randomness"]),
            root=tmp_path,
        )
        assert [(f.path, f.line) for f in findings] == [
            ("a.py", 1), ("a.py", 2), ("b.py", 1),
        ]


class TestReporters:
    FINDINGS = [
        Finding(path="a.py", line=3, col=7, rule="telemetry-names",
                message="boom"),
    ]

    def test_text_report(self):
        report = render_text_report(self.FINDINGS, checked_files=2)
        assert "a.py:3:7: telemetry-names: boom" in report
        assert report.endswith("1 finding in 2 files checked")

    def test_text_report_clean(self):
        report = render_text_report([], checked_files=1)
        assert report == "0 findings in 1 file checked"

    def test_json_report_schema(self):
        payload = json.loads(render_json_report(
            self.FINDINGS, rules=get_rules(), checked_files=2,
        ))
        assert payload["version"] == JSON_REPORT_VERSION == 1
        assert payload["rules"] == list(EXPECTED_RULES)
        assert payload["checked_files"] == 2
        assert payload["count"] == 1
        assert payload["findings"] == [{
            "path": "a.py", "line": 3, "col": 7,
            "rule": "telemetry-names", "message": "boom",
        }]


class TestSarifReporter:
    FINDINGS = [
        Finding(path="a.py", line=3, col=7, rule="telemetry-names",
                message="boom"),
        Finding(path="b.py", line=1, col=1, rule="parse-error",
                message="syntax error: oops"),
    ]

    def document(self):
        return json.loads(render_sarif_report(
            self.FINDINGS, rules=get_rules(), checked_files=2,
        ))

    def test_envelope(self):
        doc = self.document()
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"] == SARIF_SCHEMA
        assert len(doc["runs"]) == 1

    def test_rule_indices_resolve(self):
        run = self.document()["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        # Registered rules first, then the on-the-fly parse-error entry.
        assert [r["id"] for r in rules][:len(EXPECTED_RULES)] == list(
            EXPECTED_RULES
        )
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_result_location(self):
        result = self.document()["runs"][0]["results"][0]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"] == {
            "uri": "a.py", "uriBaseId": "SRCROOT",
        }
        assert location["region"] == {"startLine": 3, "startColumn": 7}
        assert result["message"]["text"] == "boom"

    def test_checked_files_property(self):
        run = self.document()["runs"][0]
        assert run["properties"]["checkedFiles"] == 2


class TestRuleCoverage:
    def test_src_runs_every_rule(self):
        assert RULE_COVERAGE["src"] == frozenset()

    def test_flow_rules_run_everywhere(self):
        flow_rules = {
            "async-blocking-call", "lock-held-across-await",
            "loop-thread-telemetry", "shm-lifecycle",
            "arena-loan-escape",
        }
        for excluded in RULE_COVERAGE.values():
            assert not flow_rules & excluded

    def test_coverage_applies_to_explicit_rule_selection(self, tmp_path):
        # Even `--rules unseeded-randomness tests/` reports nothing:
        # the coverage table is policy, not a default.
        path = tmp_path / "tests" / "test_x.py"
        path.parent.mkdir()
        path.write_text("x = np.random.rand(3)\n")
        findings = lint_paths(
            [path], rules=get_rules(["unseeded-randomness"]),
            root=tmp_path,
        )
        assert findings == []

    def test_flow_rule_fires_in_tests_directory(self, tmp_path):
        src = (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(1)\n"
        )
        (finding,) = lint_snippet(
            tmp_path, "async-blocking-call", src,
            relpath="tests/test_x.py",
        )
        assert finding.rule == "async-blocking-call"

    def test_unknown_directory_runs_all_rules(self, tmp_path):
        src = "x = np.random.rand(3)\n"
        (finding,) = lint_snippet(
            tmp_path, "unseeded-randomness", src,
            relpath="scripts/gen.py",
        )
        assert finding.rule == "unseeded-randomness"


class TestParallelLint:
    def test_jobs_find_the_same_findings(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "x = np.random.rand(1)\ny = np.random.rand(1)\n"
        )
        (tmp_path / "b.py").write_text("z = np.random.rand(1)\n")
        (tmp_path / "c.py").write_text("ok = 1\n")
        serial = lint_paths([tmp_path], rules=get_rules(), root=tmp_path)
        fanned = lint_paths(
            [tmp_path], rule_names=list(EXPECTED_RULES), root=tmp_path,
            jobs=2,
        )
        assert serial == fanned
        assert len(serial) == 3

    def test_rules_and_rule_names_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            lint_paths(
                [tmp_path], rules=get_rules(),
                rule_names=["telemetry-names"], root=tmp_path,
            )


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        rc = cli_main([
            "lint", str(tmp_path), "--root", str(tmp_path),
        ])
        assert rc == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("x = np.random.rand(1)\n")
        rc = cli_main(["lint", str(tmp_path), "--root", str(tmp_path)])
        assert rc == 1
        assert "unseeded-randomness" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("x = np.random.rand(1)\n")
        rc = cli_main([
            "lint", str(tmp_path), "--root", str(tmp_path),
            "--format", "json",
        ])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["count"] == 1

    def test_sarif_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("x = np.random.rand(1)\n")
        rc = cli_main([
            "lint", str(tmp_path), "--root", str(tmp_path),
            "--format", "sarif",
        ])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "unseeded-randomness"

    def test_jobs_flag(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("x = np.random.rand(1)\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        rc = cli_main([
            "lint", str(tmp_path), "--root", str(tmp_path),
            "--jobs", "2",
        ])
        assert rc == 1
        assert "unseeded-randomness" in capsys.readouterr().out

    def test_invalid_jobs_exits_two(self, tmp_path, capsys):
        rc = cli_main(["lint", str(tmp_path), "--jobs", "0"])
        assert rc == 2
        assert "--jobs" in capsys.readouterr().err

    def test_rules_subset(self, tmp_path):
        (tmp_path / "bad.py").write_text("x = np.random.rand(1)\n")
        rc = cli_main([
            "lint", str(tmp_path), "--root", str(tmp_path),
            "--rules", "telemetry-names",
        ])
        assert rc == 0  # the only violation is of an unselected rule

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        rc = cli_main([
            "lint", str(tmp_path), "--rules", "no-such-rule",
        ])
        assert rc == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        rc = cli_main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in EXPECTED_RULES:
            assert name in out


class TestRepositoryIsClean:
    def test_src_lints_clean(self):
        """The enforced invariant: the library has zero findings."""
        repo = Path(__file__).resolve().parent.parent
        findings = lint_paths([repo / "src"], root=repo)
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"lint findings in src/:\n{rendered}"

    def test_tests_and_benchmarks_lint_clean(self):
        """tests/ and benchmarks/ are clean under their coverage rows."""
        repo = Path(__file__).resolve().parent.parent
        paths = [
            repo / name for name in ("tests", "benchmarks")
            if (repo / name).is_dir()
        ]
        findings = lint_paths(paths, root=repo)
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"lint findings:\n{rendered}"

    def test_src_needs_no_pragmas(self):
        """docs/ANALYSIS.md promises src/ carries zero pragmas.

        The linter's own package is excluded: it necessarily spells the
        pragma grammar in its implementation and docstrings.
        """
        repo = Path(__file__).resolve().parent.parent
        offenders = [
            str(path)
            for path in sorted((repo / "src").rglob("*.py"))
            if "analysis" not in path.parts
            and "repro-lint:" in path.read_text(encoding="utf-8")
        ]
        assert offenders == []
