"""Unit tests for detection types, IoU and non-maximum suppression."""

import pytest

from repro.detect import Detection, box_iou, non_maximum_suppression
from repro.errors import ParameterError


def det(top=0, left=0, h=10, w=10, score=1.0, scale=1.0):
    return Detection(top=top, left=left, height=h, width=w,
                     score=score, scale=scale)


class TestDetection:
    def test_derived_geometry(self):
        d = det(top=5, left=3, h=10, w=4)
        assert d.bottom == 15
        assert d.right == 7
        assert d.area == 40
        assert d.center if hasattr(d, "center") else True

    def test_rejects_zero_size(self):
        with pytest.raises(ParameterError, match="positive size"):
            det(h=0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ParameterError, match="scale"):
            det(scale=0.0)


class TestBoxIou:
    def test_identical_boxes(self):
        assert box_iou(det(), det()) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert box_iou(det(), det(top=100, left=100)) == 0.0

    def test_touching_boxes_zero(self):
        assert box_iou(det(), det(left=10)) == 0.0

    def test_half_overlap(self):
        a = det(w=10)
        b = det(left=5, w=10)
        # intersection 5x10=50, union 150.
        assert box_iou(a, b) == pytest.approx(50.0 / 150.0)

    def test_symmetric(self):
        a = det(top=2, left=3, h=8, w=6)
        b = det(top=5, left=4, h=10, w=10)
        assert box_iou(a, b) == pytest.approx(box_iou(b, a))

    def test_contained_box(self):
        outer = det(h=20, w=20)
        inner = det(top=5, left=5, h=10, w=10)
        assert box_iou(outer, inner) == pytest.approx(100.0 / 400.0)


class TestNms:
    def test_keeps_best_of_cluster(self):
        cluster = [det(score=0.5), det(top=1, score=0.9), det(left=1, score=0.7)]
        kept = non_maximum_suppression(cluster, iou_threshold=0.3)
        assert len(kept) == 1
        assert kept[0].score == 0.9

    def test_keeps_distant_boxes(self):
        boxes = [det(score=0.9), det(top=100, left=100, score=0.5)]
        kept = non_maximum_suppression(boxes)
        assert len(kept) == 2

    def test_result_sorted_by_score(self):
        boxes = [det(top=100, score=0.2), det(score=0.9), det(left=200, score=0.5)]
        kept = non_maximum_suppression(boxes)
        scores = [d.score for d in kept]
        assert scores == sorted(scores, reverse=True)

    def test_max_detections_cap(self):
        boxes = [det(top=i * 100, score=1.0 - i * 0.1) for i in range(5)]
        kept = non_maximum_suppression(boxes, max_detections=2)
        assert len(kept) == 2

    def test_empty_input(self):
        assert non_maximum_suppression([]) == []

    def test_threshold_one_keeps_all_nonidentical(self):
        boxes = [det(score=0.9), det(top=1, score=0.8)]
        kept = non_maximum_suppression(boxes, iou_threshold=1.0)
        assert len(kept) == 2

    def test_threshold_zero_removes_any_overlap(self):
        boxes = [det(score=0.9), det(top=9, score=0.8), det(top=50, score=0.7)]
        kept = non_maximum_suppression(boxes, iou_threshold=0.0)
        assert len(kept) == 2

    def test_rejects_bad_threshold(self):
        with pytest.raises(ParameterError, match="iou_threshold"):
            non_maximum_suppression([], iou_threshold=1.5)

    def test_rejects_negative_cap(self):
        with pytest.raises(ParameterError, match="max_detections"):
            non_maximum_suppression([], max_detections=-1)

    def test_idempotent(self):
        boxes = [det(score=0.9), det(top=3, score=0.5), det(top=200, score=0.4)]
        once = non_maximum_suppression(boxes, iou_threshold=0.3)
        twice = non_maximum_suppression(once, iou_threshold=0.3)
        assert once == twice
