"""Tests for the CFG builder and dataflow engine (repro.analysis.flow).

The corner cases here are asserted against *complete* expected edge
sets — ``CFG.edges()`` returns ``(src_label, dst_label, kind)`` triples
precisely so these tests pin the graph shape, not just spot-check a
few paths.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.flow import (
    EXCEPTION,
    NORMAL,
    ForwardAnalysis,
    build_cfg,
    run_forward,
)


def func_cfg(source):
    """CFG of the first (and only) def in ``source``."""
    tree = ast.parse(textwrap.dedent(source))
    (func,) = tree.body
    return func, build_cfg(func)


class TestCfgShape:
    def test_straight_line(self):
        _, cfg = func_cfg(
            """
            def f():
                a()
                b()
            """
        )
        assert cfg.edges() == {
            ("entry", "Expr@3", NORMAL),
            ("Expr@3", "Expr@4", NORMAL),
            ("Expr@4", "exit", NORMAL),
            ("Expr@3", "exit", EXCEPTION),
            ("Expr@4", "exit", EXCEPTION),
        }

    def test_try_finally_with_return_in_try(self):
        # The return must route *through* the finally suite, the suite
        # must both continue to exit (return path) and re-raise
        # (exception path), and there must be no fall-through edge —
        # no non-abrupt path completes the try body.
        _, cfg = func_cfg(
            """
            def f():
                try:
                    return 1
                finally:
                    cleanup()
            """
        )
        assert cfg.edges() == {
            ("entry", "Try@3", NORMAL),
            ("Try@3", "Return@4", NORMAL),
            ("Return@4", "finally@6", NORMAL),
            ("Return@4", "finally@6", EXCEPTION),
            ("finally@6", "Expr@6", NORMAL),
            ("Expr@6", "exit", NORMAL),
            ("Expr@6", "exit", EXCEPTION),
        }

    def test_while_else(self):
        # The else suite runs on normal loop exit (test false) and is
        # the only normal route to the loop-exit node: no direct
        # While -> loopexit edge may exist.
        _, cfg = func_cfg(
            """
            def f():
                while cond():
                    step()
                else:
                    done()
                tail()
            """
        )
        assert cfg.edges() == {
            ("entry", "While@3", NORMAL),
            ("While@3", "Expr@4", NORMAL),
            ("Expr@4", "While@3", NORMAL),
            ("While@3", "Expr@6", NORMAL),
            ("Expr@6", "loopexit@3", NORMAL),
            ("loopexit@3", "Expr@7", NORMAL),
            ("Expr@7", "exit", NORMAL),
            ("While@3", "exit", EXCEPTION),
            ("Expr@4", "exit", EXCEPTION),
            ("Expr@6", "exit", EXCEPTION),
            ("Expr@7", "exit", EXCEPTION),
        }

    def test_nested_async_with(self):
        _, cfg = func_cfg(
            """
            async def f():
                async with a() as x:
                    async with b() as y:
                        await work()
            """
        )
        assert cfg.edges() == {
            ("entry", "AsyncWith@3", NORMAL),
            ("AsyncWith@3", "AsyncWith@4", NORMAL),
            ("AsyncWith@4", "Expr@5", NORMAL),
            ("Expr@5", "exit", NORMAL),
            ("AsyncWith@3", "exit", EXCEPTION),
            ("AsyncWith@4", "exit", EXCEPTION),
            ("Expr@5", "exit", EXCEPTION),
        }

    def test_bare_except_reraise(self):
        # Body exceptions may match the handler or fall through (the
        # conservative no-match edge); the bare re-raise escapes past
        # the handler to the function exit.
        _, cfg = func_cfg(
            """
            def f():
                try:
                    work()
                except:
                    raise
                after()
            """
        )
        assert cfg.edges() == {
            ("entry", "Try@3", NORMAL),
            ("Try@3", "Expr@4", NORMAL),
            ("Expr@4", "except@5", EXCEPTION),
            ("Expr@4", "exit", EXCEPTION),
            ("except@5", "Raise@6", NORMAL),
            ("Raise@6", "exit", EXCEPTION),
            ("Expr@4", "Expr@7", NORMAL),
            ("Expr@7", "exit", NORMAL),
            ("Expr@7", "exit", EXCEPTION),
        }

    def test_while_true_has_no_normal_exit(self):
        func, cfg = func_cfg(
            """
            def f():
                while True:
                    step()
                tail()
            """
        )
        labels = {cfg.nodes[i].label for i in cfg.reachable()}
        assert "Expr@5" not in labels  # tail is dead code
        assert ("While@3", "loopexit@3", NORMAL) not in cfg.edges()

    def test_break_escapes_while_true(self):
        func, cfg = func_cfg(
            """
            def f():
                while True:
                    if done():
                        break
                tail()
            """
        )
        labels = {cfg.nodes[i].label for i in cfg.reachable()}
        assert "Expr@6" in labels  # tail lives via the break


class TestCfgQueries:
    def test_has_path_respects_avoiding_and_kinds(self):
        func, cfg = func_cfg(
            """
            def f():
                a()
                b()
                c()
            """
        )
        a, b = (cfg.node_for(func.body[i]) for i in range(2))
        assert cfg.has_path(a, cfg.exit)
        # Normal control flow cannot skip b; the exception edge can.
        assert not cfg.has_path(
            a, cfg.exit, avoiding={b}, kinds=(NORMAL,)
        )
        assert cfg.has_path(a, cfg.exit, avoiding={b})

    def test_nested_scope_statements_have_no_node(self):
        func, cfg = func_cfg(
            """
            def f():
                def g():
                    inner()
                outer()
            """
        )
        nested_def = func.body[0]
        assert cfg.node_for(nested_def) is not None
        assert cfg.node_for(nested_def.body[0]) is None


class _MustAssigned(ForwardAnalysis):
    """Names assigned on *every* normal path (intersection join)."""

    edge_kinds = (NORMAL,)

    def initial(self):
        return frozenset()

    def join(self, left, right):
        return left & right

    def transfer(self, node, state):
        if isinstance(node.stmt, ast.Assign):
            return state | {
                t.id for t in node.stmt.targets
                if isinstance(t, ast.Name)
            }
        return state


class TestForwardDataflow:
    def test_branch_join_is_intersection(self):
        func, cfg = func_cfg(
            """
            def f(p):
                if p:
                    x = 1
                    y = 1
                else:
                    y = 2
                tail()
            """
        )
        states = run_forward(cfg, _MustAssigned())
        at_tail = states[cfg.node_for(func.body[1])]
        assert at_tail == frozenset({"y"})

    def test_loop_reaches_fixpoint(self):
        func, cfg = func_cfg(
            """
            def f(n):
                x = 0
                while n:
                    y = 1
                tail()
            """
        )
        states = run_forward(cfg, _MustAssigned())
        at_tail = states[cfg.node_for(func.body[2])]
        assert "x" in at_tail
        assert "y" not in at_tail  # zero-iteration path skips it

    def test_edge_kind_filter_skips_exception_paths(self):
        func, cfg = func_cfg(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    handle()
                tail()
            """
        )
        handler_stmt = func.body[0].handlers[0].body[0]
        normal_only = run_forward(cfg, _MustAssigned())
        assert cfg.node_for(handler_stmt) not in normal_only

        class AllKinds(_MustAssigned):
            edge_kinds = None

        every = run_forward(cfg, AllKinds())
        assert cfg.node_for(handler_stmt) in every
