"""Equivalence, caching and wiring tests for the partial-score scorer.

The conv scorer (:mod:`repro.detect.scoring`) must be a drop-in
replacement for the descriptor-matrix GEMM: same scores to float
round-off on every geometry the detector stack can produce — dense and
strided grids, signed/unsigned gradients, rescaled-model window
extents, degenerate one-window and empty grids — and identical
detections end-to-end through every execution backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.detect import (
    SCORERS,
    ScorerPlan,
    SlidingWindowDetector,
    classify_grid,
    classify_grid_windows,
    classify_grid_with_scaled_model,
    plan_for,
    score_blocks_conv,
)
from repro.errors import ParameterError, ShapeError
from repro.hog import HogExtractor, HogFeatureGrid, HogParameters
from repro.svm import LinearSvmModel
from repro.svm.model_scaling import model_pyramid
from repro.telemetry import MetricsRegistry

#: Acceptance tolerance: conv and gemm regroup float additions, so the
#: scores agree to round-off, far inside 1e-9 absolute.
TOL = dict(rtol=0.0, atol=1e-9)


@pytest.fixture(scope="module")
def frame():
    return np.random.default_rng(17).random((256, 224))


@pytest.fixture(scope="module")
def grid(frame):
    return HogExtractor().extract(frame)


def _random_model(n_features, seed=5):
    rng = np.random.default_rng(seed)
    return LinearSvmModel(
        weights=rng.standard_normal(n_features), bias=float(rng.normal())
    )


def _grid_from_blocks(blocks):
    """A minimal grid carrying arbitrary blocks (params are unused by
    ``classify_grid_windows``)."""
    return HogFeatureGrid(
        cells=np.zeros((1, 1, 1)), blocks=blocks, params=HogParameters()
    )


class TestConvGemmEquivalence:
    @pytest.mark.parametrize("stride", [1, 2, 3])
    def test_classify_grid_across_strides(self, grid, trained_model, stride):
        gemm = classify_grid(grid, trained_model, stride=stride,
                             scorer="gemm")
        conv = classify_grid(grid, trained_model, stride=stride,
                             scorer="conv")
        assert gemm.shape == conv.shape
        np.testing.assert_allclose(conv, gemm, **TOL)

    def test_signed_gradients(self, frame):
        params = HogParameters(signed_gradients=True)
        signed_grid = HogExtractor(params).extract(frame)
        model = _random_model(params.descriptor_length)
        gemm = classify_grid(signed_grid, model, scorer="gemm")
        conv = classify_grid(signed_grid, model, scorer="conv")
        np.testing.assert_allclose(conv, gemm, **TOL)

    @pytest.mark.parametrize("scale", [0.8, 1.0, 1.25])
    def test_rescaled_model_window_extents(self, grid, trained_model, scale):
        params = grid.params
        (scaled,) = model_pyramid(trained_model, params, (scale,))
        gemm = classify_grid_with_scaled_model(grid, scaled, scorer="gemm")
        conv = classify_grid_with_scaled_model(grid, scaled, scorer="conv")
        assert gemm.shape == conv.shape
        np.testing.assert_allclose(conv, gemm, **TOL)

    @pytest.mark.parametrize("stride", [1, 2])
    def test_rescaled_extents_with_stride(self, grid, trained_model, stride):
        (scaled,) = model_pyramid(trained_model, grid.params, (1.3,))
        kw = dict(blocks_y=scaled.blocks_y, blocks_x=scaled.blocks_x,
                  stride=stride)
        gemm = classify_grid_windows(grid, scaled.model, scorer="gemm", **kw)
        conv = classify_grid_windows(grid, scaled.model, scorer="conv", **kw)
        np.testing.assert_allclose(conv, gemm, **TOL)

    def test_grid_barely_one_window(self, trained_model):
        params = HogParameters()
        image = np.random.default_rng(3).random(
            (params.window_height, params.window_width)
        )
        tight = HogExtractor(params).extract(image)
        assert tight.n_window_positions == (1, 1)
        gemm = classify_grid(tight, trained_model, scorer="gemm")
        conv = classify_grid(tight, trained_model, scorer="conv")
        assert gemm.shape == conv.shape == (1, 1)
        np.testing.assert_allclose(conv, gemm, **TOL)
        manual = trained_model.decision_function(
            tight.window_descriptor(0, 0)
        )[0]
        assert conv[0, 0] == pytest.approx(manual)

    def test_empty_grid(self, trained_model):
        small = HogExtractor().extract(np.zeros((64, 48)))
        for scorer in SCORERS:
            assert classify_grid(small, trained_model,
                                 scorer=scorer).size == 0

    def test_strided_conv_matches_dense_anchors_bitwise(self, grid,
                                                        trained_model):
        """Strided aggregation reads the same partial sums in the same
        order as the dense run, so shared anchors agree bitwise."""
        dense = classify_grid(grid, trained_model, stride=1, scorer="conv")
        coarse = classify_grid(grid, trained_model, stride=2, scorer="conv")
        np.testing.assert_array_equal(coarse, dense[::2, ::2])

    @given(
        grid_rows=st.integers(1, 6),
        grid_cols=st.integers(1, 6),
        blocks_y=st.integers(1, 6),
        blocks_x=st.integers(1, 6),
        block_dim=st.integers(1, 8),
        stride=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_random_geometry(self, grid_rows, grid_cols, blocks_y,
                                      blocks_x, block_dim, stride, seed):
        rng = np.random.default_rng(seed)
        blocks = rng.standard_normal((grid_rows, grid_cols, block_dim))
        model = LinearSvmModel(
            weights=rng.standard_normal(blocks_y * blocks_x * block_dim),
            bias=float(rng.normal()),
        )
        fake = _grid_from_blocks(blocks)
        kw = dict(blocks_y=blocks_y, blocks_x=blocks_x, stride=stride)
        gemm = classify_grid_windows(fake, model, scorer="gemm", **kw)
        conv = classify_grid_windows(fake, model, scorer="conv", **kw)
        assert gemm.shape == conv.shape
        np.testing.assert_allclose(conv, gemm, **TOL)


class TestScorerPlan:
    def test_plan_shape_and_layout(self, trained_model):
        plan = ScorerPlan.build(trained_model, 15, 7)
        assert plan.weights_t.shape == (36, 105)
        assert plan.block_dim == 36
        assert plan.n_positions == 105
        # Column i*bx+j is the window-relative (i, j) weight sub-vector.
        w = trained_model.weights.reshape(105, 36)
        np.testing.assert_array_equal(plan.weights_t[:, 17], w[17])

    def test_rejects_indivisible_model(self):
        with pytest.raises(ParameterError, match="divisible"):
            ScorerPlan.build(_random_model(100), 3, 7)

    def test_rejects_bad_extent(self, trained_model):
        with pytest.raises(ParameterError, match="extent"):
            ScorerPlan.build(trained_model, 0, 7)

    def test_cache_hits_and_misses_counted(self, grid, trained_model):
        model = _random_model(grid.params.descriptor_length, seed=11)
        registry = MetricsRegistry()
        for _ in range(3):
            classify_grid(grid, model, scorer="conv", telemetry=registry)
        snap = registry.snapshot()
        assert snap.counters["detect.scorer.plan_cache_misses"] == 1
        assert snap.counters["detect.scorer.plan_cache_hits"] == 2

    def test_cache_is_per_geometry(self, grid, trained_model):
        model = _random_model(grid.params.descriptor_length, seed=12)
        registry = MetricsRegistry()
        # Same model, two geometries sharing one divisor structure:
        # 3780 = 15*7*36 = 105*36; use (15, 7) and (105, 1).
        plan_a = plan_for(model, 15, 7, telemetry=registry)
        plan_b = plan_for(model, 105, 1, telemetry=registry)
        assert plan_a is not plan_b
        assert plan_for(model, 15, 7, telemetry=registry) is plan_a
        snap = registry.snapshot()
        assert snap.counters["detect.scorer.plan_cache_misses"] == 2
        assert snap.counters["detect.scorer.plan_cache_hits"] == 1

    def test_plan_is_stride_independent(self, grid, trained_model):
        model = _random_model(grid.params.descriptor_length, seed=13)
        registry = MetricsRegistry()
        for stride in (1, 2, 3):
            classify_grid(grid, model, stride=stride, scorer="conv",
                          telemetry=registry)
        assert registry.snapshot().counters[
            "detect.scorer.plan_cache_misses"] == 1

    def test_score_blocks_conv_rejects_dim_mismatch(self, trained_model):
        plan = ScorerPlan.build(trained_model, 15, 7)
        with pytest.raises(ShapeError, match="block_dim"):
            score_blocks_conv(np.zeros((20, 20, 9)), plan)


class TestScorerWiring:
    def test_rejects_unknown_scorer(self, grid, trained_model):
        with pytest.raises(ParameterError, match="scorer"):
            classify_grid(grid, trained_model, scorer="simd")
        with pytest.raises(ParameterError, match="scorer"):
            SlidingWindowDetector(trained_model, HogExtractor(),
                                  scorer="nope")
        with pytest.raises(ParameterError, match="scorer"):
            DetectorConfig(scorer="nope")

    def test_detector_scorers_agree_end_to_end(self, tiny_dataset, trained):
        model, extractor = trained
        scene = tiny_dataset.make_scene(
            height=288, width=320, n_pedestrians=1,
            pedestrian_heights=(128, 150), scene_index=1,
        )
        results = {}
        for scorer in SCORERS:
            det = SlidingWindowDetector(
                model, extractor, scales=[1.0, 1.2], threshold=-0.2,
                scorer=scorer,
            )
            results[scorer] = det.detect(scene.image)
        gemm, conv = results["gemm"], results["conv"]
        assert len(gemm.detections) == len(conv.detections)
        assert gemm.n_windows_evaluated == conv.n_windows_evaluated
        for a, b in zip(gemm.detections, conv.detections):
            assert (a.top, a.left, a.height, a.width, a.scale) == \
                (b.top, b.left, b.height, b.width, b.scale)
            assert a.score == pytest.approx(b.score, abs=1e-9)

    def test_partial_matmul_span_recorded_per_scale(self, tiny_dataset,
                                                    trained):
        from repro.telemetry import stage_report

        model, extractor = trained
        scene = tiny_dataset.make_scene(height=256, width=256,
                                        n_pedestrians=0)
        registry = MetricsRegistry()
        det = SlidingWindowDetector(
            model, extractor, scales=[1.0, 1.3], telemetry=registry
        )
        det.detect(scene.image)
        snap = registry.snapshot()
        leaves = {p.rsplit("/", 1)[-1] for p in snap.spans}
        assert "detect.scale[1.00].partial_matmul" in leaves
        assert "detect.scale[1.30].partial_matmul" in leaves
        stages = stage_report(snap)["stages"]
        assert stages["partial_matmul"]["count"] == 2
        assert stages["partial_matmul"]["total_ms"] <= \
            stages["classify"]["total_ms"]

    def test_gemm_detector_records_no_partial_matmul(self, tiny_dataset,
                                                     trained):
        model, extractor = trained
        scene = tiny_dataset.make_scene(height=256, width=256,
                                        n_pedestrians=0)
        registry = MetricsRegistry()
        det = SlidingWindowDetector(
            model, extractor, scales=[1.0], scorer="gemm",
            telemetry=registry,
        )
        det.detect(scene.image)
        snap = registry.snapshot()
        assert not any("partial_matmul" in p for p in snap.spans)
        assert "detect.scorer.plan_cache_misses" not in snap.counters

    def test_config_scorer_reaches_sliding_detector(self, trained_model):
        for scorer in SCORERS:
            det = MultiScalePedestrianDetector(
                trained_model, DetectorConfig(scorer=scorer)
            )
            assert det._detector.scorer == scorer

    def test_spec_roundtrip_preserves_scorer(self, trained_model):
        import pickle

        from repro.parallel.spec import DetectorSpec

        det = MultiScalePedestrianDetector(
            trained_model, DetectorConfig(scorer="gemm", stride=2)
        )
        spec = pickle.loads(DetectorSpec.from_detector(det).to_bytes())
        rebuilt = spec.build()
        assert rebuilt.config.scorer == "gemm"
        assert rebuilt._detector.scorer == "gemm"


class TestBackendParity:
    def test_process_backend_matches_thread_frame_for_frame(
        self, tiny_dataset, trained_model
    ):
        """detect_batch(backend="process") with the conv scorer must be
        indistinguishable from the thread backend, frame for frame."""
        config = DetectorConfig(scales=(1.0,), threshold=-0.2, stride=2)
        assert config.scorer == "conv"
        detector = MultiScalePedestrianDetector(trained_model, config)
        frames = [
            tiny_dataset.make_scene(
                height=192, width=192, n_pedestrians=1,
                pedestrian_heights=(128, 140), scene_index=i,
            ).image
            for i in range(3)
        ]
        threaded = detector.detect_batch(frames, workers=2,
                                         backend="thread")
        processed = detector.detect_batch(frames, workers=2,
                                          backend="process")
        assert len(threaded) == len(processed) == len(frames)
        for t, p in zip(threaded, processed):
            assert len(t.detections) == len(p.detections)
            for a, b in zip(t.detections, p.detections):
                assert (a.top, a.left, a.height, a.width, a.scale) == \
                    (b.top, b.left, b.height, b.width, b.scale)
                assert a.score == b.score
