"""Equivalence, caching and wiring tests for the partial-score scorer.

The conv scorer (:mod:`repro.detect.scoring`) must be a drop-in
replacement for the descriptor-matrix GEMM: same scores to float
round-off on every geometry the detector stack can produce — dense and
strided grids, signed/unsigned gradients, rescaled-model window
extents, degenerate one-window and empty grids — and identical
detections end-to-end through every execution backend.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.detect import (
    SCORERS,
    ScorerPlan,
    SlidingWindowDetector,
    anchors_to_boxes,
    classify_grid,
    classify_grid_windows,
    classify_grid_with_scaled_model,
    plan_for,
    score_blocks_cascade,
    score_blocks_conv,
    score_blocks_conv_fixed,
)
from repro.errors import ParameterError, ShapeError
from repro.hog import HogExtractor, HogFeatureGrid, HogParameters
from repro.svm import LinearSvmModel
from repro.svm.model_scaling import model_pyramid
from repro.telemetry import MetricsRegistry

#: Acceptance tolerance: conv and gemm regroup float additions, so the
#: scores agree to round-off, far inside 1e-9 absolute.
TOL = dict(rtol=0.0, atol=1e-9)


@pytest.fixture(scope="module")
def frame():
    return np.random.default_rng(17).random((256, 224))


@pytest.fixture(scope="module")
def grid(frame):
    return HogExtractor().extract(frame)


def _random_model(n_features, seed=5):
    rng = np.random.default_rng(seed)
    return LinearSvmModel(
        weights=rng.standard_normal(n_features), bias=float(rng.normal())
    )


def _grid_from_blocks(blocks):
    """A minimal grid carrying arbitrary blocks (params are unused by
    ``classify_grid_windows``)."""
    return HogFeatureGrid(
        cells=np.zeros((1, 1, 1)), blocks=blocks, params=HogParameters()
    )


class TestConvGemmEquivalence:
    @pytest.mark.parametrize("stride", [1, 2, 3])
    def test_classify_grid_across_strides(self, grid, trained_model, stride):
        gemm = classify_grid(grid, trained_model, stride=stride,
                             scorer="gemm")
        conv = classify_grid(grid, trained_model, stride=stride,
                             scorer="conv")
        assert gemm.shape == conv.shape
        np.testing.assert_allclose(conv, gemm, **TOL)

    def test_signed_gradients(self, frame):
        params = HogParameters(signed_gradients=True)
        signed_grid = HogExtractor(params).extract(frame)
        model = _random_model(params.descriptor_length)
        gemm = classify_grid(signed_grid, model, scorer="gemm")
        conv = classify_grid(signed_grid, model, scorer="conv")
        np.testing.assert_allclose(conv, gemm, **TOL)

    @pytest.mark.parametrize("scale", [0.8, 1.0, 1.25])
    def test_rescaled_model_window_extents(self, grid, trained_model, scale):
        params = grid.params
        (scaled,) = model_pyramid(trained_model, params, (scale,))
        gemm = classify_grid_with_scaled_model(grid, scaled, scorer="gemm")
        conv = classify_grid_with_scaled_model(grid, scaled, scorer="conv")
        assert gemm.shape == conv.shape
        np.testing.assert_allclose(conv, gemm, **TOL)

    @pytest.mark.parametrize("stride", [1, 2])
    def test_rescaled_extents_with_stride(self, grid, trained_model, stride):
        (scaled,) = model_pyramid(trained_model, grid.params, (1.3,))
        kw = dict(blocks_y=scaled.blocks_y, blocks_x=scaled.blocks_x,
                  stride=stride)
        gemm = classify_grid_windows(grid, scaled.model, scorer="gemm", **kw)
        conv = classify_grid_windows(grid, scaled.model, scorer="conv", **kw)
        np.testing.assert_allclose(conv, gemm, **TOL)

    def test_grid_barely_one_window(self, trained_model):
        params = HogParameters()
        image = np.random.default_rng(3).random(
            (params.window_height, params.window_width)
        )
        tight = HogExtractor(params).extract(image)
        assert tight.n_window_positions == (1, 1)
        gemm = classify_grid(tight, trained_model, scorer="gemm")
        conv = classify_grid(tight, trained_model, scorer="conv")
        assert gemm.shape == conv.shape == (1, 1)
        np.testing.assert_allclose(conv, gemm, **TOL)
        manual = trained_model.decision_function(
            tight.window_descriptor(0, 0)
        )[0]
        assert conv[0, 0] == pytest.approx(manual)

    def test_empty_grid(self, trained_model):
        small = HogExtractor().extract(np.zeros((64, 48)))
        for scorer in SCORERS:
            assert classify_grid(small, trained_model,
                                 scorer=scorer).size == 0

    def test_strided_conv_matches_dense_anchors_bitwise(self, grid,
                                                        trained_model):
        """Strided aggregation reads the same partial sums in the same
        order as the dense run, so shared anchors agree bitwise."""
        dense = classify_grid(grid, trained_model, stride=1, scorer="conv")
        coarse = classify_grid(grid, trained_model, stride=2, scorer="conv")
        np.testing.assert_array_equal(coarse, dense[::2, ::2])

    @given(
        grid_rows=st.integers(1, 6),
        grid_cols=st.integers(1, 6),
        blocks_y=st.integers(1, 6),
        blocks_x=st.integers(1, 6),
        block_dim=st.integers(1, 8),
        stride=st.integers(1, 3),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_random_geometry(self, grid_rows, grid_cols, blocks_y,
                                      blocks_x, block_dim, stride, seed):
        rng = np.random.default_rng(seed)
        blocks = rng.standard_normal((grid_rows, grid_cols, block_dim))
        model = LinearSvmModel(
            weights=rng.standard_normal(blocks_y * blocks_x * block_dim),
            bias=float(rng.normal()),
        )
        fake = _grid_from_blocks(blocks)
        kw = dict(blocks_y=blocks_y, blocks_x=blocks_x, stride=stride)
        gemm = classify_grid_windows(fake, model, scorer="gemm", **kw)
        conv = classify_grid_windows(fake, model, scorer="conv", **kw)
        assert gemm.shape == conv.shape
        np.testing.assert_allclose(conv, gemm, **TOL)


class TestScorerPlan:
    def test_plan_shape_and_layout(self, trained_model):
        plan = ScorerPlan.build(trained_model, 15, 7)
        assert plan.weights_rows.shape == (105, 36)
        assert plan.block_dim == 36
        assert plan.n_positions == 105
        # Row i*bx+j is the window-relative (i, j) weight sub-vector.
        w = trained_model.weights.reshape(105, 36)
        np.testing.assert_array_equal(plan.weights_rows[17], w[17])

    def test_rejects_indivisible_model(self):
        with pytest.raises(ParameterError, match="divisible"):
            ScorerPlan.build(_random_model(100), 3, 7)

    def test_rejects_bad_extent(self, trained_model):
        with pytest.raises(ParameterError, match="extent"):
            ScorerPlan.build(trained_model, 0, 7)

    def test_cache_hits_and_misses_counted(self, grid, trained_model):
        model = _random_model(grid.params.descriptor_length, seed=11)
        registry = MetricsRegistry()
        for _ in range(3):
            classify_grid(grid, model, scorer="conv", telemetry=registry)
        snap = registry.snapshot()
        assert snap.counters["detect.scorer.plan_cache_misses"] == 1
        assert snap.counters["detect.scorer.plan_cache_hits"] == 2

    def test_cache_is_per_geometry(self, grid, trained_model):
        model = _random_model(grid.params.descriptor_length, seed=12)
        registry = MetricsRegistry()
        # Same model, two geometries sharing one divisor structure:
        # 3780 = 15*7*36 = 105*36; use (15, 7) and (105, 1).
        plan_a = plan_for(model, 15, 7, telemetry=registry)
        plan_b = plan_for(model, 105, 1, telemetry=registry)
        assert plan_a is not plan_b
        assert plan_for(model, 15, 7, telemetry=registry) is plan_a
        snap = registry.snapshot()
        assert snap.counters["detect.scorer.plan_cache_misses"] == 2
        assert snap.counters["detect.scorer.plan_cache_hits"] == 1

    def test_plan_is_stride_independent(self, grid, trained_model):
        model = _random_model(grid.params.descriptor_length, seed=13)
        registry = MetricsRegistry()
        for stride in (1, 2, 3):
            classify_grid(grid, model, stride=stride, scorer="conv",
                          telemetry=registry)
        assert registry.snapshot().counters[
            "detect.scorer.plan_cache_misses"] == 1

    def test_score_blocks_conv_rejects_dim_mismatch(self, trained_model):
        plan = ScorerPlan.build(trained_model, 15, 7)
        with pytest.raises(ShapeError, match="block_dim"):
            score_blocks_conv(np.zeros((20, 20, 9)), plan)


class TestScorerWiring:
    def test_rejects_unknown_scorer(self, grid, trained_model):
        with pytest.raises(ParameterError, match="scorer"):
            classify_grid(grid, trained_model, scorer="simd")
        with pytest.raises(ParameterError, match="scorer"):
            SlidingWindowDetector(trained_model, HogExtractor(),
                                  scorer="nope")
        with pytest.raises(ParameterError, match="scorer"):
            DetectorConfig(scorer="nope")

    def test_detector_scorers_agree_end_to_end(self, tiny_dataset, trained):
        model, extractor = trained
        scene = tiny_dataset.make_scene(
            height=288, width=320, n_pedestrians=1,
            pedestrian_heights=(128, 150), scene_index=1,
        )
        results = {}
        for scorer in SCORERS:
            det = SlidingWindowDetector(
                model, extractor, scales=[1.0, 1.2], threshold=-0.2,
                scorer=scorer,
            )
            results[scorer] = det.detect(scene.image)
        gemm = results["gemm"]
        for scorer in ("conv", "conv-cascade"):
            other = results[scorer]
            assert len(gemm.detections) == len(other.detections), scorer
            assert gemm.n_windows_evaluated == other.n_windows_evaluated
            for a, b in zip(gemm.detections, other.detections):
                assert (a.top, a.left, a.height, a.width, a.scale) == \
                    (b.top, b.left, b.height, b.width, b.scale)
                assert a.score == pytest.approx(b.score, abs=1e-9)
        # The cascade is bitwise-equal to conv where a detection
        # survived, not merely close.
        for a, b in zip(results["conv"].detections,
                        results["conv-cascade"].detections):
            assert a.score == b.score

    def test_partial_matmul_span_recorded_per_scale(self, tiny_dataset,
                                                    trained):
        from repro.telemetry import stage_report

        model, extractor = trained
        scene = tiny_dataset.make_scene(height=256, width=256,
                                        n_pedestrians=0)
        registry = MetricsRegistry()
        det = SlidingWindowDetector(
            model, extractor, scales=[1.0, 1.3], telemetry=registry
        )
        det.detect(scene.image)
        snap = registry.snapshot()
        leaves = {p.rsplit("/", 1)[-1] for p in snap.spans}
        assert "detect.scale[1.00].partial_matmul" in leaves
        assert "detect.scale[1.30].partial_matmul" in leaves
        stages = stage_report(snap)["stages"]
        assert stages["partial_matmul"]["count"] == 2
        assert stages["partial_matmul"]["total_ms"] <= \
            stages["classify"]["total_ms"]

    def test_gemm_detector_records_no_partial_matmul(self, tiny_dataset,
                                                     trained):
        model, extractor = trained
        scene = tiny_dataset.make_scene(height=256, width=256,
                                        n_pedestrians=0)
        registry = MetricsRegistry()
        det = SlidingWindowDetector(
            model, extractor, scales=[1.0], scorer="gemm",
            telemetry=registry,
        )
        det.detect(scene.image)
        snap = registry.snapshot()
        assert not any("partial_matmul" in p for p in snap.spans)
        assert "detect.scorer.plan_cache_misses" not in snap.counters

    def test_config_scorer_reaches_sliding_detector(self, trained_model):
        for scorer in SCORERS:
            det = MultiScalePedestrianDetector(
                trained_model, DetectorConfig(scorer=scorer)
            )
            assert det._detector.scorer == scorer

    def test_spec_roundtrip_preserves_scorer(self, trained_model):
        import pickle

        from repro.parallel.spec import DetectorSpec

        det = MultiScalePedestrianDetector(
            trained_model, DetectorConfig(scorer="gemm", stride=2)
        )
        spec = pickle.loads(DetectorSpec.from_detector(det).to_bytes())
        rebuilt = spec.build()
        assert rebuilt.config.scorer == "gemm"
        assert rebuilt._detector.scorer == "gemm"


class TestCascadeExactness:
    """The early-reject cascade must be *exactly* interchangeable with
    the dense scorers: bitwise-equal scores for every anchor it let
    finish, upper bounds at or below threshold for every anchor it
    rejected, and therefore the identical detection set as the gemm
    oracle at the shared threshold."""

    def _assert_cascade_matches(self, blocks, model, blocks_y, blocks_x,
                                stride, threshold, cascade_k):
        fake = _grid_from_blocks(blocks)
        kw = dict(blocks_y=blocks_y, blocks_x=blocks_x, stride=stride)
        gemm = classify_grid_windows(fake, model, scorer="gemm", **kw)
        plan = plan_for(model, blocks_y, blocks_x)
        conv = score_blocks_conv(blocks, plan, stride=stride)
        stats = {}
        casc = score_blocks_cascade(
            blocks, plan, threshold, stride=stride, cascade_k=cascade_k,
            stats_out=stats,
        )
        assert casc.shape == gemm.shape
        survived = ~stats["rejected"]
        # Survivors: bitwise equal to conv, round-off equal to gemm.
        np.testing.assert_array_equal(casc[survived], conv[survived])
        np.testing.assert_allclose(casc[survived], gemm[survived], **TOL)
        # Rejected anchors: an upper bound (to round-off — the stored
        # partial sum is accumulated in cascade order), at or below
        # threshold by construction.
        rejected = stats["rejected"]
        assert np.all(casc[rejected] >= conv[rejected] - 1e-9)
        assert np.all(casc[rejected] <= threshold)
        # Identical detection set against the conv reference (exact).
        np.testing.assert_array_equal(casc > threshold, conv > threshold)
        # Against the gemm oracle the mask can only differ where the
        # true score sits within summation-order round-off of the
        # threshold (conv and gemm add in different orders).
        mask_diff = (casc > threshold) != (gemm > threshold)
        assert np.all(np.abs(gemm[mask_diff] - threshold) <= 1e-9)
        return stats, casc, conv

    @given(
        grid_rows=st.integers(1, 8),
        grid_cols=st.integers(1, 8),
        blocks_y=st.integers(1, 6),
        blocks_x=st.integers(1, 6),
        block_dim=st.integers(1, 8),
        stride=st.integers(1, 3),
        cascade_k=st.integers(1, 40),
        threshold_kind=st.sampled_from(
            ("reject_nothing", "reject_everything", "quantile")
        ),
        quantile=st.floats(0.05, 0.95),
        nonneg=st.booleans(),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_cascade_equals_gemm(self, grid_rows, grid_cols,
                                          blocks_y, blocks_x, block_dim,
                                          stride, cascade_k, threshold_kind,
                                          quantile, nonneg, seed):
        rng = np.random.default_rng(seed)
        blocks = rng.standard_normal((grid_rows, grid_cols, block_dim))
        if nonneg:
            blocks = np.abs(blocks)  # L2-hys-like non-negative features
        model = LinearSvmModel(
            weights=rng.standard_normal(blocks_y * blocks_x * block_dim),
            bias=float(rng.normal()),
        )
        fake = _grid_from_blocks(blocks)
        gemm = classify_grid_windows(
            fake, model, blocks_y=blocks_y, blocks_x=blocks_x,
            stride=stride, scorer="gemm",
        )
        if threshold_kind == "reject_nothing":
            threshold = -1e12
        elif threshold_kind == "reject_everything":
            threshold = 1e12
        elif gemm.size:
            threshold = float(np.quantile(gemm, quantile))
        else:
            threshold = 0.0
        stats, casc, conv = self._assert_cascade_matches(
            blocks, model, blocks_y, blocks_x, stride, threshold, cascade_k
        )
        if threshold_kind == "reject_nothing" and casc.size:
            assert not stats["rejected"].any()
            np.testing.assert_array_equal(casc, conv)

    @pytest.mark.parametrize("stride", [1, 2, 3])
    def test_cascade_on_real_hog_grid(self, grid, trained_model, stride):
        blocks = grid.blocks
        thresholds = (-1e12, 0.0, 0.5, 1e12)
        for threshold in thresholds:
            self._assert_cascade_matches(
                blocks, trained_model, 15, 7, stride, threshold, 16
            )

    def test_cascade_boxes_identical_to_gemm(self, grid, trained_model):
        threshold = 0.0
        gemm = classify_grid(grid, trained_model, scorer="gemm")
        casc = classify_grid(grid, trained_model, scorer="conv-cascade",
                             threshold=threshold)
        conv = classify_grid(grid, trained_model, scorer="conv")
        gemm_boxes = anchors_to_boxes(gemm, grid, threshold)
        casc_boxes = anchors_to_boxes(casc, grid, threshold)
        conv_boxes = anchors_to_boxes(conv, grid, threshold)
        assert [
            (b.top, b.left, b.height, b.width, b.score) for b in casc_boxes
        ] == [
            (b.top, b.left, b.height, b.width, b.score) for b in conv_boxes
        ]
        assert len(casc_boxes) == len(gemm_boxes)
        for a, b in zip(gemm_boxes, casc_boxes):
            assert (a.top, a.left) == (b.top, b.left)
            assert a.score == pytest.approx(b.score, abs=1e-9)

    def test_nan_blocks_propagate_not_reject(self, trained_model):
        plan = plan_for(trained_model, 15, 7)
        rng = np.random.default_rng(9)
        blocks = rng.random((20, 12, 36))
        blocks[4, 5, :] = np.nan
        conv = score_blocks_conv(blocks, plan)
        stats = {}
        casc = score_blocks_cascade(blocks, plan, 0.0, stats_out=stats)
        # A poisoned bound must never bound anything out: every anchor
        # whose window covers the NaN block stays alive, falls through
        # to dense accumulation, and reproduces the NaNs exactly.
        poisoned = np.isnan(conv)
        assert poisoned.any()
        assert not stats["rejected"][poisoned].any()
        np.testing.assert_array_equal(np.isnan(casc), np.isnan(conv))
        np.testing.assert_array_equal(casc[~poisoned & ~stats["rejected"]],
                                      conv[~poisoned & ~stats["rejected"]])

    def test_rejects_bad_cascade_k(self, grid, trained_model):
        plan = plan_for(trained_model, 15, 7)
        with pytest.raises(ParameterError, match="cascade_k"):
            score_blocks_cascade(grid.blocks, plan, 0.0, cascade_k=0)
        with pytest.raises(ParameterError, match="cascade_k"):
            DetectorConfig(cascade_k=0)

    def test_cascade_telemetry_counters(self, grid, trained_model):
        registry = MetricsRegistry()
        plan = plan_for(trained_model, 15, 7)
        # A threshold far above any reachable upper bound forces full
        # stage-0 rejection.
        hi = float(score_blocks_conv(grid.blocks, plan).max()) + 1e6
        score_blocks_cascade(grid.blocks, plan, hi, telemetry=registry)
        counters = registry.snapshot().counters
        assert counters["detect.cascade.anchors_in"] > 0
        assert counters["detect.cascade.anchors_survived"] == 0
        assert counters["detect.cascade.stage[0].anchors_rejected"] == \
            counters["detect.cascade.anchors_in"]
        # Full stage-0 rejection happens before the partial matmul, so
        # no block position is ever accumulated.
        assert counters["detect.cascade.positions_accumulated"] == 0

    def test_cascade_aggregate_span_recorded_per_scale(self, tiny_dataset,
                                                       trained):
        from repro.telemetry import stage_report

        model, extractor = trained
        scene = tiny_dataset.make_scene(height=256, width=256,
                                        n_pedestrians=0)
        registry = MetricsRegistry()
        det = SlidingWindowDetector(
            model, extractor, scales=[1.0, 1.3], scorer="conv-cascade",
            telemetry=registry,
        )
        det.detect(scene.image)
        snap = registry.snapshot()
        leaves = {p.rsplit("/", 1)[-1] for p in snap.spans}
        assert "detect.scale[1.00].cascade_aggregate" in leaves
        assert "detect.scale[1.30].cascade_aggregate" in leaves
        assert stage_report(snap)["stages"]["cascade_aggregate"]["count"] \
            == 2


class TestFixedPointScorer:
    def test_exactly_scores_the_quantized_problem(self, trained_model):
        """The int16 path equals float64 scoring of the quantized
        features with the quantized model *exactly* — the documented
        contract that reduces its total error to input quantization."""
        from repro.hardware.fixed_point import (
            FEATURE_FORMAT, WEIGHT_FORMAT, quantize,
        )

        rng = np.random.default_rng(23)
        blocks = rng.uniform(0.0, 1.0, (20, 12, 36))
        plan = plan_for(trained_model, 15, 7)
        fixed = score_blocks_conv_fixed(blocks, plan)
        q_model = LinearSvmModel(
            weights=quantize(trained_model.weights, WEIGHT_FORMAT),
            bias=float(quantize(trained_model.bias, WEIGHT_FORMAT)),
        )
        q_plan = ScorerPlan.build(q_model, 15, 7)
        reference = score_blocks_conv(
            quantize(blocks, FEATURE_FORMAT), q_plan
        )
        np.testing.assert_array_equal(fixed, reference)

    def test_error_bounded_by_quantization(self, trained_model):
        from repro.hardware.fixed_point import (
            FEATURE_FORMAT, WEIGHT_FORMAT, quantization_error,
        )

        rng = np.random.default_rng(29)
        blocks = rng.uniform(0.0, 1.0, (20, 12, 36))
        plan = plan_for(trained_model, 15, 7)
        fixed = score_blocks_conv_fixed(blocks, plan)
        exact = score_blocks_conv(blocks, plan)
        feat_err = quantization_error(blocks, FEATURE_FORMAT)
        w_err = quantization_error(trained_model.weights, WEIGHT_FORMAT)
        assert feat_err["saturation_rate"] == 0.0
        assert w_err["saturation_rate"] == 0.0
        # First-order triangle bound on the per-window dot product.
        n_terms = plan.n_positions * plan.block_dim
        w_scale = float(np.max(np.abs(trained_model.weights)))
        bound = n_terms * (
            feat_err["max_abs_error"] * (w_scale + w_err["max_abs_error"])
            + w_err["max_abs_error"] * 1.0
        ) + w_err["max_abs_error"]
        assert float(np.max(np.abs(fixed - exact))) <= bound

    @pytest.mark.parametrize("stride", [1, 2])
    def test_strided_matches_dense_anchors(self, trained_model, stride):
        rng = np.random.default_rng(31)
        blocks = rng.uniform(0.0, 1.0, (22, 13, 36))
        plan = plan_for(trained_model, 15, 7)
        dense = score_blocks_conv_fixed(blocks, plan, stride=1)
        coarse = score_blocks_conv_fixed(blocks, plan, stride=stride)
        np.testing.assert_array_equal(coarse,
                                      dense[::stride, ::stride])

    def test_rejects_inexact_accumulator(self, trained_model):
        from repro.errors import HardwareConfigError
        from repro.hardware.fixed_point import FixedPointFormat

        plan = plan_for(trained_model, 15, 7)
        blocks = np.zeros((15, 7, 36))
        with pytest.raises(HardwareConfigError, match="fractional"):
            score_blocks_conv_fixed(
                blocks, plan,
                accumulator_format=FixedPointFormat(total_bits=32,
                                                    frac_bits=20),
            )


class TestEmptyGridDtype:
    def test_empty_returns_follow_scorer_dtype(self, trained_model):
        """Regression: empty grids used to return float64
        unconditionally, drifting from the dtype a fitting grid would
        have produced."""
        plan = plan_for(trained_model, 15, 7)
        small32 = np.zeros((4, 4, 36), dtype=np.float32)
        small64 = np.zeros((4, 4, 36), dtype=np.float64)
        fitting32 = np.zeros((15, 7, 36), dtype=np.float32)
        # Empty and non-empty agree (weights are float64, so float32
        # grids still score in float64 — result_type decides).
        assert score_blocks_conv(small32, plan).dtype == \
            score_blocks_conv(fitting32, plan).dtype
        assert score_blocks_conv(small64, plan).dtype == np.float64
        assert score_blocks_cascade(small32, plan, 0.0).dtype == \
            score_blocks_conv(small32, plan).dtype
        assert score_blocks_conv_fixed(small64, plan).dtype == np.float64
        small_grid = _grid_from_blocks(small32)
        out = classify_grid_windows(small_grid, trained_model, 15, 7)
        assert out.size == 0
        assert out.dtype == score_blocks_conv(fitting32, plan).dtype

    def test_cascade_empty_grid_stats(self, trained_model):
        plan = plan_for(trained_model, 15, 7)
        stats = {}
        out = score_blocks_cascade(
            np.zeros((4, 4, 36)), plan, 0.0, stats_out=stats
        )
        assert out.size == 0
        assert stats["anchors_in"] == 0
        assert stats["rejected"].size == 0


class TestPlanCacheThreadSafety:
    def test_concurrent_plan_for_builds_once_and_counts_exactly(
        self, trained_model
    ):
        """The check-then-set is under a lock: N racing threads on a
        cold model must yield one build and N-1 hits, with the two
        counters summing to the number of calls."""
        import threading

        model = _random_model(15 * 7 * 36, seed=41)
        registry = MetricsRegistry()
        n_threads = 8
        plans = [None] * n_threads
        barrier = threading.Barrier(n_threads)

        def hit(i):
            barrier.wait()
            plans[i] = plan_for(model, 15, 7, telemetry=registry)

        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(p is plans[0] for p in plans)
        counters = registry.snapshot().counters
        assert counters["detect.scorer.plan_cache_misses"] == 1
        assert counters["detect.scorer.plan_cache_hits"] == n_threads - 1


class TestBackendParity:
    def test_process_backend_matches_thread_frame_for_frame(
        self, tiny_dataset, trained_model
    ):
        """detect_batch(backend="process") with the conv scorer must be
        indistinguishable from the thread backend, frame for frame."""
        config = DetectorConfig(scales=(1.0,), threshold=-0.2, stride=2)
        assert config.scorer == "conv"
        detector = MultiScalePedestrianDetector(trained_model, config)
        frames = [
            tiny_dataset.make_scene(
                height=192, width=192, n_pedestrians=1,
                pedestrian_heights=(128, 140), scene_index=i,
            ).image
            for i in range(3)
        ]
        threaded = detector.detect_batch(frames, workers=2,
                                         backend="thread")
        processed = detector.detect_batch(frames, workers=2,
                                          backend="process")
        assert len(threaded) == len(processed) == len(frames)
        for t, p in zip(threaded, processed):
            assert len(t.detections) == len(p.detections)
            for a, b in zip(t.detections, p.detections):
                assert (a.top, a.left, a.height, a.width, a.scale) == \
                    (b.top, b.left, b.height, b.width, b.scale)
                assert a.score == b.score

    def test_cascade_backend_parity_frame_for_frame(
        self, tiny_dataset, trained_model
    ):
        """conv-cascade rides DetectorSpec into process workers and
        must match the thread backend detection for detection."""
        config = DetectorConfig(scales=(1.0,), threshold=-0.2, stride=2,
                                scorer="conv-cascade", cascade_k=12)
        detector = MultiScalePedestrianDetector(trained_model, config)
        frames = [
            tiny_dataset.make_scene(
                height=192, width=192, n_pedestrians=1,
                pedestrian_heights=(128, 140), scene_index=i,
            ).image
            for i in range(3)
        ]
        threaded = detector.detect_batch(frames, workers=2,
                                         backend="thread")
        processed = detector.detect_batch(frames, workers=2,
                                          backend="process")
        reference = [detector.detect(frame) for frame in frames]
        assert len(threaded) == len(processed) == len(frames)
        for t, p, r in zip(threaded, processed, reference):
            assert len(t.detections) == len(p.detections) \
                == len(r.detections)
            for a, b, c in zip(t.detections, p.detections, r.detections):
                assert (a.top, a.left, a.height, a.width, a.scale) == \
                    (b.top, b.left, b.height, b.width, b.scale) == \
                    (c.top, c.left, c.height, c.width, c.scale)
                assert a.score == b.score == c.score

    def test_cascade_spec_roundtrip_preserves_cascade_k(self,
                                                        trained_model):
        import pickle

        from repro.parallel.spec import DetectorSpec

        det = MultiScalePedestrianDetector(
            trained_model,
            DetectorConfig(scorer="conv-cascade", cascade_k=24),
        )
        spec = pickle.loads(DetectorSpec.from_detector(det).to_bytes())
        rebuilt = spec.build()
        assert rebuilt.config.scorer == "conv-cascade"
        assert rebuilt._detector.cascade_k == 24
        other = DetectorSpec.from_detector(
            MultiScalePedestrianDetector(
                trained_model,
                DetectorConfig(scorer="conv-cascade", cascade_k=8),
            )
        )
        assert DetectorSpec.from_detector(det).cache_key() != \
            other.cache_key()
