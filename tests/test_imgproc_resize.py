"""Unit tests for repro.imgproc.resize."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.imgproc import Interpolation, rescale, resize, resize_grid


@pytest.fixture(params=[Interpolation.NEAREST, Interpolation.BILINEAR,
                        Interpolation.BICUBIC])
def method(request):
    return request.param


class TestResizeBasics:
    def test_identity_shape_is_noop(self, method):
        img = np.random.default_rng(0).random((16, 24))
        np.testing.assert_array_equal(resize(img, (16, 24), method), img)

    def test_output_shape(self, method):
        out = resize(np.zeros((10, 20)), (7, 13), method)
        assert out.shape == (7, 13)

    def test_constant_image_stays_constant(self, method):
        img = np.full((12, 12), 0.37)
        out = resize(img, (30, 5), method)
        np.testing.assert_allclose(out, 0.37, atol=1e-12)

    def test_color_image_keeps_channels(self, method):
        out = resize(np.zeros((8, 8, 3)), (4, 4), method)
        assert out.shape == (4, 4, 3)

    def test_string_method_alias(self):
        img = np.random.default_rng(1).random((8, 8))
        np.testing.assert_array_equal(
            resize(img, (4, 4), "bilinear"),
            resize(img, (4, 4), Interpolation.BILINEAR),
        )

    def test_rejects_zero_output(self):
        with pytest.raises(ParameterError, match="positive"):
            resize(np.zeros((4, 4)), (0, 4))


class TestBilinearExactness:
    def test_2x_downsample_averages_pairs(self):
        # With half-pixel centers, exact 2:1 bilinear lands midway
        # between two source samples.
        img = np.arange(8, dtype=np.float64).reshape(1, 8)
        img = np.repeat(img, 2, axis=0)
        out = resize(img, (1, 4), Interpolation.BILINEAR)
        np.testing.assert_allclose(out[0], [0.5, 2.5, 4.5, 6.5])

    def test_linear_ramp_preserved_by_upsampling(self):
        ramp = np.linspace(0.0, 1.0, 32).reshape(1, 32).repeat(4, axis=0)
        out = resize(ramp, (4, 64), Interpolation.BILINEAR)
        diffs = np.diff(out[0, 2:-2])
        assert np.all(diffs >= 0)

    def test_range_never_exceeded(self):
        rng = np.random.default_rng(3)
        img = rng.random((16, 16))
        out = resize(img, (40, 40), Interpolation.BILINEAR)
        assert out.min() >= img.min() - 1e-12
        assert out.max() <= img.max() + 1e-12


class TestBicubic:
    def test_smooth_signal_closer_than_nearest(self):
        x = np.linspace(0, np.pi * 2, 64)
        img = np.tile(np.sin(x), (8, 1)) * 0.5 + 0.5
        target = np.tile(np.sin(np.linspace(0, np.pi * 2, 64)), (8, 1)) * 0.5 + 0.5
        small_b = resize(img, (8, 32), Interpolation.BICUBIC)
        back_b = resize(small_b, (8, 64), Interpolation.BICUBIC)
        small_n = resize(img, (8, 32), Interpolation.NEAREST)
        back_n = resize(small_n, (8, 64), Interpolation.NEAREST)
        err_b = np.abs(back_b - target).mean()
        err_n = np.abs(back_n - target).mean()
        assert err_b < err_n

    def test_interpolates_exactly_at_sample_positions(self):
        # Upsampling by an odd integer factor keeps original samples at
        # aligned output positions for the symmetric Catmull-Rom kernel.
        img = np.random.default_rng(5).random((1, 8))
        out = resize(np.repeat(img, 4, axis=0), (4, 24), Interpolation.BICUBIC)
        np.testing.assert_allclose(out[0, 1::3][2:-2], img[0][2:-2], atol=1e-9)


class TestRescale:
    def test_scale_two_doubles_dims(self):
        assert rescale(np.zeros((5, 7)), 2.0).shape == (10, 14)

    def test_scale_below_one_shrinks(self):
        assert rescale(np.zeros((10, 10)), 0.5).shape == (5, 5)

    def test_minimum_one_pixel(self):
        assert rescale(np.zeros((2, 2)), 0.01).shape == (1, 1)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ParameterError, match="positive"):
            rescale(np.zeros((4, 4)), 0.0)


class TestResizeGrid:
    def test_arbitrary_channel_depth(self):
        grid = np.random.default_rng(0).random((6, 8, 36))
        out = resize_grid(grid, (3, 4))
        assert out.shape == (3, 4, 36)

    def test_matches_resize_per_channel(self):
        rng = np.random.default_rng(1)
        grid = rng.random((9, 9, 5))
        out = resize_grid(grid, (5, 6))
        for c in range(5):
            np.testing.assert_allclose(
                out[..., c], resize(grid[..., c], (5, 6)), atol=1e-12
            )

    def test_rejects_empty_grid(self):
        with pytest.raises(ParameterError):
            resize_grid(np.zeros((0, 4, 9)), (2, 2))
