"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.detect import Detection, box_iou, non_maximum_suppression
from repro.eval import roc_curve
from repro.hardware import FixedPointFormat, quantize
from repro.hardware.shift_add import csd_decompose, shift_add_value
from repro.hog import BlockNormalization, HogParameters, normalize_vector
from repro.hog.histogram import cell_histograms
from repro.imgproc.resize import Interpolation, resize_grid


# -- Strategies ---------------------------------------------------------------

@st.composite
def _formats(draw):
    total = draw(st.integers(2, 32))
    frac = draw(st.integers(0, min(total, 16)))
    signed = draw(st.booleans())
    return FixedPointFormat(total_bits=total, frac_bits=frac, signed=signed)


formats = _formats()

finite_arrays = hnp.arrays(
    np.float64,
    st.integers(1, 40),
    elements=st.floats(-100.0, 100.0, allow_nan=False),
)


def detections(draw):
    top = draw(st.floats(-50, 200))
    left = draw(st.floats(-50, 200))
    h = draw(st.floats(1, 100))
    w = draw(st.floats(1, 100))
    score = draw(st.floats(-5, 5, allow_nan=False))
    return Detection(top=top, left=left, height=h, width=w, score=score,
                     scale=1.0)


detection_st = st.composite(detections)()


# -- Fixed point --------------------------------------------------------------

class TestQuantizeProperties:
    @given(fmt=formats, x=finite_arrays)
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, fmt, x):
        once = quantize(x, fmt)
        np.testing.assert_array_equal(quantize(once, fmt), once)

    @given(fmt=formats, x=finite_arrays)
    @settings(max_examples=100, deadline=None)
    def test_within_representable_range(self, fmt, x):
        q = quantize(x, fmt)
        assert q.max() <= fmt.max_value + 1e-12
        assert q.min() >= fmt.min_value - 1e-12

    @given(fmt=formats,
           a=st.floats(-50, 50, allow_nan=False),
           b=st.floats(-50, 50, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_monotone(self, fmt, a, b):
        lo, hi = min(a, b), max(a, b)
        assert float(quantize(lo, fmt)) <= float(quantize(hi, fmt))

    @given(fmt=formats, x=finite_arrays)
    @settings(max_examples=100, deadline=None)
    def test_error_bounded_in_range(self, fmt, x):
        clipped = np.clip(x, fmt.min_value, fmt.max_value)
        err = np.abs(quantize(clipped, fmt) - clipped)
        assert err.max() <= fmt.resolution / 2.0 + 1e-12


class TestCsdProperties:
    @given(value=st.floats(-2.0, 2.0, allow_nan=False),
           terms=st.integers(1, 6))
    @settings(max_examples=150, deadline=None)
    def test_error_bounded_by_smallest_term(self, value, terms):
        decomposed = csd_decompose(value, max_terms=terms, max_shift=8)
        approx = shift_add_value(decomposed)
        # Greedy CSD halves the residual each term; with enough terms the
        # error is at most half the floor term, otherwise it shrinks
        # geometrically from |value|.
        bound = max(2.0**-8, abs(value) * 0.5**terms) + 1e-12
        assert abs(approx - value) <= bound

    @given(value=st.floats(-2.0, 2.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_term_count_respected(self, value):
        terms = csd_decompose(value, max_terms=3)
        assert len(terms) <= 3


# -- HOG ----------------------------------------------------------------------

class TestNormalizationProperties:
    @given(
        v=hnp.arrays(np.float64, 36, elements=st.floats(0.0, 10.0)),
        gain=st.floats(0.01, 100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_gain_invariance(self, v, gain):
        # Invariance only holds while the vector norm dominates the
        # epsilon regularizer (true for any real gradient block).
        assume(np.linalg.norm(v) * min(gain, 1.0) > 1e-5)
        for method in (BlockNormalization.L2, BlockNormalization.L2_HYS):
            a = normalize_vector(v, method, epsilon=1e-9)
            b = normalize_vector(v * gain, method, epsilon=1e-9)
            np.testing.assert_allclose(a, b, atol=1e-5)

    @given(v=hnp.arrays(np.float64, 36, elements=st.floats(0.0, 10.0)))
    @settings(max_examples=100, deadline=None)
    def test_l2_norm_at_most_one(self, v):
        out = normalize_vector(v, BlockNormalization.L2)
        assert np.linalg.norm(out) <= 1.0 + 1e-9

    @given(v=hnp.arrays(np.float64, 36, elements=st.floats(0.0, 10.0)))
    @settings(max_examples=100, deadline=None)
    def test_l2_hys_components_bounded(self, v):
        out = normalize_vector(v, BlockNormalization.L2_HYS)
        # After clipping at 0.2 and renormalizing, no component can
        # exceed 1; the common case keeps them near the clip level.
        assert np.abs(out).max() <= 1.0 + 1e-9


class TestHistogramProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        cells_h=st.integers(1, 4),
        cells_w=st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_energy_conservation_without_spatial_voting(
        self, seed, cells_h, cells_w
    ):
        rng = np.random.default_rng(seed)
        h, w = cells_h * 8, cells_w * 8
        mag = rng.random((h, w))
        ori = rng.random((h, w)) * np.pi * 0.999
        params = HogParameters(spatial_interpolation=False)
        hist = cell_histograms(mag, ori, params)
        assert hist.sum() == pytest.approx(mag.sum(), rel=1e-9)
        assert hist.min() >= 0.0

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_histogram_nonnegative_with_spatial_voting(self, seed):
        rng = np.random.default_rng(seed)
        mag = rng.random((24, 24))
        ori = rng.random((24, 24)) * np.pi * 0.999
        hist = cell_histograms(mag, ori, HogParameters())
        assert hist.min() >= -1e-12
        # Spatial voting only discards border mass, never creates it.
        assert hist.sum() <= mag.sum() + 1e-9


class TestResizeGridProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        out_h=st.integers(1, 12),
        out_w=st.integers(1, 12),
        method=st.sampled_from(list(Interpolation)),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_preserved(self, seed, out_h, out_w, method):
        rng = np.random.default_rng(seed)
        grid = rng.random((6, 7, 3))
        out = resize_grid(grid, (out_h, out_w), method)
        if method is Interpolation.BICUBIC:
            slack = 0.2  # cubic kernels legitimately overshoot
        else:
            slack = 1e-12
        assert out.min() >= grid.min() - slack
        assert out.max() <= grid.max() + slack

    @given(value=st.floats(-5, 5, allow_nan=False),
           method=st.sampled_from(list(Interpolation)))
    @settings(max_examples=30, deadline=None)
    def test_constant_grid_fixed_point(self, value, method):
        grid = np.full((5, 5, 2), value)
        out = resize_grid(grid, (3, 8), method)
        np.testing.assert_allclose(out, value, atol=1e-9)


# -- Detection ----------------------------------------------------------------

class TestIouProperties:
    @given(a=detection_st, b=detection_st)
    @settings(max_examples=150, deadline=None)
    def test_symmetric_and_bounded(self, a, b):
        iou = box_iou(a, b)
        assert 0.0 <= iou <= 1.0 + 1e-12
        assert iou == pytest.approx(box_iou(b, a))

    @given(a=detection_st)
    @settings(max_examples=50, deadline=None)
    def test_self_iou_is_one(self, a):
        assert box_iou(a, a) == pytest.approx(1.0)


class TestNmsProperties:
    @given(boxes=st.lists(detection_st, max_size=15),
           thr=st.floats(0.0, 1.0))
    @settings(max_examples=80, deadline=None)
    def test_invariants(self, boxes, thr):
        kept = non_maximum_suppression(boxes, iou_threshold=thr)
        # Output is a subset, sorted by score, mutually non-overlapping
        # beyond the threshold.
        assert len(kept) <= len(boxes)
        scores = [d.score for d in kept]
        assert scores == sorted(scores, reverse=True)
        for i, a in enumerate(kept):
            for b in kept[i + 1 :]:
                assert box_iou(a, b) <= thr + 1e-9

    @given(boxes=st.lists(detection_st, min_size=1, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_best_box_always_kept(self, boxes):
        kept = non_maximum_suppression(boxes, iou_threshold=0.5)
        best = max(boxes, key=lambda d: d.score)
        assert any(d.score == best.score for d in kept)


# -- Tracking -----------------------------------------------------------------

class TestTrackerProperties:
    @given(
        frames=st.lists(
            st.lists(detection_st, max_size=5), min_size=1, max_size=8
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_tracker_invariants(self, frames):
        from repro.das import IouTracker

        tracker = IouTracker()
        prev_count = 0
        for dets in frames:
            tracks = tracker.update(dets)
            # Track count can grow by at most the new detections and is
            # bounded below by matched survivors.
            assert len(tracks) <= prev_count + len(dets)
            # IDs are unique and stable.
            ids = [t.track_id for t in tracks]
            assert len(set(ids)) == len(ids)
            # No track exceeds its miss budget.
            assert all(t.missed <= tracker.max_missed for t in tracks)
            # Confirmed tracks are a subset of live tracks.
            confirmed = tracker.confirmed_tracks()
            assert all(t in tracks for t in confirmed)
            prev_count = len(tracks)

    @given(
        dets=st.lists(detection_st, min_size=1, max_size=6),
        n_repeats=st.integers(2, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_static_detections_keep_ids(self, dets, n_repeats):
        """Feeding identical, non-overlapping detections every frame
        never spawns duplicate tracks after the first frame."""
        from repro.das import IouTracker
        from repro.detect import non_maximum_suppression

        distinct = non_maximum_suppression(dets, iou_threshold=0.1)
        tracker = IouTracker()
        for _ in range(n_repeats):
            tracks = tracker.update(list(distinct))
        assert len(tracks) == len(distinct)
        assert all(t.age == n_repeats for t in tracks)


# -- ROC ----------------------------------------------------------------------

class TestRocProperties:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(4, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_curve_invariants(self, seed, n):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n)
        labels = rng.integers(0, 2, size=n)
        if labels.sum() in (0, n):
            labels[0] = 1 - labels[0]
        curve = roc_curve(scores, labels)
        assert 0.0 <= curve.auc <= 1.0
        assert 0.0 <= curve.eer <= 1.0
        assert np.all(np.diff(curve.false_positive_rate) >= 0)
        assert np.all(np.diff(curve.true_positive_rate) >= 0)
        assert curve.false_positive_rate[0] == 0.0
        assert curve.true_positive_rate[-1] == 1.0

    @given(seed=st.integers(0, 2**31 - 1), shift=st.floats(0.1, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_score_shift_invariance(self, seed, shift):
        """ROC depends only on score ordering."""
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=50)
        labels = rng.integers(0, 2, size=50)
        if labels.sum() in (0, 50):
            labels[0] = 1 - labels[0]
        a = roc_curve(scores, labels)
        b = roc_curve(scores * 2.0 + shift, labels)
        assert a.auc == pytest.approx(b.auc)
        assert a.eer == pytest.approx(b.eer)
