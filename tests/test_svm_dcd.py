"""Unit tests for the dual coordinate descent SVM solver."""

import numpy as np
import pytest

from repro.errors import ParameterError, TrainingError
from repro.svm import DualCoordinateDescent


def blobs(n=60, gap=2.0, seed=0, dim=2):
    """Two linearly separable Gaussian blobs."""
    rng = np.random.default_rng(seed)
    pos = rng.normal(gap, 0.5, size=(n, dim))
    neg = rng.normal(-gap, 0.5, size=(n, dim))
    x = np.vstack([pos, neg])
    y = np.concatenate([np.ones(n), -np.ones(n)])
    return x, y


class TestSeparableData:
    @pytest.mark.parametrize("loss", ["l1", "l2"])
    def test_perfect_classification(self, loss):
        x, y = blobs()
        result = DualCoordinateDescent(c=1.0, loss=loss).fit(x, y)
        pred = result.model.predict(x)
        assert np.mean(pred == y) == 1.0

    def test_converges(self):
        x, y = blobs()
        result = DualCoordinateDescent(tol=1e-4).fit(x, y)
        assert result.converged
        assert result.final_violation <= 1e-4

    def test_margin_touches_support_vectors(self):
        """On separable data with large C, support vectors sit near
        margin 1."""
        x, y = blobs(gap=1.5)
        result = DualCoordinateDescent(c=100.0, tol=1e-6, max_iter=5000).fit(x, y)
        margins = y * result.model.decision_function(x)
        assert margins.min() == pytest.approx(1.0, abs=0.05)


class TestOptimizationProperties:
    def test_dual_objective_negative_on_fit(self):
        x, y = blobs()
        result = DualCoordinateDescent().fit(x, y)
        # At the optimum, dual objective 0.5||w||^2 - sum(a) <= 0.
        assert result.dual_objective <= 1e-9

    def test_smaller_c_means_smaller_weights(self):
        x, y = blobs(gap=0.8, seed=3)
        w_small = DualCoordinateDescent(c=0.01).fit(x, y).model.weights
        w_large = DualCoordinateDescent(c=10.0).fit(x, y).model.weights
        assert np.linalg.norm(w_small) < np.linalg.norm(w_large)

    def test_shrinking_matches_no_shrinking(self):
        x, y = blobs(gap=1.0, seed=5)
        a = DualCoordinateDescent(shrinking=True, tol=1e-5, seed=2).fit(x, y)
        b = DualCoordinateDescent(shrinking=False, tol=1e-5, seed=2).fit(x, y)
        np.testing.assert_allclose(
            a.model.weights, b.model.weights, atol=5e-2
        )

    def test_deterministic_given_seed(self):
        x, y = blobs(seed=7)
        a = DualCoordinateDescent(seed=3).fit(x, y)
        b = DualCoordinateDescent(seed=3).fit(x, y)
        np.testing.assert_array_equal(a.model.weights, b.model.weights)

    def test_bias_disabled(self):
        x, y = blobs()
        result = DualCoordinateDescent(bias_scale=0.0).fit(x, y)
        assert result.model.bias == 0.0

    def test_bias_learns_offset(self):
        """Data shifted away from the origin needs the bias term."""
        x, y = blobs(gap=1.0, seed=9)
        x = x + 5.0  # both blobs on one side of the origin
        result = DualCoordinateDescent(c=10.0, bias_scale=1.0).fit(x, y)
        assert np.mean(result.model.predict(x) == y) > 0.95

    def test_noisy_labels_still_mostly_correct(self):
        x, y = blobs(gap=1.2, seed=11)
        rng = np.random.default_rng(0)
        flip = rng.random(y.size) < 0.05
        y_noisy = np.where(flip, -y, y)
        result = DualCoordinateDescent(c=0.1).fit(x, y_noisy)
        assert np.mean(result.model.predict(x) == y) > 0.9


class TestValidation:
    def test_rejects_bad_c(self):
        with pytest.raises(ParameterError, match="C"):
            DualCoordinateDescent(c=0.0)

    def test_rejects_bad_loss(self):
        with pytest.raises(ParameterError, match="loss"):
            DualCoordinateDescent(loss="l3")

    def test_rejects_empty_data(self):
        with pytest.raises(TrainingError, match="non-empty"):
            DualCoordinateDescent().fit(np.empty((0, 2)), np.empty(0))

    def test_rejects_label_mismatch(self):
        with pytest.raises(TrainingError, match="labels"):
            DualCoordinateDescent().fit(np.ones((3, 2)), np.ones(2))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(TrainingError, match="-1 or \\+1"):
            DualCoordinateDescent().fit(np.ones((2, 2)), np.array([1.0, 2.0]))

    def test_rejects_single_class(self):
        with pytest.raises(TrainingError, match="single class"):
            DualCoordinateDescent().fit(np.ones((3, 2)), np.ones(3))
