"""Telemetry integration with the detection pipeline.

The load-bearing assertion: the window counters the instrumented
pipeline records must agree exactly with what :class:`DetectionResult`
reports — otherwise profiles describe a different pipeline than the one
that ran.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.detect import SlidingWindowDetector
from repro.errors import ParameterError
from repro.hardware.event_sim import PipelineConfig, simulate_frame
from repro.telemetry import MetricsRegistry, NULL_TELEMETRY, stage_report


@pytest.fixture(scope="module")
def frame():
    return np.random.default_rng(3).random((200, 264))


class TestSlidingWindowTelemetry:
    def test_window_counters_match_detection_result(self, trained, frame):
        model, extractor = trained
        registry = MetricsRegistry()
        det = SlidingWindowDetector(
            model, extractor, scales=[1.0, 1.2], telemetry=registry
        )
        try:
            result = det.detect(frame)
        finally:
            extractor.telemetry = NULL_TELEMETRY  # session-scoped fixture
        snap = registry.snapshot()

        assert snap.counters["detect.windows_scanned"] == \
            result.n_windows_evaluated
        per_scale_scanned = sum(
            v for k, v in snap.counters.items()
            if k.startswith("detect.scale[") and k.endswith("windows_scanned")
        )
        assert per_scale_scanned == result.n_windows_evaluated
        accepted = snap.counters["detect.windows_accepted"]
        rejected = snap.counters["detect.windows_rejected"]
        assert accepted + rejected == result.n_windows_evaluated
        assert snap.counters["detect.nms_candidates"] == accepted
        assert snap.counters["detect.nms_kept"] == len(result.detections)

    def test_all_stages_present_in_report(self, trained, frame):
        model, extractor = trained
        registry = MetricsRegistry()
        det = SlidingWindowDetector(
            model, extractor, scales=[1.0, 1.3], telemetry=registry
        )
        try:
            det.detect(frame)
        finally:
            extractor.telemetry = NULL_TELEMETRY
        report = stage_report(registry.snapshot())
        assert set(report["stages"]) == {
            "gradient", "histogram", "normalize", "scale", "classify", "nms"
        }

    def test_disabled_detector_records_nothing(self, trained, frame):
        model, _ = trained
        det = SlidingWindowDetector(model, scales=[1.0])
        assert det.telemetry is NULL_TELEMETRY
        det.detect(frame)
        assert det.telemetry.snapshot().spans == {}

    def test_empty_scales_rejected_early(self, trained):
        model, _ = trained
        with pytest.raises(ParameterError, match="non-empty"):
            SlidingWindowDetector(model, scales=[])


class TestPipelineTelemetry:
    def test_config_flag_creates_registry(self, trained_model):
        det = MultiScalePedestrianDetector(
            trained_model, DetectorConfig(telemetry=True)
        )
        assert det.telemetry is not None
        assert det.telemetry.enabled

    def test_default_has_no_registry_and_snapshot_raises(self, trained_model):
        det = MultiScalePedestrianDetector(trained_model)
        assert det.telemetry is None
        with pytest.raises(ParameterError, match="telemetry is disabled"):
            det.snapshot()

    def test_snapshot_counts_frames(self, trained_model, frame):
        det = MultiScalePedestrianDetector(
            trained_model,
            DetectorConfig(scales=(1.0, 1.2), telemetry=True),
        )
        det.detect(frame)
        det.detect(frame)
        snap = det.snapshot()
        assert snap.counters["detect.frames"] == 2
        assert snap.counters["hog.extractions"] == 2
        assert snap.spans["detect.frame"].count == 2

    def test_invalid_scales_rejected_in_init(self, trained_model):
        # A config that skipped DetectorConfig validation (e.g. a
        # subclass overriding __post_init__) must still fail fast.
        @dataclasses.dataclass(frozen=True)
        class LaxConfig(DetectorConfig):
            def __post_init__(self):
                pass

        with pytest.raises(ParameterError, match="non-empty"):
            MultiScalePedestrianDetector(trained_model, LaxConfig(scales=()))
        with pytest.raises(ParameterError, match="strictly positive"):
            MultiScalePedestrianDetector(
                trained_model, LaxConfig(scales=(1.0, -0.5))
            )


class TestEventSimTelemetry:
    def test_gauges_match_simulation_result(self):
        registry = MetricsRegistry()
        result = simulate_frame(PipelineConfig(), telemetry=registry)
        snap = registry.snapshot()
        assert snap.gauges["hw.sim.total_cycles"] == result.total_cycles
        assert snap.gauges["hw.sim.classifier_stall_cycles"] == \
            result.classifier_stall_cycles
        assert snap.spans["hw.simulate_frame"].count == 1

    def test_telemetry_does_not_change_result(self):
        plain = simulate_frame(PipelineConfig())
        instrumented = simulate_frame(
            PipelineConfig(), telemetry=MetricsRegistry()
        )
        assert plain == instrumented


class TestAcceleratorTelemetry:
    def test_process_frame_records_cycle_gauges(self, trained_model, frame):
        det = MultiScalePedestrianDetector(
            trained_model, DetectorConfig(scales=(1.0, 1.2), telemetry=True)
        )
        accel = det.to_accelerator()
        accel_result = accel.process_frame(frame)
        snap = det.snapshot()
        assert snap.gauges["hw.extractor_cycles"] == \
            accel_result.timing.extractor_cycles
        assert snap.gauges["hw.frames_per_second"] == pytest.approx(
            accel_result.timing.frames_per_second
        )
        assert snap.counters["accel.frames"] == 1
        accel_scanned = sum(
            v for k, v in snap.counters.items()
            if k.startswith("accel.scale[") and k.endswith("windows_scanned")
        )
        assert accel_scanned == accel_result.total_windows
