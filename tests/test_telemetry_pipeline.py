"""Telemetry integration with the detection pipeline.

The load-bearing assertion: the window counters the instrumented
pipeline records must agree exactly with what :class:`DetectionResult`
reports — otherwise profiles describe a different pipeline than the one
that ran.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.detect import SlidingWindowDetector
from repro.errors import ParameterError
from repro.hardware.event_sim import PipelineConfig, simulate_frame
from repro.telemetry import MetricsRegistry, NULL_TELEMETRY, stage_report


@pytest.fixture(scope="module")
def frame():
    return np.random.default_rng(3).random((200, 264))


class TestSlidingWindowTelemetry:
    def test_window_counters_match_detection_result(self, trained, frame):
        model, extractor = trained
        registry = MetricsRegistry()
        # A caller-owned extractor keeps its own wiring; instrument it
        # explicitly for the duration of the test.
        extractor.telemetry = registry
        det = SlidingWindowDetector(
            model, extractor, scales=[1.0, 1.2], telemetry=registry
        )
        try:
            result = det.detect(frame)
        finally:
            extractor.telemetry = NULL_TELEMETRY  # session-scoped fixture
        snap = registry.snapshot()

        assert snap.counters["detect.windows_scanned"] == \
            result.n_windows_evaluated
        per_scale_scanned = sum(
            v for k, v in snap.counters.items()
            if k.startswith("detect.scale[") and k.endswith("windows_scanned")
        )
        assert per_scale_scanned == result.n_windows_evaluated
        accepted = snap.counters["detect.windows_accepted"]
        rejected = snap.counters["detect.windows_rejected"]
        assert accepted + rejected == result.n_windows_evaluated
        assert snap.counters["detect.nms_candidates"] == accepted
        assert snap.counters["detect.nms_kept"] == len(result.detections)

    def test_all_stages_present_in_report(self, trained, frame):
        model, extractor = trained
        registry = MetricsRegistry()
        extractor.telemetry = registry
        det = SlidingWindowDetector(
            model, extractor, scales=[1.0, 1.3], telemetry=registry
        )
        try:
            det.detect(frame)
        finally:
            extractor.telemetry = NULL_TELEMETRY
        report = stage_report(registry.snapshot())
        assert set(report["stages"]) == {
            "gradient", "histogram", "normalize", "scale", "classify",
            "nms", "partial_matmul",
        }

    def test_disabled_detector_records_nothing(self, trained, frame):
        model, _ = trained
        det = SlidingWindowDetector(model, scales=[1.0])
        assert det.telemetry is NULL_TELEMETRY
        det.detect(frame)
        assert det.telemetry.snapshot().spans == {}

    def test_empty_scales_rejected_early(self, trained):
        model, _ = trained
        with pytest.raises(ParameterError, match="non-empty"):
            SlidingWindowDetector(model, scales=[])


class TestTelemetryOwnership:
    """Regression: detectors must not rewire caller-owned components.

    Two detectors sharing one HogExtractor used to cross-contaminate —
    constructing the second overwrote ``extractor.telemetry``, so the
    first detector's profile silently lost (or stole) the ``hog.*``
    sub-stages.
    """

    def test_shared_extractor_keeps_its_own_registry(self, trained, frame):
        from repro.hog import HogExtractor

        model, _ = trained
        shared = HogExtractor()
        original = shared.telemetry
        reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
        det_a = SlidingWindowDetector(
            model, shared, scales=[1.0], telemetry=reg_a
        )
        det_b = SlidingWindowDetector(
            model, shared, scales=[1.0], telemetry=reg_b
        )
        assert shared.telemetry is original  # untouched by either

        det_a.detect(frame)
        det_b.detect(frame)
        # Each detector's own counters stay in its own registry...
        assert reg_a.counter("detect.frames") == 1
        assert reg_b.counter("detect.frames") == 1
        # ...and neither stole the extractor's sub-stages.
        assert "hog.extractions" not in reg_a.snapshot().counters
        assert "hog.extractions" not in reg_b.snapshot().counters

    def test_explicitly_wired_shared_extractor_records_everywhere(
        self, trained, frame
    ):
        from repro.hog import HogExtractor

        model, _ = trained
        registry = MetricsRegistry()
        shared = HogExtractor(telemetry=registry)
        det = SlidingWindowDetector(
            model, shared, scales=[1.0], telemetry=registry
        )
        det.detect(frame)
        assert registry.counter("hog.extractions") == 1

    def test_owned_components_still_wired(self, trained_model, frame):
        registry = MetricsRegistry()
        det = SlidingWindowDetector(
            trained_model, scales=[1.0, 1.2], telemetry=registry
        )
        det.detect(frame)
        snap = registry.snapshot()
        assert snap.counters["hog.extractions"] == 1
        assert snap.counters["scale.grids"] >= 1  # scaler wired too
        assert any(p.endswith("hog.gradient") for p in snap.spans)


class TestTrainingTelemetry:
    def test_train_records_training_time_extraction(self, tiny_dataset):
        det = MultiScalePedestrianDetector.train(
            tiny_dataset.train_windows(),
            DetectorConfig(scales=(1.0,), telemetry=True),
        )
        snap = det.snapshot()  # before any detect() call
        n_windows = len(tiny_dataset.train_windows().images)
        assert snap.counters["hog.extractions"] == n_windows
        assert any(p.endswith("hog.histogram") for p in snap.spans)

    def test_train_and_detect_share_one_registry(self, tiny_dataset, frame):
        det = MultiScalePedestrianDetector.train(
            tiny_dataset.train_windows(),
            DetectorConfig(scales=(1.0,), telemetry=True),
        )
        before = det.telemetry.counter("hog.extractions")
        det.detect(frame)
        assert det.telemetry.counter("hog.extractions") == before + 1

    def test_train_without_telemetry_stays_dark(self, tiny_dataset):
        det = MultiScalePedestrianDetector.train(
            tiny_dataset.train_windows(), DetectorConfig(scales=(1.0,))
        )
        assert det.telemetry is None

    def test_supplied_registry_requires_config_flag(self, trained_model):
        with pytest.raises(ParameterError, match="config.telemetry"):
            MultiScalePedestrianDetector(
                trained_model,
                DetectorConfig(scales=(1.0,)),
                telemetry=MetricsRegistry(),
            )


class TestPipelineTelemetry:
    def test_config_flag_creates_registry(self, trained_model):
        det = MultiScalePedestrianDetector(
            trained_model, DetectorConfig(telemetry=True)
        )
        assert det.telemetry is not None
        assert det.telemetry.enabled

    def test_default_has_no_registry_and_snapshot_raises(self, trained_model):
        det = MultiScalePedestrianDetector(trained_model)
        assert det.telemetry is None
        with pytest.raises(ParameterError, match="telemetry is disabled"):
            det.snapshot()

    def test_snapshot_counts_frames(self, trained_model, frame):
        det = MultiScalePedestrianDetector(
            trained_model,
            DetectorConfig(scales=(1.0, 1.2), telemetry=True),
        )
        det.detect(frame)
        det.detect(frame)
        snap = det.snapshot()
        assert snap.counters["detect.frames"] == 2
        assert snap.counters["hog.extractions"] == 2
        assert snap.spans["detect.frame"].count == 2

    def test_invalid_scales_rejected_in_init(self, trained_model):
        # A config that skipped DetectorConfig validation (e.g. a
        # subclass overriding __post_init__) must still fail fast.
        @dataclasses.dataclass(frozen=True)
        class LaxConfig(DetectorConfig):
            def __post_init__(self):
                pass

        with pytest.raises(ParameterError, match="non-empty"):
            MultiScalePedestrianDetector(trained_model, LaxConfig(scales=()))
        with pytest.raises(ParameterError, match="strictly positive"):
            MultiScalePedestrianDetector(
                trained_model, LaxConfig(scales=(1.0, -0.5))
            )


class TestEventSimTelemetry:
    def test_gauges_match_simulation_result(self):
        registry = MetricsRegistry()
        result = simulate_frame(PipelineConfig(), telemetry=registry)
        snap = registry.snapshot()
        assert snap.gauges["hw.sim.total_cycles"] == result.total_cycles
        assert snap.gauges["hw.sim.classifier_stall_cycles"] == \
            result.classifier_stall_cycles
        assert snap.spans["hw.simulate_frame"].count == 1

    def test_telemetry_does_not_change_result(self):
        plain = simulate_frame(PipelineConfig())
        instrumented = simulate_frame(
            PipelineConfig(), telemetry=MetricsRegistry()
        )
        assert plain == instrumented


class TestAcceleratorTelemetry:
    def test_process_frame_records_cycle_gauges(self, trained_model, frame):
        det = MultiScalePedestrianDetector(
            trained_model, DetectorConfig(scales=(1.0, 1.2), telemetry=True)
        )
        accel = det.to_accelerator()
        accel_result = accel.process_frame(frame)
        snap = det.snapshot()
        assert snap.gauges["hw.extractor_cycles"] == \
            accel_result.timing.extractor_cycles
        assert snap.gauges["hw.frames_per_second"] == pytest.approx(
            accel_result.timing.frames_per_second
        )
        assert snap.counters["accel.frames"] == 1
        accel_scanned = sum(
            v for k, v in snap.counters.items()
            if k.startswith("accel.scale[") and k.endswith("windows_scanned")
        )
        assert accel_scanned == accel_result.total_windows
