"""Unit tests for repro.hog.scaling — the paper's core contribution."""

import numpy as np
import pytest

from repro.errors import ParameterError, ShapeError
from repro.hog import (
    FeatureScaler,
    HogExtractor,
    scale_feature_grid,
    scale_to_cells,
)


@pytest.fixture(scope="module")
def base_grid():
    rng = np.random.default_rng(21)
    return HogExtractor().extract(rng.random((192, 96)))  # 24x12 cells


class TestScaleToCells:
    def test_exact_shape(self):
        grid = np.random.default_rng(0).random((8, 8, 9))
        assert scale_to_cells(grid, (5, 3)).shape == (5, 3, 9)

    def test_identity(self):
        grid = np.random.default_rng(1).random((6, 6, 9))
        np.testing.assert_array_equal(scale_to_cells(grid, (6, 6)), grid)

    def test_rejects_2d(self):
        with pytest.raises(ShapeError, match="3-D"):
            scale_to_cells(np.zeros((4, 4)), (2, 2))


class TestScaleFeatureGrid:
    def test_scale_two_halves_dims(self):
        grid = np.zeros((16, 8, 9))
        assert scale_feature_grid(grid, 2.0).shape == (8, 4, 9)

    def test_exact_2to1_averages(self):
        """Exact 2:1 bilinear down-sampling averages cell pairs — the
        cleanest case for feature scaling (both dims halve exactly)."""
        grid = np.zeros((4, 4, 1))
        grid[0, 0, 0] = 1.0
        grid[0, 1, 0] = 3.0
        grid[1, 0, 0] = 5.0
        grid[1, 1, 0] = 7.0
        out = scale_feature_grid(grid, 2.0)
        assert out[0, 0, 0] == pytest.approx(4.0)

    def test_mass_approximately_preserved_per_area(self):
        rng = np.random.default_rng(3)
        grid = rng.random((20, 20, 9))
        out = scale_feature_grid(grid, 2.0)
        # Bilinear resampling preserves the mean level.
        assert out.mean() == pytest.approx(grid.mean(), rel=0.05)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ParameterError, match="positive"):
            scale_feature_grid(np.zeros((4, 4, 9)), 0.0)


class TestFeatureScaler:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ParameterError, match="mode"):
            FeatureScaler(mode="pixels")

    @pytest.mark.parametrize("mode", ["blocks", "cells"])
    def test_scale_grid_shapes(self, base_grid, mode):
        scaler = FeatureScaler(mode=mode)
        out = scaler.scale_grid(base_grid, 1.5)
        assert out.cells.shape == (16, 8, 9)
        params = base_grid.params
        assert out.blocks.shape == (15, 7, 36)
        assert out.scale == pytest.approx(1.5)

    def test_scales_compose(self, base_grid):
        scaler = FeatureScaler()
        once = scaler.scale_grid(base_grid, 1.2)
        twice = scaler.scale_grid(once, 1.25)
        assert twice.scale == pytest.approx(1.5)

    def test_identity_scale_preserves_blocks(self, base_grid):
        scaler = FeatureScaler()
        out = scaler.scale_grid(base_grid, 1.0)
        np.testing.assert_allclose(out.blocks, base_grid.blocks)

    def test_cells_mode_renormalizes(self, base_grid):
        out = FeatureScaler(mode="cells").scale_grid(base_grid, 1.5)
        norms = np.linalg.norm(out.blocks, axis=-1)
        assert norms.max() <= 1.0 + 1e-6
        assert norms.mean() > 0.5  # renormalization keeps magnitude

    def test_blocks_renormalize_flag(self, base_grid):
        raw = FeatureScaler(renormalize=False).scale_grid(base_grid, 1.5)
        ren = FeatureScaler(renormalize=True).scale_grid(base_grid, 1.5)
        raw_norm = np.linalg.norm(raw.blocks, axis=-1).mean()
        ren_norm = np.linalg.norm(ren.blocks, axis=-1).mean()
        assert ren_norm >= raw_norm - 1e-9

    def test_power_law_multiplies(self, base_grid):
        plain = FeatureScaler(power_law=0.0).scale_grid(base_grid, 2.0)
        boosted = FeatureScaler(power_law=1.0).scale_grid(base_grid, 2.0)
        np.testing.assert_allclose(boosted.blocks, plain.blocks * 2.0)

    def test_power_law_applied_to_both_surfaces(self, base_grid):
        """Blocks mode must correct the stored cells grid too, or a
        chained level re-deriving features from cells loses the
        correction (regression: cells were stored uncorrected)."""
        plain = FeatureScaler(mode="blocks", power_law=0.0)
        boosted = FeatureScaler(mode="blocks", power_law=1.0)
        scale = 2.0
        p = plain.scale_grid(base_grid, scale)
        b = boosted.scale_grid(base_grid, scale)
        np.testing.assert_allclose(b.blocks, p.blocks * scale)
        np.testing.assert_allclose(b.cells, p.cells * scale)

    def test_power_law_survives_chained_levels(self, base_grid):
        """Ablation: a blocks-mode level feeding a cells-mode rescale
        (the chained-pyramid pattern) keeps the correction."""
        power = 0.5
        s1, s2 = 1.5, 1.2
        level1_plain = FeatureScaler(mode="blocks").scale_grid(base_grid, s1)
        level1_boost = FeatureScaler(
            mode="blocks", power_law=power
        ).scale_grid(base_grid, s1)
        # Second level re-derives its features from the cells surface.
        level2_plain = FeatureScaler(mode="cells").scale_grid(
            level1_plain, s2
        )
        level2_boost = FeatureScaler(
            mode="cells", power_law=power
        ).scale_grid(level1_boost, s2)
        # Cells accumulate the correction multiplicatively across the
        # chain; without the fix level 1's factor was silently absent.
        np.testing.assert_allclose(
            level2_boost.cells,
            level2_plain.cells * (s1 ** power) * (s2 ** power),
        )

    def test_too_large_scale_raises(self, base_grid):
        with pytest.raises(ShapeError, match="fewer cells"):
            FeatureScaler().scale_grid(base_grid, 50.0)


class TestRescaleToWindow:
    def test_descriptor_length(self, base_grid):
        desc = FeatureScaler().rescale_to_window(base_grid)
        assert desc.size == base_grid.params.descriptor_length

    def test_window_sized_grid_is_identity(self):
        """Rescaling a grid that already is one window returns its own
        descriptor unchanged (blocks mode, no renormalization)."""
        rng = np.random.default_rng(5)
        grid = HogExtractor().extract(rng.random((128, 64)))
        desc = FeatureScaler().rescale_to_window(grid)
        np.testing.assert_allclose(desc, grid.window_descriptor(0, 0))

    @pytest.mark.parametrize("mode", ["blocks", "cells"])
    def test_approximates_image_rescaling(self, mode):
        """Feature-domain down-scaling must land near the descriptor of
        the pixel-domain down-scaled image — the paper's central claim
        (Section 4).  Cosine similarity well above chance."""
        from repro.imgproc import resize

        rng = np.random.default_rng(6)
        big = rng.random((192, 96))
        small_desc = HogExtractor().extract_window(resize(big, (128, 64)))
        feat_desc = FeatureScaler(mode=mode).rescale_to_window(
            HogExtractor().extract(big)
        )
        cos = float(
            small_desc
            @ feat_desc
            / (np.linalg.norm(small_desc) * np.linalg.norm(feat_desc))
        )
        assert cos > 0.85


class TestScaleWindowDescriptor:
    def test_matches_manual_pipeline(self, base_grid):
        scaler = FeatureScaler()
        desc = scaler.scale_window_descriptor(base_grid, 1.5)
        scaled = scaler.scale_grid(base_grid, 1.5)
        np.testing.assert_array_equal(desc, scaled.window_descriptor(0, 0))

    def test_raises_when_window_does_not_fit(self, base_grid):
        with pytest.raises(ShapeError, match="cannot hold"):
            FeatureScaler().scale_window_descriptor(base_grid, 3.0)
