"""Tests for SVM model rescaling and the model-pyramid detector."""

import numpy as np
import pytest

from repro.detect import ModelPyramidDetector, classify_grid_with_scaled_model
from repro.errors import ParameterError
from repro.hog import HogExtractor, HogParameters
from repro.svm import LinearSvmModel, model_pyramid, rescale_model


@pytest.fixture(scope="module")
def params():
    return HogParameters()


class TestRescaleModel:
    def test_identity_scale_preserves_weights(self, trained_model, params):
        scaled = rescale_model(trained_model, params, 1.0)
        np.testing.assert_allclose(scaled.model.weights, trained_model.weights)
        assert scaled.model.bias == trained_model.bias
        assert (scaled.blocks_x, scaled.blocks_y) == (7, 15)
        assert (scaled.window_width_px, scaled.window_height_px) == (64, 128)

    def test_scaled_geometry(self, trained_model, params):
        scaled = rescale_model(trained_model, params, 1.5)
        assert scaled.blocks_y == round(15 * 1.5)
        assert scaled.blocks_x == round(7 * 1.5)
        assert scaled.descriptor_length == scaled.blocks_x * scaled.blocks_y * 36
        assert scaled.window_height_px == (scaled.blocks_y + 1) * 8

    def test_magnitude_compensation(self, trained_model, params):
        """A constant feature grid must score the same under the
        original and the rescaled model (area compensation)."""
        base = rescale_model(trained_model, params, 1.0)
        scaled = rescale_model(trained_model, params, 1.4)
        const = 0.3
        score_base = (
            base.model.weights.sum() * const + base.model.bias
        )
        score_scaled = (
            scaled.model.weights.sum() * const + scaled.model.bias
        )
        assert score_scaled == pytest.approx(score_base, rel=0.05)

    def test_scaled_model_scores_scaled_pedestrian(self, tiny_dataset,
                                                   trained_model, params):
        """A model rescaled to 1.5 applied to a 1.5x pedestrian window's
        features scores positively when the base model likes the base
        window."""
        from repro.dataset import upsample_window

        extractor = HogExtractor(params)
        # Pick a confidently-positive test window.
        best, best_score = None, -np.inf
        for img, label in zip(tiny_dataset.test_windows().images,
                              tiny_dataset.test_windows().labels):
            if label == 1:
                s = trained_model.decision_function(
                    extractor.extract_window(img)
                )[0]
                if s > best_score:
                    best, best_score = img, s
        assert best_score > 0

        scaled = rescale_model(trained_model, params, 1.5)
        big = upsample_window(best, 1.5)
        grid = extractor.extract(big)
        scores = classify_grid_with_scaled_model(grid, scaled)
        assert scores.size >= 1
        assert scores.max() > 0

    def test_rejects_bad_scale(self, trained_model, params):
        with pytest.raises(ParameterError, match="positive"):
            rescale_model(trained_model, params, 0.0)

    def test_rejects_layout_mismatch(self, params):
        wrong = LinearSvmModel(weights=np.zeros(100), bias=0.0)
        with pytest.raises(ParameterError, match="weights"):
            rescale_model(wrong, params, 1.2)

    def test_model_pyramid_builder(self, trained_model, params):
        pyramid = model_pyramid(trained_model, params, (1.0, 1.3, 1.7))
        assert [m.scale for m in pyramid] == [1.0, 1.3, 1.7]

    def test_model_pyramid_rejects_empty(self, trained_model, params):
        with pytest.raises(ParameterError, match="non-empty"):
            model_pyramid(trained_model, params, ())


class TestModelPyramidDetector:
    def test_detects_planted_pedestrian(self, tiny_dataset, trained):
        model, extractor = trained
        scene = tiny_dataset.make_scene(
            height=288, width=320, n_pedestrians=1,
            pedestrian_heights=(128, 150), scene_index=1,
        )
        detector = ModelPyramidDetector(model, extractor, scales=[1.0, 1.2])
        result = detector.detect(scene.image)
        gt = scene.boxes[0]
        assert any(
            abs(d.top - gt.top) < 32 and abs(d.left - gt.left) < 24
            for d in result.detections
        )

    def test_single_extraction(self, tiny_dataset, trained):
        """Like the feature pyramid, extraction cost is scale-independent."""
        model, extractor = trained
        scene = tiny_dataset.make_scene(height=256, width=256, n_pedestrians=0)
        one = ModelPyramidDetector(model, extractor, scales=[1.0])
        four = ModelPyramidDetector(
            model, extractor, scales=[1.0, 1.2, 1.44, 1.7]
        )
        t1 = one.detect(scene.image).timings.extraction
        t4 = four.detect(scene.image).timings.extraction
        assert t4 < 3.0 * t1

    def test_scale_dropped_when_window_too_big(self, tiny_dataset, trained):
        model, extractor = trained
        scene = tiny_dataset.make_scene(height=160, width=160, n_pedestrians=0)
        detector = ModelPyramidDetector(model, extractor, scales=[1.0, 4.0])
        result = detector.detect(scene.image)
        assert result.scales_used == [1.0]

    def test_rejects_mismatched_model(self, trained):
        model, _ = trained
        big = HogExtractor(HogParameters(window_width=72, window_height=128))
        with pytest.raises(ParameterError, match="features"):
            ModelPyramidDetector(model, big)

    def test_detection_boxes_scale_with_model(self, tiny_dataset, trained):
        model, extractor = trained
        scene = tiny_dataset.make_scene(height=320, width=320, n_pedestrians=0)
        detector = ModelPyramidDetector(
            model, extractor, scales=[1.5], threshold=-np.inf, nms_iou=1.0
        )
        result = detector.detect(scene.image)
        if result.detections:
            d = result.detections[0]
            assert d.height == pytest.approx((round(15 * 1.5) + 1) * 8)
