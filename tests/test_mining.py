"""Tests for hard-negative mining / bootstrap training."""

import numpy as np
import pytest

from repro.core import bootstrap_train, mine_hard_negatives
from repro.dataset import DatasetSizes, SyntheticPedestrianDataset, WindowSet
from repro.dataset.background import negative_window, textured_background
from repro.errors import ParameterError, TrainingError
from repro.hog import HogExtractor


@pytest.fixture(scope="module")
def negative_scenes():
    """Person-free images with pedestrian-confusing clutter."""
    rng = np.random.default_rng(55)
    scenes = []
    for _ in range(6):
        canvas = textured_background(rng, 192, 256)
        from repro.dataset.background import add_clutter, _pedestrian_confuser

        add_clutter(canvas, rng, 4)
        _pedestrian_confuser(canvas, rng, contrast=0.4)
        scenes.append(canvas)
    return scenes


class TestMineHardNegatives:
    def test_returns_window_sized_crops(self, trained, negative_scenes):
        model, extractor = trained
        hard = mine_hard_negatives(
            model, extractor, negative_scenes, threshold=-2.0
        )
        assert hard, "a permissive threshold must mine something"
        assert all(h.shape == (128, 64) for h in hard)

    def test_strict_threshold_mines_fewer(self, trained, negative_scenes):
        model, extractor = trained
        loose = mine_hard_negatives(model, extractor, negative_scenes,
                                    threshold=-2.0)
        strict = mine_hard_negatives(model, extractor, negative_scenes,
                                     threshold=3.0)
        assert len(strict) <= len(loose)

    def test_max_per_image_cap(self, trained, negative_scenes):
        model, extractor = trained
        hard = mine_hard_negatives(
            model, extractor, negative_scenes, threshold=-5.0, max_per_image=2
        )
        assert len(hard) <= 2 * len(negative_scenes)

    def test_mined_windows_score_above_threshold(self, trained,
                                                 negative_scenes):
        model, extractor = trained
        threshold = -1.0
        hard = mine_hard_negatives(
            model, extractor, negative_scenes, threshold=threshold,
            max_per_image=3,
        )
        for window in hard[:5]:
            score = model.decision_function(extractor.extract_window(window))
            assert score[0] > threshold - 1e-6

    def test_small_images_skipped(self, trained):
        model, extractor = trained
        tiny = [np.zeros((64, 48))]
        assert mine_hard_negatives(model, extractor, tiny) == []

    def test_rejects_bad_cap(self, trained):
        model, extractor = trained
        with pytest.raises(ParameterError, match="max_per_image"):
            mine_hard_negatives(model, extractor, [], max_per_image=0)


class TestBootstrapTrain:
    @pytest.fixture(scope="class")
    def small_train(self):
        data = SyntheticPedestrianDataset(
            seed=23, sizes=DatasetSizes(40, 80, 1, 1)
        )
        return data.train_windows()

    def test_loop_reduces_false_positives(self, small_train, negative_scenes):
        extractor = HogExtractor()
        result = bootstrap_train(
            small_train, negative_scenes, extractor,
            max_rounds=2, mining_threshold=-0.5,
        )
        assert result.rounds >= 1
        # After bootstrapping, the mined scenes yield fewer (ideally no)
        # false positives at the mining threshold.
        remaining = mine_hard_negatives(
            result.model, extractor, negative_scenes, threshold=-0.5
        )
        assert len(remaining) <= result.hard_negatives_added[0]

    def test_stops_early_when_quiet(self, small_train):
        """With no minable scenes, one round suffices."""
        rng = np.random.default_rng(1)
        easy = [negative_window(rng, 160, 96, max_clutter=0,
                                confuser_probability=0.0) for _ in range(2)]
        result = bootstrap_train(
            small_train, easy, max_rounds=3, mining_threshold=5.0
        )
        assert result.rounds == 1
        assert result.total_added == 0

    def test_model_still_classifies_positives(self, small_train,
                                              negative_scenes):
        extractor = HogExtractor()
        result = bootstrap_train(
            small_train, negative_scenes, extractor, max_rounds=1
        )
        descriptors = np.stack(
            [extractor.extract_window(w) for w in small_train.images]
        )
        pred = result.model.predict(descriptors) == 1
        truth = small_train.labels == 1
        assert np.mean(pred == truth) > 0.9

    def test_rejects_single_class(self, negative_scenes):
        ws = WindowSet(
            images=[np.random.default_rng(0).random((128, 64))] * 2,
            labels=np.array([1, 1]),
        )
        with pytest.raises(TrainingError, match="both classes"):
            bootstrap_train(ws, negative_scenes)

    def test_rejects_zero_rounds(self, small_train, negative_scenes):
        with pytest.raises(ParameterError, match="max_rounds"):
            bootstrap_train(small_train, negative_scenes, max_rounds=0)
