"""Integration tests for the streaming pipeline.

The load-bearing properties: results come out in frame-index order no
matter how many workers raced, a corrupt frame becomes a FAILED record
instead of a dead stream, every frame is accounted for under every
backpressure policy, and the tracker can consume the emitted stream
directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.das import IouTracker
from repro.errors import CircuitBreakerOpen, ParameterError
from repro.stream import (
    ArraySource,
    FrameStatus,
    StreamPipeline,
    SyntheticVideoSource,
    track_stream,
)
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def detector(trained_model):
    return MultiScalePedestrianDetector(
        trained_model,
        DetectorConfig(scales=(1.0,), threshold=0.5),
    )


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(11)
    return [rng.random((160, 160)) for _ in range(8)]


class TestStreamPipeline:
    def test_emits_in_frame_order(self, detector, frames):
        pipeline = StreamPipeline(detector, workers=3, queue_size=4)
        run = pipeline.run(ArraySource(frames))
        assert [fr.index for fr in run.results] == list(range(len(frames)))
        assert all(fr.ok for fr in run.results)
        assert run.report.frames_ok == len(frames)

    def test_single_worker_uses_detector_as_is(self, detector, frames):
        pipeline = StreamPipeline(detector, workers=1, queue_size=4)
        run = pipeline.run(ArraySource(frames[:3]))
        assert {fr.worker for fr in run.results} == {0}

    def test_corrupt_frame_is_isolated(self, detector, frames):
        bad = list(frames[:4])
        bad[2] = np.full((160, 160), np.nan)
        pipeline = StreamPipeline(detector, workers=2, queue_size=4)
        run = pipeline.run(ArraySource(bad))
        statuses = [fr.status for fr in run.results]
        assert statuses.count(FrameStatus.FAILED) == 1
        assert run.results[2].status is FrameStatus.FAILED
        assert "ImageError" in run.results[2].error
        assert run.report.frames_failed == 1
        assert run.report.frames_ok == 3

    def test_mismatched_frame_is_isolated(self, detector, frames):
        bad = list(frames[:3])
        bad[1] = np.zeros((4, 4, 7))  # unsupported channel count
        run = StreamPipeline(detector, queue_size=4).run(ArraySource(bad))
        assert run.results[1].status is FrameStatus.FAILED
        assert run.report.frames_failed == 1

    def test_every_frame_accounted_for_under_drop_policies(
        self, detector, frames
    ):
        for policy in ("drop-oldest", "drop-newest"):
            pipeline = StreamPipeline(
                detector, workers=1, queue_size=1, policy=policy
            )
            run = pipeline.run(ArraySource(frames * 3))
            r = run.report
            assert r.frames_in == len(frames) * 3
            assert r.frames_ok + r.frames_failed + r.frames_dropped \
                == r.frames_in
            # In-order emission must survive drops.
            assert [fr.index for fr in run.results] == \
                list(range(r.frames_in))

    def test_block_policy_never_drops(self, detector, frames):
        pipeline = StreamPipeline(
            detector, workers=2, queue_size=1, policy="block"
        )
        run = pipeline.run(ArraySource(frames))
        assert run.report.frames_dropped == 0
        assert run.report.frames_ok == len(frames)

    def test_circuit_breaker_trips_on_consecutive_failures(self, detector):
        bad = [np.full((160, 160), np.nan)] * 6
        pipeline = StreamPipeline(
            detector, queue_size=4, max_consecutive_failures=3
        )
        emitted = []
        with pytest.raises(CircuitBreakerOpen, match="3 consecutive"):
            for fr in pipeline.process(ArraySource(bad)):
                emitted.append(fr)
        assert len(emitted) == 3  # the tripping frame was still emitted

    def test_ok_frame_resets_breaker_streak(self, detector, frames):
        mixed = [np.full((160, 160), np.nan), frames[0],
                 np.full((160, 160), np.nan), frames[1]]
        pipeline = StreamPipeline(
            detector, queue_size=4, max_consecutive_failures=2
        )
        run = pipeline.run(ArraySource(mixed))
        assert run.report.frames_failed == 2
        assert run.report.frames_ok == 2

    def test_consumer_break_shuts_down_threads(self, detector, frames):
        import threading

        pipeline = StreamPipeline(detector, workers=2, queue_size=2)
        for fr in pipeline.process(ArraySource(frames)):
            break
        lingering = [t.name for t in threading.enumerate()
                     if t.name.startswith("stream-")]
        assert lingering == []

    def test_latency_and_fps_reported(self, detector, frames):
        run = StreamPipeline(detector, queue_size=4).run(ArraySource(frames))
        r = run.report
        assert r.achieved_fps > 0
        assert r.latency_p95_ms >= r.latency_p50_ms > 0
        assert 0.0 < r.worker_utilization <= 1.0
        assert all(fr.latency_s > 0 for fr in run.results)

    def test_parameter_validation(self, detector):
        with pytest.raises(ParameterError, match="workers"):
            StreamPipeline(detector, workers=0)
        with pytest.raises(ParameterError, match="queue_size"):
            StreamPipeline(detector, queue_size=0)
        with pytest.raises(ParameterError, match="max_consecutive"):
            StreamPipeline(detector, max_consecutive_failures=0)
        with pytest.raises(ParameterError, match="detector"):
            StreamPipeline()

    def test_detector_factory_used_per_worker(self, trained_model, frames):
        built = []

        def factory():
            det = MultiScalePedestrianDetector(
                trained_model, DetectorConfig(scales=(1.0,), threshold=0.5)
            )
            built.append(det)
            return det

        pipeline = StreamPipeline(
            detector_factory=factory, workers=2, queue_size=4
        )
        run = pipeline.run(ArraySource(frames[:4]))
        assert len(built) == 2
        assert run.report.frames_ok == 4

    def test_multi_worker_clones_leave_original_telemetry_alone(
        self, trained_model, frames
    ):
        det = MultiScalePedestrianDetector(
            trained_model, DetectorConfig(scales=(1.0,), telemetry=True)
        )
        pipeline = StreamPipeline(det, workers=2, queue_size=4)
        pipeline.run(ArraySource(frames[:4]))
        # Clones run with telemetry disabled; the original detector's
        # registry must not have recorded any frames.
        assert det.snapshot().counters.get("detect.frames", 0) == 0


class TestStreamTelemetry:
    def test_stream_counters_and_gauges(self, detector, frames):
        registry = MetricsRegistry()
        bad = list(frames[:5])
        bad[3] = np.full((160, 160), np.nan)
        pipeline = StreamPipeline(
            detector, workers=1, queue_size=2, telemetry=registry
        )
        pipeline.run(ArraySource(bad))
        snap = registry.snapshot()
        assert snap.counters["stream.frames_in"] == 5
        assert snap.counters["stream.frames_ok"] == 4
        assert snap.counters["stream.frames_failed"] == 1
        assert snap.gauges["stream.workers"] == 1
        assert snap.gauges["stream.achieved_fps"] > 0
        assert snap.histograms["stream.latency_ms"].count == 5
        assert snap.histograms["stream.queue_depth"].count == 5

    def test_report_matches_registry(self, detector, frames):
        registry = MetricsRegistry()
        pipeline = StreamPipeline(detector, queue_size=4, telemetry=registry)
        run = pipeline.run(ArraySource(frames[:4]))
        snap = registry.snapshot()
        assert snap.counters["stream.frames_ok"] == run.report.frames_ok
        assert snap.gauges["stream.achieved_fps"] == pytest.approx(
            run.report.achieved_fps
        )


class TestTrackerIntegration:
    def test_tracker_consumes_stream_directly(self, detector):
        # A held scene gives identical frames, so detections (if any)
        # repeat and the stream must feed the tracker without error.
        source = SyntheticVideoSource(
            6, height=192, width=192, n_pedestrians=1, seed=3, scene_hold=6
        )
        tracker = IouTracker()
        results = StreamPipeline(detector, queue_size=4).run(source).results
        tracks = tracker.consume(results)
        assert isinstance(tracks, list)

    def test_failed_frames_coast_tracks(self, trained_model):
        from repro.detect.types import Detection
        from repro.stream import FrameResult

        det = Detection(top=10, left=10, height=128, width=64,
                        score=1.0, scale=1.0)
        ok = FrameResult(index=0, status=FrameStatus.OK, detections=(det,))
        failed = FrameResult(index=1, status=FrameStatus.FAILED, error="E")
        tracker = IouTracker(min_hits=1)
        tracker.consume([ok, ok])
        assert len(tracker.tracks) == 1
        missed_before = tracker.tracks[0].missed
        tracker.consume([failed])
        assert tracker.tracks[0].missed == missed_before + 1

    def test_consume_accepts_plain_detection_lists(self):
        from repro.detect.types import Detection

        det = Detection(top=0, left=0, height=128, width=64,
                        score=1.0, scale=1.0)
        tracker = IouTracker(min_hits=1)
        tracks = tracker.consume([[det], [det]])
        assert len(tracks) == 1
        assert tracks[0].age == 2

    def test_track_stream_wrapper(self, detector, frames):
        run = StreamPipeline(detector, queue_size=4).run(
            ArraySource(frames[:3])
        )
        tracks = track_stream(run.results, IouTracker())
        assert isinstance(tracks, list)
