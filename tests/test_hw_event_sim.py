"""Event-driven pipeline simulation vs the analytic timing model."""

import pytest

from repro.errors import HardwareConfigError, ScheduleError
from repro.hardware import FrameTimingModel, PipelineConfig, simulate_frame


@pytest.fixture(scope="module")
def paper_cfg():
    return PipelineConfig()


@pytest.fixture(scope="module")
def paper_sim(paper_cfg):
    return simulate_frame(paper_cfg)


class TestPaperConfiguration:
    def test_extractor_cycles_match_analytic(self, paper_sim):
        analytic = FrameTimingModel()
        assert paper_sim.extractor_busy_cycles == analytic.extractor_cycles

    def test_classifier_busy_is_rows_times_row_cost(self, paper_cfg, paper_sim):
        # 120 physical window rows, 8,892 cycles each.
        assert paper_sim.rows_classified == 135 - 16 + 1 == 120
        assert (
            paper_sim.classifier_busy_cycles
            == paper_sim.rows_classified * paper_cfg.classifier_cycles_per_row
        )

    def test_paper_count_is_conservative_upper_bound(self, paper_sim):
        """The paper counts all 135 cell rows (1,200,420 cycles); the
        simulation shows the classifier's physical work is the 120
        anchor rows — the closed form over-counts by the 15 rows that
        cannot anchor a window, i.e. it is safely conservative."""
        analytic = FrameTimingModel().scale_timing(1.0).cycles
        assert paper_sim.classifier_busy_cycles < analytic
        assert analytic == 1_200_420
        assert paper_sim.classifier_busy_cycles == 120 * 8_892

    def test_extractor_paces_the_pipeline(self, paper_cfg, paper_sim):
        """Frame latency = extractor time + one classifier row drain;
        the classifier is never the steady-state bottleneck."""
        expected = (
            paper_sim.extractor_busy_cycles
            + paper_cfg.classifier_cycles_per_row
        )
        assert paper_sim.total_cycles == expected
        assert paper_sim.classifier_stall_cycles > 0  # it waits for rows

    def test_buffer_occupancy_fits_18_rows(self, paper_sim):
        """The simulated peak occupancy justifies the paper's 18-row
        N-HOGMem: one full window of rows live at once (plus slack)."""
        assert paper_sim.peak_buffer_occupancy <= 18
        assert paper_sim.peak_buffer_occupancy >= 16


class TestRateMismatch:
    def test_fast_extractor_overruns_small_buffer(self):
        """If the extractor ran 2 px/cycle the producer would outrun the
        classifier and an 18-row buffer (without back-pressure) fails —
        the design's stages must be rate-matched, as Section 5 stresses."""
        cfg = PipelineConfig(pixels_per_cycle=2)
        with pytest.raises(ScheduleError, match="ahead"):
            simulate_frame(cfg)

    def test_fast_extractor_with_deep_buffer_schedules(self):
        cfg = PipelineConfig(pixels_per_cycle=2, buffer_rows=135)
        result = simulate_frame(cfg)
        assert result.peak_buffer_occupancy > 18

    def test_classifier_bound_configuration(self):
        """With a slow classifier (few MACBARs -> long cadence) the
        classifier becomes the bottleneck and total time exceeds the
        extractor time."""
        cfg = PipelineConfig(cycles_per_column=144, buffer_rows=135)
        result = simulate_frame(cfg)
        assert result.total_cycles > result.extractor_busy_cycles
        assert result.classifier_utilization > 0.9


class TestSmallFrames:
    def test_single_window_row(self):
        cfg = PipelineConfig(image_height=128, image_width=128)
        result = simulate_frame(cfg)
        assert result.rows_classified == 1

    def test_frame_smaller_than_window(self):
        cfg = PipelineConfig(image_height=64, image_width=128)
        result = simulate_frame(cfg)
        assert result.rows_classified == 0
        assert result.classifier_busy_cycles == 0

    def test_utilization_bounded(self):
        result = simulate_frame(PipelineConfig(image_height=256, image_width=256))
        assert 0.0 <= result.classifier_utilization <= 1.0


class TestValidation:
    def test_rejects_buffer_below_window(self):
        with pytest.raises(HardwareConfigError, match="cannot hold"):
            PipelineConfig(buffer_rows=8)

    def test_rejects_zero_parameters(self):
        with pytest.raises(HardwareConfigError):
            PipelineConfig(cell_size=0)
