"""Unit tests for the multiprocess backend building blocks.

Covers the picklable detector hand-off (DetectorSpec), the
shared-memory frame ring, the warm worker pool, and the pickle /
telemetry-merge plumbing the process backend depends on: model and
config round-trips, NULL_TELEMETRY singleton identity, and
count-weighted snapshot absorption.
"""

from __future__ import annotations

import pickle
import queue

import numpy as np
import pytest

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.errors import ParallelError
from repro.parallel import (
    DetectorSpec,
    FrameHandle,
    ProcessWorkerPool,
    ResultHandle,
    SharedFrameRing,
    attach_view,
    decode_result,
    default_start_method,
    detach_all,
    encode_result,
    write_result_words,
)
from repro.svm.model import LinearSvmModel
from repro.telemetry import (
    MetricsRegistry,
    NULL_TELEMETRY,
    merge_snapshots,
)
from repro.telemetry.registry import HistogramSummary


@pytest.fixture(scope="module")
def detector(trained_model):
    return MultiScalePedestrianDetector(
        trained_model,
        DetectorConfig(scales=(1.0,), threshold=0.5, stride=2),
    )


class TestPickleRoundTrips:
    def test_svm_model_round_trip(self, trained_model):
        clone = pickle.loads(pickle.dumps(trained_model))
        assert clone == trained_model
        assert clone.weights.dtype == np.float64

    def test_svm_model_equality_is_contentwise(self):
        a = LinearSvmModel(np.array([1.0, 2.0]), 0.5)
        b = LinearSvmModel(np.array([1.0, 2.0]), 0.5)
        c = LinearSvmModel(np.array([1.0, 2.5]), 0.5)
        assert a == b
        assert a != c
        assert a != "not a model"

    def test_detector_config_round_trip(self):
        cfg = DetectorConfig(scales=(1.0, 1.2), stride=2, telemetry=True)
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    def test_null_telemetry_pickles_to_the_singleton(self):
        assert pickle.loads(pickle.dumps(NULL_TELEMETRY)) is NULL_TELEMETRY

    def test_registry_round_trip_drops_open_spans(self):
        reg = MetricsRegistry()
        reg.inc("x", 3)
        span = reg.span("outer")
        span.__enter__()
        clone = pickle.loads(pickle.dumps(reg))
        span.__exit__(None, None, None)
        assert clone.snapshot().counters["x"] == 3
        # The open span must not resurrect inside the clone: a new span
        # records at the top level, not nested under a phantom "outer".
        with clone.span("inner"):
            pass
        assert "inner" in clone.snapshot().spans
        assert "outer.inner" not in clone.snapshot().spans


class TestSnapshotMerge:
    def test_histogram_summary_merge_weights_by_count(self):
        a = HistogramSummary(count=3, total=3.0, minimum=1.0, maximum=1.0,
                             p50=1.0, p95=1.0)
        b = HistogramSummary(count=1, total=5.0, minimum=5.0, maximum=5.0,
                             p50=5.0, p95=5.0)
        m = a.merge(b)
        assert m.count == 4
        assert m.total == pytest.approx(8.0)
        assert m.minimum == 1.0
        assert m.maximum == 5.0
        assert 1.0 < m.p50 < 5.0

    def test_absorb_snapshot_counters_and_gauges(self):
        src = MetricsRegistry()
        src.inc("detect.frames", 4)
        src.set_gauge("g", 7.0)
        parent = MetricsRegistry()
        parent.inc("detect.frames", 1)
        parent.absorb_snapshot(src.snapshot())
        snap = parent.snapshot()
        assert snap.counters["detect.frames"] == 5
        assert snap.gauges["g"] == 7.0

    def test_absorb_snapshot_merges_histograms(self):
        src = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            src.observe("lat", v)
        parent = MetricsRegistry()
        parent.absorb_snapshot(src.snapshot())
        parent.absorb_snapshot(src.snapshot())
        assert parent.snapshot().histograms["lat"].count == 6

    def test_merge_snapshots_helper(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged.counters["n"] == 3

    def test_reset_clears_absorbed_state(self):
        src = MetricsRegistry()
        src.inc("n", 9)
        parent = MetricsRegistry()
        parent.absorb_snapshot(src.snapshot())
        parent.reset()
        assert parent.snapshot().counters.get("n", 0) == 0


class TestDetectorSpec:
    def test_round_trip_builds_equivalent_detector(self, detector):
        spec = DetectorSpec.from_detector(detector)
        clone = pickle.loads(spec.to_bytes())
        rebuilt = clone.build()
        frame = np.random.default_rng(0).random((160, 160))
        assert (rebuilt.detect(frame).detections
                == detector.detect(frame).detections)

    def test_cache_key_is_content_addressed(self, detector, trained_model):
        spec = DetectorSpec.from_detector(detector)
        same = DetectorSpec.from_detector(
            MultiScalePedestrianDetector(
                trained_model,
                DetectorConfig(scales=(1.0,), threshold=0.5, stride=2),
            )
        )
        other = DetectorSpec.from_detector(
            MultiScalePedestrianDetector(
                trained_model,
                DetectorConfig(scales=(1.0,), threshold=0.6, stride=2),
            )
        )
        assert spec.cache_key() == same.cache_key()
        assert spec.cache_key() != other.cache_key()

    def test_rejects_detector_without_model(self):
        class Bare:
            model = None
            config = None

        with pytest.raises(ParallelError):
            DetectorSpec.from_detector(Bare())


class TestSharedFrameRing:
    def test_write_attach_round_trip(self):
        ring = SharedFrameRing(2, 160 * 160 * 8, queue.Queue())
        try:
            frame = np.random.default_rng(1).random((160, 160))
            slot = ring.acquire(timeout=1.0)
            handle = ring.write(slot, frame)
            view = attach_view(handle)
            np.testing.assert_array_equal(view, frame)
            assert view.dtype == frame.dtype
        finally:
            detach_all()
            ring.close()

    def test_fits_and_oversize_rejection(self):
        ring = SharedFrameRing(1, 64, queue.Queue())
        try:
            small = np.zeros(4)
            big = np.zeros((8192,))
            assert ring.fits(small) and not ring.fits(big)
            slot = ring.acquire(timeout=1.0)
            with pytest.raises(ParallelError):
                ring.write(slot, big)
        finally:
            ring.close()

    def test_acquire_times_out_when_exhausted(self):
        free = queue.Queue()
        ring = SharedFrameRing(1, 64, free)
        try:
            assert ring.acquire(timeout=0.5) == 0
            assert ring.acquire(timeout=0.05) is None
            ring.release(0)
            assert ring.acquire(timeout=0.5) == 0
        finally:
            ring.close()

    def test_close_is_idempotent_and_blocks_use(self):
        ring = SharedFrameRing(1, 64, queue.Queue())
        ring.close()
        ring.close()
        with pytest.raises(ParallelError):
            ring.acquire(timeout=0.1)

    def test_handle_is_cheap_to_pickle(self):
        handle = FrameHandle("seg", 0, 0, (160, 160), "<f8")
        assert len(pickle.dumps(handle)) < 200


class TestProcessWorkerPool:
    def test_frames_round_trip_with_fault_isolation(self, detector):
        frames = [np.random.default_rng(i).random((160, 160))
                  for i in range(4)]
        frames[2] = np.full((160, 160), np.nan)
        expected = {i: detector.detect(f).detections
                    for i, f in enumerate(frames) if i != 2}
        with ProcessWorkerPool(
            DetectorSpec.from_detector(detector), workers=2
        ) as pool:
            for i, frame in enumerate(frames):
                assert pool.submit(0, i, frame, 0.0) in ("shm", "pickle")
            got = {}
            while len(got) < len(frames):
                msg = pool.next_message(timeout=60.0)
                assert msg is not None, "worker result timed out"
                assert msg[0] == "result"
                _, gen, index, status, result, error, *_ = msg
                got[index] = (status, result, error)
        for i in range(4):
            status, result, error = got[i]
            if i == 2:
                assert status == "failed"
                assert "ImageError" in error
            else:
                assert status == "ok"
                assert result.detections == expected[i]

    def test_oversized_frame_falls_back_to_pickle(self, detector):
        small = np.random.default_rng(0).random((160, 160))
        big = np.random.default_rng(1).random((320, 320))
        with ProcessWorkerPool(
            DetectorSpec.from_detector(detector), workers=1
        ) as pool:
            # slot_bytes sizes lazily from the first frame; the larger
            # one cannot fit and must take the pickle channel.
            assert pool.submit(0, 0, small, 0.0) == "shm"
            assert pool.submit(0, 1, big, 0.0) == "pickle"
            seen = set()
            while len(seen) < 2:
                msg = pool.next_message(timeout=60.0)
                assert msg is not None
                assert msg[0] == "result" and msg[3] == "ok"
                seen.add(msg[2])

    def test_close_returns_one_snapshot_per_worker(self, trained_model):
        det = MultiScalePedestrianDetector(
            trained_model,
            DetectorConfig(scales=(1.0,), threshold=0.5, stride=2,
                           telemetry=True),
        )
        pool = ProcessWorkerPool(DetectorSpec.from_detector(det), workers=2)
        frame = np.random.default_rng(2).random((160, 160))
        for i in range(3):
            pool.submit(0, i, frame, 0.0)
        done = 0
        while done < 3:
            msg = pool.next_message(timeout=60.0)
            assert msg is not None
            done += msg[0] == "result"
        snapshots = pool.close()
        assert len(snapshots) == 2
        assert sum(s.counters.get("detect.frames", 0)
                   for s in snapshots) == 3
        assert pool.close() is snapshots  # idempotent

    def test_default_start_method_is_valid(self):
        import multiprocessing

        assert default_start_method() in multiprocessing.get_all_start_methods()


class TestResultCodec:
    @staticmethod
    def _result(n_det=3):
        from repro.detect.types import (
            Detection,
            DetectionResult,
            StageTimings,
        )

        return DetectionResult(
            detections=[
                Detection(top=4.0 * i, left=8.0 * i, height=128.0,
                          width=64.0, score=0.5 + i, scale=1.2)
                for i in range(n_det)
            ],
            timings=StageTimings(extraction=0.01, pyramid=0.002,
                                 classification=0.03, nms=0.001),
            n_windows_evaluated=777,
            scales_used=[1.0, 1.2],
        )

    def test_round_trip_is_exact(self):
        result = self._result()
        words = encode_result(result)
        assert words is not None and words.ndim == 1
        decoded = decode_result(words)
        assert decoded == result

    def test_round_trip_empty_result(self):
        result = self._result(n_det=0)
        decoded = decode_result(encode_result(result))
        assert decoded == result

    def test_non_default_label_is_not_encodable(self):
        import dataclasses

        result = self._result()
        tagged = dataclasses.replace(result.detections[1], label="cyclist")
        result.detections[1] = tagged
        assert encode_result(result) is None


class TestResultLane:
    def test_write_read_round_trip(self):
        ring = SharedFrameRing(1, 64, queue.Queue(),
                               result_slots=2, result_slot_bytes=1024)
        try:
            rslot = ring.acquire_result()
            assert rslot is not None and rslot.capacity >= 1024
            words = np.arange(17, dtype=np.float64)
            assert write_result_words(rslot, words)
            np.testing.assert_array_equal(
                ring.read_result(rslot, words.size), words
            )
        finally:
            detach_all()
            ring.close()

    def test_lane_runs_dry_and_recycles(self):
        ring = SharedFrameRing(1, 64, queue.Queue(),
                               result_slots=1, result_slot_bytes=64)
        try:
            rslot = ring.acquire_result()
            assert rslot is not None
            assert ring.acquire_result() is None  # dry, non-blocking
            ring.release_result(rslot.slot)
            assert ring.acquire_result() is not None
        finally:
            ring.close()

    def test_oversized_write_refuses_without_touching_slot(self):
        ring = SharedFrameRing(1, 64, queue.Queue(),
                               result_slots=1, result_slot_bytes=8)
        try:
            rslot = ring.acquire_result()
            capacity_words = rslot.capacity // 8
            too_big = np.zeros(capacity_words + 1)
            assert not write_result_words(rslot, too_big)
        finally:
            detach_all()
            ring.close()

    def test_read_rejects_overlong_counts(self):
        ring = SharedFrameRing(1, 64, queue.Queue(),
                               result_slots=1, result_slot_bytes=8)
        try:
            rslot = ring.acquire_result()
            with pytest.raises(ParallelError):
                ring.read_result(rslot, rslot.capacity // 8 + 1)
        finally:
            ring.close()

    def test_no_lane_means_no_result_slots(self):
        ring = SharedFrameRing(1, 64, queue.Queue())
        try:
            assert ring.result_slots == 0
            assert ring.acquire_result() is None
        finally:
            ring.close()

    def test_pool_returns_results_through_the_lane(self, detector):
        frames = [np.random.default_rng(i).random((160, 160))
                  for i in range(3)]
        expected = [detector.detect(f).detections for f in frames]
        with ProcessWorkerPool(
            DetectorSpec.from_detector(detector), workers=1
        ) as pool:
            for i, frame in enumerate(frames):
                pool.submit(0, i, frame, 0.0)
            got = {}
            while len(got) < len(frames):
                msg = pool.next_message(timeout=60.0)
                assert msg is not None
                assert msg[0] == "result" and msg[3] == "ok"
                # The lane handle is decoded inside next_message: the
                # caller always sees a DetectionResult.
                assert not isinstance(msg[4], ResultHandle)
                got[msg[2]] = msg[4]
            counts = pool.transport_counts()
        assert counts == {"results_shm": 3, "results_pickled": 0,
                          "batches": 0}
        for i, exp in enumerate(expected):
            assert got[i].detections == exp

    def test_disabled_lane_falls_back_to_pickle(self, detector):
        frame = np.random.default_rng(5).random((160, 160))
        with ProcessWorkerPool(
            DetectorSpec.from_detector(detector), workers=1,
            result_slot_bytes=0,
        ) as pool:
            pool.submit(0, 0, frame, 0.0)
            msg = None
            while msg is None or msg[0] != "result":
                msg = pool.next_message(timeout=60.0)
            assert msg[3] == "ok"
            assert msg[4].detections == detector.detect(frame).detections
            assert pool.transport_counts() == {
                "results_shm": 0, "results_pickled": 1, "batches": 0,
            }

    def test_tiny_lane_slots_fall_back_to_pickle(self, detector):
        # 8-byte slots cannot even hold the codec header; every result
        # must take the pickle channel, and detections must not change.
        frame = np.random.default_rng(6).random((160, 160))
        with ProcessWorkerPool(
            DetectorSpec.from_detector(detector), workers=1,
            result_slot_bytes=8,
        ) as pool:
            pool.submit(0, 0, frame, 0.0)
            msg = None
            while msg is None or msg[0] != "result":
                msg = pool.next_message(timeout=60.0)
            assert msg[3] == "ok"
            assert msg[4].detections == detector.detect(frame).detections
            counts = pool.transport_counts()
        assert counts == {"results_shm": 0, "results_pickled": 1,
                          "batches": 0}


class TestSubmitBatch:
    def test_batch_matches_per_frame_submits(self, detector):
        frames = [np.random.default_rng(i).random((160, 160))
                  for i in range(4)]
        expected = [detector.detect(f).detections for f in frames]
        with ProcessWorkerPool(
            DetectorSpec.from_detector(detector), workers=1, slots=6
        ) as pool:
            transports = pool.submit_batch(
                0, [(i, frame, 0.0) for i, frame in enumerate(frames)]
            )
            assert transports == ["shm"] * len(frames)
            got = {}
            while len(got) < len(frames):
                msg = pool.next_message(timeout=60.0)
                if msg is None or msg[0] != "result":
                    continue
                # The combined batch reply is expanded back into the
                # standard per-frame tuples: consumers never see
                # batching on the result side.
                assert msg[3] == "ok"
                got[msg[2]] = msg[4]
            counts = pool.transport_counts()
        assert counts["batches"] == 1
        for i, exp in enumerate(expected):
            assert got[i].detections == exp

    def test_corrupt_frame_fails_alone_inside_a_batch(self, detector):
        rng = np.random.default_rng(7)
        frames = [rng.random((160, 160)) for _ in range(3)]
        frames[1] = np.full((160, 160), np.nan)
        with ProcessWorkerPool(
            DetectorSpec.from_detector(detector), workers=1, slots=5
        ) as pool:
            pool.submit_batch(
                0, [(i, frame, 0.0) for i, frame in enumerate(frames)]
            )
            statuses = {}
            while len(statuses) < len(frames):
                msg = pool.next_message(timeout=60.0)
                if msg is None or msg[0] != "result":
                    continue
                statuses[msg[2]] = msg[3]
            assert pool.healthy  # fault isolation: no dead worker
        assert statuses == {0: "ok", 1: "failed", 2: "ok"}

    def test_oversized_batch_is_refused_upfront(self, detector):
        frame = np.random.default_rng(8).random((32, 32))
        with ProcessWorkerPool(
            DetectorSpec.from_detector(detector), workers=1, slots=3
        ) as pool:
            with pytest.raises(ParallelError, match="exceeds the ring"):
                pool.submit_batch(
                    0, [(i, frame, 0.0) for i in range(4)]
                )
            # The refusal left no slot lent: a follow-up batch that
            # fits must still go through.
            pool.submit_batch(0, [(0, frame, 0.0), (1, frame, 0.0)])
            got = 0
            while got < 2:
                msg = pool.next_message(timeout=60.0)
                if msg is not None and msg[0] == "result":
                    assert msg[3] == "ok"
                    got += 1

    def test_empty_batch_is_a_no_op(self, detector):
        with ProcessWorkerPool(
            DetectorSpec.from_detector(detector), workers=1
        ) as pool:
            assert pool.submit_batch(0, []) == []
            assert pool.transport_counts()["batches"] == 0
