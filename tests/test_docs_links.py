"""Tests for the docs link checker (scripts/check_links.py).

The checker is what CI runs to keep README/docs cross-references from
rotting; these tests pin its parsing rules and then run it for real
against the repository's own documentation.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO / "scripts" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLinkParsing:
    def test_extracts_relative_links(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text(
            "see [docs](docs/GUIDE.md) and [anchor](docs/GUIDE.md#top)\n"
            "skip [ext](https://example.com) and [mail](mailto:x@y.z)\n"
        )
        targets = [t for _, t in checker.iter_links(md)]
        assert targets == ["docs/GUIDE.md", "docs/GUIDE.md"]

    def test_pure_anchor_links_are_skipped(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("[back to top](#top)\n")
        assert checker.iter_links(md) == []

    def test_dead_link_reported_with_line_number(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("line one\n[gone](missing.md)\n")
        problems = checker.check_file(md)
        assert len(problems) == 1
        assert "a.md:2" in problems[0]
        assert "missing.md" in problems[0]

    def test_live_link_passes(self, checker, tmp_path):
        (tmp_path / "real.md").write_text("x")
        md = tmp_path / "a.md"
        md.write_text("[ok](real.md)\n")
        assert checker.check_file(md) == []

    def test_links_resolve_relative_to_containing_file(
        self, checker, tmp_path
    ):
        sub = tmp_path / "docs"
        sub.mkdir()
        (tmp_path / "README.md").write_text("root")
        md = sub / "inner.md"
        md.write_text("[up](../README.md)\n")
        assert checker.check_file(md) == []


class TestRepositoryDocs:
    def test_repo_docs_have_no_dead_links(self, checker, capsys):
        """The real gate: README.md + docs/*.md must be link-clean."""
        rc = checker.main([])
        err = capsys.readouterr().err
        assert rc == 0, f"dead links found:\n{err}"

    def test_main_fails_on_dead_link(self, checker, tmp_path):
        md = tmp_path / "bad.md"
        md.write_text("[gone](nope.md)\n")
        assert checker.main([str(md)]) == 1

    def test_main_errors_on_missing_input(self, checker, tmp_path):
        assert checker.main([str(tmp_path / "absent.md")]) == 2
