"""Tests for the docs link checker (scripts/check_links.py).

The checker is what CI runs to keep README/docs cross-references from
rotting; these tests pin its parsing rules and then run it for real
against the repository's own documentation.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO / "scripts" / "check_links.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestLinkParsing:
    def test_extracts_relative_links(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text(
            "see [docs](docs/GUIDE.md) and [anchor](docs/GUIDE.md#top)\n"
            "skip [ext](https://example.com) and [mail](mailto:x@y.z)\n"
        )
        links = checker.iter_links(md)
        assert [t for _, t, _ in links] == ["docs/GUIDE.md", "docs/GUIDE.md"]
        assert [frag for _, _, frag in links] == ["", "top"]

    def test_pure_anchor_links_have_empty_target(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("# Top\n[back to top](#top)\n")
        assert checker.iter_links(md) == [(2, "", "top")]

    def test_dead_link_reported_with_line_number(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("line one\n[gone](missing.md)\n")
        problems = checker.check_file(md)
        assert len(problems) == 1
        assert "a.md:2" in problems[0]
        assert "missing.md" in problems[0]

    def test_live_link_passes(self, checker, tmp_path):
        (tmp_path / "real.md").write_text("x")
        md = tmp_path / "a.md"
        md.write_text("[ok](real.md)\n")
        assert checker.check_file(md) == []

    def test_links_resolve_relative_to_containing_file(
        self, checker, tmp_path
    ):
        sub = tmp_path / "docs"
        sub.mkdir()
        (tmp_path / "README.md").write_text("root")
        md = sub / "inner.md"
        md.write_text("[up](../README.md)\n")
        assert checker.check_file(md) == []


class TestSlugification:
    @pytest.mark.parametrize(
        ("heading", "slug"),
        [
            ("Quick start", "quick-start"),
            ("The rules", "the-rules"),
            ("`check_array` — imperative form", "check_array--imperative-form"),
            ("What differs from the paper?", "what-differs-from-the-paper"),
            ("A.B.C", "abc"),
            ("already-hyphenated", "already-hyphenated"),
        ],
    )
    def test_github_slug(self, checker, heading, slug):
        assert checker.github_slug(heading) == slug

    def test_heading_anchors_collects_all_levels(self, checker):
        text = "# Title\n\n## Section One\n\n### Sub section\n"
        assert checker.heading_anchors(text) == {
            "title", "section-one", "sub-section",
        }

    def test_duplicate_headings_get_numeric_suffixes(self, checker):
        text = "## Setup\n\n## Setup\n\n## Setup\n"
        assert checker.heading_anchors(text) == {
            "setup", "setup-1", "setup-2",
        }

    def test_headings_inside_code_fences_are_ignored(self, checker):
        text = "## Real\n\n```bash\n# not a heading\n```\n"
        assert checker.heading_anchors(text) == {"real"}

    def test_html_anchors_are_collected(self, checker):
        text = '<a id="explicit"></a>\n<a name="named"></a>\n'
        assert checker.heading_anchors(text) == {"explicit", "named"}


class TestAnchorChecking:
    def test_in_page_anchor_resolves(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("# Top level\n\n[jump](#top-level)\n")
        assert checker.check_file(md) == []

    def test_dead_in_page_anchor_reported(self, checker, tmp_path):
        md = tmp_path / "a.md"
        md.write_text("# Top level\n\n[jump](#no-such-section)\n")
        problems = checker.check_file(md)
        assert len(problems) == 1
        assert "a.md:3" in problems[0]
        assert "dead anchor" in problems[0]
        assert "no-such-section" in problems[0]

    def test_cross_file_anchor_resolves(self, checker, tmp_path):
        (tmp_path / "guide.md").write_text("## Install steps\n")
        md = tmp_path / "a.md"
        md.write_text("[how](guide.md#install-steps)\n")
        assert checker.check_file(md) == []

    def test_dead_cross_file_anchor_reported(self, checker, tmp_path):
        (tmp_path / "guide.md").write_text("## Install steps\n")
        md = tmp_path / "a.md"
        md.write_text("[how](guide.md#uninstall)\n")
        problems = checker.check_file(md)
        assert len(problems) == 1
        assert "dead anchor" in problems[0]
        assert "guide.md#uninstall" in problems[0]

    def test_fragments_into_non_markdown_targets_are_not_checked(
        self, checker, tmp_path
    ):
        (tmp_path / "mod.py").write_text("x = 1\n")
        md = tmp_path / "a.md"
        md.write_text("[code](mod.py#L1)\n")
        assert checker.check_file(md) == []


class TestRepositoryDocs:
    def test_repo_docs_have_no_dead_links(self, checker, capsys):
        """The real gate: README.md + docs/*.md must be link-clean."""
        rc = checker.main([])
        err = capsys.readouterr().err
        assert rc == 0, f"dead links found:\n{err}"

    def test_main_fails_on_dead_link(self, checker, tmp_path):
        md = tmp_path / "bad.md"
        md.write_text("[gone](nope.md)\n")
        assert checker.main([str(md)]) == 1

    def test_main_errors_on_missing_input(self, checker, tmp_path):
        assert checker.main([str(tmp_path / "absent.md")]) == 2
