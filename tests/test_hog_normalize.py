"""Unit tests for repro.hog.normalize."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.hog import BlockNormalization, HogParameters, normalize_blocks, normalize_vector
from repro.hog.normalize import block_view


class TestNormalizeVector:
    def test_l2_unit_norm(self):
        v = np.array([3.0, 4.0])
        out = normalize_vector(v, BlockNormalization.L2)
        assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-6)

    def test_l1_unit_sum(self):
        v = np.array([1.0, 3.0])
        out = normalize_vector(v, BlockNormalization.L1)
        assert np.abs(out).sum() == pytest.approx(1.0, abs=1e-5)

    def test_l1_sqrt_is_sqrt_of_l1(self):
        v = np.array([1.0, 3.0])
        l1 = normalize_vector(v, BlockNormalization.L1)
        l1s = normalize_vector(v, BlockNormalization.L1_SQRT)
        np.testing.assert_allclose(l1s, np.sqrt(l1))

    def test_none_returns_copy(self):
        v = np.array([1.0, 2.0])
        out = normalize_vector(v, BlockNormalization.NONE)
        np.testing.assert_array_equal(out, v)
        out[0] = 99.0
        assert v[0] == 1.0

    def test_l2_hys_clips(self):
        v = np.zeros(36)
        v[0] = 100.0  # one dominant component
        out = normalize_vector(v, BlockNormalization.L2_HYS)
        # Clipping at 0.2 then renormalizing keeps the dominant value
        # bounded away from 1 only if other components exist; with one
        # nonzero component it renormalizes back to ~1.
        assert out[0] == pytest.approx(1.0, abs=1e-4)

    def test_l2_hys_spreads_energy(self):
        v = np.array([10.0, 1.0, 1.0, 1.0])
        plain = normalize_vector(v, BlockNormalization.L2)
        hys = normalize_vector(v, BlockNormalization.L2_HYS)
        # The dominant component's share shrinks under L2-Hys.
        assert hys[0] / hys[1] < plain[0] / plain[1]

    def test_scale_invariance(self):
        """Normalization makes the descriptor invariant to global gain —
        the property that motivates the block stage (Section 3.1)."""
        rng = np.random.default_rng(0)
        v = rng.random(36) + 0.1
        for method in BlockNormalization:
            if method is BlockNormalization.NONE:
                continue
            a = normalize_vector(v, method)
            b = normalize_vector(v * 7.3, method)
            np.testing.assert_allclose(a, b, atol=1e-4)

    def test_zero_vector_stays_finite(self):
        for method in BlockNormalization:
            out = normalize_vector(np.zeros(36), method)
            assert np.all(np.isfinite(out))

    def test_batched_normalization_matches_rowwise(self):
        rng = np.random.default_rng(1)
        grid = rng.random((3, 4, 36))
        batch = normalize_vector(grid, BlockNormalization.L2)
        for i in range(3):
            for j in range(4):
                np.testing.assert_allclose(
                    batch[i, j], normalize_vector(grid[i, j], BlockNormalization.L2)
                )

    def test_rejects_scalar(self):
        with pytest.raises(ShapeError):
            normalize_vector(np.float64(3.0))


class TestBlockView:
    def test_shape(self):
        p = HogParameters()
        cells = np.zeros((16, 8, 9))
        assert block_view(cells, p).shape == (15, 7, 36)

    def test_block_content_ordering(self):
        """Features are cell-row-major then bin within the block."""
        p = HogParameters()
        cells = np.arange(4 * 4 * 9, dtype=np.float64).reshape(4, 4, 9)
        blocks = block_view(cells, p)
        expected = np.concatenate(
            [cells[0, 0], cells[0, 1], cells[1, 0], cells[1, 1]]
        )
        np.testing.assert_array_equal(blocks[0, 0], expected)

    def test_overlap(self):
        """Adjacent blocks share two cells."""
        p = HogParameters()
        cells = np.random.default_rng(0).random((3, 3, 9))
        blocks = block_view(cells, p)
        np.testing.assert_array_equal(blocks[0, 0][9:18], blocks[0, 1][:9])

    def test_stride_two(self):
        p = HogParameters(block_stride=2)
        cells = np.zeros((8, 8, 9))
        assert block_view(cells, p).shape == (4, 4, 36)

    def test_rejects_wrong_bins(self):
        with pytest.raises(ShapeError, match="cells must be"):
            block_view(np.zeros((4, 4, 8)), HogParameters())

    def test_rejects_subblock_grid(self):
        with pytest.raises(ShapeError, match="smaller"):
            block_view(np.zeros((1, 4, 9)), HogParameters())


class TestNormalizeBlocks:
    def test_each_block_unit_l2(self):
        p = HogParameters(normalization=BlockNormalization.L2)
        rng = np.random.default_rng(2)
        cells = rng.random((6, 6, 9)) + 0.05
        blocks = normalize_blocks(cells, p)
        norms = np.linalg.norm(blocks, axis=-1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-4)

    def test_l2_hys_norm_at_most_one(self):
        p = HogParameters()
        rng = np.random.default_rng(3)
        cells = rng.random((6, 6, 9))
        blocks = normalize_blocks(cells, p)
        assert np.linalg.norm(blocks, axis=-1).max() <= 1.0 + 1e-6
