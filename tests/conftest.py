"""Shared fixtures.

Heavy artifacts (the synthetic dataset and a trained SVM) are session
scoped: training a pedestrian model once (~5 s) serves every test that
needs realistic weights.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiments import train_window_model
from repro.dataset import DatasetSizes, SyntheticPedestrianDataset
from repro.hog import HogExtractor, HogParameters


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def default_params():
    return HogParameters()


@pytest.fixture(scope="session")
def extractor(default_params):
    return HogExtractor(default_params)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small but learnable dataset shared across the suite."""
    return SyntheticPedestrianDataset(
        seed=7, sizes=DatasetSizes(80, 160, 30, 120)
    )


@pytest.fixture(scope="session")
def trained(tiny_dataset):
    """(model, extractor) trained on the tiny dataset's training split."""
    return train_window_model(tiny_dataset.train_windows())


@pytest.fixture(scope="session")
def trained_model(trained):
    return trained[0]


@pytest.fixture()
def gradient_ramp():
    """A horizontal intensity ramp: constant fx, zero fy."""
    return np.tile(np.linspace(0.0, 1.0, 64), (64, 1))


@pytest.fixture()
def checkerboard():
    base = np.indices((64, 64)).sum(axis=0) % 2
    return base.astype(np.float64)
