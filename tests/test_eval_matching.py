"""Unit tests for detection-to-ground-truth matching."""

import pytest

from repro.dataset.scene import GroundTruthBox
from repro.detect import Detection
from repro.errors import ParameterError
from repro.eval import match_detections


def det(top=0, left=0, h=128, w=64, score=1.0):
    return Detection(top=top, left=left, height=h, width=w, score=score, scale=1.0)


def gt(top=0, left=0, h=128, w=64):
    return GroundTruthBox(top=top, left=left, height=h, width=w)


class TestMatchDetections:
    def test_exact_match(self):
        result = match_detections([det()], [gt()])
        assert len(result.matched) == 1
        assert result.recall == 1.0
        assert result.precision == 1.0

    def test_near_match_within_iou(self):
        result = match_detections([det(top=8, left=4)], [gt()])
        assert len(result.matched) == 1

    def test_far_detection_unmatched(self):
        result = match_detections([det(top=400, left=400)], [gt()])
        assert result.matched == []
        assert len(result.unmatched_detections) == 1
        assert len(result.missed_ground_truth) == 1
        assert result.precision == 0.0
        assert result.recall == 0.0

    def test_one_to_one_matching(self):
        """Two detections on one ground truth: only the best matches."""
        dets = [det(score=0.9), det(top=4, score=0.5)]
        result = match_detections(dets, [gt()])
        assert len(result.matched) == 1
        assert result.matched[0][0].score == 0.9
        assert len(result.unmatched_detections) == 1

    def test_multiple_ground_truths(self):
        dets = [det(score=0.9), det(top=300, score=0.8)]
        gts = [gt(), gt(top=300)]
        result = match_detections(dets, gts)
        assert len(result.matched) == 2
        assert result.recall == 1.0

    def test_empty_inputs(self):
        result = match_detections([], [])
        assert result.recall == 1.0
        assert result.precision == 1.0

    def test_iou_threshold_strictness(self):
        loose = match_detections([det(top=40)], [gt()], iou_threshold=0.3)
        strict = match_detections([det(top=40)], [gt()], iou_threshold=0.9)
        assert len(loose.matched) == 1
        assert strict.matched == []

    def test_rejects_bad_threshold(self):
        with pytest.raises(ParameterError):
            match_detections([], [], iou_threshold=0.0)

    def test_ground_truth_box_properties(self):
        g = gt(top=10, left=20, h=100, w=50)
        assert g.bottom == 110
        assert g.right == 70
        assert g.center == (60.0, 45.0)
