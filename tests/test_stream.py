"""Unit tests for the stream primitives: queue, sources, record types."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ParameterError, StreamError
from repro.stream import (
    ArraySource,
    BackpressurePolicy,
    BoundedFrameQueue,
    CLOSED,
    FrameResult,
    FrameSource,
    FrameStatus,
    StreamReport,
    SyntheticVideoSource,
)


class TestBoundedFrameQueue:
    def test_fifo_order(self):
        q = BoundedFrameQueue(4)
        for i in range(3):
            q.put(i)
        assert [q.get(), q.get(), q.get()] == [0, 1, 2]

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ParameterError, match="maxsize"):
            BoundedFrameQueue(0)

    def test_drop_oldest_displaces_head(self):
        q = BoundedFrameQueue(2, BackpressurePolicy.DROP_OLDEST)
        assert q.put("a") is None
        assert q.put("b") is None
        assert q.put("c") == "a"
        assert q.dropped == 1
        assert q.get() == "b"

    def test_drop_newest_rejects_incoming(self):
        q = BoundedFrameQueue(2, "drop-newest")
        q.put("a")
        q.put("b")
        assert q.put("c") == "c"
        assert q.dropped == 1
        assert q.get() == "a"

    def test_block_policy_waits_for_space(self):
        q = BoundedFrameQueue(1, BackpressurePolicy.BLOCK)
        q.put("a")
        done = threading.Event()

        def produce():
            q.put("b")  # blocks until the consumer makes room
            done.set()

        t = threading.Thread(target=produce, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not done.is_set()
        assert q.get() == "a"
        t.join(timeout=2.0)
        assert done.is_set()
        assert q.dropped == 0

    def test_get_on_closed_empty_returns_sentinel(self):
        q = BoundedFrameQueue(2)
        q.put("a")
        q.close()
        assert q.get() == "a"  # drains backlog first
        assert q.get() is CLOSED

    def test_put_on_closed_raises(self):
        q = BoundedFrameQueue(2)
        q.close()
        with pytest.raises(StreamError, match="closed"):
            q.put("a")

    def test_close_wakes_blocked_producer(self):
        q = BoundedFrameQueue(1)
        q.put("a")
        error = []

        def produce():
            try:
                q.put("b")
            except StreamError as exc:
                error.append(exc)

        t = threading.Thread(target=produce, daemon=True)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=2.0)
        assert error, "blocked put() did not wake on close()"

    def test_close_drain_discards_backlog(self):
        q = BoundedFrameQueue(4)
        q.put("a")
        q.put("b")
        discarded = q.close(drain=True)
        assert q.get() is CLOSED
        # The drain is not silent: the discarded backlog is returned
        # for the caller to account and counted as dropped.
        assert discarded == ["a", "b"]
        assert q.dropped == 2

    def test_close_without_drain_returns_nothing_counts_nothing(self):
        q = BoundedFrameQueue(4)
        q.put("a")
        assert q.close() == []
        assert q.dropped == 0
        assert q.get() == "a"
        assert q.get() is CLOSED

    def test_depth_peak_tracks_high_water_mark(self):
        q = BoundedFrameQueue(4)
        q.put("a")
        q.put("b")
        q.get()
        q.put("c")
        assert q.depth == 2
        assert q.depth_peak == 2


class TestSources:
    def test_array_source_is_a_frame_source(self):
        src = ArraySource([np.zeros((8, 8))])
        assert isinstance(src, FrameSource)
        assert len(list(src)) == 1

    def test_synthetic_video_deterministic(self):
        a = list(SyntheticVideoSource(3, height=96, width=96, seed=5))
        b = list(SyntheticVideoSource(3, height=96, width=96, seed=5))
        for fa, fb in zip(a, b):
            np.testing.assert_array_equal(fa, fb)

    def test_synthetic_video_length_and_shape(self):
        src = SyntheticVideoSource(4, height=96, width=128)
        assert len(src) == 4
        frames = list(src)
        assert len(frames) == 4
        assert all(f.shape == (96, 128) for f in frames)

    def test_scene_hold_repeats_frames(self):
        frames = list(
            SyntheticVideoSource(4, height=96, width=96, scene_hold=2)
        )
        np.testing.assert_array_equal(frames[0], frames[1])
        assert not np.array_equal(frames[1], frames[2])

    def test_corrupt_frames_are_nan(self):
        frames = list(
            SyntheticVideoSource(3, height=96, width=96, corrupt_frames=[1])
        )
        assert np.isnan(frames[1]).all()
        assert np.isfinite(frames[0]).all()

    def test_corrupt_index_out_of_range(self):
        with pytest.raises(ParameterError, match="corrupt"):
            SyntheticVideoSource(3, corrupt_frames=[3])

    def test_rejects_bad_lengths(self):
        with pytest.raises(ParameterError, match="n_frames"):
            SyntheticVideoSource(0)
        with pytest.raises(ParameterError, match="scene_hold"):
            SyntheticVideoSource(2, scene_hold=0)


class TestRecordTypes:
    def test_frame_result_ok_flag(self):
        ok = FrameResult(index=0, status=FrameStatus.OK)
        bad = FrameResult(index=1, status=FrameStatus.FAILED, error="E: x")
        assert ok.ok and not bad.ok

    def test_frame_result_to_dict(self):
        fr = FrameResult(index=2, status=FrameStatus.FAILED,
                         error="ImageError: NaN", latency_s=0.25, worker=1)
        d = fr.to_dict()
        assert d["index"] == 2
        assert d["status"] == "failed"
        assert d["latency_ms"] == pytest.approx(250.0)
        assert d["error"] == "ImageError: NaN"

    def test_stream_report_roundtrip_fields(self):
        report = StreamReport(
            frames_in=10, frames_ok=8, frames_failed=1, frames_dropped=1,
            workers=2, policy="block", elapsed_s=1.0, achieved_fps=10.0,
            latency_p50_ms=5.0, latency_p95_ms=9.0, latency_max_ms=12.0,
            queue_depth_max=4.0, queue_depth_mean=2.0,
            worker_utilization=0.8,
        )
        assert report.frames_out == 10
        d = report.to_dict()
        assert d["frames_dropped"] == 1
        assert d["latency_p95_ms"] == 9.0

    def test_stream_report_rejects_negative_counts(self):
        with pytest.raises(ParameterError, match="frames_ok"):
            StreamReport(
                frames_in=1, frames_ok=-1, frames_failed=0, frames_dropped=0,
                workers=1, policy="block", elapsed_s=0.0, achieved_fps=0.0,
                latency_p50_ms=0.0, latency_p95_ms=0.0, latency_max_ms=0.0,
                queue_depth_max=0.0, queue_depth_mean=0.0,
                worker_utilization=0.0,
            )
