"""Unit tests for the :mod:`repro.telemetry` observability layer."""

from __future__ import annotations

import json

import pytest

from repro.errors import ParameterError
from repro.telemetry import (
    Histogram,
    MetricsRegistry,
    NULL_SPAN,
    NULL_TELEMETRY,
    TelemetrySnapshot,
    aggregate_by_leaf,
    render_text,
    snapshot_from_json,
    snapshot_to_json,
    stage_report,
)


class TestCounters:
    def test_starts_at_zero(self):
        reg = MetricsRegistry()
        assert reg.counter("never.touched") == 0

    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("windows", 10)
        reg.inc("windows", 5)
        reg.inc("frames")
        assert reg.counter("windows") == 15
        assert reg.counter("frames") == 1

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("fps", 30.0)
        reg.set_gauge("fps", 60.0)
        assert reg.snapshot().gauges["fps"] == 60.0


class TestHistogram:
    def test_quantiles_of_known_sample(self):
        hist = Histogram()
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        s = hist.summary()
        assert s.count == 100
        assert s.minimum == 1.0
        assert s.maximum == 100.0
        assert s.p50 == pytest.approx(50.5)
        assert s.p95 == pytest.approx(95.05)
        assert s.mean == pytest.approx(50.5)

    def test_single_observation(self):
        hist = Histogram()
        hist.observe(42.0)
        s = hist.summary()
        assert s.p50 == s.p95 == s.minimum == s.maximum == 42.0

    def test_empty_summary_is_zeroed(self):
        s = Histogram().summary()
        assert s.count == 0
        assert s.minimum == 0.0 and s.maximum == 0.0
        assert s.mean == 0.0

    def test_sample_cap_keeps_exact_aggregates(self):
        hist = Histogram(max_samples=10)
        for v in range(100):
            hist.observe(float(v))
        s = hist.summary()
        assert s.count == 100          # aggregates are exact...
        assert s.maximum == 99.0
        assert s.total == pytest.approx(sum(range(100)))
        assert s.p95 <= 9.0            # ...quantiles from first 10 only

    def test_registry_observe(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("latency", v)
        snap = reg.snapshot()
        assert snap.histograms["latency"].count == 3
        assert snap.histograms["latency"].p50 == 2.0

    def test_invalid_max_samples(self):
        with pytest.raises(ParameterError):
            Histogram(max_samples=0)


class TestSpans:
    def test_span_records_duration(self):
        reg = MetricsRegistry()
        with reg.span("work"):
            pass
        (record,) = reg.span_records
        assert record.name == "work"
        assert record.path == "work"
        assert record.depth == 0
        assert record.duration_ns >= 0

    def test_nested_spans_build_paths(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("middle"):
                with reg.span("inner"):
                    pass
            with reg.span("middle"):
                pass
        paths = [r.path for r in reg.span_records]
        # Children complete before parents.
        assert paths == [
            "outer/middle/inner",
            "outer/middle",
            "outer/middle",
            "outer",
        ]
        depths = {r.path: r.depth for r in reg.span_records}
        assert depths["outer"] == 0
        assert depths["outer/middle"] == 1
        assert depths["outer/middle/inner"] == 2

    def test_nested_aggregation_by_path(self):
        reg = MetricsRegistry()
        for _ in range(3):
            with reg.span("frame"):
                with reg.span("stage"):
                    pass
        snap = reg.snapshot()
        assert snap.spans["frame"].count == 3
        assert snap.spans["frame/stage"].count == 3
        # Parent time includes child time.
        assert snap.spans["frame"].total >= snap.spans["frame/stage"].total

    def test_span_stack_unwinds_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            with reg.span("outer"):
                with reg.span("failing"):
                    raise ValueError("boom")
        # Both spans closed despite the exception; a new span is a root.
        with reg.span("later"):
            pass
        assert reg.snapshot().spans["later"].count == 1

    def test_timer_alias(self):
        reg = MetricsRegistry()
        with reg.timer("aliased"):
            pass
        assert reg.snapshot().spans["aliased"].count == 1

    def test_max_spans_bounds_raw_records(self):
        reg = MetricsRegistry(max_spans=5)
        for _ in range(10):
            with reg.span("s"):
                pass
        assert len(reg.span_records) == 5
        assert reg.snapshot().spans["s"].count == 10  # aggregation continues


class TestDisabledMode:
    def test_disabled_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c", 5)
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1.0)
        with reg.span("s"):
            pass
        snap = reg.snapshot()
        assert snap.counters == {}
        assert snap.gauges == {}
        assert snap.histograms == {}
        assert snap.spans == {}

    def test_disabled_span_is_shared_null_object(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.span("a") is NULL_SPAN
        assert reg.span("b") is NULL_SPAN  # no per-call allocation

    def test_null_telemetry_singleton_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.span("x") is NULL_SPAN


class TestSnapshotExport:
    def _populated(self) -> TelemetrySnapshot:
        reg = MetricsRegistry()
        reg.inc("detect.windows_scanned", 755)
        reg.set_gauge("hw.frames_per_second", 60.28)
        reg.observe("score", 0.5)
        reg.observe("score", 1.5)
        with reg.span("detect.frame"):
            with reg.span("detect.nms"):
                pass
        return reg.snapshot()

    def test_json_round_trip(self):
        snap = self._populated()
        restored = snapshot_from_json(snapshot_to_json(snap))
        assert restored == snap

    def test_json_is_valid_and_sorted(self):
        data = json.loads(snapshot_to_json(self._populated()))
        assert set(data) == {"counters", "gauges", "histograms", "spans"}
        assert data["counters"]["detect.windows_scanned"] == 755

    def test_snapshot_is_immutable_copy(self):
        reg = MetricsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        reg.inc("c")
        assert snap.counters["c"] == 1
        assert reg.snapshot().counters["c"] == 2

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("c")
        with reg.span("s"):
            pass
        reg.reset()
        snap = reg.snapshot()
        assert snap.counters == {} and snap.spans == {}


class TestStageReport:
    def test_aggregate_by_leaf_merges_across_parents(self):
        reg = MetricsRegistry()
        with reg.span("detect.frame"):
            with reg.span("hog.extract"):
                with reg.span("hog.gradient"):
                    pass
        with reg.span("accel.frame"):
            with reg.span("hog.extract"):
                with reg.span("hog.gradient"):
                    pass
        leaves = aggregate_by_leaf(reg.snapshot())
        assert leaves["hog.gradient"].count == 2
        assert leaves["hog.extract"].count == 2

    def test_stage_report_shape(self):
        reg = MetricsRegistry()
        with reg.span("detect.frame"):
            with reg.span("hog.gradient"):
                pass
            with reg.span("detect.classify"):
                pass
            with reg.span("detect.nms"):
                pass
        reg.inc("detect.scale[1.00].windows_scanned", 100)
        reg.inc("detect.scale[1.00].windows_accepted", 3)
        reg.inc("detect.scale[1.00].windows_rejected", 97)
        reg.inc("detect.windows_scanned", 100)
        report = stage_report(reg.snapshot())
        assert {"gradient", "classify", "nms"} <= set(report["stages"])
        for entry in report["stages"].values():
            assert {"count", "total_ms", "p50_ms", "p95_ms",
                    "max_ms"} == set(entry)
        assert report["windows"]["1.00"]["windows_scanned"] == 100
        assert report["windows"]["total"]["windows_scanned"] == 100

    def test_render_text_lists_stages_and_scales(self):
        reg = MetricsRegistry()
        with reg.span("hog.gradient"):
            pass
        reg.inc("detect.scale[1.20].windows_scanned", 7)
        text = render_text(reg.snapshot())
        assert "gradient" in text
        assert "1.20" in text
