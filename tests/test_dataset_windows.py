"""Unit tests for dataset window containers and generators."""

import numpy as np
import pytest

from repro.dataset import (
    WindowSet,
    negative_window,
    render_pedestrian,
    textured_background,
)
from repro.dataset.pedestrian import sample_appearance
from repro.errors import ParameterError, ShapeError


class TestWindowSet:
    def test_counts(self):
        ws = WindowSet(
            images=[np.zeros((4, 4))] * 5,
            labels=np.array([1, 1, 0, 0, 0]),
        )
        assert len(ws) == 5
        assert ws.n_positive == 2
        assert ws.n_negative == 3

    def test_subset_preserves_pairing(self):
        imgs = [np.full((2, 2), i, dtype=float) for i in range(4)]
        ws = WindowSet(images=imgs, labels=np.array([0, 1, 0, 1]))
        sub = ws.subset([3, 0])
        assert sub.images[0][0, 0] == 3.0
        np.testing.assert_array_equal(sub.labels, [1, 0])

    def test_concatenate(self):
        a = WindowSet(images=[np.zeros((2, 2))], labels=np.array([1]))
        b = WindowSet(images=[np.ones((2, 2))] * 2, labels=np.array([0, 0]))
        merged = WindowSet.concatenate([a, b])
        assert len(merged) == 3
        assert merged.n_positive == 1

    def test_rejects_count_mismatch(self):
        with pytest.raises(ShapeError, match="labels"):
            WindowSet(images=[np.zeros((2, 2))], labels=np.array([1, 0]))

    def test_rejects_nonbinary_labels(self):
        with pytest.raises(ShapeError, match="0 or 1"):
            WindowSet(images=[np.zeros((2, 2))], labels=np.array([2]))


class TestBackground:
    def test_texture_shape_and_range(self, rng):
        bg = textured_background(rng, 64, 48)
        assert bg.shape == (64, 48)
        assert bg.min() >= 0.0
        assert bg.max() <= 1.0

    def test_base_level_respected(self, rng):
        bg = textured_background(rng, 64, 64, base_level=0.5)
        assert bg.mean() == pytest.approx(0.5, abs=0.1)

    def test_rejects_zero_size(self, rng):
        with pytest.raises(ParameterError):
            textured_background(rng, 0, 10)

    def test_negative_window_shape_and_range(self, rng):
        win = negative_window(rng)
        assert win.shape == (128, 64)
        assert 0.0 <= win.min() and win.max() <= 1.0

    def test_negative_windows_vary(self, rng):
        a = negative_window(rng)
        b = negative_window(rng)
        assert not np.allclose(a, b)


class TestRenderPedestrian:
    def test_shape_and_range(self, rng):
        img, app = render_pedestrian(rng)
        assert img.shape == (128, 64)
        assert 0.0 <= img.min() and img.max() <= 1.0
        assert 0.0 < app.person_height_frac < 1.0

    def test_custom_size(self, rng):
        img, _ = render_pedestrian(rng, 96, 48)
        assert img.shape == (96, 48)

    def test_figure_adds_structure(self, rng):
        """A rendered figure has far more edge energy in the window
        center than the same generator's background-only windows."""
        from repro.imgproc import gradient_polar

        ped, _ = render_pedestrian(rng, with_clutter=False)
        center_energy = gradient_polar(ped)[0][32:96, 16:48].sum()
        bg = textured_background(rng, 128, 64)
        bg_energy = gradient_polar(bg)[0][32:96, 16:48].sum()
        assert center_energy > 2.0 * bg_energy

    def test_appearance_reused(self, rng):
        app = sample_appearance(rng)
        img1, app1 = render_pedestrian(
            np.random.default_rng(0), appearance=app, with_clutter=False
        )
        assert app1 is app

    def test_rejects_tiny_window(self, rng):
        with pytest.raises(ParameterError, match="too small"):
            render_pedestrian(rng, 8, 4)

    def test_contrast_sign_both_directions(self):
        """Across many samples, both bright-on-dark and dark-on-bright
        figures occur."""
        rng = np.random.default_rng(0)
        signs = {np.sign(sample_appearance(rng).contrast) for _ in range(50)}
        assert signs == {-1.0, 1.0}
