"""Unit tests for the hardware (shift-add, fixed-point) feature scaler."""

import numpy as np
import pytest

from repro.errors import HardwareConfigError, ShapeError
from repro.hardware import HardwareFeatureScaler
from repro.hardware.fixed_point import FixedPointFormat
from repro.hog import FeatureScaler, HogExtractor


@pytest.fixture(scope="module")
def base_grid():
    rng = np.random.default_rng(61)
    return HogExtractor().extract(rng.random((192, 96)))


class TestResample:
    def test_output_shape(self):
        grid = np.random.default_rng(0).random((8, 8, 9))
        out = HardwareFeatureScaler().resample(grid, (5, 5))
        assert out.shape == (5, 5, 9)

    def test_output_on_quantization_grid(self):
        fmt = FixedPointFormat(12, 10)
        scaler = HardwareFeatureScaler(feature_format=fmt)
        grid = np.random.default_rng(1).random((6, 6, 4))
        out = scaler.resample(grid, (4, 4))
        np.testing.assert_array_equal(out, np.round(out / fmt.resolution) * fmt.resolution)

    def test_close_to_exact_bilinear(self):
        """Shift-add coefficients with 3 terms track the exact bilinear
        resample within a small bound."""
        from repro.imgproc import resize_grid

        rng = np.random.default_rng(2)
        grid = rng.random((12, 10, 9))
        hw = HardwareFeatureScaler(max_terms=3).resample(grid, (8, 7))
        exact = resize_grid(grid, (8, 7))
        assert np.abs(hw - exact).max() < 0.04

    def test_exact_mode_matches_software_bilinear(self):
        from repro.imgproc import resize_grid

        rng = np.random.default_rng(3)
        grid = rng.random((10, 10, 4))
        fine = FixedPointFormat(32, 30)
        hw = HardwareFeatureScaler(max_terms=None, feature_format=fine)
        np.testing.assert_allclose(
            hw.resample(grid, (6, 6)), resize_grid(grid, (6, 6)), atol=1e-6
        )

    def test_more_terms_closer_to_exact(self):
        from repro.imgproc import resize_grid

        rng = np.random.default_rng(4)
        grid = rng.random((16, 16, 9))
        exact = resize_grid(grid, (11, 11))
        fine = FixedPointFormat(24, 22)
        err1 = np.abs(
            HardwareFeatureScaler(fine, max_terms=1).resample(grid, (11, 11)) - exact
        ).max()
        err3 = np.abs(
            HardwareFeatureScaler(fine, max_terms=4).resample(grid, (11, 11)) - exact
        ).max()
        assert err3 < err1

    def test_rejects_2d(self):
        with pytest.raises(ShapeError, match="3-D"):
            HardwareFeatureScaler().resample(np.zeros((4, 4)), (2, 2))

    def test_rejects_zero_output(self):
        with pytest.raises(HardwareConfigError):
            HardwareFeatureScaler().resample(np.zeros((4, 4, 2)), (0, 2))

    def test_rejects_bad_terms(self):
        with pytest.raises(HardwareConfigError, match="max_terms"):
            HardwareFeatureScaler(max_terms=0)


class TestScaleGrid:
    def test_shapes_match_software_scaler(self, base_grid):
        hw = HardwareFeatureScaler().scale_grid(base_grid, 1.5)
        sw = FeatureScaler().scale_grid(base_grid, 1.5)
        assert hw.blocks.shape == sw.blocks.shape
        assert hw.cells.shape == sw.cells.shape
        assert hw.scale == sw.scale

    def test_tracks_software_scaler(self, base_grid):
        hw = HardwareFeatureScaler().scale_grid(base_grid, 1.3)
        sw = FeatureScaler().scale_grid(base_grid, 1.3)
        assert np.abs(hw.blocks - sw.blocks).max() < 0.05

    def test_rescale_to_window_descriptor(self, base_grid):
        desc = HardwareFeatureScaler().rescale_to_window(base_grid)
        assert desc.size == base_grid.params.descriptor_length

    def test_rejects_overscale(self, base_grid):
        with pytest.raises(ShapeError, match="fewer cells"):
            HardwareFeatureScaler().scale_grid(base_grid, 40.0)


class TestEndToEndScoreImpact:
    def test_shift_add_decision_drift_is_small(self, base_grid, trained_model):
        """Classifying hardware-scaled features flips only score-marginal
        windows relative to software-scaled features."""
        from repro.detect import classify_grid

        sw = FeatureScaler().scale_grid(base_grid, 1.25)
        hw = HardwareFeatureScaler().scale_grid(base_grid, 1.25)
        s_sw = classify_grid(sw, trained_model).ravel()
        s_hw = classify_grid(hw, trained_model).ravel()
        assert np.abs(s_sw - s_hw).max() < 0.6
        confident = np.abs(s_sw) > 0.6
        assert np.array_equal(s_sw[confident] > 0, s_hw[confident] > 0)
