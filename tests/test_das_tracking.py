"""Tests for frame-to-frame tracking and time-to-collision."""

import pytest

from repro.das import IouTracker, time_to_collision
from repro.detect import Detection
from repro.errors import ParameterError


def det(top=0.0, left=0.0, h=128.0, w=64.0, score=1.0, label="pedestrian"):
    return Detection(top=top, left=left, height=h, width=w, score=score,
                     scale=1.0, label=label)


def moving_sequence(n=6, step=6.0, growth=0.0):
    """n frames of one box drifting right and optionally expanding."""
    frames = []
    h = 128.0
    for i in range(n):
        frames.append([det(top=100.0, left=50.0 + i * step, h=h, w=h / 2)])
        h *= 1.0 + growth
    return frames


class TestIouTracker:
    def test_single_object_keeps_one_id(self):
        tracker = IouTracker()
        for frame in moving_sequence():
            tracks = tracker.update(frame)
        assert len(tracks) == 1
        assert tracks[0].age == 6
        assert tracks[0].track_id == 1

    def test_two_distant_objects_two_tracks(self):
        tracker = IouTracker()
        for i in range(4):
            tracker.update([
                det(top=0.0, left=10.0 + i * 2),
                det(top=400.0, left=500.0 - i * 2),
            ])
        assert len(tracker.tracks) == 2
        ids = {t.track_id for t in tracker.tracks}
        assert ids == {1, 2}

    def test_track_retires_after_misses(self):
        tracker = IouTracker(max_missed=2)
        tracker.update([det()])
        for _ in range(3):
            tracker.update([])
        assert tracker.tracks == []

    def test_track_survives_brief_occlusion(self):
        tracker = IouTracker(max_missed=2)
        tracker.update([det(left=0.0)])
        tracker.update([det(left=5.0)])
        tracker.update([])  # occluded one frame
        tracks = tracker.update([det(left=15.0)])
        assert len(tracks) == 1
        assert tracks[0].track_id == 1

    def test_constant_velocity_prediction(self):
        tracker = IouTracker()
        for frame in moving_sequence(n=5, step=8.0):
            tracker.update(frame)
        track = tracker.tracks[0]
        d_top, d_left = track.velocity()
        assert d_left == pytest.approx(8.0)
        assert d_top == pytest.approx(0.0)
        pred = track.predicted_box()
        assert pred.left == pytest.approx(track.last.left + 8.0)

    def test_prediction_bridges_fast_motion(self):
        """After the velocity is learned, steps too large for static
        association (IoU of consecutive boxes < threshold) still match
        thanks to the constant-velocity prediction."""
        tracker = IouTracker(iou_threshold=0.4)
        # Warm-up: a 20-px step (IoU ~0.52) teaches the velocity.
        tracker.update([det(left=0.0)])
        tracker.update([det(left=20.0)])
        # 40-px steps give consecutive-box IoU ~0.23 < 0.4; only the
        # velocity-led predicted box stays above the gate.
        positions = [60.0, 100.0, 140.0, 180.0]
        for left in positions:
            tracks = tracker.update([det(left=left)])
        assert len(tracks) == 1
        assert tracks[0].age == 2 + len(positions)

    def test_labels_do_not_cross_associate(self):
        tracker = IouTracker()
        tracker.update([det(label="pedestrian")])
        tracker.update([det(label="vehicle", h=64.0, w=128.0)])
        assert len(tracker.tracks) == 2

    def test_confirmed_requires_min_hits(self):
        tracker = IouTracker(min_hits=3)
        tracker.update([det()])
        tracker.update([det(left=2.0)])
        assert tracker.confirmed_tracks() == []
        tracker.update([det(left=4.0)])
        assert len(tracker.confirmed_tracks()) == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            IouTracker(iou_threshold=0.0)
        with pytest.raises(ParameterError):
            IouTracker(max_missed=-1)
        with pytest.raises(ParameterError):
            IouTracker(min_hits=0)


class TestTimeToCollision:
    def test_expanding_box_gives_finite_ttc(self):
        tracker = IouTracker()
        growth = 0.05  # 5 % taller per frame
        for frame in moving_sequence(n=6, step=0.0, growth=growth):
            tracker.update(frame)
        track = tracker.tracks[0]
        ttc = time_to_collision(track, frame_rate_hz=60.0)
        # TTC ~ 1/growth frames = 20 frames = 1/3 s.
        assert ttc == pytest.approx(20.0 / 60.0, rel=0.05)

    def test_receding_or_static_box_gives_infinite_ttc(self):
        tracker = IouTracker()
        for frame in moving_sequence(n=5, step=2.0, growth=0.0):
            tracker.update(frame)
        assert time_to_collision(tracker.tracks[0], 60.0) == float("inf")

    def test_faster_approach_shorter_ttc(self):
        def ttc_for(growth):
            tracker = IouTracker()
            for frame in moving_sequence(n=6, growth=growth):
                tracker.update(frame)
            return time_to_collision(tracker.tracks[0], 60.0)

        assert ttc_for(0.10) < ttc_for(0.02)

    def test_higher_frame_rate_same_seconds(self):
        """TTC in seconds is frame-rate invariant for per-frame growth
        measured at that rate (the estimate scales correctly)."""
        tracker = IouTracker()
        for frame in moving_sequence(n=6, growth=0.05):
            tracker.update(frame)
        track = tracker.tracks[0]
        assert time_to_collision(track, 30.0) == pytest.approx(
            2.0 * time_to_collision(track, 60.0)
        )

    def test_rejects_bad_frame_rate(self):
        tracker = IouTracker()
        tracker.update([det()])
        with pytest.raises(ParameterError):
            time_to_collision(tracker.tracks[0], 0.0)

    def test_single_observation_infinite(self):
        tracker = IouTracker()
        tracker.update([det()])
        assert time_to_collision(tracker.tracks[0], 60.0) == float("inf")
