"""Unit tests for the Pegasos trainer and trainer facade."""

import numpy as np
import pytest

from repro.errors import ParameterError, TrainingError
from repro.svm import PegasosTrainer, TrainOptions, train_linear_svm
from repro.svm.trainer import normalize_labels


def blobs(n=80, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.normal(gap, 0.6, size=(n, 3))
    neg = rng.normal(-gap, 0.6, size=(n, 3))
    x = np.vstack([pos, neg])
    y = np.concatenate([np.ones(n), -np.ones(n)])
    return x, y


class TestPegasos:
    def test_separable_data(self):
        x, y = blobs()
        result = PegasosTrainer(lambda_reg=1e-3, n_epochs=40, seed=1).fit(x, y)
        assert np.mean(result.model.predict(x) == y) >= 0.99

    def test_deterministic(self):
        x, y = blobs(seed=2)
        a = PegasosTrainer(seed=5).fit(x, y)
        b = PegasosTrainer(seed=5).fit(x, y)
        np.testing.assert_array_equal(a.model.weights, b.model.weights)

    def test_objective_reported(self):
        x, y = blobs()
        result = PegasosTrainer(n_epochs=30).fit(x, y)
        assert result.primal_objective >= 0.0
        assert result.n_updates > 0

    def test_agrees_with_dcd_direction(self):
        """Two independent optimizers find (nearly) the same hyper-plane:
        cosine similarity of weight vectors close to 1."""
        from repro.svm import DualCoordinateDescent

        x, y = blobs(gap=1.2, seed=4)
        n = x.shape[0]
        c = 1.0
        w_dcd = DualCoordinateDescent(c=c, tol=1e-5).fit(x, y).model.weights
        w_peg = PegasosTrainer(
            lambda_reg=1.0 / (n * c), n_epochs=150, seed=0
        ).fit(x, y).model.weights
        cos = w_dcd @ w_peg / (np.linalg.norm(w_dcd) * np.linalg.norm(w_peg))
        assert cos > 0.97

    def test_rejects_bad_lambda(self):
        with pytest.raises(ParameterError, match="lambda"):
            PegasosTrainer(lambda_reg=0.0)

    def test_rejects_single_class(self):
        with pytest.raises(TrainingError, match="single class"):
            PegasosTrainer().fit(np.ones((4, 2)), np.ones(4))


class TestNormalizeLabels:
    def test_pm_one_passthrough(self):
        np.testing.assert_array_equal(
            normalize_labels(np.array([-1, 1, 1])), [-1.0, 1.0, 1.0]
        )

    def test_zero_one_mapped(self):
        np.testing.assert_array_equal(
            normalize_labels(np.array([0, 1, 0])), [-1.0, 1.0, -1.0]
        )

    def test_bool_mapped(self):
        np.testing.assert_array_equal(
            normalize_labels(np.array([True, False])), [1.0, -1.0]
        )

    def test_rejects_multiclass(self):
        with pytest.raises(TrainingError, match="binary"):
            normalize_labels(np.array([0, 1, 2]))

    def test_rejects_empty(self):
        with pytest.raises(TrainingError, match="empty"):
            normalize_labels(np.array([]))


class TestTrainFacade:
    def test_dcd_default(self):
        x, y = blobs(n=40)
        model = train_linear_svm(x, (y > 0).astype(int))
        assert np.mean(model.predict(x) == y) == 1.0

    def test_pegasos_option(self):
        x, y = blobs(n=40)
        model = train_linear_svm(
            x, y, TrainOptions(algorithm="pegasos", max_iter=400)
        )
        assert np.mean(model.predict(x) == y) >= 0.95

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ParameterError, match="algorithm"):
            TrainOptions(algorithm="smo")
