"""Integration tests for the core detector API and experiment drivers."""

import numpy as np
import pytest

from repro.core import (
    DetectorConfig,
    MultiScalePedestrianDetector,
    run_roc_experiment,
    run_table1,
)
from repro.core.experiments import run_scaling_experiment
from repro.dataset import DatasetSizes, SyntheticPedestrianDataset, WindowSet
from repro.errors import ParameterError, TrainingError


@pytest.fixture(scope="module")
def detector(tiny_dataset):
    return MultiScalePedestrianDetector.train_default(tiny_dataset)


class TestDetectorConfig:
    def test_defaults(self):
        cfg = DetectorConfig()
        assert cfg.strategy == "feature"
        assert cfg.scales == (1.0, 1.2)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ParameterError, match="strategy"):
            DetectorConfig(strategy="cascade")

    def test_rejects_bad_scaling_mode(self):
        with pytest.raises(ParameterError, match="scaling_mode"):
            DetectorConfig(scaling_mode="pixels")


class TestTraining:
    def test_train_default_classifies_training_data(self, tiny_dataset, detector):
        train = tiny_dataset.train_windows()
        correct = sum(
            detector.classify_window(img) == bool(label)
            for img, label in zip(train.images, train.labels)
        )
        assert correct / len(train) > 0.97

    def test_generalizes_to_test_split(self, tiny_dataset, detector):
        test = tiny_dataset.test_windows()
        correct = sum(
            detector.classify_window(img) == bool(label)
            for img, label in zip(test.images, test.labels)
        )
        assert correct / len(test) > 0.85

    def test_train_rejects_single_class(self):
        ws = WindowSet(
            images=[np.random.default_rng(0).random((128, 64))] * 3,
            labels=np.array([1, 1, 1]),
        )
        with pytest.raises(TrainingError, match="both classes"):
            MultiScalePedestrianDetector.train(ws)

    def test_model_dimension_checked(self, trained_model):
        from repro.hog import HogParameters

        cfg = DetectorConfig(hog=HogParameters(window_width=72))
        with pytest.raises(ParameterError, match="descriptor"):
            MultiScalePedestrianDetector(trained_model, cfg)


class TestDetection:
    def test_full_frame_detection(self, tiny_dataset, detector):
        scene = tiny_dataset.make_scene(
            height=288, width=288, n_pedestrians=1,
            pedestrian_heights=(128, 150), scene_index=8,
        )
        result = detector.detect(scene.image)
        gt = scene.boxes[0]
        assert any(
            abs(d.top - gt.top) < 32 and abs(d.left - gt.left) < 24
            for d in result.detections
        )

    def test_score_window_shape_guard(self, detector):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            detector.score_window(np.zeros((64, 64)))

    def test_image_strategy_variant(self, tiny_dataset, trained_model):
        det = MultiScalePedestrianDetector(
            trained_model, DetectorConfig(strategy="image")
        )
        scene = tiny_dataset.make_scene(height=256, width=256, n_pedestrians=0)
        result = det.detect(scene.image)
        assert result.scales_used == [1.0, 1.2]


class TestPersistence:
    def test_save_load_roundtrip(self, detector, tmp_path, tiny_dataset):
        path = tmp_path / "pedestrian.npz"
        detector.save_model(path)
        loaded = MultiScalePedestrianDetector.load_model(path)
        img = tiny_dataset.test_windows().images[0]
        assert loaded.score_window(img) == pytest.approx(
            detector.score_window(img)
        )


class TestAcceleratorBridge:
    def test_to_accelerator_inherits_scales(self, detector):
        acc = detector.to_accelerator()
        assert acc.config.scales == detector.config.scales

    def test_accelerator_agrees_with_software(self, detector, tiny_dataset):
        acc = detector.to_accelerator()
        img = tiny_dataset.test_windows().images[0]
        sw_score = detector.score_window(img)
        grid = detector.extractor.extract(img)
        hw_score = acc.classifier.classify_grid(grid).scores[0, 0]
        assert hw_score == pytest.approx(sw_score, abs=0.05)


class TestExperimentDrivers:
    @pytest.fixture(scope="class")
    def small_data(self):
        return SyntheticPedestrianDataset(
            seed=13, sizes=DatasetSizes(50, 100, 30, 120)
        )

    @pytest.fixture(scope="class")
    def experiment(self, small_data):
        return run_scaling_experiment(small_data, scales=(1.1, 1.5))

    def test_table1_structure(self, experiment):
        table = experiment.table1()
        assert len(table.rows) == 2
        assert table.n_positive == 30
        assert table.n_negative == 120
        assert table.baseline.accuracy_percent > 80.0

    def test_table1_format_contains_all_scales(self, experiment):
        text = experiment.table1().format()
        assert "1.0" in text and "1.1" in text and "1.5" in text

    def test_counts_are_bounded(self, experiment):
        table = experiment.table1()
        for row in table.rows:
            assert 0 <= row.image.true_positives <= 30
            assert 0 <= row.feature.true_negatives <= 120

    def test_roc_curves(self, experiment):
        image_curve, feature_curve = experiment.roc_at_scale(1.1)
        assert 0.8 < image_curve.auc <= 1.0
        assert 0.8 < feature_curve.auc <= 1.0
        assert experiment.roc_baseline().auc > 0.8

    def test_roc_unknown_scale_raises(self, experiment):
        with pytest.raises(ParameterError, match="not part"):
            experiment.roc_at_scale(1.3)

    def test_run_table1_wrapper(self, small_data):
        table = run_table1(small_data, scales=(1.2,))
        assert len(table.rows) == 1

    def test_run_roc_wrapper(self, small_data):
        result = run_roc_experiment(small_data, scales=(1.2,))
        assert 1.2 in result.image_curves
        assert "AUC" in result.format()

    def test_rejects_downscale_protocol(self, small_data):
        with pytest.raises(ParameterError, match="up-sample"):
            run_scaling_experiment(small_data, scales=(0.9,))
