"""Unit tests for repro.hog.extractor."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.hog import HogExtractor, HogParameters


@pytest.fixture(scope="module")
def frame(rng=np.random.default_rng(42)):
    """A 160x192 textured test frame (20x24 cells)."""
    return rng.random((160, 192))


@pytest.fixture(scope="module")
def grid(frame):
    return HogExtractor().extract(frame)


class TestExtract:
    def test_cell_grid_shape(self, grid):
        assert grid.cells.shape == (20, 24, 9)

    def test_block_grid_shape(self, grid):
        assert grid.blocks.shape == (19, 23, 36)

    def test_scale_defaults_to_one(self, grid):
        assert grid.scale == 1.0

    def test_features_finite_and_bounded(self, grid):
        assert np.all(np.isfinite(grid.blocks))
        assert np.linalg.norm(grid.blocks, axis=-1).max() <= 1.0 + 1e-6

    def test_color_input_accepted(self):
        img = np.random.default_rng(0).random((64, 64, 3))
        assert HogExtractor().extract(img).cells.shape == (8, 8, 9)

    def test_gamma_preprocessing_changes_features(self, frame):
        plain = HogExtractor().extract(frame)
        compressed = HogExtractor(HogParameters(gamma=0.5)).extract(frame)
        assert not np.allclose(plain.blocks, compressed.blocks)

    def test_global_gain_invariance(self, frame):
        """Block normalization cancels a global intensity gain."""
        a = HogExtractor().extract(frame).blocks
        b = HogExtractor().extract(frame * 0.5).blocks
        np.testing.assert_allclose(a, b, atol=1e-5)


class TestWindowDescriptor:
    def test_length(self, grid):
        assert grid.window_descriptor(0, 0).size == 3780

    def test_anchor_range(self, grid):
        rows, cols = grid.n_window_positions
        assert (rows, cols) == (20 - 16 + 1, 24 - 8 + 1)
        grid.window_descriptor(rows - 1, cols - 1)  # must not raise
        with pytest.raises(ShapeError, match="out of range"):
            grid.window_descriptor(rows, 0)

    def test_descriptor_equals_block_slice(self, grid):
        desc = grid.window_descriptor(2, 3)
        np.testing.assert_array_equal(
            desc, grid.blocks[2:17, 3:10].ravel()
        )

    def test_window_positions_iterates_all(self, grid):
        rows, cols = grid.n_window_positions
        positions = list(grid.window_positions())
        assert len(positions) == rows * cols
        assert positions[0] == (0, 0)
        assert positions[-1] == (rows - 1, cols - 1)

    def test_window_positions_stride(self, grid):
        positions = list(grid.window_positions(stride=2))
        assert all(r % 2 == 0 and c % 2 == 0 for r, c in positions)


class TestDescriptorMatrix:
    def test_matches_individual_descriptors(self, grid):
        matrix = grid.descriptor_matrix()
        positions = list(grid.window_positions())
        for idx in (0, 7, len(positions) - 1):
            r, c = positions[idx]
            np.testing.assert_array_equal(
                matrix[idx], grid.window_descriptor(r, c)
            )

    def test_strided_matrix(self, grid):
        m = grid.descriptor_matrix(stride=2)
        rows, cols = grid.n_window_positions
        assert m.shape[0] == ((rows + 1) // 2) * ((cols + 1) // 2)

    def test_empty_when_grid_too_small(self):
        small = HogExtractor().extract(np.random.default_rng(0).random((64, 48)))
        assert small.descriptor_matrix().shape == (0, 3780)


class TestExtractWindow:
    def test_shape_check(self):
        ex = HogExtractor()
        with pytest.raises(ShapeError, match="expected"):
            ex.extract_window(np.zeros((64, 64)))

    def test_matches_grid_origin_descriptor(self):
        rng = np.random.default_rng(9)
        window = rng.random((128, 64))
        ex = HogExtractor()
        direct = ex.extract_window(window)
        via_grid = ex.extract(window).window_descriptor(0, 0)
        np.testing.assert_array_equal(direct, via_grid)

    def test_translation_by_one_cell_shifts_window(self):
        """A window at anchor (0,1) of a wide image equals the descriptor
        of the sub-image starting one cell to the right — with spatial
        interpolation off so border voting matches exactly."""
        params = HogParameters(spatial_interpolation=False)
        ex = HogExtractor(params)
        rng = np.random.default_rng(11)
        wide = rng.random((128, 64 + 8))
        whole = ex.extract(wide)
        sub = ex.extract(wide[:, 8:])
        a = whole.window_descriptor(0, 1).reshape(15, 7, 36)
        b = sub.window_descriptor(0, 0).reshape(15, 7, 36)
        # Block column 0 touches the sub-image's replicated left border
        # (its gradients legitimately differ); all others match exactly.
        np.testing.assert_allclose(a[:, 1:], b[:, 1:], atol=1e-9)
