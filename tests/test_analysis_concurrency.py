"""Fixture tests for the five flow-aware concurrency rules.

Each rule gets at least one true-positive fixture and one *near-miss*
negative — a snippet one edit away from the violation that must stay
clean, pinning the rule's precision as well as its recall.
"""

from __future__ import annotations

import textwrap

from repro.analysis import get_rules, lint_paths


def lint_snippet(tmp_path, rule, source, relpath="pkg/mod.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return lint_paths([path], rules=get_rules([rule]), root=tmp_path)


class TestAsyncBlockingCall:
    RULE = "async-blocking-call"

    def test_time_sleep_in_coroutine_is_flagged(self, tmp_path):
        src = """
            import time

            async def handler():
                time.sleep(1)
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "time.sleep" in finding.message
        assert "asyncio" in finding.message

    def test_from_import_alias_is_resolved(self, tmp_path):
        src = """
            from time import sleep as pause

            async def handler():
                pause(1)
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "time.sleep" in finding.message

    def test_sync_function_is_exempt(self, tmp_path):
        src = """
            import time

            def worker():
                time.sleep(1)
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_unreachable_call_is_not_flagged(self, tmp_path):
        # The CFG knows the sleep is dead code.
        src = """
            import time

            async def handler():
                return 0
                time.sleep(1)
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_put_on_unbounded_queue_is_clean(self, tmp_path):
        src = """
            import queue

            async def handler(x):
                q = queue.Queue()
                q.put(x)
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_put_on_bounded_queue_is_flagged(self, tmp_path):
        src = """
            import queue

            async def handler(x):
                q = queue.Queue(8)
                q.put(x)
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "bounded queue" in finding.message

    def test_get_blocks_even_unbounded(self, tmp_path):
        src = """
            import queue

            async def handler():
                q = queue.Queue()
                return q.get()
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert ".get()" in finding.message

    def test_asyncio_queue_is_not_confused_with_queue_queue(
        self, tmp_path
    ):
        src = """
            import asyncio

            async def handler():
                q = asyncio.Queue()
                return await q.get()
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_pragma_suppresses(self, tmp_path):
        src = """
            import time

            async def handler():
                time.sleep(1)  # repro-lint: disable=async-blocking-call
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    SHUTDOWN_SHAPE = """
        import threading

        def _run():
            pass

        class _Backend:
            def __init__(self):
                self._threads = []
                thread = threading.Thread(target=_run)
                self._threads.append(thread)

            def close(self):
                for thread in self._threads:
                    thread.join()

        class Service:
            def __init__(self):
                self._pools = {{}}
                pool = _Backend()
                self._pools["k"] = pool

            async def shutdown(self):
                for pool in self._pools.values():
                    {call}
    """

    def test_pool_close_via_class_summary_is_flagged(self, tmp_path):
        # Regression mirror of DetectionService.shutdown: close() joins
        # worker threads, traced through the class summary and the
        # self._pools container.
        src = self.SHUTDOWN_SHAPE.format(call="pool.close()")
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "_Backend.close" in finding.message

    def test_to_thread_wrapper_is_the_fix(self, tmp_path):
        src = self.SHUTDOWN_SHAPE.format(
            call="await asyncio.to_thread(pool.close)"
        )
        assert lint_snippet(tmp_path, self.RULE, src) == []


class TestLockHeldAcrossAwait:
    RULE = "lock-held-across-await"

    def test_await_under_module_lock_is_flagged(self, tmp_path):
        src = """
            import asyncio
            import threading

            _STATE_LOCK = threading.Lock()

            async def handler():
                with _STATE_LOCK:
                    await asyncio.sleep(0)
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "_STATE_LOCK" in finding.message
        assert "suspends" in finding.message

    def test_lockish_attribute_name_is_flagged(self, tmp_path):
        src = """
            import asyncio

            class S:
                async def handler(self):
                    with self._lock:
                        await asyncio.sleep(0)
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "self._lock" in finding.message

    def test_await_after_with_block_is_clean(self, tmp_path):
        # Near-miss: the await happens after the lock is released.
        src = """
            import asyncio

            class S:
                async def handler(self):
                    with self._lock:
                        self.x = 1
                    await asyncio.sleep(0)
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_async_with_asyncio_lock_is_the_fix(self, tmp_path):
        src = """
            import asyncio

            class S:
                async def handler(self):
                    async with self._lock:
                        await asyncio.sleep(0)
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_non_lock_context_manager_is_clean(self, tmp_path):
        src = """
            async def handler(path, session):
                with open(path) as fh:
                    await session.send(fh.read())
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_unreachable_with_is_not_flagged(self, tmp_path):
        src = """
            import asyncio

            class S:
                async def handler(self):
                    return
                    with self._lock:
                        await asyncio.sleep(0)
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_pragma_suppresses(self, tmp_path):
        src = """
            import asyncio

            class S:
                async def handler(self):
                    with self._lock:
                        await asyncio.sleep(0)  \
# repro-lint: disable=lock-held-across-await
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []


class TestLoopThreadTelemetry:
    RULE = "loop-thread-telemetry"

    def test_thread_target_recording_serve_is_flagged(self, tmp_path):
        src = """
            import threading

            def _worker(tm):
                tm.inc("serve.frames_dropped", 1)

            def start(tm):
                threading.Thread(target=_worker, args=(tm,)).start()
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "serve.frames_dropped" in finding.message
        assert "thread-side" in finding.message

    def test_propagates_through_direct_calls(self, tmp_path):
        src = """
            import threading

            def _helper(tm):
                tm.set_gauge("serve.workers", 0.0)

            def _worker(tm):
                _helper(tm)

            def start(tm):
                threading.Thread(target=_worker, args=(tm,)).start()
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "_helper" in finding.message

    def test_call_soon_threadsafe_callback_is_the_bridge(self, tmp_path):
        # Near-miss: the record site is only *referenced* from the
        # thread side; call_soon_threadsafe runs it on the loop.
        src = """
            import threading

            def _record(tm):
                tm.inc("serve.frames_dropped", 1)

            def _worker(loop, tm):
                loop.call_soon_threadsafe(_record, tm)

            def start(loop, tm):
                threading.Thread(
                    target=_worker, args=(loop, tm)
                ).start()
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_non_serve_names_are_fine_off_loop(self, tmp_path):
        src = """
            import threading

            def _worker(tm):
                tm.inc("parallel.batches", 1)

            def start(tm):
                threading.Thread(target=_worker, args=(tm,)).start()
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_untargeted_function_is_not_flagged(self, tmp_path):
        src = """
            def record(tm):
                tm.inc("serve.frames_dropped", 1)
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []


class TestShmLifecycle:
    RULE = "shm-lifecycle"

    def test_leaked_local_segment_is_flagged_twice(self, tmp_path):
        src = """
            from multiprocessing.shared_memory import SharedMemory

            def make():
                shm = SharedMemory(create=True, size=64)
                shm.buf[0] = 1
        """
        findings = lint_snippet(tmp_path, self.RULE, src)
        assert len(findings) == 2
        assert any(".close()" in f.message for f in findings)
        assert any(".unlink()" in f.message for f in findings)

    def test_straight_line_cleanup_is_not_enough(self, tmp_path):
        # Near-miss: close+unlink exist but an exception before them
        # leaks the segment — the rule demands a finally.
        src = """
            from multiprocessing.shared_memory import SharedMemory

            def make():
                shm = SharedMemory(create=True, size=64)
                shm.buf[0] = 1
                shm.close()
                shm.unlink()
        """
        findings = lint_snippet(tmp_path, self.RULE, src)
        assert len(findings) == 2

    def test_try_finally_cleanup_is_clean(self, tmp_path):
        src = """
            from multiprocessing.shared_memory import SharedMemory

            def make():
                shm = SharedMemory(create=True, size=64)
                try:
                    shm.buf[0] = 1
                finally:
                    shm.close()
                    shm.unlink()
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_finalize_handoff_transfers_ownership(self, tmp_path):
        src = """
            import weakref
            from multiprocessing.shared_memory import SharedMemory

            def make(owner, cleanup):
                shm = SharedMemory(create=True, size=64)
                weakref.finalize(owner, cleanup, shm)
                return shm
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_discarded_creation_is_flagged(self, tmp_path):
        src = """
            from multiprocessing.shared_memory import SharedMemory

            def make():
                SharedMemory(create=True, size=64)
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "discarded" in finding.message

    def test_attach_side_unlink_is_flagged(self, tmp_path):
        src = """
            from multiprocessing.shared_memory import SharedMemory

            def steal(name):
                shm = SharedMemory(name=name)
                shm.unlink()
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "attach-side unlink()" in finding.message

    def test_attach_side_close_only_is_clean(self, tmp_path):
        # Near-miss: the correct worker-side teardown.
        src = """
            from multiprocessing.shared_memory import SharedMemory

            def attach(name):
                shm = SharedMemory(name=name)
                try:
                    return bytes(shm.buf)
                finally:
                    shm.close()
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_class_owner_missing_unlink_is_flagged(self, tmp_path):
        src = """
            from multiprocessing.shared_memory import SharedMemory

            class Owner:
                def __init__(self):
                    self._shm = SharedMemory(create=True, size=64)

                def close(self):
                    self._shm.close()
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "unlink()" in finding.message

    def test_class_owner_protected_unlink_is_clean(self, tmp_path):
        src = """
            from multiprocessing.shared_memory import SharedMemory

            class Owner:
                def __init__(self):
                    self._shm = SharedMemory(create=True, size=64)

                def close(self):
                    try:
                        self._shm.close()
                    finally:
                        self._shm.unlink()
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_class_owner_unprotected_unlink_is_flagged(self, tmp_path):
        src = """
            from multiprocessing.shared_memory import SharedMemory

            class Owner:
                def __init__(self):
                    self._shm = SharedMemory(create=True, size=64)

                def close(self):
                    self._shm.close()
                    self._shm.unlink()
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "not exception-protected" in finding.message


class TestArenaLoanEscape:
    RULE = "arena-loan-escape"

    def test_attribute_store_of_loan_is_flagged(self, tmp_path):
        src = """
            class Cache:
                def stash(self, arena):
                    self._view = arena.get("x", (4,), "f8")
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "attribute store" in finding.message

    def test_derived_view_return_is_flagged(self, tmp_path):
        src = """
            def flatten(out=None):
                return out.reshape(-1)
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "derived view" in finding.message

    def test_slice_return_is_flagged(self, tmp_path):
        src = """
            def head(out):
                return out[:2]
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "returned" in finding.message

    def test_identity_echo_is_clean(self, tmp_path):
        src = """
            def fill(out):
                out.fill(0)
                return out
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_alias_echo_is_clean(self, tmp_path):
        # Near-miss: the scoring.py shape — a local alias of the out
        # parameter is still the caller's own storage.
        src = """
            import numpy as np

            def scores(out=None):
                if out is None:
                    acc = np.zeros(4)
                else:
                    acc = out
                return acc
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_fresh_loan_return_is_clean(self, tmp_path):
        src = """
            def dest(arena):
                return arena.get("x", (4,), "f8")
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_copy_launders(self, tmp_path):
        src = """
            def snapshot(out):
                return out.reshape(-1).copy()
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_closure_capture_is_flagged(self, tmp_path):
        src = """
            def f(arena):
                view = arena.get("x", (4,), "f8")

                def peek():
                    return view[0]

                return peek
        """
        (finding,) = lint_snippet(tmp_path, self.RULE, src)
        assert "captured by a nested function" in finding.message

    def test_shadowing_parameter_is_not_capture(self, tmp_path):
        src = """
            def f(arena):
                view = arena.get("x", (4,), "f8")

                def scale(view):
                    return view * 2

                scale(view)
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []

    def test_non_array_out_annotation_is_exempt(self, tmp_path):
        src = """
            def gather(out_paths: list[str]):
                return out_paths[0]
        """
        assert lint_snippet(tmp_path, self.RULE, src) == []
