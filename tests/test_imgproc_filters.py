"""Unit tests for repro.imgproc.filters (checked against scipy)."""

import numpy as np
import pytest
from scipy import ndimage

from repro.errors import ParameterError
from repro.imgproc import (
    box_blur,
    convolve2d,
    gaussian_blur,
    gaussian_kernel1d,
    separable_filter,
)


class TestConvolve2d:
    def test_identity_kernel(self, rng):
        img = rng.random((10, 10))
        np.testing.assert_allclose(convolve2d(img, np.array([[1.0]])), img)

    def test_matches_scipy_interior(self, rng):
        img = rng.random((16, 16))
        kernel = rng.random((3, 3))
        ours = convolve2d(img, kernel)
        ref = ndimage.convolve(img, kernel, mode="nearest")
        np.testing.assert_allclose(ours, ref, atol=1e-12)

    def test_5x5_kernel_matches_scipy(self, rng):
        img = rng.random((20, 14))
        kernel = rng.random((5, 5))
        np.testing.assert_allclose(
            convolve2d(img, kernel),
            ndimage.convolve(img, kernel, mode="nearest"),
            atol=1e-12,
        )

    def test_shape_preserved(self, rng):
        assert convolve2d(rng.random((9, 13)), np.ones((3, 5))).shape == (9, 13)

    def test_rejects_empty_kernel(self):
        with pytest.raises(ParameterError, match="kernel"):
            convolve2d(np.ones((4, 4)), np.zeros((0, 3)))


class TestSeparableFilter:
    def test_equals_outer_product_convolution(self, rng):
        img = rng.random((12, 12))
        rk = np.array([1.0, 2.0, 1.0])
        ck = np.array([-1.0, 0.0, 1.0])
        np.testing.assert_allclose(
            separable_filter(img, rk, ck),
            convolve2d(img, np.outer(rk, ck)),
            atol=1e-12,
        )

    def test_rejects_empty_kernel(self):
        with pytest.raises(ParameterError):
            separable_filter(np.ones((4, 4)), np.array([]), np.array([1.0]))


class TestGaussian:
    def test_kernel_normalized(self):
        assert gaussian_kernel1d(1.5).sum() == pytest.approx(1.0)

    def test_kernel_symmetric(self):
        k = gaussian_kernel1d(2.0)
        np.testing.assert_allclose(k, k[::-1])

    def test_default_radius_three_sigma(self):
        assert gaussian_kernel1d(2.0).size == 2 * 6 + 1

    def test_explicit_radius(self):
        assert gaussian_kernel1d(1.0, radius=4).size == 9

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ParameterError, match="sigma"):
            gaussian_kernel1d(0.0)

    def test_blur_preserves_mean_of_constant(self):
        np.testing.assert_allclose(
            gaussian_blur(np.full((16, 16), 0.4), 1.0), 0.4
        )

    def test_blur_reduces_variance(self, rng):
        img = rng.random((32, 32))
        assert gaussian_blur(img, 1.5).var() < img.var()

    def test_blur_matches_scipy_interior(self, rng):
        img = rng.random((24, 24))
        ours = gaussian_blur(img, 1.0)
        ref = ndimage.gaussian_filter(img, 1.0, mode="nearest", truncate=3.0)
        np.testing.assert_allclose(ours[4:-4, 4:-4], ref[4:-4, 4:-4], atol=1e-3)


class TestBoxBlur:
    def test_averages_neighborhood(self):
        img = np.zeros((5, 5))
        img[2, 2] = 9.0
        out = box_blur(img, 3)
        assert out[2, 2] == pytest.approx(1.0)
        assert out[0, 0] == pytest.approx(0.0)

    def test_rejects_zero_size(self):
        with pytest.raises(ParameterError):
            box_blur(np.ones((4, 4)), 0)
