"""Unit tests for the frame timing model — the paper's throughput claims."""

import pytest

from repro.errors import HardwareConfigError
from repro.hardware import FrameTimingModel


@pytest.fixture(scope="module")
def paper():
    """The paper's configuration: HDTV, 8 MACBARs, 36 cycles, 125 MHz."""
    return FrameTimingModel()


class TestPaperNumbers:
    """Each test pins one explicit claim from Section 5."""

    def test_cell_grid(self, paper):
        assert paper.cell_rows == 135
        assert paper.cell_cols == 240

    def test_fill_cycles_288(self, paper):
        """'the initial 288 cycles required for the buffer to get full'"""
        assert paper.fill_cycles == 288

    def test_cycles_per_row(self, paper):
        t = paper.scale_timing(1.0)
        assert t.block_cols == 239
        assert t.cycles_per_row == 288 + 36 * 239 == 8892

    def test_frame_cycles_1200420(self, paper):
        """'the classifier can complete its job for a frame of image
        within 1200420 clock cycles'"""
        assert paper.scale_timing(1.0).cycles == 1_200_420

    def test_classifier_under_10ms(self, paper):
        """'each frame of image is processed within less than 10ms'"""
        report = paper.frame_report(scales=(1.0,))
        assert report.classifier_time_s < 0.010
        assert report.classifier_time_s == pytest.approx(1_200_420 / 125e6)

    def test_extractor_is_bottleneck(self, paper):
        """'ensuring that our classifier is as fast as the previous HOG
        extractor stage' — the pixel-streaming extractor paces the
        pipeline."""
        report = paper.frame_report(scales=(1.0, 1.2))
        assert report.extractor_cycles == 1080 * 1920
        assert report.bottleneck_cycles == report.extractor_cycles

    def test_60fps_hdtv(self, paper):
        """'capable of real-time detection for HDTV frame at 60 fps' at
        two scales; frame interval 16.6 ms."""
        report = paper.frame_report(scales=(1.0, 1.2), parallel_scales=True)
        assert report.meets_rate(60.0)
        assert report.frame_time_s == pytest.approx(0.01659, abs=1e-4)

    def test_second_scale_is_cheaper(self, paper):
        """A down-scaled feature grid classifies in fewer cycles."""
        assert paper.scale_timing(1.2).cycles < paper.scale_timing(1.0).cycles


class TestScheduling:
    def test_parallel_vs_multiplexed(self, paper):
        par = paper.frame_report(scales=(1.0, 1.2), parallel_scales=True)
        mux = paper.frame_report(scales=(1.0, 1.2), parallel_scales=False)
        assert mux.classifier_cycles_effective > par.classifier_cycles_effective
        assert (
            mux.classifier_cycles_effective
            == paper.scale_timing(1.0).cycles + paper.scale_timing(1.2).cycles
        )

    def test_many_scales_multiplexed_misses_60fps(self, paper):
        """Time-multiplexing eighteen scales (the approach the paper
        contrasts with [9]) cannot hold 60 fps on one classifier."""
        scales = tuple(1.05**i for i in range(18))
        mux = paper.frame_report(scales=scales, parallel_scales=False)
        assert not mux.meets_rate(60.0)

    def test_parallel_scales_hold_rate(self, paper):
        scales = (1.0, 1.2, 1.44)
        par = paper.frame_report(scales=scales, parallel_scales=True)
        assert par.meets_rate(60.0)


class TestParametrics:
    def test_smaller_frame_faster(self):
        vga = FrameTimingModel(image_height=480, image_width=640)
        assert vga.scale_timing(1.0).cycles < FrameTimingModel().scale_timing(1.0).cycles

    def test_more_macbars_longer_fill(self):
        wide = FrameTimingModel(n_macbars=16)
        assert wide.fill_cycles == 576

    def test_two_pixels_per_cycle_halves_extractor(self):
        fast = FrameTimingModel(pixels_per_cycle=2)
        assert fast.extractor_cycles == 1080 * 1920 // 2

    def test_rejects_zero_scale(self, paper):
        with pytest.raises(HardwareConfigError, match="scale"):
            paper.scale_timing(0.0)

    def test_rejects_empty_scales(self, paper):
        with pytest.raises(HardwareConfigError, match="non-empty"):
            paper.frame_report(scales=())

    def test_rejects_subcell_frame(self):
        with pytest.raises(HardwareConfigError, match="smaller"):
            FrameTimingModel(image_height=4, image_width=1920)

    def test_rejects_bad_clock(self):
        with pytest.raises(HardwareConfigError, match="clock"):
            FrameTimingModel(clock_hz=0.0)
