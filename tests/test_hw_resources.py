"""Unit tests for the resource estimator — the Table 2 reproduction."""

import pytest

from repro.errors import HardwareConfigError
from repro.hardware import ResourceEstimator, ResourceUsage, Zc7020
from repro.hardware.resources import PAPER_TABLE2, bram_for_bits


class TestBramForBits:
    def test_half_block_granularity(self):
        assert bram_for_bits(1) == 0.5
        assert bram_for_bits(18_432) == 0.5
        assert bram_for_bits(18_433) == 1.0
        assert bram_for_bits(36_864) == 1.0

    def test_zero(self):
        assert bram_for_bits(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(HardwareConfigError):
            bram_for_bits(-1)


class TestResourceUsage:
    def test_addition(self):
        a = ResourceUsage(lut=10, bram36=1.5)
        b = ResourceUsage(lut=5, dsp48=2)
        c = a + b
        assert c.lut == 15
        assert c.bram36 == 1.5
        assert c.dsp48 == 2

    def test_utilization_percent(self):
        u = ResourceUsage(lut=26_600)  # half of the ZC7020
        assert u.utilization(Zc7020)["lut"] == pytest.approx(50.0)

    def test_fits(self):
        assert ResourceUsage(lut=53_200).fits(Zc7020)
        assert not ResourceUsage(lut=53_201).fits(Zc7020)


class TestTable2Calibration:
    """The default configuration must land exactly on Table 2."""

    @pytest.fixture(scope="class")
    def total(self):
        return ResourceEstimator().total()

    def test_lut(self, total):
        assert total.lut == PAPER_TABLE2.lut

    def test_ff(self, total):
        assert total.ff == PAPER_TABLE2.ff

    def test_lutram(self, total):
        assert total.lutram == PAPER_TABLE2.lutram

    def test_bram(self, total):
        assert total.bram36 == PAPER_TABLE2.bram36

    def test_dsp(self, total):
        assert total.dsp48 == PAPER_TABLE2.dsp48

    def test_bufg(self, total):
        assert total.bufg == PAPER_TABLE2.bufg

    def test_fits_zc7020(self, total):
        assert total.fits(Zc7020)


class TestStructuralScaling:
    def test_more_scales_cost_more(self):
        two = ResourceEstimator(n_scales=2).total()
        three = ResourceEstimator(n_scales=3).total()
        assert three.lut > two.lut
        assert three.bram36 > two.bram36

    def test_scale_count_drives_classifier_cost(self):
        """Each extra scale adds one classifier + one scaler."""
        est = ResourceEstimator()
        delta = (
            ResourceEstimator(n_scales=3).total().lut
            - ResourceEstimator(n_scales=2).total().lut
        )
        expected = est.classifier_instance().lut + est.scaler_instance().lut
        assert delta == pytest.approx(expected)

    def test_more_macbars_cost_more(self):
        small = ResourceEstimator(n_macbars=4).total()
        big = ResourceEstimator(n_macbars=16).total()
        assert big.lut > small.lut
        assert big.ff > small.ff

    def test_wider_words_cost_more_bram(self):
        narrow = ResourceEstimator(feature_bits=8).total()
        wide = ResourceEstimator(feature_bits=32).total()
        assert wide.bram36 > narrow.bram36

    def test_deeper_nhogmem_costs_more_bram(self):
        shallow = ResourceEstimator(nhogmem_rows=18).total()
        deep = ResourceEstimator(nhogmem_rows=135).total()
        assert deep.bram36 > shallow.bram36

    def test_full_135_row_buffer_would_overflow_the_device(self):
        """The paper's reduction of N-HOGMem from 135 rows [10] to 18 is
        what makes two scales fit on the ZC7020."""
        deep = ResourceEstimator(nhogmem_rows=135).total()
        assert not deep.fits(Zc7020)

    def test_rejects_zero_parameters(self):
        with pytest.raises(HardwareConfigError):
            ResourceEstimator(n_scales=0)
