"""Unit tests for sliding-window classification and the full detector."""

import numpy as np
import pytest

from repro.detect import SlidingWindowDetector, anchors_to_boxes, classify_grid
from repro.errors import ParameterError
from repro.hog import HogExtractor


@pytest.fixture(scope="module")
def frame():
    return np.random.default_rng(17).random((192, 160))


@pytest.fixture(scope="module")
def grid(frame, ):
    return HogExtractor().extract(frame)


class TestClassifyGrid:
    def test_score_matrix_shape(self, grid, trained_model):
        scores = classify_grid(grid, trained_model)
        assert scores.shape == grid.n_window_positions

    def test_matches_manual_descriptor_scoring(self, grid, trained_model):
        scores = classify_grid(grid, trained_model)
        r, c = 3, 5
        manual = trained_model.decision_function(grid.window_descriptor(r, c))
        assert scores[r, c] == pytest.approx(manual[0])

    def test_stride(self, grid, trained_model):
        dense = classify_grid(grid, trained_model, stride=1)
        coarse = classify_grid(grid, trained_model, stride=2)
        np.testing.assert_allclose(coarse, dense[::2, ::2])

    def test_too_small_grid_gives_empty(self, trained_model):
        small = HogExtractor().extract(np.zeros((64, 48)))
        assert classify_grid(small, trained_model).size == 0

    def test_rejects_bad_stride(self, grid, trained_model):
        with pytest.raises(ParameterError, match="stride"):
            classify_grid(grid, trained_model, stride=0)


class TestAnchorsToBoxes:
    def test_threshold_filters(self, grid, trained_model):
        scores = classify_grid(grid, trained_model)
        all_boxes = anchors_to_boxes(scores, grid, threshold=-np.inf)
        none = anchors_to_boxes(scores, grid, threshold=np.inf)
        assert len(all_boxes) == scores.size
        assert none == []

    def test_box_geometry_at_scale_one(self, grid, trained_model):
        scores = np.full(grid.n_window_positions, -1.0)
        scores[2, 3] = 5.0
        boxes = anchors_to_boxes(scores, grid, threshold=0.0)
        assert len(boxes) == 1
        b = boxes[0]
        assert (b.top, b.left) == (16, 24)  # anchor * cell_size
        assert (b.height, b.width) == (128, 64)
        assert b.score == 5.0

    def test_box_geometry_scales(self, frame, trained_model):
        from repro.hog import FeatureScaler

        base = HogExtractor().extract(frame)
        scaled = FeatureScaler().scale_grid(base, 1.5)
        scores = np.full(scaled.n_window_positions, -1.0)
        scores[0, 1] = 2.0
        boxes = anchors_to_boxes(scores, scaled, threshold=0.0)
        b = boxes[0]
        assert b.height == pytest.approx(128 * 1.5)
        assert b.left == pytest.approx(1 * 8 * 1.5)

    def test_stride_scales_anchor_positions(self, grid, trained_model):
        scores = classify_grid(grid, trained_model, stride=2)
        marked = np.full_like(scores, -1.0)
        marked[1, 1] = 3.0
        boxes = anchors_to_boxes(marked, grid, threshold=0.0, stride=2)
        assert (boxes[0].top, boxes[0].left) == (16, 16)


class TestSlidingWindowDetector:
    @pytest.mark.parametrize("strategy", ["feature", "image"])
    def test_detects_planted_pedestrian(self, tiny_dataset, trained, strategy):
        model, extractor = trained
        scene = tiny_dataset.make_scene(
            height=288, width=320, n_pedestrians=1,
            pedestrian_heights=(128, 150), scene_index=1,
        )
        detector = SlidingWindowDetector(
            model, extractor, strategy=strategy, scales=[1.0, 1.2]
        )
        result = detector.detect(scene.image)
        gt = scene.boxes[0]
        hits = [
            d
            for d in result.detections
            if abs(d.top - gt.top) < 32 and abs(d.left - gt.left) < 24
        ]
        assert hits, f"no detection near ground truth with {strategy} pyramid"

    def test_result_diagnostics(self, tiny_dataset, trained):
        model, extractor = trained
        scene = tiny_dataset.make_scene(height=256, width=256, n_pedestrians=1,
                                        pedestrian_heights=(128, 140))
        detector = SlidingWindowDetector(model, extractor, scales=[1.0, 1.3])
        result = detector.detect(scene.image)
        assert result.n_windows_evaluated > 0
        assert result.scales_used == [1.0, 1.3]
        assert result.timings.total > 0.0
        assert result.timings.extraction > 0.0

    def test_feature_strategy_extracts_once(self, tiny_dataset, trained):
        """The feature pyramid's extraction time must not grow with the
        scale count (the paper's core speed argument)."""
        model, extractor = trained
        scene = tiny_dataset.make_scene(height=256, width=256, n_pedestrians=0)
        one = SlidingWindowDetector(model, extractor, scales=[1.0]).detect(scene.image)
        three = SlidingWindowDetector(
            model, extractor, scales=[1.0, 1.2, 1.44]
        ).detect(scene.image)
        assert three.timings.extraction < 3.0 * one.timings.extraction

    def test_rejects_model_mismatch(self, trained_model):
        from repro.hog import HogParameters

        big = HogExtractor(HogParameters(window_width=72, window_height=128))
        with pytest.raises(ParameterError, match="descriptor"):
            SlidingWindowDetector(trained_model, big)

    def test_rejects_bad_scales(self, trained):
        model, extractor = trained
        with pytest.raises(ParameterError, match="positive"):
            SlidingWindowDetector(model, extractor, scales=[1.0, -1.0])

    def test_threshold_monotone(self, tiny_dataset, trained):
        model, extractor = trained
        scene = tiny_dataset.make_scene(height=256, width=256, n_pedestrians=2,
                                        pedestrian_heights=(128, 150))
        low = SlidingWindowDetector(model, extractor, threshold=-1.0).detect(scene.image)
        high = SlidingWindowDetector(model, extractor, threshold=1.5).detect(scene.image)
        assert len(high.detections) <= len(low.detections)


class TestStridedDetection:
    """End-to-end coverage for ``stride > 1`` (previously untested)."""

    @pytest.fixture(scope="class")
    def scene(self, tiny_dataset):
        return tiny_dataset.make_scene(
            height=288, width=320, n_pedestrians=1,
            pedestrian_heights=(128, 150), scene_index=1,
        )

    def test_stride2_boxes_match_stride1_anchor_subset(
        self, scene, trained
    ):
        """A stride-2 detection must be *the same image box* its
        stride-1 even-anchor counterpart produces — same top/left,
        size and score."""
        model, extractor = trained
        grid = extractor.extract(scene.image)
        dense = classify_grid(grid, model, stride=1)
        coarse = classify_grid(grid, model, stride=2)
        threshold = float(np.median(dense))  # guarantee hits both ways
        boxes1 = anchors_to_boxes(dense, grid, threshold, stride=1)
        boxes2 = anchors_to_boxes(coarse, grid, threshold, stride=2)
        assert boxes2, "no strided detections above the median score"
        cell = grid.params.cell_size
        even_anchors = {
            (b.top, b.left): b for b in boxes1
            if (b.top / cell) % 2 == 0 and (b.left / cell) % 2 == 0
        }
        assert len(boxes2) == len(even_anchors)
        for b in boxes2:
            match = even_anchors[(b.top, b.left)]
            assert b.score == match.score
            assert (b.height, b.width) == (match.height, match.width)

    def test_stride2_detector_boxes_subset_of_stride1(
        self, scene, trained
    ):
        """Full detector: every strided detection (pre-NMS equivalence
        checked above; here with NMS off via iou=1.0-ish threshold on
        a permissive run) appears among the stride-1 detections."""
        model, extractor = trained
        kwargs = dict(scales=[1.0], threshold=-0.5, nms_iou=1.0)
        one = SlidingWindowDetector(
            model, extractor, stride=1, **kwargs
        ).detect(scene.image)
        two = SlidingWindowDetector(
            model, extractor, stride=2, **kwargs
        ).detect(scene.image)
        boxes1 = {(d.top, d.left, d.score) for d in one.detections}
        assert two.detections, "stride-2 run found nothing at -0.5"
        for d in two.detections:
            assert (d.top, d.left, d.score) in boxes1

    def test_stride2_window_counters_match_strided_anchor_count(
        self, scene, trained
    ):
        from repro.telemetry import MetricsRegistry

        model, extractor = trained
        registry = MetricsRegistry()
        det = SlidingWindowDetector(
            model, extractor, scales=[1.0, 1.2], stride=2,
            telemetry=registry,
        )
        result = det.detect(scene.image)
        snap = registry.snapshot()
        grid = extractor.extract(scene.image)

        total_expected = 0
        from repro.hog import FeatureScaler

        for scale in (1.0, 1.2):
            level = grid if scale == 1.0 else \
                FeatureScaler().scale_grid(grid, scale)
            rows, cols = level.n_window_positions
            expected = len(range(0, rows, 2)) * len(range(0, cols, 2))
            counted = snap.counters[
                f"detect.scale[{scale:.2f}].windows_scanned"
            ]
            assert counted == expected
            total_expected += expected
        assert snap.counters["detect.windows_scanned"] == total_expected
        assert result.n_windows_evaluated == total_expected
