"""Unit tests for repro.hog.pyramid."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.hog import (
    FeaturePyramid,
    FeatureScaler,
    HogExtractor,
    ImagePyramid,
    pyramid_scales,
)


@pytest.fixture(scope="module")
def frame():
    return np.random.default_rng(31).random((256, 192))


@pytest.fixture(scope="module")
def ex():
    return HogExtractor()


class TestPyramidScales:
    def test_geometric_ladder(self):
        scales = pyramid_scales(3, step=1.2)
        np.testing.assert_allclose(scales, [1.0, 1.2, 1.44])

    def test_single_scale(self):
        assert pyramid_scales(1) == [1.0]

    def test_custom_start(self):
        assert pyramid_scales(2, step=2.0, start=0.5) == [0.5, 1.0]

    def test_rejects_bad_step(self):
        with pytest.raises(ParameterError, match="step"):
            pyramid_scales(3, step=1.0)

    def test_rejects_zero_scales(self):
        with pytest.raises(ParameterError, match="n_scales"):
            pyramid_scales(0)


class TestImagePyramid:
    def test_levels_and_scales(self, frame, ex):
        pyr = ImagePyramid.build(frame, [1.0, 1.25, 1.6], ex)
        assert len(pyr) == 3
        assert pyr.scales == [1.0, 1.25, 1.6]

    def test_level_grid_shrinks(self, frame, ex):
        pyr = ImagePyramid.build(frame, [1.0, 2.0], ex)
        assert pyr[1].cells.shape[0] == pyr[0].cells.shape[0] // 2

    def test_skips_scales_below_window(self, frame, ex):
        # 256/2.5 = 102 < 128-px window height -> level dropped.
        pyr = ImagePyramid.build(frame, [1.0, 2.5], ex)
        assert pyr.scales == [1.0]

    def test_rejects_empty_scales(self, frame, ex):
        with pytest.raises(ParameterError, match="non-empty"):
            ImagePyramid.build(frame, [], ex)

    def test_rejects_negative_scale(self, frame, ex):
        with pytest.raises(ParameterError, match="positive"):
            ImagePyramid.build(frame, [1.0, -2.0], ex)


class TestFeaturePyramid:
    def test_base_level_is_exact_extraction(self, frame, ex):
        pyr = FeaturePyramid.build(frame, [1.0, 1.3], ex)
        direct = ex.extract(frame)
        np.testing.assert_allclose(pyr[0].blocks, direct.blocks)

    def test_scales_sorted_ascending(self, frame, ex):
        pyr = FeaturePyramid.build(frame, [1.6, 1.0, 1.3], ex)
        assert pyr.scales == sorted(pyr.scales)

    def test_chained_vs_direct_modes(self, frame, ex):
        scaler = FeatureScaler()
        chained = FeaturePyramid.build(
            frame, [1.0, 1.2, 1.44], ex, scaler, chained=True
        )
        direct = FeaturePyramid.build(
            frame, [1.0, 1.2, 1.44], ex, scaler, chained=False
        )
        assert chained.scales == pytest.approx(direct.scales)
        # Same shapes; values differ slightly (error accumulation).
        assert chained[2].blocks.shape == direct[2].blocks.shape

    def test_stops_when_window_no_longer_fits(self, frame, ex):
        pyr = FeaturePyramid.build(frame, [1.0, 1.5, 4.0], ex)
        assert 4.0 not in pyr.scales

    def test_precomputed_base_grid(self, frame, ex):
        base = ex.extract(frame)
        pyr = FeaturePyramid.build(frame, [1.0, 1.2], ex, base=base)
        np.testing.assert_allclose(pyr[0].blocks, base.blocks)

    def test_feature_levels_track_image_levels(self, frame, ex):
        """A feature-pyramid level approximates the image-pyramid level
        at the same scale — the correlation the paper's method rests on."""
        scales = [1.0, 1.5]
        fp = FeaturePyramid.build(frame, scales, ex, FeatureScaler(mode="cells"))
        ip = ImagePyramid.build(frame, scales, ex)
        a = fp[1].blocks
        b = ip[1].blocks
        rows = min(a.shape[0], b.shape[0])
        cols = min(a.shape[1], b.shape[1])
        a = a[:rows, :cols].ravel()
        b = b[:rows, :cols].ravel()
        cos = float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
        assert cos > 0.8
