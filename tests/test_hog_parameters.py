"""Unit tests for repro.hog.parameters."""

import math

import pytest

from repro.errors import ParameterError
from repro.hog import BlockNormalization, HogParameters


class TestDefaults:
    """The defaults must be the paper's configuration."""

    def test_paper_geometry(self):
        p = HogParameters()
        assert p.cell_size == 8
        assert p.block_size == 2
        assert p.block_stride == 1
        assert p.n_bins == 9
        assert (p.window_width, p.window_height) == (64, 128)

    def test_cells_per_window(self):
        assert HogParameters().cells_per_window == (8, 16)

    def test_blocks_per_window(self):
        assert HogParameters().blocks_per_window == (7, 15)

    def test_block_dim_is_36(self):
        assert HogParameters().block_dim == 36

    def test_descriptor_length_is_3780(self):
        assert HogParameters().descriptor_length == 3780

    def test_unsigned_span_is_pi(self):
        assert HogParameters().orientation_span == pytest.approx(math.pi)

    def test_signed_span_is_two_pi(self):
        p = HogParameters(signed_gradients=True)
        assert p.orientation_span == pytest.approx(2.0 * math.pi)


class TestDerivedGeometry:
    def test_cell_grid_shape_truncates(self):
        p = HogParameters()
        assert p.cell_grid_shape(1080, 1920) == (135, 240)
        assert p.cell_grid_shape(135, 100) == (16, 12)

    def test_block_grid_shape(self):
        p = HogParameters()
        assert p.block_grid_shape(135, 240) == (134, 239)
        assert p.block_grid_shape(16, 8) == (15, 7)

    def test_block_grid_too_small(self):
        assert HogParameters().block_grid_shape(1, 5) == (0, 0)

    def test_stride_two_blocks(self):
        p = HogParameters(block_stride=2)
        assert p.blocks_per_window == (4, 8)

    def test_larger_cells(self):
        p = HogParameters(cell_size=16, window_width=64, window_height=128)
        assert p.cells_per_window == (4, 8)


class TestValidation:
    def test_rejects_zero_cell(self):
        with pytest.raises(ParameterError, match="cell_size"):
            HogParameters(cell_size=0)

    def test_rejects_stride_above_block(self):
        with pytest.raises(ParameterError, match="block_stride"):
            HogParameters(block_size=2, block_stride=3)

    def test_rejects_one_bin(self):
        with pytest.raises(ParameterError, match="n_bins"):
            HogParameters(n_bins=1)

    def test_rejects_window_not_multiple_of_cell(self):
        with pytest.raises(ParameterError, match="multiple"):
            HogParameters(window_width=60)

    def test_rejects_negative_gamma(self):
        with pytest.raises(ParameterError, match="gamma"):
            HogParameters(gamma=-1.0)

    def test_rejects_window_smaller_than_block(self):
        with pytest.raises(ParameterError, match="smaller than"):
            HogParameters(cell_size=64, block_size=2,
                          window_width=64, window_height=128)

    def test_frozen(self):
        with pytest.raises(Exception):
            HogParameters().cell_size = 4

    def test_normalization_enum_values(self):
        assert BlockNormalization("l2-hys") is BlockNormalization.L2_HYS
