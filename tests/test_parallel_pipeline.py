"""Backend parity and integration tests for the process backend.

The contract of ``StreamPipeline(backend="process")`` is behavioral
equivalence: same frames in, same FrameResult sequence out — identical
indices, statuses, detections and error strings — as the thread
backend, including when a frame is corrupt.  Everything else here
guards the seams: warm pool reuse across runs, worker-telemetry
merging at close, detect_batch's all-or-nothing semantics, and
parameter validation.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.errors import ParameterError, StreamError
from repro.stream import (
    ArraySource,
    ExecutionBackend,
    FrameStatus,
    StreamPipeline,
    SyntheticVideoSource,
)
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def detector(trained_model):
    return MultiScalePedestrianDetector(
        trained_model,
        DetectorConfig(scales=(1.0,), threshold=0.5, stride=2),
    )


def _video(n=8, corrupt=(4,)):
    return SyntheticVideoSource(
        n, height=160, width=160, n_pedestrians=1, seed=3,
        scene_hold=3, corrupt_frames=corrupt,
    )


def _signature(results):
    return [
        (fr.index, fr.status, fr.detections, fr.error) for fr in results
    ]


class TestBackendParity:
    def test_process_matches_thread_with_corrupt_frame(self, detector):
        with StreamPipeline(detector, workers=2, backend="thread") as p:
            thread_run = p.run(_video())
        with StreamPipeline(detector, workers=2, backend="process") as p:
            process_run = p.run(_video())
        assert _signature(process_run.results) == _signature(
            thread_run.results
        )
        assert thread_run.results[4].status is FrameStatus.FAILED
        assert thread_run.report.backend == "thread"
        assert process_run.report.backend == "process"

    def test_warm_pool_is_reused_across_runs(self, detector):
        with StreamPipeline(detector, workers=2, backend="process") as p:
            first = p.run(_video(n=4, corrupt=()))
            pool = p._pool
            assert pool is not None and pool.healthy
            second = p.run(_video(n=4, corrupt=()))
            assert p._pool is pool  # same warm pool, no rebuild
        assert _signature(first.results) == _signature(second.results)
        assert p._pool is None  # context exit closed it

    def test_worker_telemetry_merges_at_close(self, trained_model):
        registry = MetricsRegistry()
        det = MultiScalePedestrianDetector(
            trained_model,
            DetectorConfig(scales=(1.0,), threshold=0.5, stride=2,
                           telemetry=True),
            telemetry=registry,
        )
        with StreamPipeline(
            det, workers=2, backend="process", telemetry=registry
        ) as p:
            p.run(_video(n=5, corrupt=()))
        snap = registry.snapshot()
        assert snap.counters["detect.frames"] == 5
        assert snap.counters["parallel.frames_shm"] == 5
        assert snap.counters["parallel.worker_snapshots_merged"] == 2
        assert snap.gauges["parallel.workers"] == 2

    def test_no_shared_memory_leaked(self, detector):
        with StreamPipeline(detector, workers=2, backend="process") as p:
            p.run(_video(n=4, corrupt=()))
        assert glob.glob("/dev/shm/repro-shm-*") == []


class TestDetectBatch:
    def test_matches_sequential_reference(self, detector):
        frames = list(_video(n=4, corrupt=()))
        sequential = detector._detector.detect_batch(frames)
        for backend in ("thread", "process"):
            batched = detector.detect_batch(
                frames, workers=2, backend=backend
            )
            assert [r.detections for r in batched] == [
                r.detections for r in sequential
            ]

    def test_raises_naming_every_failed_frame(self, detector):
        frames = list(_video(n=4, corrupt=()))
        frames[1] = np.full((160, 160), np.nan)
        with pytest.raises(StreamError, match=r"frame 1: ImageError"):
            detector.detect_batch(frames, workers=2, backend="process")

    def test_empty_batch(self, detector):
        assert detector.detect_batch([]) == []


class TestValidation:
    def test_unknown_backend_rejected(self, detector):
        with pytest.raises(ParameterError, match="backend must be one of"):
            StreamPipeline(detector, backend="gpu")

    def test_detector_factory_is_thread_only(self, detector):
        with pytest.raises(ParameterError, match="thread-backend only"):
            StreamPipeline(
                detector,
                detector_factory=lambda: detector,
                backend=ExecutionBackend.PROCESS,
            )

    def test_enum_and_string_spellings_agree(self, detector):
        a = StreamPipeline(detector, backend="process")
        b = StreamPipeline(detector, backend=ExecutionBackend.PROCESS)
        assert a.backend is b.backend is ExecutionBackend.PROCESS


class TestThreadBackendUnchanged:
    def test_default_backend_is_thread(self, detector):
        pipeline = StreamPipeline(detector)
        assert pipeline.backend is ExecutionBackend.THREAD
        run = pipeline.run(ArraySource(list(_video(n=3, corrupt=()))))
        assert run.report.backend == "thread"
        assert all(fr.ok for fr in run.results)
