"""Unit tests for repro.imgproc.validate."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imgproc import as_float_image, ensure_grayscale, require_min_size


class TestAsFloatImage:
    def test_grayscale_passthrough(self):
        img = np.ones((4, 5))
        out = as_float_image(img)
        assert out.shape == (4, 5)
        assert out.dtype == np.float64

    def test_integer_input_converts_without_rescaling(self):
        img = np.array([[0, 128], [255, 64]], dtype=np.uint8)
        out = as_float_image(img)
        assert out[1, 0] == 255.0

    def test_color_image_accepted(self):
        assert as_float_image(np.zeros((3, 3, 3))).shape == (3, 3, 3)

    def test_rgba_accepted(self):
        assert as_float_image(np.zeros((3, 3, 4))).shape == (3, 3, 4)

    def test_rejects_1d(self):
        with pytest.raises(ImageError, match="2-D or 3-D"):
            as_float_image(np.zeros(5))

    def test_rejects_4d(self):
        with pytest.raises(ImageError, match="2-D or 3-D"):
            as_float_image(np.zeros((2, 2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ImageError, match="empty"):
            as_float_image(np.zeros((0, 5)))

    def test_rejects_bad_channel_count(self):
        with pytest.raises(ImageError, match="channels"):
            as_float_image(np.zeros((2, 2, 2)))

    def test_rejects_nan(self):
        img = np.ones((3, 3))
        img[1, 1] = np.nan
        with pytest.raises(ImageError, match="NaN or infinite"):
            as_float_image(img)

    def test_rejects_inf(self):
        img = np.ones((3, 3))
        img[0, 0] = np.inf
        with pytest.raises(ImageError):
            as_float_image(img)

    def test_custom_name_in_message(self):
        with pytest.raises(ImageError, match="patch"):
            as_float_image(np.zeros(3), name="patch")


class TestEnsureGrayscale:
    def test_passthrough(self):
        img = np.random.default_rng(0).random((5, 6))
        np.testing.assert_array_equal(ensure_grayscale(img), img)

    def test_squeezes_singleton_channel(self):
        img = np.ones((4, 4, 1))
        assert ensure_grayscale(img).shape == (4, 4)

    def test_converts_rgb(self):
        img = np.zeros((2, 2, 3))
        img[..., 1] = 1.0  # pure green
        out = ensure_grayscale(img)
        assert out.shape == (2, 2)
        np.testing.assert_allclose(out, 0.587)


class TestRequireMinSize:
    def test_accepts_exact_size(self):
        require_min_size(np.zeros((8, 8)), 8, 8)

    def test_rejects_too_small(self):
        with pytest.raises(ImageError, match="at least"):
            require_min_size(np.zeros((7, 8)), 8, 8)
