"""Unit tests for fixed-point formats and shift-add coefficients."""

import numpy as np
import pytest

from repro.errors import HardwareConfigError
from repro.hardware import (
    FixedPointFormat,
    ShiftAddCoefficient,
    csd_decompose,
    quantization_error,
    quantize,
    shift_add_value,
)


class TestFixedPointFormat:
    def test_q16_14_properties(self):
        fmt = FixedPointFormat(16, 14)
        assert fmt.resolution == 2.0**-14
        assert fmt.max_value == pytest.approx(2.0 - 2.0**-14)
        assert fmt.min_value == -2.0
        assert fmt.n_levels == 2**16

    def test_unsigned_format(self):
        fmt = FixedPointFormat(8, 8, signed=False)
        assert fmt.min_value == 0.0
        assert fmt.max_value == pytest.approx(1.0 - 2.0**-8)

    def test_integer_format(self):
        fmt = FixedPointFormat(8, 0)
        assert fmt.resolution == 1.0
        assert fmt.max_value == 127.0
        assert fmt.min_value == -128.0

    def test_describe(self):
        assert FixedPointFormat(16, 12).describe() == "Q16.12 (signed)"

    def test_rejects_zero_bits(self):
        with pytest.raises(HardwareConfigError):
            FixedPointFormat(0, 0)

    def test_rejects_frac_above_total(self):
        with pytest.raises(HardwareConfigError, match="frac_bits"):
            FixedPointFormat(8, 9)

    def test_rejects_one_bit_signed(self):
        with pytest.raises(HardwareConfigError, match="signed"):
            FixedPointFormat(1, 0, signed=True)


class TestQuantize:
    def test_grid_alignment(self):
        fmt = FixedPointFormat(16, 8)
        q = quantize(np.array([0.3]), fmt)
        assert (q / fmt.resolution) % 1.0 == 0.0

    def test_idempotent(self):
        fmt = FixedPointFormat(12, 6)
        x = np.random.default_rng(0).normal(size=100)
        once = quantize(x, fmt)
        np.testing.assert_array_equal(quantize(once, fmt), once)

    def test_error_bounded_by_half_lsb(self):
        fmt = FixedPointFormat(16, 10)
        x = np.random.default_rng(1).uniform(-10, 10, 1000)
        x = np.clip(x, fmt.min_value, fmt.max_value)
        err = np.abs(quantize(x, fmt) - x)
        assert err.max() <= fmt.resolution / 2.0 + 1e-15

    def test_saturation_high(self):
        fmt = FixedPointFormat(8, 4)
        assert quantize(100.0, fmt) == fmt.max_value

    def test_saturation_low(self):
        fmt = FixedPointFormat(8, 4)
        assert quantize(-100.0, fmt) == fmt.min_value

    def test_scalar_input(self):
        fmt = FixedPointFormat(16, 8)
        assert float(quantize(0.5, fmt)) == 0.5

    def test_monotone(self):
        fmt = FixedPointFormat(10, 5)
        x = np.linspace(-20, 20, 501)
        q = quantize(x, fmt)
        assert np.all(np.diff(q) >= 0)


class TestQuantizationError:
    def test_keys(self):
        fmt = FixedPointFormat(16, 12)
        stats = quantization_error(np.linspace(-1, 1, 100), fmt)
        assert set(stats) == {"max_abs_error", "rms_error", "saturation_rate"}

    def test_more_bits_less_error(self):
        x = np.random.default_rng(2).uniform(-1, 1, 1000)
        coarse = quantization_error(x, FixedPointFormat(8, 6))
        fine = quantization_error(x, FixedPointFormat(16, 14))
        assert fine["rms_error"] < coarse["rms_error"]

    def test_saturation_detected(self):
        fmt = FixedPointFormat(8, 6)  # range ~ [-2, 2)
        stats = quantization_error(np.array([0.0, 10.0]), fmt)
        assert stats["saturation_rate"] == pytest.approx(0.5)

    def test_rejects_empty(self):
        with pytest.raises(HardwareConfigError, match="empty"):
            quantization_error(np.array([]), FixedPointFormat(8, 4))


class TestCsdDecompose:
    def test_exact_powers(self):
        assert csd_decompose(0.5) == [(1, -1)]
        assert csd_decompose(-2.0) == [(-1, 1)]

    def test_zero_is_empty(self):
        assert csd_decompose(0.0) == []

    def test_three_quarters(self):
        terms = csd_decompose(0.75, max_terms=2)
        assert shift_add_value(terms) == pytest.approx(0.75)

    def test_error_shrinks_with_terms(self):
        value = 0.37
        errs = []
        for n in (1, 2, 3, 4):
            approx = shift_add_value(csd_decompose(value, max_terms=n, max_shift=10))
            errs.append(abs(approx - value))
        assert errs == sorted(errs, reverse=True)
        assert errs[-1] < 0.01

    def test_max_shift_floors_small_values(self):
        assert csd_decompose(0.001, max_shift=4) == []

    def test_rejects_bad_args(self):
        with pytest.raises(HardwareConfigError):
            csd_decompose(0.5, max_terms=0)
        with pytest.raises(HardwareConfigError):
            csd_decompose(0.5, max_shift=-1)


class TestShiftAddCoefficient:
    def test_apply_matches_value(self):
        coeff = ShiftAddCoefficient.approximate(0.6, max_terms=3)
        data = np.array([1.0, 2.0, -4.0])
        np.testing.assert_allclose(coeff.apply(data), data * coeff.value)

    def test_error_property(self):
        coeff = ShiftAddCoefficient.approximate(0.6, max_terms=8, max_shift=12)
        assert abs(coeff.error) < 1e-3

    def test_adder_count(self):
        assert ShiftAddCoefficient.approximate(0.5).n_adders == 0
        assert ShiftAddCoefficient.approximate(0.75, max_terms=3).n_adders >= 1

    def test_interpolation_weights_domain(self):
        """All bilinear weights in [0, 1] approximate within 2^-max_shift."""
        for w in np.linspace(0, 1, 33):
            coeff = ShiftAddCoefficient.approximate(float(w), max_terms=3,
                                                    max_shift=8)
            assert abs(coeff.error) <= 2.0**-7
