"""Unit tests for ROC analysis (the Figure 4 machinery)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.eval import equal_error_rate, roc_auc, roc_curve


class TestRocCurve:
    def test_perfect_classifier(self):
        scores = np.array([3.0, 2.0, -2.0, -3.0])
        labels = np.array([1, 1, 0, 0])
        curve = roc_curve(scores, labels)
        assert curve.auc == pytest.approx(1.0)
        assert curve.eer == pytest.approx(0.0)

    def test_inverted_classifier(self):
        scores = np.array([-3.0, -2.0, 2.0, 3.0])
        labels = np.array([1, 1, 0, 0])
        assert roc_auc(scores, labels) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(2000)
        labels = (rng.random(2000) < 0.5).astype(int)
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.05)

    def test_curve_endpoints(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=50)
        labels = (rng.random(50) < 0.4).astype(int)
        curve = roc_curve(scores, labels)
        assert curve.false_positive_rate[0] == 0.0
        assert curve.true_positive_rate[0] == 0.0
        assert curve.false_positive_rate[-1] == 1.0
        assert curve.true_positive_rate[-1] == 1.0

    def test_curve_monotone(self):
        rng = np.random.default_rng(2)
        scores = rng.normal(size=300)
        labels = (scores + rng.normal(size=300) > 0).astype(int)
        curve = roc_curve(scores, labels)
        assert np.all(np.diff(curve.false_positive_rate) >= 0)
        assert np.all(np.diff(curve.true_positive_rate) >= 0)

    def test_auc_matches_rank_statistic(self):
        """AUC equals the Mann-Whitney U statistic (probability a random
        positive outranks a random negative)."""
        rng = np.random.default_rng(3)
        pos = rng.normal(1.0, 1.0, 200)
        neg = rng.normal(0.0, 1.0, 300)
        scores = np.concatenate([pos, neg])
        labels = np.concatenate([np.ones(200, int), np.zeros(300, int)])
        auc = roc_auc(scores, labels)
        u = np.mean(pos[:, None] > neg[None, :]) + 0.5 * np.mean(
            pos[:, None] == neg[None, :]
        )
        assert auc == pytest.approx(u, abs=1e-9)

    def test_ties_handled(self):
        scores = np.array([1.0, 1.0, 0.0, 0.0])
        labels = np.array([1, 0, 1, 0])
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_sample_interpolates(self):
        scores = np.array([3.0, 2.0, -2.0, -3.0])
        labels = np.array([1, 1, 0, 0])
        fpr, tpr = roc_curve(scores, labels).sample(11)
        assert fpr.size == 11
        assert tpr[-1] == pytest.approx(1.0)


class TestEqualErrorRate:
    def test_symmetric_gaussians(self):
        """For symmetric class conditionals, EER equals the error at the
        midpoint threshold."""
        rng = np.random.default_rng(4)
        pos = rng.normal(1.0, 1.0, 5000)
        neg = rng.normal(-1.0, 1.0, 5000)
        scores = np.concatenate([pos, neg])
        labels = np.concatenate([np.ones(5000, int), np.zeros(5000, int)])
        eer = equal_error_rate(scores, labels)
        expected = np.mean(neg > 0)  # ~ P(N(−1,1) > 0) = Phi(−1)
        assert eer == pytest.approx(expected, abs=0.02)

    def test_perfect_classifier_zero(self):
        scores = np.array([1.0, -1.0])
        labels = np.array([1, 0])
        assert equal_error_rate(scores, labels) == pytest.approx(0.0)


class TestValidation:
    def test_rejects_single_class(self):
        with pytest.raises(ShapeError, match="both"):
            roc_curve(np.array([1.0, 2.0]), np.array([1, 1]))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError, match="zero"):
            roc_curve(np.array([]), np.array([]))

    def test_rejects_mismatch(self):
        with pytest.raises(ShapeError):
            roc_curve(np.zeros(3), np.zeros(4))
