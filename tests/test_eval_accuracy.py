"""Unit tests for repro.eval.accuracy and repro.eval.report."""

import numpy as np
import pytest

from repro.errors import ParameterError, ShapeError
from repro.eval import ConfusionCounts, evaluate_scores, format_float, format_table


class TestConfusionCounts:
    def test_accuracy(self):
        c = ConfusionCounts(true_positive=8, true_negative=90,
                            false_positive=1, false_negative=1)
        assert c.total == 100
        assert c.accuracy == pytest.approx(0.98)

    def test_rates(self):
        c = ConfusionCounts(true_positive=9, true_negative=95,
                            false_positive=5, false_negative=1)
        assert c.true_positive_rate == pytest.approx(0.9)
        assert c.false_positive_rate == pytest.approx(0.05)
        assert c.miss_rate == pytest.approx(0.1)

    def test_empty_is_zero(self):
        c = ConfusionCounts(0, 0, 0, 0)
        assert c.accuracy == 0.0
        assert c.true_positive_rate == 0.0


class TestEvaluateScores:
    def test_perfect_separation(self):
        scores = np.array([2.0, 1.5, -1.0, -2.0])
        labels = np.array([1, 1, 0, 0])
        rep = evaluate_scores(scores, labels)
        assert rep.accuracy_percent == 100.0
        assert rep.true_positives == 2
        assert rep.true_negatives == 2

    def test_threshold_shifts_counts(self):
        scores = np.array([0.5, -0.5])
        labels = np.array([1, 0])
        at_zero = evaluate_scores(scores, labels, threshold=0.0)
        at_one = evaluate_scores(scores, labels, threshold=1.0)
        assert at_zero.true_positives == 1
        assert at_one.true_positives == 0
        assert at_one.true_negatives == 1

    def test_score_equal_threshold_is_negative_prediction(self):
        rep = evaluate_scores(np.array([0.0]), np.array([1]))
        assert rep.counts.false_negative == 1

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ShapeError, match="scores"):
            evaluate_scores(np.zeros(3), np.zeros(2))

    def test_rejects_nonbinary_labels(self):
        with pytest.raises(ShapeError, match="0 or 1"):
            evaluate_scores(np.zeros(2), np.array([1, 2]))


class TestReportFormatting:
    def test_format_float(self):
        assert format_float(3.14159, 2) == "3.14"

    def test_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[1:])

    def test_table_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ParameterError, match="entries"):
            format_table(["a", "b"], [[1]])
