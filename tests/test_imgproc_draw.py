"""Unit tests for repro.imgproc.draw."""

import numpy as np
import pytest

from repro.errors import ImageError, ParameterError
from repro.imgproc import (
    alpha_blend_region,
    draw_line,
    fill_ellipse,
    fill_polygon,
    fill_rectangle,
)


def canvas(h=32, w=32, value=0.0):
    return np.full((h, w), value, dtype=np.float64)


class TestFillRectangle:
    def test_fills_exact_region(self):
        c = canvas()
        fill_rectangle(c, 4, 6, 8, 10, 1.0)
        assert c[4:12, 6:16].min() == 1.0
        assert c.sum() == 8 * 10

    def test_clips_at_borders(self):
        c = canvas(8, 8)
        fill_rectangle(c, -4, -4, 8, 8, 1.0)
        assert c[:4, :4].min() == 1.0
        assert c[4:, :].max() == 0.0

    def test_fully_outside_is_noop(self):
        c = canvas(8, 8)
        fill_rectangle(c, 100, 100, 5, 5, 1.0)
        assert c.max() == 0.0

    def test_alpha_blends(self):
        c = canvas(8, 8, value=0.0)
        fill_rectangle(c, 0, 0, 8, 8, 1.0, alpha=0.25)
        np.testing.assert_allclose(c, 0.25)

    def test_nonpositive_size_noop(self):
        c = canvas(8, 8)
        fill_rectangle(c, 2, 2, 0, 5, 1.0)
        assert c.max() == 0.0

    def test_rejects_color_canvas(self):
        with pytest.raises(ImageError, match="2-D"):
            fill_rectangle(np.zeros((4, 4, 3)), 0, 0, 2, 2, 1.0)


class TestFillEllipse:
    def test_center_is_filled(self):
        c = canvas()
        fill_ellipse(c, 16, 16, 5, 8, 1.0)
        assert c[16, 16] == 1.0

    def test_respects_radii(self):
        c = canvas()
        fill_ellipse(c, 16, 16, 4, 8, 1.0)
        assert c[16, 23] == 1.0  # inside along the wide axis
        assert c[22, 16] == 0.0  # outside along the narrow axis

    def test_area_approximates_pi_ab(self):
        c = canvas(64, 64)
        fill_ellipse(c, 32, 32, 10, 14, 1.0)
        assert c.sum() == pytest.approx(np.pi * 10 * 14, rel=0.05)

    def test_rotation_swaps_axes(self):
        c = canvas()
        fill_ellipse(c, 16, 16, 3, 9, 1.0, rotation=np.pi / 2.0)
        assert c[23, 16] == 1.0
        assert c[16, 23] == 0.0

    def test_zero_radius_noop(self):
        c = canvas()
        fill_ellipse(c, 16, 16, 0, 5, 1.0)
        assert c.max() == 0.0


class TestFillPolygon:
    def test_square(self):
        c = canvas(16, 16)
        fill_polygon(c, np.array([2, 2, 10, 10]), np.array([2, 10, 10, 2]), 1.0)
        assert c[5, 5] == 1.0
        assert c[12, 12] == 0.0
        assert c.sum() == pytest.approx(64, rel=0.15)

    def test_triangle_half_area(self):
        c = canvas(32, 32)
        fill_polygon(c, np.array([0, 0, 20]), np.array([0, 20, 0]), 1.0)
        assert c.sum() == pytest.approx(200, rel=0.1)

    def test_rejects_two_vertices(self):
        with pytest.raises(ParameterError, match="3"):
            fill_polygon(canvas(), np.array([0, 1]), np.array([0, 1]), 1.0)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ParameterError):
            fill_polygon(canvas(), np.array([0, 1, 2]), np.array([0, 1]), 1.0)


class TestDrawLine:
    def test_horizontal_line(self):
        c = canvas(16, 16)
        draw_line(c, 8, 2, 8, 13, 1.0, thickness=1.0)
        assert c[8, 7] == 1.0
        assert c[4, 7] == 0.0

    def test_thickness_widens(self):
        thin = canvas()
        thick = canvas()
        draw_line(thin, 16, 2, 16, 30, 1.0, thickness=1.0)
        draw_line(thick, 16, 2, 16, 30, 1.0, thickness=6.0)
        assert thick.sum() > 3 * thin.sum()

    def test_degenerate_point(self):
        c = canvas()
        draw_line(c, 10, 10, 10, 10, 1.0, thickness=4.0)
        assert c[10, 10] == 1.0

    def test_rejects_zero_thickness(self):
        with pytest.raises(ParameterError, match="thickness"):
            draw_line(canvas(), 0, 0, 5, 5, 1.0, thickness=0.0)


class TestAlphaBlendRegion:
    def test_full_alpha_overwrites(self):
        c = canvas(8, 8)
        alpha_blend_region(c, np.ones((4, 4)), 2, 2)
        assert c[2:6, 2:6].min() == 1.0
        assert c[0, 0] == 0.0

    def test_partial_alpha(self):
        c = canvas(8, 8, value=1.0)
        alpha_blend_region(c, np.zeros((8, 8)), 0, 0, alpha=0.5)
        np.testing.assert_allclose(c, 0.5)

    def test_negative_offset_crops(self):
        c = canvas(8, 8)
        alpha_blend_region(c, np.ones((4, 4)), -2, -2)
        assert c[0:2, 0:2].min() == 1.0
        assert c[2, 2] == 0.0

    def test_rejects_color_patch(self):
        with pytest.raises(ImageError, match="2-D"):
            alpha_blend_region(canvas(), np.ones((2, 2, 3)), 0, 0)
