"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.npz"
    code = main([
        "train", "--out", str(path), "--seed", "3",
        "--train-pos", "40", "--train-neg", "80",
    ])
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_report_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--what", "nonsense"])


class TestTrain:
    def test_writes_model(self, model_path):
        assert model_path.exists()
        from repro.svm import LinearSvmModel

        model = LinearSvmModel.load(model_path)
        assert model.n_features == 3780


class TestDetect:
    def test_detect_synthetic_scene(self, model_path, capsys):
        code = main([
            "detect", "--model", str(model_path),
            "--height", "288", "--width", "288", "--pedestrians", "1",
            "--scales", "1.0", "1.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "detections" in out
        assert "timings" in out

    def test_detect_npy_image(self, model_path, tmp_path, capsys):
        frame = np.random.default_rng(0).random((160, 160))
        img_path = tmp_path / "frame.npy"
        np.save(img_path, frame)
        code = main([
            "detect", "--model", str(model_path), "--image", str(img_path),
            "--scales", "1.0",
        ])
        assert code == 0
        assert "detections" in capsys.readouterr().out


class TestEvaluate:
    def test_prints_table(self, capsys):
        code = main([
            "evaluate", "--scale", "1.2", "--fraction", "0.02", "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "1.2" in out


class TestProfile:
    def test_json_report_has_stages_and_windows(self, model_path, capsys):
        import json

        code = main([
            "profile", "--model", str(model_path),
            "--height", "192", "--width", "192", "--pedestrians", "1",
            "--frames", "1", "--scales", "1.0", "1.2",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert {"gradient", "histogram", "normalize", "scale", "classify",
                "nms"} <= set(report["stages"])
        assert report["windows"]["total"]["windows_scanned"] > 0
        assert "1.00" in report["windows"]
        assert report["gauges"]["hw.sim.total_cycles"] > 0

    def test_text_format(self, model_path, capsys):
        code = main([
            "profile", "--model", str(model_path),
            "--height", "192", "--width", "192", "--pedestrians", "1",
            "--frames", "1", "--format", "text",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gradient" in out
        assert "scanned" in out

    def test_writes_out_file(self, model_path, tmp_path, capsys):
        import json

        out_path = tmp_path / "profile.json"
        code = main([
            "profile", "--model", str(model_path),
            "--height", "192", "--width", "192", "--frames", "1",
            "--out", str(out_path),
        ])
        assert code == 0
        capsys.readouterr()
        assert json.loads(out_path.read_text())["frames"] == 1


class TestStream:
    def test_stream_with_corrupt_frame(self, model_path, capsys):
        import json

        code = main([
            "stream", "--model", str(model_path),
            "--frames", "12", "--workers", "2", "--corrupt-frame", "5",
            "--height", "160", "--width", "160", "--pedestrians", "1",
            "--scales", "1.0", "--json",
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["frames"] == 12
        assert doc["stream"]["frames_failed"] == 1
        assert doc["stream"]["frames_ok"] == 11
        assert doc["stream"]["latency_p50_ms"] > 0
        assert doc["failures"][0]["index"] == 5
        assert "stream.latency_ms" in doc["telemetry"]["histograms"]
        assert "tracks_confirmed" in doc["tracking"]

    def test_stream_human_summary(self, model_path, capsys):
        code = main([
            "stream", "--model", str(model_path),
            "--frames", "6", "--height", "160", "--width", "160",
            "--pedestrians", "1", "--scales", "1.0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fps" in out
        assert "frames" in out

    def test_stream_writes_out_file(self, model_path, tmp_path, capsys):
        import json

        out_path = tmp_path / "stream.json"
        code = main([
            "stream", "--model", str(model_path),
            "--frames", "6", "--height", "160", "--width", "160",
            "--scales", "1.0", "--out", str(out_path),
        ])
        assert code == 0
        capsys.readouterr()
        assert json.loads(out_path.read_text())["stream"]["frames_ok"] == 6

    def test_stream_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--policy", "teleport"])


class TestReport:
    def test_timing(self, capsys):
        assert main(["report", "--what", "timing"]) == 0
        out = capsys.readouterr().out
        assert "1,200,420" in out
        assert "fps" in out

    def test_resources(self, capsys):
        assert main(["report", "--what", "resources"]) == 0
        out = capsys.readouterr().out
        assert "LUT" in out
        assert "fits" in out

    def test_stopping(self, capsys):
        assert main(["report", "--what", "stopping"]) == 0
        out = capsys.readouterr().out
        assert "braking" in out
        assert "detection range" in out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8787
        assert args.workers == 2
        assert args.policy == "block"
        assert args.max_pending == 8
        assert args.max_fps is None
        assert args.max_batch == 1
        assert args.batch_window_ms == 0.0
        assert args.keep_alive is False
        assert args.auth_token is None

    def test_serve_accepts_overrides(self):
        args = build_parser().parse_args([
            "serve", "--port", "0", "--workers", "3",
            "--backend", "process", "--policy", "drop-oldest",
            "--max-pending", "4", "--scales", "1.0",
            "--max-fps", "15", "--max-batch", "4",
            "--batch-window-ms", "2.5", "--keep-alive",
            "--auth-token", "hunter2",
        ])
        assert args.port == 0
        assert args.backend == "process"
        assert args.policy == "drop-oldest"
        assert args.scales == [1.0]
        assert args.max_fps == 15.0
        assert args.max_batch == 4
        assert args.batch_window_ms == 2.5
        assert args.keep_alive is True
        assert args.auth_token == "hunter2"

    def test_serve_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "teleport"])


class TestNamesCommand:
    def test_check_passes_on_committed_table(self, capsys):
        assert main(["names", "--check"]) == 0
        capsys.readouterr()

    def test_check_fails_on_stale_file(self, tmp_path, capsys):
        stale = tmp_path / "TELEMETRY.md"
        stale.write_text(
            "<!-- telemetry-name-table:begin -->\n"
            "stale\n"
            "<!-- telemetry-name-table:end -->\n"
        )
        assert main(["names", "--check", str(stale)]) == 1
        capsys.readouterr()

    def test_plain_listing_includes_serve_names(self, capsys):
        assert main(["names"]) == 0
        out = capsys.readouterr().out
        assert "serve.frames_submitted" in out


class TestDocsCommand:
    def test_check_passes_on_committed_page(self, capsys):
        assert main(["docs", "--check"]) == 0
        capsys.readouterr()

    def test_render_covers_every_subcommand(self, capsys):
        assert main(["docs"]) == 0
        out = capsys.readouterr().out
        for sub in ("train", "detect", "evaluate", "report", "profile",
                    "stream", "serve", "lint", "names", "docs"):
            assert f"### `repro-das {sub}`" in out

    def test_write_then_check_round_trips(self, tmp_path, capsys):
        page = tmp_path / "CLI.md"
        page.write_text(
            "# CLI\n\n<!-- cli-reference:begin -->\n"
            "<!-- cli-reference:end -->\n"
        )
        assert main(["docs", "--write", str(page)]) == 0
        assert main(["docs", "--check", str(page)]) == 0
        capsys.readouterr()
        assert "repro-das serve" in page.read_text()
