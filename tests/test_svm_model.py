"""Unit tests for repro.svm.model."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.svm import LinearSvmModel


@pytest.fixture()
def model():
    return LinearSvmModel(weights=np.array([1.0, -2.0, 0.5]), bias=0.25)


class TestDecisionFunction:
    def test_single_vector(self, model):
        out = model.decision_function(np.array([1.0, 1.0, 2.0]))
        assert out.shape == (1,)
        assert out[0] == pytest.approx(1.0 - 2.0 + 1.0 + 0.25)

    def test_batch(self, model):
        x = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        np.testing.assert_allclose(
            model.decision_function(x), [1.25, -1.75]
        )

    def test_rejects_wrong_dim(self, model):
        with pytest.raises(ShapeError, match="dimensionality"):
            model.decision_function(np.zeros(4))

    def test_rejects_3d(self, model):
        with pytest.raises(ShapeError):
            model.decision_function(np.zeros((2, 2, 3)))


class TestPredict:
    def test_signs(self, model):
        x = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        np.testing.assert_array_equal(model.predict(x), [1, -1])

    def test_threshold_moves_operating_point(self, model):
        x = np.array([[1.0, 0.0, 0.0]])  # score 1.25
        assert model.predict(x, threshold=2.0)[0] == -1
        assert model.predict(x, threshold=1.0)[0] == 1

    def test_score_equal_threshold_is_negative(self, model):
        x = np.array([[1.0, 0.0, 0.0]])
        assert model.predict(x, threshold=1.25)[0] == -1


class TestPersistence:
    def test_save_load_roundtrip(self, model, tmp_path):
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = LinearSvmModel.load(path)
        np.testing.assert_array_equal(loaded.weights, model.weights)
        assert loaded.bias == model.bias


class TestValidation:
    def test_rejects_empty_weights(self):
        with pytest.raises(ShapeError, match="non-empty"):
            LinearSvmModel(weights=np.array([]), bias=0.0)

    def test_rejects_matrix_weights(self):
        with pytest.raises(ShapeError):
            LinearSvmModel(weights=np.zeros((2, 2)), bias=0.0)

    def test_n_features(self, model):
        assert model.n_features == 3
