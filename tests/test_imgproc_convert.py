"""Unit tests for repro.imgproc.convert."""

import numpy as np
import pytest

from repro.errors import ImageError, ParameterError
from repro.imgproc import (
    from_uint8,
    gamma_correct,
    rescale_intensity,
    rgb_to_gray,
    to_uint8,
)


class TestRgbToGray:
    def test_luma_weights(self):
        img = np.zeros((1, 3, 3))
        img[0, 0] = [1.0, 0.0, 0.0]
        img[0, 1] = [0.0, 1.0, 0.0]
        img[0, 2] = [0.0, 0.0, 1.0]
        out = rgb_to_gray(img)
        np.testing.assert_allclose(out[0], [0.299, 0.587, 0.114])

    def test_white_maps_to_one(self):
        np.testing.assert_allclose(rgb_to_gray(np.ones((2, 2, 3))), 1.0)

    def test_rgba_alpha_ignored(self):
        img = np.ones((2, 2, 4))
        img[..., 3] = 0.0
        np.testing.assert_allclose(rgb_to_gray(img), 1.0)

    def test_rejects_grayscale(self):
        with pytest.raises(ImageError, match="expects an"):
            rgb_to_gray(np.ones((4, 4)))


class TestGammaCorrect:
    def test_sqrt_compression(self):
        img = np.full((2, 2), 0.25)
        np.testing.assert_allclose(gamma_correct(img, 0.5), 0.5)

    def test_identity(self):
        img = np.random.default_rng(0).random((4, 4))
        np.testing.assert_allclose(gamma_correct(img, 1.0), img)

    def test_rejects_nonpositive_gamma(self):
        with pytest.raises(ParameterError, match="gamma"):
            gamma_correct(np.ones((2, 2)), 0.0)

    def test_rejects_negative_pixels(self):
        with pytest.raises(ImageError, match="non-negative"):
            gamma_correct(np.full((2, 2), -0.5), 0.5)


class TestRescaleIntensity:
    def test_full_range(self):
        img = np.array([[2.0, 4.0], [6.0, 8.0]])
        out = rescale_intensity(img)
        assert out.min() == 0.0
        assert out.max() == 1.0

    def test_custom_range(self):
        img = np.array([[0.0, 1.0]])
        out = rescale_intensity(img, (10.0, 20.0))
        np.testing.assert_allclose(out, [[10.0, 20.0]])

    def test_constant_image_maps_to_lower_bound(self):
        out = rescale_intensity(np.full((3, 3), 7.0), (0.2, 0.9))
        np.testing.assert_allclose(out, 0.2)

    def test_rejects_degenerate_range(self):
        with pytest.raises(ParameterError, match="increasing"):
            rescale_intensity(np.ones((2, 2)), (1.0, 1.0))


class TestUint8Roundtrip:
    def test_roundtrip(self):
        img = np.linspace(0, 1, 256).reshape(16, 16)
        back = from_uint8(to_uint8(img))
        assert np.abs(back - img).max() <= 1.0 / 255.0

    def test_to_uint8_clips(self):
        img = np.array([[-0.5, 1.5]])
        out = to_uint8(img)
        assert out[0, 0] == 0
        assert out[0, 1] == 255

    def test_from_uint8_rejects_float(self):
        with pytest.raises(ImageError, match="uint8"):
            from_uint8(np.ones((2, 2)))
