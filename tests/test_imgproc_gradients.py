"""Unit tests for repro.imgproc.gradients."""

import numpy as np
import pytest

from repro.imgproc import GradientFilter, gradient_polar, gradient_xy


class TestGradientXy:
    def test_horizontal_ramp_constant_fx(self, gradient_ramp):
        fx, fy = gradient_xy(gradient_ramp)
        interior = fx[2:-2, 2:-2]
        expected = 1.0 / 63.0  # ramp slope per pixel
        np.testing.assert_allclose(interior, expected, rtol=1e-9)
        np.testing.assert_allclose(fy[2:-2, 2:-2], 0.0, atol=1e-12)

    def test_vertical_ramp_constant_fy(self):
        img = np.tile(np.linspace(0, 1, 32)[:, None], (1, 32))
        fx, fy = gradient_xy(img)
        np.testing.assert_allclose(fx[2:-2, 2:-2], 0.0, atol=1e-12)
        np.testing.assert_allclose(fy[2:-2, 2:-2], 1.0 / 31.0, rtol=1e-9)

    def test_constant_image_zero_gradient(self):
        fx, fy = gradient_xy(np.full((16, 16), 0.5))
        assert np.abs(fx).max() == 0.0
        assert np.abs(fy).max() == 0.0

    def test_output_shapes_match_input(self):
        fx, fy = gradient_xy(np.zeros((11, 17)))
        assert fx.shape == (11, 17)
        assert fy.shape == (11, 17)

    def test_border_replication_keeps_edges_finite(self):
        rng = np.random.default_rng(0)
        fx, fy = gradient_xy(rng.random((8, 8)))
        assert np.all(np.isfinite(fx))
        assert np.all(np.isfinite(fy))

    def test_sobel_and_prewitt_scale_centered(self, gradient_ramp):
        fx_c, _ = gradient_xy(gradient_ramp, GradientFilter.CENTERED)
        fx_s, _ = gradient_xy(gradient_ramp, GradientFilter.SOBEL)
        fx_p, _ = gradient_xy(gradient_ramp, GradientFilter.PREWITT)
        # On a pure ramp, Sobel = 8x and Prewitt = 6x the [-1,0,1]/2 mask.
        mid = (8, 8)
        assert fx_s[mid] == pytest.approx(8.0 * fx_c[mid])
        assert fx_p[mid] == pytest.approx(6.0 * fx_c[mid])

    def test_string_method(self, gradient_ramp):
        fx1, _ = gradient_xy(gradient_ramp, "centered")
        fx2, _ = gradient_xy(gradient_ramp, GradientFilter.CENTERED)
        np.testing.assert_array_equal(fx1, fx2)


class TestGradientPolar:
    def test_magnitude_of_ramp(self, gradient_ramp):
        mag, _ = gradient_polar(gradient_ramp)
        np.testing.assert_allclose(mag[2:-2, 2:-2], 1.0 / 63.0, rtol=1e-9)

    def test_unsigned_orientation_in_range(self, rng):
        mag, ori = gradient_polar(rng.random((32, 32)))
        assert ori.min() >= 0.0
        assert ori.max() < np.pi

    def test_signed_orientation_in_range(self, rng):
        _, ori = gradient_polar(rng.random((32, 32)), signed=True)
        assert ori.min() >= 0.0
        assert ori.max() < 2.0 * np.pi

    def test_horizontal_edge_has_vertical_gradient(self):
        img = np.zeros((16, 16))
        img[8:, :] = 1.0
        mag, ori = gradient_polar(img)
        row = 8  # strongest response at the edge
        strongest = np.argmax(mag[:, 8])
        assert strongest in (7, 8)
        # Gradient direction is vertical: angle ~ pi/2 (unsigned).
        assert ori[row, 8] == pytest.approx(np.pi / 2.0, abs=1e-9)

    def test_vertical_edge_has_horizontal_gradient(self):
        img = np.zeros((16, 16))
        img[:, 8:] = 1.0
        _, ori = gradient_polar(img)
        assert ori[8, 8] == pytest.approx(0.0, abs=1e-9)

    def test_opposite_edges_fold_to_same_unsigned_angle(self):
        up = np.zeros((16, 16))
        up[8:, :] = 1.0
        down = 1.0 - up
        _, ori_up = gradient_polar(up)
        _, ori_down = gradient_polar(down)
        assert ori_up[8, 8] == pytest.approx(ori_down[8, 8], abs=1e-9)

    def test_magnitude_is_hypot_of_components(self, rng):
        img = rng.random((24, 24))
        fx, fy = gradient_xy(img)
        mag, _ = gradient_polar(img)
        np.testing.assert_allclose(mag, np.hypot(fx, fy))
