"""Unit tests for the banked N-HOGMem model."""

import numpy as np
import pytest

from repro.errors import HardwareConfigError, ScheduleError
from repro.hardware import BankedFeatureMemory, CellGroup


class TestCellGroup:
    def test_parity_mapping(self):
        assert CellGroup.of_cell(0, 0) is CellGroup.LU
        assert CellGroup.of_cell(0, 1) is CellGroup.RU
        assert CellGroup.of_cell(1, 0) is CellGroup.LB
        assert CellGroup.of_cell(1, 1) is CellGroup.RB

    def test_periodicity(self):
        assert CellGroup.of_cell(7, 9) is CellGroup.of_cell(1, 1)


class TestBankGeometry:
    def test_any_2x2_block_hits_four_banks(self):
        """The property the layout of [10] exists to provide: the four
        cells of every block live in four distinct banks."""
        mem = BankedFeatureMemory()
        for top in range(0, 12):
            for left in range(0, 12):
                banks = {
                    mem.bank_of_cell(top + dr, left + dc)
                    for dr in (0, 1)
                    for dc in (0, 1)
                }
                assert len(banks) == 4

    def test_banks_used_uniformly(self):
        mem = BankedFeatureMemory(n_banks=16, n_cols=240)
        counts = np.zeros(16, dtype=int)
        for r in range(18):
            for c in range(240):
                counts[mem.bank_of_cell(r, c)] += 1
        assert counts.max() == counts.min()

    def test_capacity_accounting(self):
        mem = BankedFeatureMemory(
            n_banks=16, n_rows=18, n_cols=240, words_per_cell=9, word_bits=16
        )
        assert mem.capacity_bits == 18 * 240 * 9 * 16
        assert mem.bits_per_bank * 16 == mem.capacity_bits

    def test_rejects_bad_bank_count(self):
        with pytest.raises(HardwareConfigError, match="multiple of 4"):
            BankedFeatureMemory(n_banks=6)

    def test_rejects_one_row(self):
        with pytest.raises(HardwareConfigError):
            BankedFeatureMemory(n_rows=1)


class TestRollingBuffer:
    def make(self, rows=4, cols=8, words=3):
        return BankedFeatureMemory(
            n_banks=4, n_rows=rows, n_cols=cols, words_per_cell=words
        )

    def test_write_read_roundtrip(self):
        mem = self.make()
        data = np.array([1.0, 2.0, 3.0])
        mem.write_cell(0, 5, data)
        np.testing.assert_array_equal(mem.read_cell(0, 5), data)

    def test_read_returns_copy(self):
        mem = self.make()
        mem.write_cell(0, 0, np.ones(3))
        out = mem.read_cell(0, 0)
        out[0] = 99.0
        assert mem.read_cell(0, 0)[0] == 1.0

    def test_eviction_after_wraparound(self):
        mem = self.make(rows=4)
        mem.write_cell(0, 0, np.zeros(3))
        mem.write_cell(4, 0, np.ones(3))  # same slot as row 0
        with pytest.raises(ScheduleError, match="no longer resident"):
            mem.read_cell(0, 0)

    def test_resident_rows_tracking(self):
        mem = self.make(rows=4)
        for r in (0, 1, 2):
            mem.write_cell(r, 0, np.zeros(3))
        assert mem.resident_rows() == [0, 1, 2]
        mem.write_cell(4, 0, np.zeros(3))
        assert mem.resident_rows() == [1, 2, 4]

    def test_out_of_range_column(self):
        mem = self.make(cols=8)
        with pytest.raises(ScheduleError, match="column"):
            mem.read_cell(0, 8)

    def test_wrong_word_count(self):
        mem = self.make(words=3)
        with pytest.raises(HardwareConfigError, match="words"):
            mem.write_cell(0, 0, np.zeros(4))

    def test_block_column_read(self):
        mem = self.make(rows=4, cols=8)
        expect = {}
        for r in (2, 3):
            for c in (4, 5):
                v = np.full(3, r * 10.0 + c)
                mem.write_cell(r, c, v)
                expect[(r, c)] = v
        block = mem.read_block_column(2, 4)
        np.testing.assert_array_equal(block[0], expect[(2, 4)])  # LU
        np.testing.assert_array_equal(block[1], expect[(2, 5)])  # RU
        np.testing.assert_array_equal(block[2], expect[(3, 4)])  # LB
        np.testing.assert_array_equal(block[3], expect[(3, 5)])  # RB

    def test_access_stats(self):
        mem = self.make()
        mem.write_cell(0, 0, np.zeros(3))
        mem.read_cell(0, 0)
        mem.read_cell(0, 0)
        assert mem.stats.total_writes == 1
        assert mem.stats.total_reads == 2
