"""Micro-batched dispatch, admission throttle, auth and keep-alive tests.

The batching contract under test: coalescing pending frames across
sessions into one worker dispatch is a pure *transport* optimization —
frame-for-frame, a batched service must produce exactly the results an
unbatched one does (same per-session ordering, same per-frame fault
isolation: one corrupt frame inside a batch fails alone, never its
batchmates).  The parity tests drive random session interleavings
(hypothesis on the thread backend, a fixed sweep on the process
backend) through a ``max_batch=1`` service and a batching one and
compare the emitted ``FrameResult`` sequences.

The HTTP additions ride along: per-session ``max_fps`` throttling with
in-order ``DROPPED`` accounting, bearer-token auth on ``/v1/*``, and
HTTP/1.1 keep-alive connection reuse.
"""

from __future__ import annotations

import asyncio
import queue
import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.errors import ParameterError, ServeError
from repro.serve import (
    DetectionService,
    ServeClient,
    start_http_server,
)
from repro.stream import FrameStatus
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def detector(trained_model):
    return MultiScalePedestrianDetector(
        trained_model,
        DetectorConfig(scales=(1.0,), threshold=0.5),
    )


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(31)
    return [rng.random((96, 80)) for _ in range(8)]


def run(coro):
    return asyncio.run(coro)


async def _drain(session, count):
    collected = []
    while len(collected) < count:
        batch = await session.results(
            max_items=count - len(collected), timeout=30.0
        )
        assert batch or not session.done, "session ended early"
        collected.extend(batch)
    return collected


def _fingerprint(results):
    """What batching must not change about a result sequence."""
    return [
        (r.index, r.status.value, r.detections,
         r.error is not None)
        for r in results
    ]


def _run_interleaving(detector, frames, schedule, n_sessions,
                      corrupt_at, **service_kwargs):
    """Submit ``frames`` to ``n_sessions`` sessions in ``schedule``
    order; returns each session's result fingerprint.

    ``schedule`` is a sequence of session indices; submission ``k`` of
    session ``s`` sends ``frames[k % len(frames)]``, except submission
    ``corrupt_at`` which sends an all-NaN frame (the per-frame fault
    the batch must isolate).
    """
    async def scenario():
        service = DetectionService(detector, **service_kwargs)
        await service.start()
        try:
            sessions = [service.open_session()
                        for _ in range(n_sessions)]
            counts = [0] * n_sessions
            corrupt = np.full_like(frames[0], np.nan)
            for s in schedule:
                k = counts[s]
                counts[s] += 1
                frame = (corrupt if k == corrupt_at
                         else frames[k % len(frames)])
                ticket = await sessions[s].submit(frame)
                assert ticket.accepted
            drained = [
                await _drain(session, count)
                for session, count in zip(sessions, counts)
            ]
        finally:
            report = await service.shutdown()
        assert report.drained_clean
        return [_fingerprint(got) for got in drained]
    return run(scenario())


class TestBatchedParity:
    """Batched and unbatched dispatch must be observably identical."""

    @given(schedule=st.lists(st.integers(0, 2), min_size=1,
                             max_size=12))
    @settings(max_examples=15, deadline=None)
    def test_thread_backend_interleavings(self, detector, frames,
                                          schedule):
        base = _run_interleaving(
            detector, frames, schedule, 3, corrupt_at=1,
            workers=2, max_batch=1,
        )
        batched = _run_interleaving(
            detector, frames, schedule, 3, corrupt_at=1,
            workers=2, max_batch=4, batch_window_ms=2.0,
        )
        assert batched == base
        for s, count in enumerate(
            [schedule.count(i) for i in range(3)]
        ):
            assert [f[0] for f in batched[s]] == list(range(count))
            for k, (_, status, _, has_error) in enumerate(batched[s]):
                if k == 1:
                    assert status == "failed" and has_error
                else:
                    assert status == "ok" and not has_error

    @pytest.mark.parametrize("schedule", [
        [0, 1, 0, 1, 0, 1, 0, 1],
        [0, 0, 0, 0, 1, 1, 1, 1],
        [1, 0, 0, 1, 1, 0, 1, 0],
    ])
    def test_process_backend_interleavings(self, detector, frames,
                                           schedule):
        base = _run_interleaving(
            detector, frames, schedule, 2, corrupt_at=2,
            workers=2, backend="process", max_batch=1,
        )
        batched = _run_interleaving(
            detector, frames, schedule, 2, corrupt_at=2,
            workers=2, backend="process", max_batch=4,
            batch_window_ms=2.0,
        )
        assert batched == base

    def test_batching_actually_batches(self, detector, frames):
        async def scenario():
            telemetry = MetricsRegistry()
            service = DetectionService(
                detector, workers=2, max_batch=4,
                batch_window_ms=5.0, max_pending=32,
                telemetry=telemetry,
            )
            await service.start()
            try:
                sessions = [service.open_session() for _ in range(4)]
                for frame in frames:
                    for session in sessions:
                        await session.submit(frame)
                for session in sessions:
                    await _drain(session, len(frames))
            finally:
                await service.shutdown()
            return telemetry.snapshot()
        snap = run(scenario())
        assert snap.counters["serve.batch.multi_frame"] >= 1
        sizes = snap.histograms["serve.batch.size"]
        assert sizes.count == snap.counters["serve.batch.formed"]
        assert sizes.maximum > 1

    def test_process_backend_reports_batches(self, detector, frames):
        async def scenario():
            telemetry = MetricsRegistry()
            service = DetectionService(
                detector, workers=2, backend="process", max_batch=4,
                batch_window_ms=5.0, max_pending=32,
                telemetry=telemetry,
            )
            await service.start()
            try:
                sessions = [service.open_session() for _ in range(4)]
                for frame in frames[:4]:
                    for session in sessions:
                        await session.submit(frame)
                for session in sessions:
                    await _drain(session, 4)
            finally:
                await service.shutdown()
            return telemetry.snapshot()
        snap = run(scenario())
        assert snap.counters["parallel.batches"] >= 1

    def test_parameter_validation(self, detector):
        with pytest.raises(ParameterError, match="max_batch"):
            DetectionService(detector, max_batch=0)
        with pytest.raises(ParameterError, match="batch_window_ms"):
            DetectionService(detector, batch_window_ms=-1.0)
        with pytest.raises(ParameterError, match="max_fps"):
            DetectionService(detector, max_fps=0.0)


class TestThrottle:
    def test_max_fps_refuses_in_order(self, detector, frames):
        async def scenario():
            telemetry = MetricsRegistry()
            service = DetectionService(
                detector, workers=1, telemetry=telemetry,
            )
            await service.start()
            try:
                session = service.open_session(max_fps=0.5)
                tickets = [await session.submit(frame)
                           for frame in frames[:5]]
                got = await _drain(session, 5)
            finally:
                await service.shutdown()
            return tickets, got, session.report(), telemetry.snapshot()
        tickets, got, report, snap = run(scenario())
        # Burst headroom is one frame: the first submit is admitted,
        # the immediate follow-ups are throttled.
        assert tickets[0].accepted
        throttled = [t for t in tickets if not t.accepted]
        assert throttled and all(
            t.reason == "throttled" for t in throttled
        )
        # No silent loss, no holes: every seq yields an in-order
        # result; throttled frames are DROPPED records.
        assert [r.index for r in got] == list(range(5))
        for ticket in throttled:
            assert got[ticket.seq].status is FrameStatus.DROPPED
        assert report.throttled == len(throttled)
        assert report.rejected == 0
        assert report.dropped == len(throttled)
        assert snap.counters["serve.frames_throttled"] == len(throttled)

    def test_throttle_applies_under_block_policy(self, detector,
                                                 frames):
        async def scenario():
            service = DetectionService(
                detector, workers=1, default_policy="block",
            )
            await service.start()
            try:
                session = service.open_session(max_fps=0.25)
                tickets = [await session.submit(frame)
                           for frame in frames[:3]]
                await _drain(session, 3)
            finally:
                await service.shutdown()
            return tickets
        tickets = run(scenario())
        # block pacing would hide the overrun; the cap refuses instead.
        assert not all(t.accepted for t in tickets)

    def test_session_report_counts_stay_consistent(self, detector,
                                                   frames):
        async def scenario():
            service = DetectionService(detector, workers=1)
            await service.start()
            try:
                session = service.open_session(max_fps=0.5)
                for frame in frames[:4]:
                    await session.submit(frame)
                report = await session.close(drain=True)
            finally:
                service_report = await service.shutdown()
            return report, service_report
        report, service_report = run(scenario())
        assert report.submitted == report.ok + report.failed \
            + report.dropped
        assert report.dropped == report.throttled + report.rejected \
            + report.evicted
        assert service_report.frames_throttled == report.throttled


class _HttpHarness:
    """DetectionService + ServeApp on a private loop thread, with the
    service/app keyword knobs the batching PR added."""

    def __init__(self, detector, *, keep_alive=False, auth_token=None,
                 **service_kwargs):
        self._detector = detector
        self._keep_alive = keep_alive
        self._auth_token = auth_token
        self._service_kwargs = service_kwargs
        self._ports: queue.Queue = queue.Queue()
        self._loop = None
        self._stop = None
        self.telemetry = MetricsRegistry()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        port = self._ports.get(timeout=60)
        if isinstance(port, BaseException):
            raise port
        return ServeClient(port=port, timeout=60.0,
                           auth_token=self._auth_token)

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as error:  # startup failures -> the test
            self._ports.put(error)

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        service = DetectionService(
            self._detector, workers=2, telemetry=self.telemetry,
            **self._service_kwargs,
        )
        await service.start()
        app, _, port = await start_http_server(
            service, "127.0.0.1", 0,
            keep_alive=self._keep_alive, auth_token=self._auth_token,
        )
        self._ports.put(port)
        await self._stop.wait()
        await app.stop()
        await service.shutdown()


class TestAuth:
    def test_v1_routes_require_the_bearer_token(self, detector):
        harness = _HttpHarness(detector, auth_token="sesame")
        with harness as client:
            # Probes and metrics stay open for liveness checks and
            # scrapers.
            bare = ServeClient(port=client.port, timeout=60.0)
            try:
                assert bare.health()
                assert bare.ready()
                assert "repro_serve_ready" in bare.metrics_text()
                with pytest.raises(ServeError, match="401"):
                    bare.open_session()
                status, _, _ = bare._request("POST", "/v1/sessions")
                assert status == 401
            finally:
                bare.close()
            wrong = ServeClient(port=client.port, timeout=60.0,
                                auth_token="wrong")
            try:
                with pytest.raises(ServeError, match="401"):
                    wrong.open_session()
            finally:
                wrong.close()
            session = client.open_session()
            report = client.close_session(session)
            assert report["session"] == session
            client.close()

    def test_http_max_fps_throttles_with_429(self, detector, frames):
        with _HttpHarness(detector) as client:
            session = client.open_session(max_fps=0.5)
            tickets = [client.submit_frame(session, frames[0])
                       for _ in range(4)]
            throttled = [t for t in tickets if not t["accepted"]]
            assert throttled and all(
                t["reason"] == "throttled" for t in throttled
            )
            results = client.collect(session, 4)
            assert [r["index"] for r in results] == [0, 1, 2, 3]
            report = client.close_session(session)
            assert report["throttled"] == len(throttled)
            client.close()

    def test_bad_max_fps_is_rejected(self, detector):
        with _HttpHarness(detector) as client:
            with pytest.raises(ServeError, match="max_fps"):
                client.open_session(max_fps=-1.0)
            client.close()


class TestKeepAlive:
    def test_connection_reuse(self, detector, frames):
        harness = _HttpHarness(detector, keep_alive=True)
        with harness as client:
            session = client.open_session()
            for frame in frames[:3]:
                assert client.submit_frame(session, frame)["accepted"]
            results = client.collect(session, 3)
            assert [r["index"] for r in results] == [0, 1, 2]
            client.close_session(session)
            metrics = client.metrics()
            client.close()
        samples = metrics["samples"]
        connections = samples[("repro_serve_http_connections", ())]
        requests = samples[("repro_serve_http_requests", ())]
        # One persistent client connection served every request.
        assert connections == 1
        assert requests > connections

    def test_close_header_still_honoured(self, detector):
        harness = _HttpHarness(detector, keep_alive=True)
        with harness as client:
            status, _, _ = client._request(
                "GET", "/healthz", headers={"Connection": "close"}
            )
            assert status == 200
            # The server honoured Connection: close; the client saw it
            # and dropped its cached connection.
            assert client._connection is None
            assert client.ready()  # next request dials fresh
            client.close()

    def test_stale_connection_is_retried_once(self, detector):
        # Against a keep-alive server, simulate the server closing an
        # idle connection under the client: the next request must
        # transparently retry on a fresh socket.
        harness = _HttpHarness(detector, keep_alive=True)
        with harness as client:
            assert client.health()
            assert client._connection is not None
            client._connection.sock.close()  # yank the socket
            assert client.health()
            client.close()

    def test_default_mode_still_closes_per_request(self, detector):
        with _HttpHarness(detector) as client:
            assert client.health()
            # Every response carries Connection: close, so the client
            # never caches a connection in default mode.
            assert client._connection is None
            metrics = client.metrics()
            client.close()
        samples = metrics["samples"]
        assert samples[("repro_serve_http_connections", ())] \
            == samples[("repro_serve_http_requests", ())]
