"""Tests for the detection-as-a-service layer (repro.serve).

The contracts under test, in the ISSUE's words:

* N concurrent sessions over one shared pool each receive exactly
  their own frames back, in order;
* per-session fault isolation — one client's corrupt frame fails that
  frame on that session only;
* every backpressure policy preserves the no-silent-loss invariant
  (refused/evicted frames still yield in-order ``DROPPED`` results);
* ``/metrics`` renders parseable Prometheus text exposition and every
  registered ``serve.*`` name round-trips through it;
* the HTTP front end + ``ServeClient`` drive the same machinery.
"""

from __future__ import annotations

import asyncio
import queue
import threading

import numpy as np
import pytest

from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.errors import ParameterError, ServeError
from repro.serve import (
    DetectionService,
    ServeClient,
    metric_identity,
    parse_exposition,
    render_prometheus,
    start_http_server,
)
from repro.serve.prometheus import escape_label
from repro.stream import FrameStatus
from repro.telemetry import MetricsRegistry
from repro.telemetry import names as telemetry_names


@pytest.fixture(scope="module")
def detector(trained_model):
    return MultiScalePedestrianDetector(
        trained_model,
        DetectorConfig(scales=(1.0,), threshold=0.5),
    )


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(23)
    return [rng.random((160, 112)) for _ in range(6)]


def run(coro):
    return asyncio.run(coro)


async def _drain(session, count):
    """Collect exactly ``count`` results from one session."""
    collected = []
    while len(collected) < count:
        batch = await session.results(
            max_items=count - len(collected), timeout=30.0
        )
        assert batch or not session.done, "session ended early"
        collected.extend(batch)
    return collected


class TestDetectionService:
    def test_sessions_share_pool_and_keep_their_own_order(
        self, detector, frames
    ):
        async def scenario():
            telemetry = MetricsRegistry()
            service = DetectionService(
                detector, workers=2, telemetry=telemetry
            )
            await service.start()
            try:
                one = service.open_session()
                two = service.open_session()
                # Interleave submissions so worker completions race.
                for frame in frames:
                    await one.submit(frame)
                    await two.submit(frame)
                got_one = await _drain(one, len(frames))
                got_two = await _drain(two, len(frames))
            finally:
                report = await service.shutdown()
            return one.report(), two.report(), got_one, got_two, \
                report, telemetry
        rep_one, rep_two, got_one, got_two, report, telemetry = run(
            scenario()
        )
        for got in (got_one, got_two):
            assert [r.index for r in got] == list(range(len(frames)))
            assert all(r.status is FrameStatus.OK for r in got)
        # Same spec => same cache key => one shared pool.
        assert rep_one.pool == rep_two.pool
        assert report.pools_built == 1
        assert report.frames_submitted == 2 * len(frames)
        assert report.frames_ok == 2 * len(frames)
        assert report.drained_clean
        snap = telemetry.snapshot()
        assert snap.counters["serve.frames_submitted"] == 2 * len(frames)
        assert snap.counters["serve.frames_ok"] == 2 * len(frames)
        assert snap.counters["serve.sessions_opened"] == 2
        # The second session hit the pool the first one built (the
        # default pool is warmed at start, so both are hits).
        assert snap.counters["serve.pool_cache_hits"] == 2

    def test_fault_is_isolated_to_the_offending_session(
        self, detector, frames
    ):
        async def scenario():
            service = DetectionService(detector, workers=2)
            await service.start()
            try:
                healthy = service.open_session()
                faulty = service.open_session()
                corrupt = np.full_like(frames[0], np.nan)
                for i, frame in enumerate(frames):
                    await healthy.submit(frame)
                    await faulty.submit(corrupt if i == 2 else frame)
                got_healthy = await _drain(healthy, len(frames))
                got_faulty = await _drain(faulty, len(frames))
            finally:
                await service.shutdown()
            return got_healthy, got_faulty
        got_healthy, got_faulty = run(scenario())
        assert all(r.ok for r in got_healthy)
        statuses = [r.status for r in got_faulty]
        assert statuses.count(FrameStatus.FAILED) == 1
        assert got_faulty[2].status is FrameStatus.FAILED
        assert got_faulty[2].error
        assert [r.index for r in got_faulty] == list(range(len(frames)))

    def test_drop_newest_refuses_but_never_silently_loses(
        self, detector, frames
    ):
        async def scenario():
            service = DetectionService(
                detector, workers=1, default_policy="drop-newest",
                max_pending=2,
            )
            await service.start()
            try:
                session = service.open_session()
                tickets = [
                    await session.submit(frame)
                    for frame in frames
                ]
                got = await _drain(session, len(frames))
            finally:
                await service.shutdown()
            return tickets, got, session.report()
        tickets, got, report = run(scenario())
        rejected = [t for t in tickets if not t.accepted]
        assert rejected, "quota of 2 never saturated across 6 submits"
        # Every submit got a seq; every seq produced exactly one
        # result, in order — a refusal is a DROPPED record, not a gap.
        assert [t.seq for t in tickets] == list(range(len(frames)))
        assert [r.index for r in got] == list(range(len(frames)))
        for ticket in rejected:
            assert got[ticket.seq].status is FrameStatus.DROPPED
        assert report.rejected == len(rejected)
        assert report.dropped == len(rejected)
        assert report.evicted == 0
        assert report.ok == len(frames) - len(rejected)

    def test_drop_oldest_evicts_queued_frames_in_order(
        self, detector, frames
    ):
        async def scenario():
            service = DetectionService(
                detector, workers=1, default_policy="drop-oldest",
                max_pending=2,
            )
            await service.start()
            try:
                session = service.open_session()
                tickets = [
                    await session.submit(frame)
                    for frame in frames
                ]
                got = await _drain(session, len(frames))
            finally:
                await service.shutdown()
            return tickets, got, session.report()
        tickets, got, report = run(scenario())
        assert [r.index for r in got] == list(range(len(frames)))
        dropped = [r for r in got if r.status is FrameStatus.DROPPED]
        assert report.evicted + report.rejected == len(dropped)
        assert report.evicted > 0, "nothing was ever evicted"
        # drop-oldest favours the newcomer: the *last* submit is never
        # the refused one as long as something queued was evictable.
        assert got[-1].status is not FrameStatus.DROPPED or \
            tickets[-1].accepted
        assert report.ok + report.failed + report.dropped == len(frames)

    def test_block_policy_is_lossless(self, detector, frames):
        async def scenario():
            service = DetectionService(
                detector, workers=2, default_policy="block",
                max_pending=1,
            )
            await service.start()
            try:
                session = service.open_session()

                async def submit_all():
                    for frame in frames:
                        ticket = await session.submit(frame)
                        assert ticket.accepted
                submitter = asyncio.ensure_future(submit_all())
                got = await _drain(session, len(frames))
                await submitter
            finally:
                await service.shutdown()
            return got, session.report()
        got, report = run(scenario())
        assert [r.index for r in got] == list(range(len(frames)))
        assert all(r.status is FrameStatus.OK for r in got)
        assert report.dropped == report.rejected == report.evicted == 0

    def test_session_close_drains_and_reports(self, detector, frames):
        async def scenario():
            service = DetectionService(detector, workers=2)
            await service.start()
            try:
                session = service.open_session()
                for frame in frames[:3]:
                    await session.submit(frame)
                report = await session.close(drain=True)
                leftovers = await session.results(timeout=1.0)
            finally:
                service_report = await service.shutdown()
            return report, leftovers, service_report
        report, leftovers, service_report = run(scenario())
        assert report.submitted == 3
        assert report.ok == 3
        # Results not consumed before close are still there — close
        # drains the workers, it does not discard the output queue.
        assert [r.index for r in leftovers] == [0, 1, 2]
        assert service_report.sessions_closed == 1
        assert service_report.drained_clean

    def test_draining_service_refuses_new_work(self, detector, frames):
        async def scenario():
            service = DetectionService(detector, workers=1)
            await service.start()
            session = service.open_session()
            await service.shutdown()
            with pytest.raises(ServeError):
                service.open_session()
            with pytest.raises(ServeError):
                await session.submit(frames[0])
        run(scenario())

    def test_parameter_validation(self, detector):
        with pytest.raises(ParameterError, match="detector"):
            DetectionService()
        with pytest.raises(ParameterError, match="workers"):
            DetectionService(detector, workers=0)
        with pytest.raises(ParameterError, match="max_pending"):
            DetectionService(detector, max_pending=0)

        async def bad_session():
            service = DetectionService(detector)
            await service.start()
            try:
                with pytest.raises(ParameterError, match="max_pending"):
                    service.open_session(max_pending=0)
            finally:
                await service.shutdown()
        run(bad_session())


class TestPrometheusExposition:
    def test_counter_gauge_and_summary_lines(self):
        reg = MetricsRegistry()
        reg.inc("serve.frames_submitted", 7)
        reg.set_gauge("serve.workers", 2.0)
        for value in (1.0, 2.0, 3.0, 4.0):
            reg.observe("serve.latency_ms", value)
        text = render_prometheus(reg.snapshot())
        assert "# TYPE repro_serve_frames_submitted counter" in text
        assert "repro_serve_frames_submitted 7" in text
        assert "# TYPE repro_serve_workers gauge" in text
        assert "repro_serve_workers 2.0" in text
        assert "# TYPE repro_serve_latency_ms summary" in text
        assert 'repro_serve_latency_ms{quantile="0.5"}' in text
        assert 'repro_serve_latency_ms{quantile="0.95"}' in text
        assert "repro_serve_latency_ms_sum 10" in text
        assert "repro_serve_latency_ms_count 4" in text
        assert "_bucket" not in text

    def test_template_instances_become_labels(self):
        reg = MetricsRegistry()
        reg.inc("serve.http.responses[200]", 3)
        reg.inc("serve.http.responses[429]")
        text = render_prometheus(reg.snapshot())
        assert 'repro_serve_http_responses{code="200"} 3' in text
        assert 'repro_serve_http_responses{code="429"} 1' in text
        parsed = parse_exposition(text)
        samples = parsed["samples"]
        assert samples[
            ("repro_serve_http_responses", (("code", "200"),))
        ] == 3.0

    def test_spans_render_as_duration_summary(self):
        reg = MetricsRegistry()
        with reg.span("detect.frame"):
            pass
        text = render_prometheus(reg.snapshot())
        assert "# TYPE repro_stage_duration_seconds summary" in text
        assert 'repro_stage_duration_seconds_count{path="detect.frame"}' \
            in text

    def test_label_escaping_round_trips(self):
        hostile = 'sla\\sh "quote"\nnewline'
        escaped = escape_label(hostile)
        assert "\n" not in escaped
        reg = MetricsRegistry()
        reg.inc(f"serve.http.responses[{hostile}]")
        reg.inc('serve.http.responses[5"03]', 2)
        text = render_prometheus(reg.snapshot())
        parsed = parse_exposition(text)
        # The embedded newline defeats template resolution, so this
        # instance gets the generic fallback label key — but its value
        # must still survive escaping byte-for-byte.
        samples = parsed["samples"]
        assert samples[
            ("repro_serve_http_responses", (("instance", hostile),))
        ] == 1.0
        # A resolvable instance keeps the template's label key even
        # with a quote in the value.
        assert samples[
            ("repro_serve_http_responses", (("code", '5"03'),))
        ] == 2.0

    def test_every_registered_serve_name_round_trips(self):
        """The golden contract: record every ``serve.*`` name, render,
        parse, and find each one again under its mangled identity."""
        reg = MetricsRegistry()
        serve_names = [
            entry for entry in telemetry_names.canonical_names()
            if entry.name.startswith("serve.")
        ]
        assert len(serve_names) >= 18
        concrete = {}
        for entry in serve_names:
            name = entry.name.replace("<status>", "ok")
            name = name.replace("<code>", "200")
            assert "<" not in name, f"unhandled placeholder in {entry.name}"
            concrete[name] = entry.kind
            if entry.kind == "counter":
                reg.inc(name)
            elif entry.kind == "gauge":
                reg.set_gauge(name, 1.0)
            elif entry.kind == "histogram":
                reg.observe(name, 1.0)
            else:  # pragma: no cover - no serve.* spans are registered
                pytest.fail(f"unexpected kind {entry.kind} for {entry.name}")
        parsed = parse_exposition(render_prometheus(reg.snapshot()))
        expected_type = {"counter": "counter", "gauge": "gauge",
                         "histogram": "summary"}
        for name, kind in concrete.items():
            metric, labels = metric_identity(name)
            assert parsed["types"][metric] == expected_type[kind], name
            key = (metric, tuple(sorted(labels.items())))
            if kind == "histogram":
                key = (metric + "_count", key[1])
            assert key in parsed["samples"], (name, metric)
            assert (metric + "_bucket", ()) not in parsed["samples"]

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_exposition("repro_thing{unterminated 1\n")
        with pytest.raises(ValueError):
            parse_exposition("repro_thing not-a-number\n")


class _HttpHarness:
    """Run a DetectionService + ServeApp on a private loop thread so
    the synchronous ServeClient can talk to it from the test thread."""

    def __init__(self, detector):
        self._detector = detector
        self._ports: queue.Queue = queue.Queue()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        port = self._ports.get(timeout=60)
        if isinstance(port, BaseException):
            raise port
        return ServeClient(port=port, timeout=60.0)

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    def _run(self):
        try:
            asyncio.run(self._main())
        except BaseException as error:  # startup failures -> the test
            self._ports.put(error)

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        service = DetectionService(
            self._detector, workers=2, telemetry=MetricsRegistry()
        )
        await service.start()
        app, _, port = await start_http_server(service, "127.0.0.1", 0)
        self._ports.put(port)
        await self._stop.wait()
        await app.stop()
        await service.shutdown()


class TestHttpFrontEnd:
    def test_client_round_trip(self, detector, frames):
        with _HttpHarness(detector) as client:
            assert client.health()
            assert client.ready()
            session = client.open_session(policy="drop-newest",
                                          max_pending=16)
            for frame in frames[:3]:
                ticket = client.submit_frame(session, frame)
                assert ticket["accepted"]
            results = client.collect(session, 3)
            assert [r["index"] for r in results] == [0, 1, 2]
            assert all(r["status"] == "ok" for r in results)
            report = client.close_session(session)
            assert report["ok"] == 3
            metrics = client.metrics()
            submitted = metrics["samples"][
                ("repro_serve_frames_submitted", ())
            ]
            assert submitted == 3
            assert metrics["types"]["repro_serve_latency_ms"] == "summary"

    def test_unknown_routes_and_sessions_are_404(self, detector):
        with _HttpHarness(detector) as client:
            status, _, body = client._request("GET", "/nope")
            assert status == 404
            assert b"no route" in body
            status, _, body = client._request(
                "GET", "/v1/sessions/s-999/results"
            )
            assert status == 404
            assert b"no such session" in body
