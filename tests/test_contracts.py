"""Tests for the stage-boundary ndarray contracts (repro.contracts).

Covers the env gate (`REPRO_CONTRACTS`, re-read per check), the
shape-spec parser (with a hypothesis round-trip property, as promised
in docs/CONTRACTS.md), `check_array` semantics and the
`array_contract` decorator's shared dimension namespace and
decoration-time validation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.contracts import (
    ENV_VAR,
    array_contract,
    check_array,
    contracts_enabled,
    format_shape_spec,
    parse_shape_spec,
)
from repro.errors import ContractError


@pytest.fixture
def enabled(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "1")


class TestEnvGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert not contracts_enabled()

    @pytest.mark.parametrize(
        "value", ["", "0", "false", "no", "off", "False", "OFF", " no "]
    )
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VAR, value)
        assert not contracts_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "anything"])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_VAR, value)
        assert contracts_enabled()

    def test_flag_is_reread_per_check(self, monkeypatch):
        bad = np.zeros(3)  # 1-d; the contract demands 2-d
        monkeypatch.setenv(ENV_VAR, "0")
        assert check_array(bad, ndim=2) is bad
        monkeypatch.setenv(ENV_VAR, "1")
        with pytest.raises(ContractError):
            check_array(bad, ndim=2)

    def test_disabled_checks_nothing(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        # Not even the type: disabled means one guard and a return.
        assert check_array("not an array", ndim=2) == "not an array"


class TestParseShapeSpec:
    @pytest.mark.parametrize(
        ("spec", "dims"),
        [
            ("(H, W)", ("H", "W")),
            ("(H, W, 36)", ("H", "W", 36)),
            ("H,W,36", ("H", "W", 36)),
            ("( H ,W, 36 )", ("H", "W", 36)),
            ("(_, 36)", (None, 36)),
            ("()", ()),
            ("", ()),
            ("(7)", (7,)),
            ("(0)", (0,)),
            ("(N,)", ("N",)),
            ((None, 36), (None, 36)),
            ((3, "H"), (3, "H")),
        ],
    )
    def test_accepts(self, spec, dims):
        assert parse_shape_spec(spec) == dims

    @pytest.mark.parametrize(
        "spec",
        [",", "(,)", "(1.5, 2)", "(a-b)", "(H,,W)", "(01, 2)", "(-1, 2)"],
    )
    def test_malformed_strings_raise(self, spec):
        with pytest.raises(ContractError):
            parse_shape_spec(spec)

    def test_negative_sequence_dim_raises(self):
        with pytest.raises(ContractError, match=">= 0"):
            parse_shape_spec((-1, 36))

    def test_bad_sequence_token_raises(self):
        with pytest.raises(ContractError, match="int, str or None"):
            parse_shape_spec((1.5, 36))

    def test_format_canonical_form(self):
        assert format_shape_spec(("H", None, 36)) == "(H, _, 36)"
        assert format_shape_spec(()) == "()"


_dim = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.none(),
    st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True).filter(
        lambda s: s != "_"
    ),
)


class TestRoundTrip:
    @given(st.lists(_dim, max_size=6))
    def test_parse_inverts_format(self, dims):
        assert parse_shape_spec(format_shape_spec(dims)) == tuple(dims)

    @given(st.lists(_dim, max_size=6))
    def test_format_parse_is_idempotent(self, dims):
        text = format_shape_spec(dims)
        assert format_shape_spec(parse_shape_spec(text)) == text

    @given(st.lists(_dim, max_size=6))
    def test_sequence_form_matches_string_form(self, dims):
        assert parse_shape_spec(dims) == parse_shape_spec(
            format_shape_spec(dims)
        )


@pytest.mark.usefixtures("enabled")
class TestCheckArray:
    def test_returns_value_unchanged(self):
        x = np.zeros((4, 36))
        assert check_array(x, "x", shape="(_, 36)") is x

    def test_non_ndarray_rejected(self):
        with pytest.raises(ContractError, match="must be a numpy.ndarray"):
            check_array([1, 2, 3], "x", ndim=1)

    def test_ndim_mismatch(self):
        with pytest.raises(ContractError, match="expected 2-d"):
            check_array(np.zeros(3), "x", ndim=2)

    def test_ndim_tuple_accepts_any(self):
        check_array(np.zeros(3), "x", ndim=(1, 2))
        check_array(np.zeros((3, 3)), "x", ndim=(1, 2))

    def test_exact_dim_mismatch_names_axis(self):
        with pytest.raises(ContractError, match="axis 1"):
            check_array(np.zeros((4, 35)), "blocks", shape="(_, 36)")

    def test_wrong_rank_reports_both_shapes(self):
        with pytest.raises(ContractError, match=r"\(2-d\).*\(3-d\)"):
            check_array(np.zeros((4, 36)), "blocks", shape="(R, C, 36)")

    def test_named_dim_must_agree_within_call(self):
        check_array(np.zeros((5, 5)), "m", shape="(H, H)")
        with pytest.raises(ContractError, match="dim 'H'"):
            check_array(np.zeros((5, 6)), "m", shape="(H, H)")

    def test_zero_d_spec(self):
        check_array(np.array(3.0), "s", shape="()")
        with pytest.raises(ContractError):
            check_array(np.zeros(1), "s", shape="()")

    def test_abstract_dtype(self):
        check_array(np.zeros(3, dtype=np.float32), "x", dtype=np.floating)
        with pytest.raises(ContractError, match="dtype"):
            check_array(np.zeros(3, dtype=np.int32), "x", dtype=np.floating)

    def test_concrete_and_tuple_dtypes(self):
        check_array(np.zeros(3, dtype=np.uint8), "x", dtype="uint8")
        check_array(
            np.zeros(3, dtype=np.int16), "x",
            dtype=(np.floating, np.int16),
        )

    def test_finite_rejects_nan_and_inf(self):
        with pytest.raises(ContractError, match="non-finite"):
            check_array(np.array([1.0, np.nan]), "x", finite=True)
        with pytest.raises(ContractError, match="non-finite"):
            check_array(np.array([np.inf]), "x", finite=True)

    def test_finite_is_vacuous_for_integers(self):
        check_array(np.array([1, 2]), "x", finite=True)


@pytest.mark.usefixtures("enabled")
class TestArrayContract:
    def test_shared_namespace_across_parameters(self):
        @array_contract(magnitude="(H, W)", orientation="(H, W)")
        def stage(magnitude, orientation):
            return magnitude.shape

        assert stage(np.zeros((4, 6)), np.zeros((4, 6))) == (4, 6)
        with pytest.raises(ContractError, match="dim 'H'"):
            stage(np.zeros((4, 6)), np.zeros((5, 6)))

    def test_none_parameters_are_skipped(self):
        @array_contract(mask="(H, W)")
        def stage(image, mask=None):
            return mask

        assert stage(np.zeros((2, 2))) is None
        assert stage(np.zeros((2, 2)), None) is None

    def test_dict_spec_with_dtype_and_finite(self):
        @array_contract(x={"shape": "(N,)", "dtype": np.floating,
                           "finite": True})
        def stage(x):
            return x

        stage(np.zeros(3))
        with pytest.raises(ContractError, match="non-finite"):
            stage(np.array([np.nan]))

    def test_unknown_parameter_raises_at_decoration_time(self):
        with pytest.raises(ContractError, match="no parameter"):
            @array_contract(nope="(H, W)")
            def stage(x):
                return x

    def test_malformed_spec_raises_at_decoration_time(self):
        with pytest.raises(ContractError, match="malformed shape spec"):
            @array_contract(x="(1.5,)")
            def stage(x):
                return x

    def test_unknown_spec_key_raises_at_decoration_time(self):
        with pytest.raises(ContractError, match="unknown keys"):
            @array_contract(x={"shapes": "(H,)"})
            def stage(x):
                return x

    def test_wraps_preserves_identity(self):
        @array_contract(x="(N,)")
        def stage(x):
            """doc"""
            return x

        assert stage.__name__ == "stage"
        assert stage.__doc__ == "doc"

    def test_disabled_decorator_checks_nothing(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)

        @array_contract(x="(H, H)")
        def stage(x):
            return x

        bad = np.zeros((2, 3))
        assert stage(bad) is bad


class TestPipelineUnderContracts:
    def test_detector_pipeline_passes_with_contracts_on(
        self, monkeypatch, tiny_dataset
    ):
        """End-to-end: the real hot path satisfies its own contracts."""
        monkeypatch.setenv(ENV_VAR, "1")
        from repro.core import DetectorConfig, MultiScalePedestrianDetector

        detector = MultiScalePedestrianDetector.train_default(
            tiny_dataset, config=DetectorConfig(scales=(1.0, 1.3))
        )
        scene = tiny_dataset.make_scene(
            height=128, width=160, n_pedestrians=1
        )
        result = detector.detect(scene.image)
        assert result.n_windows_evaluated > 0
