"""Hardware classifier verification: functional equivalence and schedule.

These tests are the model's substitute for RTL-vs-golden verification:
the fixed-point, banked, MACBAR-scheduled path must agree with the
floating-point software SVM up to quantization error.
"""

import numpy as np
import pytest

from repro.detect import classify_grid
from repro.errors import HardwareConfigError
from repro.hardware import BankedFeatureMemory, HardwareSvmClassifier
from repro.hardware.classifier import geometry_for
from repro.hardware.mac import SvmClassifierArray
from repro.hog import HogExtractor, HogParameters


@pytest.fixture(scope="module")
def frame():
    return np.random.default_rng(51).random((192, 144))


@pytest.fixture(scope="module")
def grid(frame):
    return HogExtractor().extract(frame)


@pytest.fixture(scope="module")
def hw(trained_model):
    return HardwareSvmClassifier(trained_model, HogParameters())


class TestGeometry:
    def test_geometry_from_params(self):
        g = geometry_for(HogParameters())
        assert g.block_rows == 15
        assert g.block_cols == 7
        assert g.window_dim == 3780

    def test_rejects_model_size_mismatch(self, trained_model):
        small = HogParameters(window_width=56, window_height=128)
        with pytest.raises(HardwareConfigError, match="weights"):
            HardwareSvmClassifier(trained_model, small)

    def test_rejects_array_geometry_mismatch(self, trained_model):
        from repro.hardware.mac import ClassifierGeometry

        wrong = SvmClassifierArray(ClassifierGeometry(16, 8, 36))
        with pytest.raises(HardwareConfigError, match="geometry"):
            HardwareSvmClassifier(trained_model, HogParameters(), array=wrong)


class TestFunctionalEquivalence:
    def test_scores_match_software_within_quantization(self, hw, grid,
                                                       trained_model):
        hw_scores = hw.classify_grid(grid).scores
        sw_scores = classify_grid(grid, trained_model)
        assert hw_scores.shape == sw_scores.shape
        # Error budget: one weight LSB per feature plus feature LSBs,
        # summed over the 3780-term dot product, stays well under 0.05
        # for the default Q16 formats.
        assert np.abs(hw_scores - sw_scores).max() < 0.05

    def test_decisions_match_software_away_from_threshold(
        self, hw, grid, trained_model
    ):
        hw_scores = hw.classify_grid(grid).scores.ravel()
        sw_scores = classify_grid(grid, trained_model).ravel()
        confident = np.abs(sw_scores) > 0.1
        assert np.array_equal(
            hw_scores[confident] > 0, sw_scores[confident] > 0
        )

    def test_report_window_count(self, hw, grid):
        report = hw.classify_grid(grid)
        rows, cols = grid.n_window_positions
        assert report.n_windows == rows * cols
        assert report.scores_flat().size == report.n_windows


class TestCycleAccounting:
    def test_paper_formula(self, hw, grid):
        """cycles = cell_rows * (fill + cadence * block_cols)."""
        report = hw.classify_grid(grid)
        g = hw.array.geometry
        fill = g.block_cols * 36
        expected = grid.cells.shape[0] * (fill + 36 * grid.blocks.shape[1])
        assert report.cycles == expected
        assert report.fill_cycles == fill

    def test_hdtv_cycles_with_paper_geometry(self, trained_model):
        """With the paper's 16x8-block window geometry, an HDTV grid
        costs exactly 1,200,420 cycles."""
        from repro.hardware.timing import FrameTimingModel

        # Use the analytic model for the full-HDTV count (the functional
        # classifier on a real 1080p frame would be slow in a unit test).
        m = FrameTimingModel(n_macbars=8, cycles_per_column=36)
        assert m.scale_timing(1.0).cycles == 1_200_420


class TestMemorySchedule:
    def test_18_row_buffer_suffices(self, hw, grid):
        """The paper's headline memory claim: an 18-cell-row N-HOGMem is
        enough for the classifier to keep up with the extractor."""
        memory = hw.verify_memory_schedule(grid)
        assert memory.n_rows == 18
        assert memory.stats.total_reads > 0

    def test_16_row_buffer_fails(self, hw, grid):
        """One window height (16 rows) alone is NOT sufficient — the
        extractor overwrites rows the classifier still needs while it
        drains the current window row."""
        from repro.errors import ScheduleError

        memory = BankedFeatureMemory(
            n_rows=16, n_cols=grid.cells.shape[1], words_per_cell=9
        )
        with pytest.raises(ScheduleError, match="resident"):
            hw.verify_memory_schedule(grid, memory)

    def test_reads_spread_across_banks(self, hw, grid):
        memory = hw.verify_memory_schedule(grid)
        reads = memory.stats.reads
        assert reads.min() > 0
        assert reads.max() <= 2 * reads.min()
