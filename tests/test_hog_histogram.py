"""Unit tests for repro.hog.histogram."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.hog import HogParameters, cell_histograms


def hard_params(**kw):
    """Parameters with spatial interpolation off — votes stay in-cell."""
    return HogParameters(spatial_interpolation=False, **kw)


class TestBasicAccumulation:
    def test_output_shape(self):
        mag = np.ones((32, 24))
        ori = np.zeros((32, 24))
        out = cell_histograms(mag, ori, hard_params())
        assert out.shape == (4, 3, 9)

    def test_truncates_partial_cells(self):
        mag = np.ones((19, 17))
        out = cell_histograms(mag, np.zeros_like(mag), hard_params())
        assert out.shape == (2, 2, 9)

    def test_total_energy_equals_magnitude_sum(self):
        """Bilinear orientation voting conserves total magnitude."""
        rng = np.random.default_rng(0)
        mag = rng.random((16, 16))
        ori = rng.random((16, 16)) * np.pi * 0.999
        hist = cell_histograms(mag, ori, hard_params())
        assert hist.sum() == pytest.approx(mag.sum())

    def test_energy_conserved_with_spatial_interpolation_interior(self):
        """With trilinear voting, interior pixels' mass is conserved;
        only border pixels lose the share that would fall outside."""
        mag = np.zeros((32, 32))
        mag[12:20, 12:20] = 1.0  # interior pixels only
        ori = np.full((32, 32), 0.3)
        hist = cell_histograms(mag, ori, HogParameters())
        assert hist.sum() == pytest.approx(mag.sum())

    def test_zero_magnitude_gives_zero_histogram(self):
        out = cell_histograms(
            np.zeros((16, 16)), np.ones((16, 16)), hard_params()
        )
        assert out.sum() == 0.0


class TestOrientationVoting:
    def test_bin_center_gets_full_vote(self):
        """An angle exactly at a bin center votes only into that bin."""
        p = hard_params()
        bin_width = np.pi / 9
        center_angle = 3.5 * bin_width  # center of bin 3
        mag = np.ones((8, 8))
        ori = np.full((8, 8), center_angle)
        hist = cell_histograms(mag, ori, p)[0, 0]
        assert hist[3] == pytest.approx(64.0)
        assert np.delete(hist, 3).max() == pytest.approx(0.0)

    def test_bin_edge_splits_evenly(self):
        """An angle exactly on a bin edge splits 50/50."""
        p = hard_params()
        bin_width = np.pi / 9
        edge_angle = 4.0 * bin_width  # boundary between bins 3 and 4
        mag = np.ones((8, 8))
        hist = cell_histograms(mag, np.full((8, 8), edge_angle), p)[0, 0]
        assert hist[3] == pytest.approx(32.0)
        assert hist[4] == pytest.approx(32.0)

    def test_wraparound_between_last_and_first_bin(self):
        """Angles just below pi split between bin 8 and bin 0."""
        p = hard_params()
        bin_width = np.pi / 9
        angle = np.pi - 0.25 * bin_width  # past bin 8's center
        mag = np.ones((8, 8))
        hist = cell_histograms(mag, np.full((8, 8), angle), p)[0, 0]
        assert hist[8] == pytest.approx(64.0 * 0.75)
        assert hist[0] == pytest.approx(64.0 * 0.25)

    def test_votes_proportional_to_magnitude(self):
        p = hard_params()
        ori = np.full((8, 8), 0.5 * np.pi / 9)
        weak = cell_histograms(np.full((8, 8), 0.5), ori, p)
        strong = cell_histograms(np.full((8, 8), 2.0), ori, p)
        np.testing.assert_allclose(strong, 4.0 * weak)

    def test_signed_gradients_use_full_circle(self):
        p = hard_params(signed_gradients=True)
        bin_width = 2.0 * np.pi / 9
        angle = 5.5 * bin_width
        hist = cell_histograms(
            np.ones((8, 8)), np.full((8, 8), angle), p
        )[0, 0]
        assert hist[5] == pytest.approx(64.0)


class TestSpatialInterpolation:
    def test_cell_center_pixelblock_stays_home(self):
        """Mass at a cell's center should stay mostly in that cell."""
        p = HogParameters()
        mag = np.zeros((24, 24))
        mag[11:13, 11:13] = 1.0  # center of cell (1, 1)
        ori = np.full((24, 24), 0.3)
        hist = cell_histograms(mag, ori, p)
        per_cell = hist.sum(axis=2)
        assert per_cell[1, 1] > 0.8 * mag.sum()

    def test_cell_corner_splits_four_ways(self):
        """A pixel at the junction of four cells splits across them."""
        p = HogParameters()
        mag = np.zeros((32, 32))
        mag[7:9, 7:9] = 1.0  # the 2x2 pixels around the cell corner
        ori = np.full((32, 32), 0.3)
        per_cell = cell_histograms(mag, ori, p).sum(axis=2)
        quad = per_cell[:2, :2]
        np.testing.assert_allclose(quad, quad[0, 0])
        assert quad.sum() == pytest.approx(4.0)


class TestValidation:
    def test_rejects_shape_mismatch(self):
        with pytest.raises(ShapeError, match="matching"):
            cell_histograms(np.ones((8, 8)), np.ones((8, 9)), hard_params())

    def test_rejects_subcell_image(self):
        with pytest.raises(ShapeError, match="smaller"):
            cell_histograms(np.ones((4, 4)), np.ones((4, 4)), hard_params())

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            cell_histograms(np.ones(64), np.ones(64), hard_params())
