"""Unit and steady-state tests for the buffer arena (repro.arena).

Covers the slab dictionary itself (hit/miss/resize/fallback accounting,
telemetry), the ``check_out`` destination validator behind every
``out=`` kernel parameter, bitwise identity of arena-backed detection
against the allocating path, and the docs/MEMORY.md steady-state
property: after warmup at a fixed frame geometry, identical frames
produce arena hits only — no new slabs, no resizes — and the hot
path's per-frame allocation churn stays far below one frame buffer.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.arena import BufferArena, check_out
from repro.core import DetectorConfig, MultiScalePedestrianDetector
from repro.errors import ParameterError
from repro.telemetry import MetricsRegistry


class TestBufferArena:
    def test_miss_then_hit_reuses_memory(self):
        arena = BufferArena()
        a = arena.get("x", (8, 8))
        b = arena.get("x", (8, 8))
        assert np.shares_memory(a, b)
        assert (arena.hits, arena.misses) == (1, 1)

    def test_names_are_independent_slabs(self):
        arena = BufferArena()
        a = arena.get("a", (16,))
        b = arena.get("b", (16,))
        assert not np.shares_memory(a, b)
        assert arena.names == ("a", "b")

    def test_smaller_request_is_a_hit(self):
        arena = BufferArena()
        arena.get("x", (100,))
        held = arena.slab_bytes
        arena.get("x", (10,), np.float32)
        assert arena.slab_bytes == held
        assert (arena.hits, arena.resizes) == (1, 0)

    def test_growth_counts_as_resize(self):
        arena = BufferArena()
        arena.get("x", (10,))
        arena.get("x", (100,))
        assert (arena.misses, arena.resizes) == (1, 1)
        assert arena.capacity("x") == 800

    def test_zeros_fills_in_place(self):
        arena = BufferArena()
        arena.get("x", (4,)).fill(7.0)
        z = arena.zeros("x", (4,))
        assert not z.any()

    def test_capped_arena_serves_fallback_allocations(self):
        arena = BufferArena(max_bytes=256)
        pooled = arena.get("small", (16,))      # 128 bytes, fits
        loose = arena.get("big", (1024,))       # would blow the cap
        assert arena.fallback_allocs == 1
        assert arena.names == ("small",)        # "big" was never pooled
        assert loose.shape == (1024,)
        assert not np.shares_memory(pooled, loose)

    def test_release_all_drops_slabs(self):
        arena = BufferArena()
        arena.get("x", (64,))
        arena.release_all()
        assert arena.slab_bytes == 0 and arena.names == ()

    def test_negative_cap_rejected(self):
        with pytest.raises(ParameterError):
            BufferArena(max_bytes=-1)

    def test_telemetry_counters_and_gauge(self):
        registry = MetricsRegistry()
        arena = BufferArena(telemetry=registry)
        arena.get("x", (8,))
        arena.get("x", (8,))
        arena.get("x", (80,))
        snap = registry.snapshot()
        assert snap.counters["arena.misses"] == 1
        assert snap.counters["arena.hits"] == 1
        assert snap.counters["arena.resizes"] == 1
        assert snap.gauges["arena.slab_bytes"] == 640.0


class TestCheckOut:
    def _ok(self):
        return np.empty((4, 5), dtype=np.float64)

    def test_valid_out_is_returned(self):
        out = self._ok()
        assert check_out(out, "k", (4, 5), np.float64) is out

    def test_non_ndarray_rejected(self):
        with pytest.raises(ParameterError, match="ndarray"):
            check_out([0.0] * 20, "k", (4, 5), np.float64)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="shape"):
            check_out(self._ok(), "k", (5, 4), np.float64)

    def test_dtype_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="dtype"):
            check_out(self._ok(), "k", (4, 5), np.float32)

    def test_readonly_rejected(self):
        out = self._ok()
        out.flags.writeable = False
        with pytest.raises(ParameterError, match="writable"):
            check_out(out, "k", (4, 5), np.float64)

    def test_non_contiguous_rejected(self):
        out = np.empty((5, 8), dtype=np.float64).T[:4, :5]
        with pytest.raises(ParameterError, match="contiguous"):
            check_out(out, "k", (4, 5), np.float64)

    def test_aliased_out_rejected(self):
        out = self._ok()
        with pytest.raises(ParameterError, match="shares memory"):
            check_out(out, "k", (4, 5), np.float64, out[:2])

    def test_kernel_rejects_aliased_out(self):
        # The contract as wired into a real kernel: scoring into a
        # destination that aliases the input block grid must raise.
        from repro.hog.histogram import cell_histograms
        from repro.hog.parameters import HogParameters

        params = HogParameters()
        rng = np.random.default_rng(0)
        buffer = rng.random(4096)
        mag = buffer[:1024].reshape(32, 32)
        ori = rng.random((32, 32)) * 3.1
        good = cell_histograms(mag, ori, params)
        overlap = buffer[512:512 + good.size].reshape(good.shape)
        with pytest.raises(ParameterError, match="shares memory"):
            cell_histograms(mag, ori, params, out=overlap)

    def test_gradient_out_pair_must_be_complete(self):
        from repro.imgproc.gradients import gradient_polar

        image = np.random.default_rng(1).random((16, 16))
        with pytest.raises(ParameterError):
            gradient_polar(image, out_magnitude=np.empty((16, 16)))


@pytest.fixture(scope="module")
def small_dataset():
    from repro.dataset.synthetic import (
        DatasetSizes,
        SyntheticPedestrianDataset,
    )

    sizes = DatasetSizes(train_positive=60, train_negative=120,
                         test_positive=1, test_negative=1)
    return SyntheticPedestrianDataset(seed=0, sizes=sizes)


def _detector(dataset, **config_kwargs):
    return MultiScalePedestrianDetector.train(
        dataset.train_windows(),
        DetectorConfig(threshold=0.5, stride=2, **config_kwargs),
    )


class TestArenaEquivalence:
    @pytest.mark.parametrize("scorer", ["conv", "conv-cascade", "gemm"])
    def test_detections_bitwise_identical(self, small_dataset, scorer):
        frame = np.random.default_rng(7).random((160, 160))
        with_arena = _detector(small_dataset, scorer=scorer, arena=True)
        without = MultiScalePedestrianDetector(
            with_arena.model,
            DetectorConfig(threshold=0.5, stride=2, scorer=scorer,
                           arena=False),
        )
        for _ in range(2):  # second pass exercises warm slabs
            assert (with_arena.detect(frame).detections
                    == without.detect(frame).detections)

    def test_image_strategy_never_borrows_the_arena(self, small_dataset):
        # The image pyramid extracts once per scale with earlier grids
        # still alive; lending the arena to its extractor would let
        # level N overwrite level N-1's buffers (docs/MEMORY.md).
        det = _detector(small_dataset, strategy="image", arena=True)
        assert det.arena is not None
        assert det.extractor.arena is None

    def test_feature_strategy_borrows_the_arena(self, small_dataset):
        det = _detector(small_dataset, strategy="feature", arena=True)
        assert det.extractor.arena is det.arena

    def test_no_arena_config_builds_none(self, small_dataset):
        det = _detector(small_dataset, arena=False)
        assert det.arena is None and det.extractor.arena is None


class TestSteadyState:
    """docs/MEMORY.md: zero hot-path slab allocations after warmup."""

    @pytest.mark.parametrize("scorer", ["conv", "conv-cascade"])
    def test_identical_frames_are_all_hits(self, small_dataset, scorer):
        det = _detector(small_dataset, scales=(1.0, 1.2), scorer=scorer,
                        arena=True)
        frame = np.random.default_rng(3).random((160, 160))
        det.detect(frame)
        warm_misses = det.arena.misses
        warm_bytes = det.arena.slab_bytes
        hits_before = det.arena.hits
        for _ in range(3):
            det.detect(frame)
        assert det.arena.misses == warm_misses
        assert det.arena.resizes == 0
        assert det.arena.fallback_allocs == 0
        assert det.arena.slab_bytes == warm_bytes
        assert det.arena.hits > hits_before

    def test_geometry_change_resizes_then_settles(self, small_dataset):
        det = _detector(small_dataset, scales=(1.0,), arena=True)
        rng = np.random.default_rng(4)
        det.detect(rng.random((128, 128)))
        det.detect(rng.random((192, 192)))  # grows the slabs
        assert det.arena.resizes > 0
        resizes = det.arena.resizes
        misses = det.arena.misses
        det.detect(rng.random((192, 192)))
        det.detect(rng.random((128, 128)))  # smaller: reuses, no shrink
        assert (det.arena.resizes, det.arena.misses) == (resizes, misses)

    @pytest.mark.parametrize("scorer", ["conv", "conv-cascade"])
    def test_per_frame_churn_stays_small(self, small_dataset, scorer):
        # tracemalloc peak-minus-baseline bounds the transient
        # allocation churn of one steady-state frame.  The arena path
        # must stay under half the allocating path's churn and under
        # ~3 frame buffers absolute (the histogram scatter now runs
        # through the hog.hist_scatter slab rather than np.bincount's
        # fresh output, so the remaining churn is small bookkeeping; a
        # regression that reintroduces per-frame full-frame buffers
        # trips this).
        frame = np.random.default_rng(3).random((160, 160))
        frame_bytes = frame.nbytes

        def churn(det):
            for _ in range(2):
                det.detect(frame)  # warmup
            tracemalloc.start()
            try:
                worst = 0
                for _ in range(3):
                    base = tracemalloc.get_traced_memory()[0]
                    tracemalloc.reset_peak()
                    det.detect(frame)
                    peak = tracemalloc.get_traced_memory()[1]
                    worst = max(worst, peak - base)
            finally:
                tracemalloc.stop()
            return worst

        arena_churn = churn(
            _detector(small_dataset, scales=(1.0,), scorer=scorer,
                      arena=True))
        plain_churn = churn(
            _detector(small_dataset, scales=(1.0,), scorer=scorer,
                      arena=False))
        assert arena_churn < 3 * frame_bytes
        assert arena_churn < plain_churn / 2
