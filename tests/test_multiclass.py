"""Tests for the vehicle class and multi-object detection."""

import numpy as np
import pytest

from repro.core import MultiObjectDetector, ObjectClass
from repro.core.experiments import extract_descriptors
from repro.dataset import (
    VEHICLE_HOG_PARAMETERS,
    make_traffic_scene,
    render_vehicle,
    vehicle_window_set,
)
from repro.errors import ParameterError
from repro.hog import HogExtractor, HogParameters
from repro.svm import LinearSvmModel, train_linear_svm


@pytest.fixture(scope="module")
def vehicle_model():
    rng = np.random.default_rng(91)
    train = vehicle_window_set(rng, 60, 120)
    extractor = HogExtractor(VEHICLE_HOG_PARAMETERS)
    x = extract_descriptors(extractor, train.images)
    return train_linear_svm(x, train.labels)


class TestVehicleRendering:
    def test_shape_and_range(self, rng):
        img = render_vehicle(rng)
        assert img.shape == (64, 128)
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_vehicle_layout_matches_pedestrian_descriptor_length(self):
        assert VEHICLE_HOG_PARAMETERS.descriptor_length == 3780
        assert VEHICLE_HOG_PARAMETERS.cells_per_window == (16, 8)

    def test_rejects_tiny_window(self, rng):
        with pytest.raises(ParameterError, match="too small"):
            render_vehicle(rng, 8, 16)

    def test_window_set_counts(self, rng):
        ws = vehicle_window_set(rng, 5, 7)
        assert ws.n_positive == 5
        assert ws.n_negative == 7
        assert ws.images[0].shape == (64, 128)

    def test_vehicle_model_separates_classes(self, vehicle_model, rng):
        extractor = HogExtractor(VEHICLE_HOG_PARAMETERS)
        test = vehicle_window_set(rng, 20, 40)
        x = extract_descriptors(extractor, test.images)
        pred = vehicle_model.predict(x)
        accuracy = np.mean((pred == 1) == (test.labels == 1))
        assert accuracy > 0.85


class TestTrafficScene:
    def test_both_classes_present(self, rng):
        scene = make_traffic_scene(rng, 480, 640, n_pedestrians=2, n_vehicles=2)
        assert set(scene.labels) == {"pedestrian", "vehicle"}
        assert len(scene.boxes) == len(scene.labels)

    def test_aspect_ratio_by_class(self, rng):
        scene = make_traffic_scene(rng, 480, 640, n_pedestrians=2, n_vehicles=2)
        for box, label in zip(scene.boxes, scene.labels):
            ratio = box.width / box.height
            if label == "pedestrian":
                assert ratio == pytest.approx(0.5, abs=0.05)
            else:
                assert ratio == pytest.approx(2.0, abs=0.1)

    def test_boxes_of_filter(self, rng):
        scene = make_traffic_scene(rng, 480, 640, n_pedestrians=1, n_vehicles=2)
        assert len(scene.boxes_of("pedestrian")) == scene.labels.count(
            "pedestrian"
        )


class TestObjectClass:
    def test_rejects_layout_mismatch(self, trained_model):
        with pytest.raises(ParameterError, match="weights"):
            ObjectClass(
                name="vehicle",
                model=trained_model,
                hog=HogParameters(window_width=96, window_height=96),
            )

    def test_rejects_empty_name(self, trained_model):
        with pytest.raises(ParameterError, match="name"):
            ObjectClass(name="", model=trained_model, hog=HogParameters())


class TestMultiObjectDetector:
    @pytest.fixture(scope="class")
    def detector(self, trained_model, vehicle_model):
        return MultiObjectDetector(
            [
                ObjectClass(
                    name="pedestrian",
                    model=trained_model,
                    hog=HogParameters(),
                    scales=(1.0, 1.2),
                    threshold=0.5,
                ),
                ObjectClass(
                    name="vehicle",
                    model=vehicle_model,
                    hog=VEHICLE_HOG_PARAMETERS,
                    scales=(1.0, 1.2),
                    threshold=0.5,
                ),
            ]
        )

    def test_detects_both_classes(self, detector):
        rng = np.random.default_rng(17)
        scene = make_traffic_scene(
            rng, 480, 640, n_pedestrians=2, n_vehicles=2,
            pedestrian_heights=(128, 150), vehicle_heights=(64, 76),
        )
        result = detector.detect(scene.image)
        found = {d.label for d in result.detections}
        # At least one class must be found; both usually are.
        assert found & {"pedestrian", "vehicle"}
        for label in found:
            gts = scene.boxes_of(label)
            dets = [d for d in result.detections if d.label == label]
            near = any(
                abs(d.top - g.top) < 32 and abs(d.left - g.left) < 32
                for d in dets
                for g in gts
            )
            assert near, f"no {label} detection near its ground truth"

    def test_single_extraction_for_all_classes(self, detector):
        rng = np.random.default_rng(18)
        scene = make_traffic_scene(rng, 320, 320, n_pedestrians=0, n_vehicles=0)
        result = detector.detect(scene.image)
        # Extraction happened once: far smaller than classification of
        # two classes x two scales.
        assert result.timings.extraction < 10 * max(
            result.timings.classification, 1e-9
        )
        assert result.scales_used == [1.0, 1.2]

    def test_rejects_incompatible_feature_layout(self, trained_model,
                                                  vehicle_model):
        other = HogParameters(window_width=128, window_height=64, n_bins=9,
                              cell_size=8)
        incompatible = HogParameters(
            window_width=120, window_height=60, cell_size=4, n_bins=9
        )
        wrong_model = LinearSvmModel(
            weights=np.zeros(incompatible.descriptor_length), bias=0.0
        )
        with pytest.raises(ParameterError, match="share"):
            MultiObjectDetector(
                [
                    ObjectClass("pedestrian", trained_model, HogParameters()),
                    ObjectClass("vehicle", wrong_model, incompatible),
                ]
            )

    def test_rejects_duplicate_names(self, trained_model):
        cls = ObjectClass("pedestrian", trained_model, HogParameters())
        with pytest.raises(ParameterError, match="duplicate"):
            MultiObjectDetector([cls, cls])

    def test_rejects_empty(self):
        with pytest.raises(ParameterError, match="at least one"):
            MultiObjectDetector([])

    def test_detection_labels_propagate(self, detector):
        rng = np.random.default_rng(19)
        scene = make_traffic_scene(rng, 320, 480, n_pedestrians=1,
                                   n_vehicles=1,
                                   pedestrian_heights=(128, 140),
                                   vehicle_heights=(64, 72))
        result = detector.detect(scene.image)
        for d in result.detections:
            assert d.label in ("pedestrian", "vehicle")
