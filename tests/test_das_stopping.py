"""Unit tests for the DAS stopping-distance arithmetic (paper Section 1)."""

import pytest

from repro.das import (
    NOMINAL_DECELERATION_MS2,
    NOMINAL_PRT_S,
    StoppingScenario,
    braking_distance,
    detection_range_requirement,
    kmh_to_ms,
    latency_distance_penalty,
    perception_reaction_distance,
    total_stopping_distance,
)
from repro.errors import ParameterError


class TestPaperNumbers:
    """Pin the exact numbers quoted in the introduction."""

    def test_nominal_constants(self):
        assert NOMINAL_PRT_S == 1.5
        assert NOMINAL_DECELERATION_MS2 == 6.5

    def test_braking_50kmh_is_14_84m(self):
        assert braking_distance(50.0) == pytest.approx(14.84, abs=0.01)

    def test_braking_70kmh_near_29m(self):
        # The paper prints 29.16 (consistent with rounding the speed
        # before squaring); exact arithmetic gives 29.08.
        assert braking_distance(70.0) == pytest.approx(29.08, abs=0.01)
        assert braking_distance(70.0) == pytest.approx(29.16, abs=0.1)

    def test_stopping_50kmh_is_35_68m(self):
        assert total_stopping_distance(50.0) == pytest.approx(35.68, abs=0.02)

    def test_stopping_70kmh_is_58_2m(self):
        assert total_stopping_distance(70.0) == pytest.approx(58.23, abs=0.1)

    def test_detection_range_20_to_60m(self):
        lo, hi = detection_range_requirement()
        assert lo == pytest.approx(14.84, abs=0.01)
        assert hi == pytest.approx(58.25, abs=0.1)
        assert 10.0 < lo < 20.0
        assert 55.0 < hi < 62.0


class TestKinematics:
    def test_kmh_to_ms(self):
        assert kmh_to_ms(36.0) == pytest.approx(10.0)

    def test_reaction_distance_linear_in_speed(self):
        assert perception_reaction_distance(100.0) == pytest.approx(
            2.0 * perception_reaction_distance(50.0)
        )

    def test_braking_quadratic_in_speed(self):
        assert braking_distance(100.0) == pytest.approx(
            4.0 * braking_distance(50.0)
        )

    def test_harder_braking_shortens(self):
        assert braking_distance(50.0, 9.0) < braking_distance(50.0, 6.5)

    def test_zero_speed(self):
        assert total_stopping_distance(0.0) == 0.0

    def test_scenario_dataclass(self):
        s = StoppingScenario(50.0)
        assert s.speed_ms == pytest.approx(13.889, abs=1e-3)
        assert s.total_stopping_distance_m == pytest.approx(
            s.perception_reaction_distance_m + s.braking_distance_m
        )


class TestLatencyPenalty:
    def test_one_frame_at_60fps_70kmh(self):
        """One 16.6 ms frame at 70 km/h costs about a third of a metre."""
        penalty = latency_distance_penalty(70.0, 1.0 / 60.0)
        assert penalty == pytest.approx(0.324, abs=0.01)

    def test_zero_latency(self):
        assert latency_distance_penalty(100.0, 0.0) == 0.0

    def test_rejects_negative_latency(self):
        with pytest.raises(ParameterError):
            latency_distance_penalty(50.0, -1.0)


class TestValidation:
    def test_rejects_negative_speed(self):
        with pytest.raises(ParameterError):
            braking_distance(-10.0)

    def test_rejects_zero_deceleration(self):
        with pytest.raises(ParameterError):
            braking_distance(50.0, 0.0)

    def test_rejects_negative_prt(self):
        with pytest.raises(ParameterError):
            perception_reaction_distance(50.0, -0.5)

    def test_rejects_empty_speeds(self):
        with pytest.raises(ParameterError):
            detection_range_requirement(speeds_kmh=())
