"""Tests for the Dollar-style fast feature pyramid."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.hog import (
    FastFeaturePyramid,
    HogExtractor,
    ImagePyramid,
    estimate_power_law,
)


@pytest.fixture(scope="module")
def frame():
    return np.random.default_rng(88).random((384, 256))


@pytest.fixture(scope="module")
def ex():
    return HogExtractor()


class TestEstimatePowerLaw:
    def test_sign_tracks_spectral_content(self, ex):
        """The estimator recovers the physics Dollar's law rests on:
        broadband (noise-like) images lose gradient energy when
        down-sampled (lambda > 0); smooth low-frequency textures gain
        per-pixel gradient slope instead (lambda < 0)."""
        rng = np.random.default_rng(0)
        from repro.dataset.background import textured_background
        from repro.imgproc import gaussian_blur

        noisy = [
            np.clip(rng.random((160, 160)), 0, 1) for _ in range(3)
        ]
        smooth = [
            gaussian_blur(textured_background(rng, 160, 160), 2.0)
            for _ in range(3)
        ]
        lam_noisy = estimate_power_law(ex, noisy)
        lam_smooth = estimate_power_law(ex, smooth)
        assert lam_noisy > 0.0
        assert lam_smooth < 0.0
        assert lam_noisy > lam_smooth

    def test_rejects_bad_scale(self, ex, frame):
        with pytest.raises(ParameterError, match="exceed"):
            estimate_power_law(ex, [frame], scale=1.0)

    def test_rejects_empty(self, ex):
        with pytest.raises(ParameterError, match="at least one"):
            estimate_power_law(ex, [])


class TestFastFeaturePyramid:
    def test_real_levels_at_octaves(self, frame, ex):
        pyr = FastFeaturePyramid.build(
            frame, [1.0, 1.3, 1.6, 2.0, 2.4], ex
        )
        assert pyr.real_scales == [1.0, 2.0]
        assert pyr.scales == [1.0, 1.3, 1.6, 2.0, 2.4]

    def test_octave_levels_are_exact_extractions(self, frame, ex):
        pyr = FastFeaturePyramid.build(frame, [1.0, 2.0], ex)
        direct = ImagePyramid.build(frame, [1.0, 2.0], ex)
        np.testing.assert_allclose(pyr[0].blocks, direct[0].blocks)
        np.testing.assert_allclose(pyr[1].blocks, direct[1].blocks)

    def test_extrapolated_level_tracks_real_extraction(self, frame, ex):
        """An extrapolated level approximates a genuinely-extracted one:
        cosine similarity well above chance (Dollar's core finding)."""
        pyr = FastFeaturePyramid.build(frame, [1.0, 1.4], ex)
        real = ImagePyramid.build(frame, [1.4], ex)
        a, b = pyr[1].blocks, real[0].blocks
        rows = min(a.shape[0], b.shape[0])
        cols = min(a.shape[1], b.shape[1])
        a = a[:rows, :cols].ravel()
        b = b[:rows, :cols].ravel()
        cos = float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))
        assert cos > 0.8

    def test_fewer_extractions_than_image_pyramid(self, frame, ex):
        scales = [1.0, 1.2, 1.4, 1.7, 2.0, 2.4]
        pyr = FastFeaturePyramid.build(frame, scales, ex)
        assert len(pyr.real_scales) == 2  # vs 6 for the image pyramid
        assert len(pyr) == len(scales)

    def test_levels_nearest_real_source(self, frame, ex):
        """Levels above sqrt(2) of an octave boundary extrapolate from
        the upper octave (nearest in log space)."""
        pyr = FastFeaturePyramid.build(frame, [1.9, 2.0], ex)
        # Scale 1.9 should come from the 2.0 real level: its grid is
        # slightly *larger* than the real 2.0 grid.
        assert pyr[0].cells.shape[0] >= pyr[1].cells.shape[0]

    def test_power_law_changes_magnitude_not_shape(self, frame, ex):
        flat = FastFeaturePyramid.build(frame, [1.4], ex, power_law=0.0)
        tilted = FastFeaturePyramid.build(frame, [1.4], ex, power_law=0.5)
        ratio = tilted[0].cells / np.maximum(flat[0].cells, 1e-12)
        np.testing.assert_allclose(
            ratio[flat[0].cells > 1e-9], 1.4**-0.5, rtol=1e-6
        )

    def test_too_large_scales_dropped(self, frame, ex):
        pyr = FastFeaturePyramid.build(frame, [1.0, 50.0], ex)
        assert pyr.scales == [1.0]

    def test_rejects_downscales(self, frame, ex):
        with pytest.raises(ParameterError, match=">= 1"):
            FastFeaturePyramid.build(frame, [0.5, 1.0], ex)

    def test_rejects_empty_scales(self, frame, ex):
        with pytest.raises(ParameterError, match="non-empty"):
            FastFeaturePyramid.build(frame, [], ex)

    def test_rejects_tiny_image(self, ex):
        with pytest.raises(ParameterError, match="smaller"):
            FastFeaturePyramid.build(np.zeros((64, 32)), [1.0], ex)
