"""Dual coordinate descent for L2-regularized linear SVM.

This is the optimizer inside LibLinear [7] (Hsieh, Chang, Lin, Keerthi,
Sundararajan — *A Dual Coordinate Descent Method for Large-scale Linear
SVM*, ICML 2008), which the paper used to train its pedestrian model.

It solves the dual of the paper's equation (3)::

    min_a  0.5 * a' Q a - e' a
    s.t.   0 <= a_i <= U

with ``Q_ij = y_i y_j x_i . x_j + D_ij``, where

* L1 (hinge) loss:  ``U = C``,    ``D_ii = 0``
* L2 (squared hinge) loss:  ``U = inf``,  ``D_ii = 1 / (2C)``

The bias term is handled LibLinear-style by augmenting every sample
with a constant ``bias_scale`` feature, so ``b = w_aug[-1] * bias_scale``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ParameterError, TrainingError
from repro.svm.model import LinearSvmModel


@dataclasses.dataclass
class DcdResult:
    """Training outcome and convergence diagnostics."""

    model: LinearSvmModel
    n_iterations: int
    converged: bool
    final_violation: float
    dual_objective: float


class DualCoordinateDescent:
    """L2-regularized L1/L2-loss linear SVM solver.

    Parameters
    ----------
    c:
        SVM cost parameter ``C`` (inverse regularization strength).
    loss:
        ``"l1"`` for hinge loss (LibLinear ``-s 3``) or ``"l2"`` for
        squared hinge (``-s 1``).
    tol:
        Stopping tolerance on the projected-gradient violation range.
    max_iter:
        Maximum outer iterations (full passes over the data).
    bias_scale:
        Scale of the augmented bias feature; 1.0 matches LibLinear's
        ``-B 1``.  Set to 0 to train without a bias term.
    shrinking:
        Enable LibLinear's shrinking heuristic, which removes bounded,
        non-violating coordinates from the active set between passes.
    seed:
        Seed for the per-pass random permutation of coordinates.
    """

    def __init__(
        self,
        c: float = 1.0,
        loss: str = "l1",
        *,
        tol: float = 1e-3,
        max_iter: int = 1000,
        bias_scale: float = 1.0,
        shrinking: bool = True,
        seed: int = 0,
    ) -> None:
        if c <= 0:
            raise ParameterError(f"C must be positive, got {c}")
        if loss not in ("l1", "l2"):
            raise ParameterError(f"loss must be 'l1' or 'l2', got {loss!r}")
        if tol <= 0:
            raise ParameterError(f"tol must be positive, got {tol}")
        if max_iter < 1:
            raise ParameterError(f"max_iter must be >= 1, got {max_iter}")
        if bias_scale < 0:
            raise ParameterError(f"bias_scale must be >= 0, got {bias_scale}")
        self.c = float(c)
        self.loss = loss
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.bias_scale = float(bias_scale)
        self.shrinking = bool(shrinking)
        self.seed = int(seed)

    def fit(self, x: np.ndarray, y: np.ndarray) -> DcdResult:
        """Train on ``(N, D)`` features with labels in ``{-1, +1}``.

        Raises
        ------
        TrainingError
            If the data is empty or contains only one class.
        """
        features = np.ascontiguousarray(x, dtype=np.float64)
        labels = np.asarray(y, dtype=np.float64).ravel()
        if features.ndim != 2 or features.shape[0] == 0:
            raise TrainingError(
                f"features must be a non-empty (N, D) matrix, got {features.shape}"
            )
        if labels.shape[0] != features.shape[0]:
            raise TrainingError(
                f"{labels.shape[0]} labels for {features.shape[0]} samples"
            )
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise TrainingError("labels must be -1 or +1")
        if np.unique(labels).size < 2:
            raise TrainingError("training data contains a single class")

        n, dim = features.shape
        if self.bias_scale > 0:
            aug = np.full((n, 1), self.bias_scale)
            features = np.hstack([features, aug])

        if self.loss == "l1":
            upper = self.c
            diag = 0.0
        else:
            upper = np.inf
            diag = 1.0 / (2.0 * self.c)

        q_diag = np.einsum("ij,ij->i", features, features) + diag
        if np.any(q_diag <= 0):
            raise TrainingError("a training sample has zero norm and no loss term")

        alpha = np.zeros(n)
        w = np.zeros(features.shape[1])
        rng = np.random.default_rng(self.seed)
        active = np.arange(n)
        # Shrinking bounds, initialized wide open (LibLinear's M-bar/m-bar).
        pg_max_old = np.inf
        pg_min_old = -np.inf

        converged = False
        violation = np.inf
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            rng.shuffle(active)
            pg_max = -np.inf
            pg_min = np.inf
            keep = []
            for i in active:
                xi = features[i]
                yi = labels[i]
                grad = yi * (w @ xi) - 1.0 + diag * alpha[i]

                shrink = False
                if alpha[i] == 0.0:
                    if self.shrinking and grad > pg_max_old:
                        shrink = True
                    pg = min(grad, 0.0)
                elif alpha[i] >= upper:
                    if self.shrinking and grad < pg_min_old:
                        shrink = True
                    pg = max(grad, 0.0)
                else:
                    pg = grad

                if not shrink:
                    keep.append(i)
                if pg != 0.0:
                    pg_max = max(pg_max, pg)
                    pg_min = min(pg_min, pg)
                if abs(pg) > 1e-12:
                    old = alpha[i]
                    alpha[i] = min(max(old - grad / q_diag[i], 0.0), upper)
                    w += (alpha[i] - old) * yi * xi

            if pg_max == -np.inf:  # every coordinate was exactly optimal
                pg_max, pg_min = 0.0, 0.0
            violation = pg_max - pg_min
            if violation <= self.tol:
                if len(keep) == n or not self.shrinking:
                    converged = True
                    break
                # Converged on the shrunk set: reopen all coordinates and
                # loosen the bounds for one verification pass.
                active = np.arange(n)
                pg_max_old = np.inf
                pg_min_old = -np.inf
                continue

            if self.shrinking:
                active = np.asarray(keep, dtype=np.intp)
                if active.size == 0:
                    active = np.arange(n)
                pg_max_old = pg_max if pg_max > 0 else np.inf
                pg_min_old = pg_min if pg_min < 0 else -np.inf

        dual_obj = 0.5 * float(w @ w) - float(alpha.sum())
        if self.loss == "l2":
            dual_obj += 0.5 * diag * float(alpha @ alpha)

        if self.bias_scale > 0:
            bias = float(w[-1] * self.bias_scale)
            weights = w[:-1]
        else:
            bias = 0.0
            weights = w
        model = LinearSvmModel(weights=weights.copy(), bias=bias)
        return DcdResult(
            model=model,
            n_iterations=iteration,
            converged=converged,
            final_violation=float(violation),
            dual_objective=dual_obj,
        )
