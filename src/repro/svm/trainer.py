"""Unified training facade over the SVM optimizers."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ParameterError, TrainingError
from repro.svm.dcd import DualCoordinateDescent
from repro.svm.model import LinearSvmModel
from repro.svm.pegasos import PegasosTrainer


@dataclasses.dataclass(frozen=True)
class TrainOptions:
    """Options for :func:`train_linear_svm`.

    ``algorithm`` selects ``"dcd"`` (LibLinear-style dual coordinate
    descent — the paper's trainer) or ``"pegasos"`` (primal SGD).
    """

    c: float = 1.0
    loss: str = "l1"
    algorithm: str = "dcd"
    tol: float = 1e-3
    max_iter: int = 1000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.algorithm not in ("dcd", "pegasos"):
            raise ParameterError(
                f"algorithm must be 'dcd' or 'pegasos', got {self.algorithm!r}"
            )


def normalize_labels(y: np.ndarray) -> np.ndarray:
    """Map labels in {0, 1} or {-1, +1} (or bool) onto float {-1, +1}."""
    labels = np.asarray(y).ravel()
    if labels.size == 0:
        raise TrainingError("empty label array")
    if labels.dtype == bool:
        return np.where(labels, 1.0, -1.0)
    values = set(np.unique(labels).tolist())
    if values <= {-1, 1}:
        return labels.astype(np.float64)
    if values <= {0, 1}:
        return np.where(labels > 0, 1.0, -1.0)
    raise TrainingError(
        f"labels must be binary in {{0,1}} or {{-1,+1}}, got values {sorted(values)}"
    )


def train_linear_svm(
    x: np.ndarray,
    y: np.ndarray,
    options: TrainOptions | None = None,
) -> LinearSvmModel:
    """Train a linear SVM on descriptors ``x`` with binary labels ``y``.

    This is the software equivalent of the paper's off-line LibLinear
    training stage; the returned model's weight vector is what the
    hardware stores in its model memory.
    """
    opts = options if options is not None else TrainOptions()
    labels = normalize_labels(y)
    if opts.algorithm == "dcd":
        solver = DualCoordinateDescent(
            c=opts.c,
            loss=opts.loss,
            tol=opts.tol,
            max_iter=opts.max_iter,
            seed=opts.seed,
        )
        return solver.fit(x, labels).model
    n = np.asarray(x).shape[0]
    trainer = PegasosTrainer(
        lambda_reg=1.0 / (max(n, 1) * opts.c),
        n_epochs=max(10, opts.max_iter // 10),
        seed=opts.seed,
    )
    return trainer.fit(x, labels).model
