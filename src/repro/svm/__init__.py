"""Linear support vector machine: model and trainers.

The paper trains its pedestrian model with LibLinear [7]; this package
implements the same optimizer family from scratch:

* :func:`train_linear_svm` — facade over both trainers.
* :class:`DualCoordinateDescent` — LibLinear's dual coordinate-descent
  algorithm (Hsieh et al., ICML 2008) for L2-regularized L1- or L2-loss
  linear SVM.
* :class:`PegasosTrainer` — primal stochastic sub-gradient solver, used
  as an independent cross-check of the optimizer.
* :class:`LinearSvmModel` — the trained ``(w, b)`` hyper-plane of
  equations (3)-(6); its ``decision_function`` is exactly the dot
  product the hardware MACBAR array computes.
"""

from repro.svm.model import LinearSvmModel
from repro.svm.dcd import DualCoordinateDescent, DcdResult
from repro.svm.pegasos import PegasosTrainer
from repro.svm.trainer import train_linear_svm, TrainOptions
from repro.svm.model_scaling import ScaledModel, rescale_model, model_pyramid

__all__ = [
    "LinearSvmModel",
    "DualCoordinateDescent",
    "DcdResult",
    "PegasosTrainer",
    "train_linear_svm",
    "TrainOptions",
    "ScaledModel",
    "rescale_model",
    "model_pyramid",
]
