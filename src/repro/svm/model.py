"""The trained linear SVM hyper-plane (paper equations (4)-(6))."""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np

from repro.errors import ShapeError


@dataclasses.dataclass(eq=False)
class LinearSvmModel:
    """A linear decision function ``y(x) = w . x + b``.

    ``y(x) > 0`` classifies the window as pedestrian, ``y(x) < 0`` as
    background (equations (5)-(6)).  The detection threshold can be
    moved off zero to trade false positives against false negatives —
    that sweep produces the paper's ROC curves (Figure 4).

    Attributes
    ----------
    weights:
        ``(D,)`` weight vector from training (the "model data" stored in
        the accelerator's model memory).
    bias:
        Scalar bias ``b``.
    """

    weights: np.ndarray
    bias: float

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ShapeError(
                f"weights must be a non-empty 1-D vector, got shape {w.shape}"
            )
        self.weights = w
        self.bias = float(self.bias)

    def __eq__(self, other: object) -> bool:
        # The dataclass-generated __eq__ compares the weight arrays with
        # `==`, whose array result cannot collapse to bool — so two
        # models could never be compared (pickle round-trip checks in
        # the process backend need exactly that).  Compare content-wise.
        if not isinstance(other, LinearSvmModel):
            return NotImplemented
        return (self.bias == other.bias
                and np.array_equal(self.weights, other.weights))

    @property
    def n_features(self) -> int:
        return self.weights.size

    def _check_features(self, x: np.ndarray) -> np.ndarray:
        arr = np.asarray(x, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self.n_features:
            raise ShapeError(
                f"feature array {arr.shape} does not match model "
                f"dimensionality {self.n_features}"
            )
        return arr

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """``w . x + b`` for one descriptor or a ``(N, D)`` batch.

        Always returns a 1-D array of scores (length 1 for one vector).
        """
        arr = self._check_features(x)
        return arr @ self.weights + self.bias

    def predict(self, x: np.ndarray, threshold: float = 0.0) -> np.ndarray:
        """Class labels in {-1, +1}; scores equal to threshold map to -1."""
        return np.where(self.decision_function(x) > threshold, 1, -1)

    def save(self, path: str | Path) -> None:
        """Persist the model to a ``.npz`` file."""
        np.savez(Path(path), weights=self.weights, bias=np.float64(self.bias))

    @classmethod
    def load(cls, path: str | Path) -> "LinearSvmModel":
        """Load a model saved with :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(weights=data["weights"], bias=float(data["bias"]))
