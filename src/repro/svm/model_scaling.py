"""SVM model rescaling — the third way to be multi-scale.

The paper's related work covers two alternatives to image pyramids:
down-sampling *features* (the paper's method, after Dollar et al. [4])
and rescaling the *model* (Dollar et al. [5], pushed to 135 fps by
Benenson et al. [1], who "generated trained SVM models in various
scales and applied them to windows of different sizes").

This module implements that third option as an extension/baseline: the
trained weight tensor ``w`` (block-grid shaped) is resampled to the
block geometry a ``scale``-times-larger window has, so the *original*
feature grid can be classified for larger pedestrians without touching
pixels or features at all.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ParameterError
from repro.hog.parameters import HogParameters
from repro.imgproc.resize import Interpolation, resize_grid
from repro.svm.model import LinearSvmModel


@dataclasses.dataclass(frozen=True)
class ScaledModel:
    """A rescaled detector model for one pyramid scale.

    Attributes
    ----------
    model:
        Linear model over the scaled window's descriptor layout.
    scale:
        The scale the model was derived for.
    blocks_x, blocks_y:
        Window extent in blocks at this scale (row-major descriptor:
        ``blocks_y x blocks_x x block_dim``).
    window_height_px, window_width_px:
        Pixel extent of the scaled window on the original image.
    """

    model: LinearSvmModel
    scale: float
    blocks_x: int
    blocks_y: int
    window_height_px: int
    window_width_px: int

    @property
    def descriptor_length(self) -> int:
        return self.model.n_features


def rescale_model(
    model: LinearSvmModel,
    params: HogParameters,
    scale: float,
    method: Interpolation | str = Interpolation.BILINEAR,
) -> ScaledModel:
    """Derive a detector for windows ``scale`` times the trained size.

    The weight tensor is resampled over the block grid and rescaled by
    the block-count ratio so the decision values stay on the trained
    model's scale (a bilinear up-sample preserves *values*, but the dot
    product then sums over more blocks; dividing by the area ratio
    compensates).  The bias is kept as trained.
    """
    if scale <= 0:
        raise ParameterError(f"scale must be positive, got {scale}")
    bx, by = params.blocks_per_window
    if model.n_features != params.descriptor_length:
        raise ParameterError(
            f"model has {model.n_features} weights, HOG layout needs "
            f"{params.descriptor_length}"
        )
    out_by = max(1, round(by * scale))
    out_bx = max(1, round(bx * scale))

    w = model.weights.reshape(by, bx, params.block_dim)
    scaled = resize_grid(w, (out_by, out_bx), method=method)
    # Compensate the block-count growth so scores keep their magnitude.
    scaled = scaled * (bx * by) / float(out_bx * out_by)

    cells_y = out_by + params.block_size - 1
    cells_x = out_bx + params.block_size - 1
    return ScaledModel(
        model=LinearSvmModel(weights=scaled.reshape(-1), bias=model.bias),
        scale=float(scale),
        blocks_x=out_bx,
        blocks_y=out_by,
        window_height_px=cells_y * params.cell_size,
        window_width_px=cells_x * params.cell_size,
    )


def model_pyramid(
    model: LinearSvmModel,
    params: HogParameters,
    scales: tuple[float, ...] | list[float],
    method: Interpolation | str = Interpolation.BILINEAR,
) -> list[ScaledModel]:
    """One :func:`rescale_model` per scale (scale 1.0 is exact)."""
    if not scales:
        raise ParameterError("scales must be non-empty")
    return [rescale_model(model, params, s, method=method) for s in scales]
