"""Pegasos: primal estimated sub-gradient solver for linear SVM.

(Shalev-Shwartz, Singer, Srebro — ICML 2007.)  Solves the same primal
objective as the paper's equation (3) with ``lambda = 1 / (n * C)``.
Included as an independent optimizer so tests can cross-check that two
different algorithms land on (approximately) the same hyper-plane.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ParameterError, TrainingError
from repro.svm.model import LinearSvmModel


@dataclasses.dataclass
class PegasosResult:
    """Training outcome of :class:`PegasosTrainer`."""

    model: LinearSvmModel
    n_updates: int
    primal_objective: float


class PegasosTrainer:
    """Mini-batch Pegasos with optional averaging of late iterates.

    Parameters
    ----------
    lambda_reg:
        Regularization strength (``lambda`` in the Pegasos paper).
    n_epochs:
        Passes over the training set.
    batch_size:
        Sub-gradient mini-batch size.
    average_last:
        Fraction (0, 1] of final iterates to average into the returned
        weights; averaging removes most SGD noise.
    seed:
        RNG seed for sampling.
    """

    def __init__(
        self,
        lambda_reg: float = 1e-4,
        n_epochs: int = 20,
        batch_size: int = 16,
        *,
        average_last: float = 0.5,
        seed: int = 0,
    ) -> None:
        if lambda_reg <= 0:
            raise ParameterError(f"lambda_reg must be positive, got {lambda_reg}")
        if n_epochs < 1:
            raise ParameterError(f"n_epochs must be >= 1, got {n_epochs}")
        if batch_size < 1:
            raise ParameterError(f"batch_size must be >= 1, got {batch_size}")
        if not 0.0 < average_last <= 1.0:
            raise ParameterError(
                f"average_last must be in (0, 1], got {average_last}"
            )
        self.lambda_reg = float(lambda_reg)
        self.n_epochs = int(n_epochs)
        self.batch_size = int(batch_size)
        self.average_last = float(average_last)
        self.seed = int(seed)

    def fit(self, x: np.ndarray, y: np.ndarray) -> PegasosResult:
        """Train on ``(N, D)`` features with labels in ``{-1, +1}``."""
        features = np.asarray(x, dtype=np.float64)
        labels = np.asarray(y, dtype=np.float64).ravel()
        if features.ndim != 2 or features.shape[0] == 0:
            raise TrainingError(
                f"features must be a non-empty (N, D) matrix, got {features.shape}"
            )
        if labels.shape[0] != features.shape[0]:
            raise TrainingError(
                f"{labels.shape[0]} labels for {features.shape[0]} samples"
            )
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise TrainingError("labels must be -1 or +1")
        if np.unique(labels).size < 2:
            raise TrainingError("training data contains a single class")

        n = features.shape[0]
        # Bias learned as an (un-regularized-ish) augmented coordinate.
        aug = np.hstack([features, np.ones((n, 1))])
        dim = aug.shape[1]
        w = np.zeros(dim)
        w_sum = np.zeros(dim)
        n_averaged = 0

        rng = np.random.default_rng(self.seed)
        steps_per_epoch = max(1, n // self.batch_size)
        total_steps = self.n_epochs * steps_per_epoch
        averaging_starts = int(total_steps * (1.0 - self.average_last))

        t = 0
        for _ in range(self.n_epochs):
            for _ in range(steps_per_epoch):
                t += 1
                batch = rng.integers(0, n, size=self.batch_size)
                margins = (aug[batch] @ w) * labels[batch]
                violating = margins < 1.0
                eta = 1.0 / (self.lambda_reg * t)
                w *= 1.0 - eta * self.lambda_reg
                if np.any(violating):
                    grad = (
                        labels[batch][violating][:, None]
                        * aug[batch][violating]
                    ).sum(axis=0)
                    w += (eta / self.batch_size) * grad
                # Optional projection onto the Pegasos ball.
                norm = np.linalg.norm(w)
                radius = 1.0 / np.sqrt(self.lambda_reg)
                if norm > radius:
                    w *= radius / norm
                if t > averaging_starts:
                    w_sum += w
                    n_averaged += 1

        final = w_sum / n_averaged if n_averaged else w
        margins = 1.0 - labels * (aug @ final)
        hinge = np.maximum(margins, 0.0).mean()
        primal = 0.5 * self.lambda_reg * float(final @ final) + float(hinge)
        model = LinearSvmModel(weights=final[:-1].copy(), bias=float(final[-1]))
        return PegasosResult(model=model, n_updates=t, primal_objective=primal)
