"""Timing spans — the `with`-block primitive of the telemetry layer.

A :class:`Span` measures one pass through a pipeline stage with
:func:`time.perf_counter_ns`.  Spans nest: entering a span while another
is open records the new span under the parent's path, so one frame
through the detector produces a tree like::

    detect.frame
    detect.frame/detect.extract
    detect.frame/detect.extract/hog.extract
    detect.frame/detect.extract/hog.extract/hog.gradient
    ...

The registry aggregates completed spans by path (count, total, p50/p95,
max); the raw per-invocation records are also kept (bounded) so
exporters can reconstruct the tree.

When telemetry is disabled the registry hands out a single shared
:data:`NULL_SPAN` whose ``__enter__``/``__exit__`` do nothing — the
instrumented hot path pays one attribute lookup and two empty calls.
"""

from __future__ import annotations

import dataclasses
import time
from types import TracebackType
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.telemetry.registry import MetricsRegistry


@dataclasses.dataclass(frozen=True)
class SpanRecord:
    """One completed timing span.

    Attributes
    ----------
    name:
        The stage name the span was opened with (e.g. ``hog.gradient``).
    path:
        ``/``-joined ancestry including this span's name; unique per
        nesting position, the aggregation key.
    start_ns, duration_ns:
        ``perf_counter_ns`` start timestamp and elapsed nanoseconds.
    depth:
        Nesting depth (0 = root span).
    """

    name: str
    path: str
    start_ns: int
    duration_ns: int
    depth: int


class Span:
    """Context manager timing one stage invocation.

    Created by :meth:`repro.telemetry.MetricsRegistry.span`; single-use
    (create a new one per ``with`` block).
    """

    __slots__ = ("_registry", "name", "path", "depth", "_start_ns")

    def __init__(self, registry: MetricsRegistry, name: str) -> None:
        self._registry = registry
        self.name = name
        self.path = name
        self.depth = 0
        self._start_ns = 0

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack
        self.depth = len(stack)
        if stack:
            self.path = f"{stack[-1]}/{self.name}"
        stack.append(self.path)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        duration = time.perf_counter_ns() - self._start_ns
        self._registry._span_stack.pop()
        self._registry._record_span(
            SpanRecord(
                name=self.name,
                path=self.path,
                start_ns=self._start_ns,
                duration_ns=duration,
                depth=self.depth,
            )
        )


class NullSpan:
    """Shared do-nothing span handed out by disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


#: The one NullSpan instance; reused so disabled spans allocate nothing.
NULL_SPAN = NullSpan()
