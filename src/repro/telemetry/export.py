"""Snapshot exporters: JSON (machine) and aligned text (stdout).

The JSON form is the interchange format — ``repro-das profile`` emits
it, the benchmark harness persists it under ``benchmarks/results/``,
and :func:`snapshot_from_json` round-trips it back into a
:class:`~repro.telemetry.registry.TelemetrySnapshot` for comparison
across runs.

:func:`stage_report` distills a snapshot into the per-stage view the
paper argues about (PAPER.md §4/§5): wall time per pipeline stage plus
per-scale window counters, independent of where in the span tree a
stage was recorded.
"""

from __future__ import annotations

import json
from typing import TextIO

from repro.telemetry.registry import HistogramSummary, TelemetrySnapshot

#: Report stage -> span leaf name recorded by the instrumented pipeline.
#: A stage aggregates every span whose *leaf* matches, wherever it sat
#: in the tree (the extractor runs under both the detector and the
#: accelerator, for example).
STAGE_LEAVES = {
    "gradient": "hog.gradient",
    "histogram": "hog.histogram",
    "normalize": "hog.normalize",
    "scale": "scale.grid",
    "classify": "detect.classify",
    "nms": "detect.nms",
}

#: Stages recorded with a per-instance span name (one leaf per pyramid
#: scale) rather than one fixed leaf.  Stage -> leaf *suffix*: every
#: leaf ending in the suffix aggregates into the stage.  The first
#: instance is ``detect.scale[<s>].partial_matmul`` — the conv scorer's
#: partial-score matmul, a sub-span of ``detect.classify`` (so the
#: classify stage total already contains it; the stage entry shows the
#: matmul share of it).
STAGE_LEAF_SUFFIXES = {
    "partial_matmul": ".partial_matmul",
    "cascade_aggregate": ".cascade_aggregate",
}


def snapshot_to_json(snapshot: TelemetrySnapshot, indent: int = 2) -> str:
    """Serialize a snapshot to a JSON document."""
    return json.dumps(snapshot.to_dict(), indent=indent, sort_keys=True)


def snapshot_from_json(text: str) -> TelemetrySnapshot:
    """Rebuild a snapshot from :func:`snapshot_to_json` output."""
    return TelemetrySnapshot.from_dict(json.loads(text))


def _merge(a: HistogramSummary, b: HistogramSummary) -> HistogramSummary:
    """Combine two summaries (quantiles approximated count-weighted)."""
    count = a.count + b.count
    if count == 0:
        return a
    wa, wb = a.count / count, b.count / count
    return HistogramSummary(
        count=count,
        total=a.total + b.total,
        minimum=min(a.minimum, b.minimum),
        maximum=max(a.maximum, b.maximum),
        p50=a.p50 * wa + b.p50 * wb,
        p95=a.p95 * wa + b.p95 * wb,
    )


def aggregate_by_leaf(snapshot: TelemetrySnapshot) -> dict:
    """Span summaries keyed by leaf name instead of full path."""
    leaves: dict[str, HistogramSummary] = {}
    for path, summary in snapshot.spans.items():
        leaf = path.rsplit("/", 1)[-1]
        leaves[leaf] = _merge(leaves[leaf], summary) if leaf in leaves \
            else summary
    return leaves


def stage_report(snapshot: TelemetrySnapshot) -> dict:
    """The per-stage profile as a plain JSON-ready dict.

    Keys:

    ``stages``
        One entry per pipeline stage (gradient, histogram, normalize,
        scale, classify, nms, plus partial_matmul when a conv scorer
        ran and cascade_aggregate under ``conv-cascade``): call count,
        total/p50/p95/max milliseconds.
    ``windows``
        Per-scale window counters (scanned / accepted / rejected) read
        from the ``detect.scale[<s>].*`` counters, plus totals.
    ``histograms``
        Value distributions recorded with ``registry.observe`` (count,
        total, min/max, p50/p95) — e.g. the stream layer's
        ``stream.latency_ms`` and ``stream.queue_depth``.
    ``counters``, ``gauges``
        Everything else, verbatim.
    """
    leaves = aggregate_by_leaf(snapshot)
    summaries: dict[str, HistogramSummary] = {}
    for stage, leaf in STAGE_LEAVES.items():
        summary = leaves.get(leaf)
        if summary is not None:
            summaries[stage] = summary
    for stage, suffix in STAGE_LEAF_SUFFIXES.items():
        for leaf, summary in leaves.items():
            if leaf.endswith(suffix):
                summaries[stage] = (
                    _merge(summaries[stage], summary)
                    if stage in summaries else summary
                )
    stages = {}
    for stage, summary in summaries.items():
        stages[stage] = {
            "count": summary.count,
            "total_ms": summary.total / 1e6,
            "p50_ms": summary.p50 / 1e6,
            "p95_ms": summary.p95 / 1e6,
            "max_ms": summary.maximum / 1e6,
        }

    windows: dict[str, dict] = {}
    for name, value in snapshot.counters.items():
        if not name.startswith("detect.scale["):
            continue
        scale, _, kind = name[len("detect.scale["):].partition("].")
        windows.setdefault(scale, {})[kind] = value
    totals = {
        kind: snapshot.counters.get(f"detect.{kind}", 0)
        for kind in ("windows_scanned", "windows_accepted",
                     "windows_rejected")
    }
    if any(totals.values()):
        windows["total"] = totals

    return {
        "stages": stages,
        "windows": windows,
        "histograms": {
            name: summary.to_dict()
            for name, summary in snapshot.histograms.items()
        },
        "counters": dict(snapshot.counters),
        "gauges": dict(snapshot.gauges),
    }


def render_text(snapshot: TelemetrySnapshot) -> str:
    """Human-readable profile table (the ``--format text`` view)."""
    report = stage_report(snapshot)
    lines = ["stage        calls   total ms     p50 ms     p95 ms     max ms"]
    for stage, s in report["stages"].items():
        lines.append(
            f"{stage:<10s} {s['count']:7d} {s['total_ms']:10.3f} "
            f"{s['p50_ms']:10.3f} {s['p95_ms']:10.3f} {s['max_ms']:10.3f}"
        )
    if report["windows"]:
        lines.append("")
        lines.append("scale      scanned  accepted  rejected")
        for scale, kinds in sorted(report["windows"].items()):
            lines.append(
                f"{scale:<8s} {kinds.get('windows_scanned', 0):9d} "
                f"{kinds.get('windows_accepted', 0):9d} "
                f"{kinds.get('windows_rejected', 0):9d}"
            )
    cascade = {
        name[len("detect.cascade."):]: value
        for name, value in sorted(report["counters"].items())
        if name.startswith("detect.cascade.")
    }
    if cascade:
        # The early-reject cascade's per-stage rejection accounting
        # (``--scorer conv-cascade``): how many anchors each stage
        # resolved and how much accumulation actually ran.
        lines.append("")
        lines.append("cascade counter                      value")
        for name, value in cascade.items():
            lines.append(f"{name:<32s} {int(value):10d}")
    if report["histograms"]:
        lines.append("")
        lines.append("histogram                 count        p50        p95"
                     "        max")
        for name, h in sorted(report["histograms"].items()):
            lines.append(
                f"{name:<24s} {h['count']:6d} {h['p50']:10.3f} "
                f"{h['p95']:10.3f} {h['max']:10.3f}"
            )
    if report["gauges"]:
        lines.append("")
        for name, value in sorted(report["gauges"].items()):
            lines.append(f"{name}: {value:g}")
    return "\n".join(lines)


def write_json(snapshot: TelemetrySnapshot, stream: TextIO) -> None:
    """Write the JSON form of ``snapshot`` to an open text stream."""
    stream.write(snapshot_to_json(snapshot))
    stream.write("\n")
