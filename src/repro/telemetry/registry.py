"""Process-local metrics registry: counters, gauges, histograms, spans.

:class:`MetricsRegistry` is the hub of the telemetry layer.  It is
deliberately dependency-free and synchronous — the detection pipeline is
a straight-line NumPy program, so unlike a server-side metrics stack
(cf. the async container-scoped collector in *fapilog*) there is no
concurrency to protect against; the cost of recording must stay small
against stages measured in microseconds.

Design rules:

* **Zero global state.**  Registries are instance-scoped; the pipeline
  that wants telemetry creates one and threads it through its stages.
* **Safe no-op when disabled.**  A registry constructed with
  ``enabled=False`` (or the shared :data:`NULL_TELEMETRY` singleton)
  turns every method into a guard-and-return; ``span()`` hands back one
  shared null context manager.  Instrumentation can therefore run
  unconditionally in library code.
* **Bounded memory.**  Histograms keep at most ``max_samples`` raw
  values (aggregates keep counting beyond that); raw span records stop
  accumulating after ``max_spans`` while per-path aggregation continues.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.errors import ParameterError
from repro.telemetry.spans import NULL_SPAN, NullSpan, Span, SpanRecord


def _quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclasses.dataclass(frozen=True)
class HistogramSummary:
    """Aggregate view of one histogram (or one span path)."""

    count: int
    total: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramSummary":
        return cls(
            count=int(data["count"]),
            total=float(data["total"]),
            minimum=float(data["min"]),
            maximum=float(data["max"]),
            p50=float(data["p50"]),
            p95=float(data["p95"]),
        )

    def merge(self, other: "HistogramSummary") -> "HistogramSummary":
        """Combine two summaries of disjoint sample populations.

        Count, total, min and max merge exactly.  The quantiles of the
        union cannot be recovered from two summaries, so the merged
        p50/p95 are the count-weighted means of the inputs' quantiles —
        exact when the populations are identically distributed (the
        worker-pool case: every worker samples the same stage), an
        approximation otherwise.  See docs/TELEMETRY.md.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            return other
        count = self.count + other.count
        wa = self.count / count
        wb = other.count / count
        return HistogramSummary(
            count=count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            p50=self.p50 * wa + other.p50 * wb,
            p95=self.p95 * wa + other.p95 * wb,
        )


class Histogram:
    """Streaming value distribution with bounded raw-sample storage.

    Aggregates (count, total, min, max) are exact for every observation;
    quantiles are computed from the first ``max_samples`` raw values
    (good enough for per-stage latency profiles, which observe a few
    values per frame).
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_samples",
                 "_max_samples")

    def __init__(self, max_samples: int = 8192) -> None:
        if max_samples < 1:
            raise ParameterError(
                f"max_samples must be >= 1, got {max_samples}"
            )
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._samples: list[float] = []
        self._max_samples = max_samples

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)

    def summary(self) -> HistogramSummary:
        ordered = sorted(self._samples)
        return HistogramSummary(
            count=self.count,
            total=self.total,
            minimum=self.minimum if self.count else 0.0,
            maximum=self.maximum if self.count else 0.0,
            p50=_quantile(ordered, 0.50),
            p95=_quantile(ordered, 0.95),
        )


@dataclasses.dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable point-in-time copy of a registry's state.

    This is the hand-off format between the instrumented pipeline and
    every consumer: the ``repro-das profile`` CLI, the benchmark
    harness, and the JSON exporter all read snapshots, never live
    registries.
    """

    counters: dict
    gauges: dict
    histograms: dict  # name -> HistogramSummary
    spans: dict       # path -> HistogramSummary of duration_ns

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: s.to_dict() for name, s in self.histograms.items()
            },
            "spans": {
                path: s.to_dict() for path, s in self.spans.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySnapshot":
        return cls(
            counters={k: int(v) for k, v in data.get("counters", {}).items()},
            gauges={k: float(v) for k, v in data.get("gauges", {}).items()},
            histograms={
                name: HistogramSummary.from_dict(s)
                for name, s in data.get("histograms", {}).items()
            },
            spans={
                path: HistogramSummary.from_dict(s)
                for path, s in data.get("spans", {}).items()
            },
        )


class MetricsRegistry:
    """Counters, gauges, histograms and timing spans for one pipeline.

    Parameters
    ----------
    enabled:
        When False every recording method is a no-op and ``span()``
        returns the shared null span; ``snapshot()`` reports empty
        state.  This is what makes library-side instrumentation free
        for callers that never asked for telemetry.
    max_samples:
        Raw-value cap per histogram (quantile fidelity bound).
    max_spans:
        Cap on retained raw :class:`SpanRecord` objects; per-path
        aggregation continues past it.
    """

    def __init__(
        self,
        enabled: bool = True,
        *,
        max_samples: int = 8192,
        max_spans: int = 10000,
    ) -> None:
        self.enabled = bool(enabled)
        self._max_samples = max_samples
        self._max_spans = max_spans
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._span_durations: dict[str, Histogram] = {}
        self._span_records: list[SpanRecord] = []
        self._span_stack: list[str] = []
        # Summaries absorbed from other registries' snapshots (worker
        # processes); merged into snapshot() output, kept separate from
        # the live Histogram objects because a summary has no raw
        # samples to re-observe.
        self._absorbed_histograms: dict[str, HistogramSummary] = {}
        self._absorbed_spans: dict[str, HistogramSummary] = {}

    # -- Recording ----------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + int(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        if not self.enabled:
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(self._max_samples)
            self._histograms[name] = hist
        hist.observe(value)

    def span(self, name: str) -> "Span | NullSpan":
        """A context manager timing one pass through stage ``name``."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name)

    # Timer is the name the rest of the codebase uses when the measured
    # quantity is a duration; it is the same object as a Span.
    timer = span

    def _record_span(self, record: SpanRecord) -> None:
        if len(self._span_records) < self._max_spans:
            self._span_records.append(record)
        hist = self._span_durations.get(record.path)
        if hist is None:
            hist = Histogram(self._max_samples)
            self._span_durations[record.path] = hist
        hist.observe(record.duration_ns)

    # -- Merging ------------------------------------------------------------

    def absorb_snapshot(
        self, snapshot: TelemetrySnapshot, prefix: str = ""
    ) -> None:
        """Merge another registry's snapshot into this one.

        The cross-process hand-off: a worker process snapshots its own
        registry, ships the immutable snapshot back (it pickles), and
        the parent absorbs it — counters add, gauges last-write-wins,
        histogram/span summaries merge per
        :meth:`HistogramSummary.merge`.  ``prefix`` namespaces every
        absorbed key (e.g. ``"parallel.worker[0]."``); leave it empty to
        accumulate workers into the parent's own keys.

        No-op on a disabled registry, like every recording method.
        """
        if not self.enabled:
            return
        for name, value in snapshot.counters.items():
            self.inc(prefix + name, value)
        for name, value in snapshot.gauges.items():
            self.set_gauge(prefix + name, value)
        for store, incoming in (
            (self._absorbed_histograms, snapshot.histograms),
            (self._absorbed_spans, snapshot.spans),
        ):
            for name, summary in incoming.items():
                key = prefix + name
                held = store.get(key)
                store[key] = summary if held is None else held.merge(summary)

    # -- Pickling -----------------------------------------------------------

    def __reduce__(self) -> tuple[Any, ...]:
        # Two pickle hazards live here.  First, NULL_TELEMETRY is a
        # documented shared singleton ("never enable or record into
        # it"); naively pickling a component wired with it would
        # resurrect a private disabled copy per unpickle, silently
        # breaking `is NULL_TELEMETRY` identity.  Second, an open span
        # stack refers to `with` blocks on the source side that will
        # never exit in the unpickled copy, so it must not travel.
        if self is NULL_TELEMETRY:
            return (_restore_null_telemetry, ())
        state = dict(self.__dict__)
        state["_span_stack"] = []
        return (_new_registry, (), state)

    # -- Reading ------------------------------------------------------------

    @property
    def span_records(self) -> tuple[SpanRecord, ...]:
        """Raw completed spans, in completion order (bounded)."""
        return tuple(self._span_records)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> TelemetrySnapshot:
        """Immutable copy of the current state (safe to keep around).

        Locally-observed histograms/spans are merged with any summaries
        absorbed from other registries (:meth:`absorb_snapshot`).
        """
        histograms = {
            name: h.summary() for name, h in self._histograms.items()
        }
        for name, summary in self._absorbed_histograms.items():
            held = histograms.get(name)
            histograms[name] = (
                summary if held is None else held.merge(summary)
            )
        spans = {
            path: h.summary() for path, h in self._span_durations.items()
        }
        for path, summary in self._absorbed_spans.items():
            held = spans.get(path)
            spans[path] = summary if held is None else held.merge(summary)
        return TelemetrySnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms=histograms,
            spans=spans,
        )

    def reset(self) -> None:
        """Drop all recorded state (open span nesting is preserved)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._span_durations.clear()
        self._span_records.clear()
        self._absorbed_histograms.clear()
        self._absorbed_spans.clear()


def _new_registry() -> "MetricsRegistry":
    """Unpickling shell for :meth:`MetricsRegistry.__reduce__`."""
    return MetricsRegistry.__new__(MetricsRegistry)


def _restore_null_telemetry() -> "MetricsRegistry":
    """Unpickling hook preserving the NULL_TELEMETRY singleton identity."""
    return NULL_TELEMETRY


def merge_snapshots(*snapshots: TelemetrySnapshot) -> TelemetrySnapshot:
    """Combine snapshots from independent registries into one view.

    Counters add, gauges last-write-wins (argument order), histogram
    and span summaries merge per :meth:`HistogramSummary.merge`.  This
    is the functional counterpart of
    :meth:`MetricsRegistry.absorb_snapshot` for callers that hold
    snapshots (e.g. per-worker JSON files) rather than a live registry.
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.absorb_snapshot(snapshot)
    return registry.snapshot()


#: Shared disabled registry: the default ``telemetry`` of every
#: instrumented component.  Never enable or record into it.
NULL_TELEMETRY = MetricsRegistry(enabled=False)
