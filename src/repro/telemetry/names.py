"""Canonical registry of every telemetry name the pipeline records.

Telemetry keys used to exist only as string literals scattered across
the instrumented modules, with ``docs/TELEMETRY.md`` mirroring them by
hand — the exact drift class that static analysis exists to stop.  This
module is now the single source of truth:

* Every ``inc`` / ``set_gauge`` / ``observe`` / ``span`` literal in
  ``src/`` must resolve to an entry here.  The ``telemetry-names`` rule
  of :mod:`repro.analysis` enforces this mechanically (f-string
  placeholders at record sites match ``<var>`` placeholders in
  registered templates), and also checks that the recorded *kind*
  matches the registered one — incrementing a gauge is a lint failure.
* The name table in ``docs/TELEMETRY.md`` is generated from this
  registry (:func:`render_name_table`) between marker comments, and the
  same lint rule fails when the generated block and the registry
  disagree.  Regenerate with::

      PYTHONPATH=src python -m repro.telemetry.names --write

Registering a name is deliberately cheap: add a :class:`TelemetryName`
to :data:`NAMES`, regenerate the docs table, done.  Templated families
(one name per pyramid scale, say) are registered once with a ``<var>``
placeholder, e.g. ``detect.scale[<s>].windows_scanned``.

This module is dependency-free (no NumPy) so the linter can import it
from any environment.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path

#: Metric kinds a name can be registered under; each maps to exactly one
#: family of :class:`~repro.telemetry.MetricsRegistry` record methods.
KINDS = ("counter", "gauge", "histogram", "span")

#: ``<var>`` placeholder inside a registered template.
_PLACEHOLDER_RE = re.compile(r"<[a-z_]+>")

#: Marker comments delimiting the generated block in docs/TELEMETRY.md.
TABLE_BEGIN = "<!-- telemetry-name-table:begin -->"
TABLE_END = "<!-- telemetry-name-table:end -->"


@dataclass(frozen=True)
class TelemetryName:
    """One registered telemetry key (or templated key family).

    Attributes
    ----------
    name:
        The canonical key, possibly containing ``<var>`` placeholders
        for per-instance interpolation (``detect.scale[<s>].*``).
    kind:
        One of :data:`KINDS`; the only record methods allowed for this
        name are the ones of that kind.
    description:
        One line for the generated docs table.
    """

    name: str
    kind: str
    description: str

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"kind must be one of {KINDS}, got {self.kind!r}"
            )
        if not self.name:
            raise ValueError("telemetry name must be non-empty")
        if "|" in self.name or "|" in self.description:
            raise ValueError(
                f"'|' would break the generated Markdown table: {self.name!r}"
            )

    @property
    def normalized(self) -> str:
        """The name with every ``<var>`` placeholder collapsed to ``<>``."""
        return normalize_template(self.name)

    @property
    def is_template(self) -> bool:
        return bool(_PLACEHOLDER_RE.search(self.name))


def normalize_template(name: str) -> str:
    """Collapse ``<var>`` placeholders so templates compare structurally.

    Record sites build keys with f-strings; the linter renders each
    formatted field as ``<>``.  Registered templates write placeholders
    as ``<s>`` / ``<status>`` for readability; both normalize to the
    same string, so resolution is exact string equality.
    """
    return _PLACEHOLDER_RE.sub("<>", name)


NAMES: tuple[TelemetryName, ...] = (
    # -- Sliding-window detector -------------------------------------------
    TelemetryName("detect.frame", "span",
                  "one full frame through the detector"),
    TelemetryName("detect.extract", "span",
                  "base HOG extraction (image strategy: fused pyramid)"),
    TelemetryName("detect.pyramid", "span",
                  "feature-pyramid construction from the base grid"),
    TelemetryName("detect.classify", "span",
                  "one scale's sliding-window scoring"),
    TelemetryName("detect.nms", "span", "non-maximum suppression"),
    TelemetryName("detect.partial_matmul", "span",
                  "conv scorer's partial-score matmul (default span when "
                  "the caller names no scale)"),
    TelemetryName("detect.scale[<s>].partial_matmul", "span",
                  "conv scorer's partial-score matmul at pyramid scale "
                  "<s>, nested inside detect.classify"),
    TelemetryName("detect.cascade_aggregate", "span",
                  "conv-cascade staged aggregation (default span when "
                  "the caller names no scale)"),
    TelemetryName("detect.scale[<s>].cascade_aggregate", "span",
                  "conv-cascade staged aggregation at pyramid scale "
                  "<s>, nested inside detect.classify"),
    TelemetryName("detect.cascade.anchors_in", "counter",
                  "anchors entering the conv-cascade aggregation"),
    TelemetryName("detect.cascade.anchors_survived", "counter",
                  "anchors that completed full accumulation (everything "
                  "else was bounded out below threshold)"),
    TelemetryName("detect.cascade.positions_accumulated", "counter",
                  "block-position partial sums actually accumulated "
                  "(dense cost would be anchors_in * 105)"),
    TelemetryName("detect.cascade.bailouts", "counter",
                  "cascade runs that fell back to dense aggregation "
                  "because stage 0 rejected too few anchors"),
    TelemetryName("detect.cascade.stage[<stage>].anchors_rejected",
                  "counter",
                  "anchors bounded out below threshold at rejection "
                  "check <stage> (0 = after the top-K positions)"),
    TelemetryName("detect.frames", "counter",
                  "frames processed by SlidingWindowDetector.detect"),
    TelemetryName("detect.windows_scanned", "counter",
                  "windows scored per frame, all scales (matches "
                  "DetectionResult.n_windows_evaluated)"),
    TelemetryName("detect.windows_accepted", "counter",
                  "windows above threshold, all scales"),
    TelemetryName("detect.windows_rejected", "counter",
                  "windows at or below threshold, all scales"),
    TelemetryName("detect.nms_candidates", "counter",
                  "detections entering non-maximum suppression"),
    TelemetryName("detect.nms_kept", "counter",
                  "detections surviving non-maximum suppression"),
    TelemetryName("detect.scale[<s>].windows_scanned", "counter",
                  "windows scored at pyramid scale <s>"),
    TelemetryName("detect.scale[<s>].windows_accepted", "counter",
                  "windows above threshold at pyramid scale <s>"),
    TelemetryName("detect.scale[<s>].windows_rejected", "counter",
                  "windows at or below threshold at pyramid scale <s>"),
    TelemetryName("detect.scorer.plan_cache_hits", "counter",
                  "conv-scorer ScorerPlan cache hits"),
    TelemetryName("detect.scorer.plan_cache_misses", "counter",
                  "conv-scorer ScorerPlan cache misses (one per (model, "
                  "window geometry))"),
    # -- HOG extraction -----------------------------------------------------
    TelemetryName("hog.extract", "span", "whole HOG extraction pass"),
    TelemetryName("hog.gradient", "span",
                  "gamma + gradient magnitude/orientation"),
    TelemetryName("hog.histogram", "span", "cell histogram voting"),
    TelemetryName("hog.normalize", "span", "block normalization"),
    TelemetryName("hog.extractions", "counter",
                  "full-grid extraction passes"),
    TelemetryName("hog.pixels", "counter",
                  "pixels consumed by extraction passes"),
    # -- Feature scaling ----------------------------------------------------
    TelemetryName("scale.grid", "span",
                  "one feature-grid resampling pass (scaler or "
                  "accelerator cascade)"),
    TelemetryName("scale.grids", "counter",
                  "feature-grid resampling passes"),
    # -- Hardware accelerator model ----------------------------------------
    TelemetryName("accel.frame", "span",
                  "one frame through the fixed-point accelerator model"),
    TelemetryName("accel.extract", "span",
                  "accelerator-side extraction + feature quantization"),
    TelemetryName("accel.frames", "counter",
                  "frames processed by the accelerator model"),
    TelemetryName("accel.scale[<s>].windows_scanned", "counter",
                  "accelerator windows classified at scale <s>"),
    TelemetryName("accel.scale[<s>].windows_accepted", "counter",
                  "accelerator windows above threshold at scale <s>"),
    TelemetryName("hw.extractor_cycles", "gauge",
                  "analytic cycle model: extractor cycles per frame"),
    TelemetryName("hw.classifier_cycles_effective", "gauge",
                  "analytic cycle model: effective classifier cycles "
                  "per frame"),
    TelemetryName("hw.frame_time_s", "gauge",
                  "analytic cycle model: frame interval in seconds"),
    TelemetryName("hw.frames_per_second", "gauge",
                  "analytic cycle model: projected throughput"),
    TelemetryName("hw.simulate_frame", "span",
                  "one discrete-event simulation run"),
    TelemetryName("hw.sim.total_cycles", "gauge",
                  "event simulator: total cycles for the frame"),
    TelemetryName("hw.sim.extractor_busy_cycles", "gauge",
                  "event simulator: cycles the extractor was busy"),
    TelemetryName("hw.sim.classifier_busy_cycles", "gauge",
                  "event simulator: cycles the classifier was busy"),
    TelemetryName("hw.sim.classifier_stall_cycles", "gauge",
                  "event simulator: classifier stall cycles"),
    TelemetryName("hw.sim.classifier_utilization", "gauge",
                  "event simulator: classifier busy fraction"),
    TelemetryName("hw.sim.peak_buffer_occupancy", "gauge",
                  "event simulator: peak N-HOGMem buffer occupancy"),
    # -- Streaming pipeline -------------------------------------------------
    TelemetryName("stream.frames_in", "counter",
                  "frames read from the source"),
    TelemetryName("stream.frames_<status>", "counter",
                  "per-frame outcomes (ok / failed / dropped; the three "
                  "sum to stream.frames_in)"),
    TelemetryName("stream.latency_ms", "histogram",
                  "source-read to emission latency per frame"),
    TelemetryName("stream.queue_depth", "histogram",
                  "intake queue depth sampled at each producer put"),
    TelemetryName("stream.workers", "gauge",
                  "worker count of the finished run"),
    TelemetryName("stream.achieved_fps", "gauge",
                  "end-of-run throughput"),
    TelemetryName("stream.worker_utilization", "gauge",
                  "end-of-run worker busy fraction"),
    TelemetryName("stream.queue_depth_max", "gauge",
                  "peak intake queue depth of the run"),
    # -- Detection-as-a-service front end -----------------------------------
    TelemetryName("serve.sessions_opened", "counter",
                  "client sessions opened"),
    TelemetryName("serve.sessions_closed", "counter",
                  "client sessions closed"),
    TelemetryName("serve.sessions_active", "gauge",
                  "currently open client sessions"),
    TelemetryName("serve.frames_submitted", "counter",
                  "frames admitted into a session (every submit that "
                  "received a sequence number)"),
    TelemetryName("serve.frames_<status>", "counter",
                  "per-frame serving outcomes (ok / failed / dropped; "
                  "dropped includes rejected and evicted frames)"),
    TelemetryName("serve.frames_rejected", "counter",
                  "frames refused at admission when the session was "
                  "saturated (drop-newest; HTTP 429)"),
    TelemetryName("serve.frames_evicted", "counter",
                  "queued frames displaced by drop-oldest admission or "
                  "discarded by a no-drain session close"),
    TelemetryName("serve.frames_throttled", "counter",
                  "frames refused by a session's max_fps admission cap "
                  "(HTTP 429; still yield an in-order DROPPED result)"),
    TelemetryName("serve.batch.formed", "counter",
                  "dispatch batches formed by the service pump (a batch "
                  "may hold frames from several sessions)"),
    TelemetryName("serve.batch.size", "histogram",
                  "frames per dispatch batch"),
    TelemetryName("serve.batch.multi_frame", "counter",
                  "dispatch batches that coalesced more than one frame"),
    TelemetryName("serve.queue_depth", "histogram",
                  "session backlog sampled at each admission"),
    TelemetryName("serve.latency_ms", "histogram",
                  "submit-to-emission latency per served frame"),
    TelemetryName("serve.inflight", "gauge",
                  "frames currently dispatched to detection workers"),
    TelemetryName("serve.pool_cache_hits", "counter",
                  "sessions attached to an already-warm worker pool"),
    TelemetryName("serve.pool_cache_misses", "counter",
                  "worker pools built for a new DetectorSpec cache key"),
    TelemetryName("serve.pools_active", "gauge",
                  "warm worker pools currently alive"),
    TelemetryName("serve.workers", "gauge",
                  "total detection workers across active pools"),
    TelemetryName("serve.ready", "gauge",
                  "1 while the service accepts sessions, 0 when draining "
                  "or stopped"),
    TelemetryName("serve.drained_clean", "gauge",
                  "1 when the last shutdown drained every pending frame"),
    TelemetryName("serve.http.requests", "counter",
                  "HTTP requests received by the serving front end"),
    TelemetryName("serve.http.responses[<code>]", "counter",
                  "HTTP responses by status code"),
    TelemetryName("serve.http.connections", "counter",
                  "TCP connections accepted by the serving front end "
                  "(with keep-alive, fewer connections than requests)"),
    # -- Multiprocess backend -----------------------------------------------
    TelemetryName("parallel.workers", "gauge",
                  "worker-process count of the active pool"),
    TelemetryName("parallel.frames_shm", "counter",
                  "frames handed off through a shared-memory ring slot"),
    TelemetryName("parallel.frames_pickled", "counter",
                  "frames that outgrew the slot size and fell back to "
                  "pickling"),
    TelemetryName("parallel.worker_snapshots_merged", "counter",
                  "worker telemetry snapshots absorbed at pool close"),
    TelemetryName("parallel.results_shm", "counter",
                  "detection results returned through the ring's "
                  "shared-memory result lane"),
    TelemetryName("parallel.results_pickled", "counter",
                  "detection results that fell back to the pickle "
                  "channel (lane full, result too large, or not "
                  "lane-encodable)"),
    TelemetryName("parallel.batches", "counter",
                  "multi-frame task messages sent to process workers "
                  "(each amortizes the per-message queue cost over its "
                  "frames)"),
    # -- Buffer arena --------------------------------------------------------
    TelemetryName("arena.slab_bytes", "gauge",
                  "total bytes held by the arena's named slabs"),
    TelemetryName("arena.hits", "counter",
                  "buffer requests served from an existing slab"),
    TelemetryName("arena.misses", "counter",
                  "buffer requests that allocated a new named slab "
                  "(warmup)"),
    TelemetryName("arena.resizes", "counter",
                  "buffer requests that grew an existing slab (frame "
                  "shape or scale-ladder change)"),
    TelemetryName("arena.fallback_alloc", "counter",
                  "buffer requests a capped arena served with a plain "
                  "allocation instead of growing past max_bytes"),
)


def _build_index() -> dict[str, TelemetryName]:
    index: dict[str, TelemetryName] = {}
    for entry in NAMES:
        key = entry.normalized
        if key in index:
            raise ValueError(f"duplicate telemetry name: {entry.name!r}")
        index[key] = entry
    return index


#: Normalized template -> entry; the linter's lookup table.
_INDEX: dict[str, TelemetryName] = _build_index()


def lookup(template: str) -> TelemetryName | None:
    """The registered entry a (possibly templated) key resolves to.

    ``template`` may be a concrete key (``"hog.pixels"``), a registered
    template (``"detect.scale[<s>].windows_scanned"``), or a
    linter-normalized one (``"detect.scale[<>].windows_scanned"``).
    Returns ``None`` when nothing matches structurally.
    """
    return _INDEX.get(normalize_template(template))


def resolve(concrete: str) -> TelemetryName | None:
    """Match a *concrete* recorded key against the registry.

    Unlike :func:`lookup` this also matches template instantiations:
    ``resolve("detect.scale[1.20].windows_scanned")`` finds the
    ``detect.scale[<s>].windows_scanned`` entry.  Runtime helper for
    tools that see recorded snapshots rather than source code.
    """
    entry = _INDEX.get(concrete)
    if entry is not None:
        return entry
    for candidate in NAMES:
        if not candidate.is_template:
            continue
        pattern = "".join(
            ".+" if part == "<>" else re.escape(part)
            for part in re.split(r"(<>)", candidate.normalized)
        )
        if re.fullmatch(pattern, concrete):
            return candidate
    return None


def canonical_names(kind: str | None = None) -> tuple[TelemetryName, ...]:
    """All registered names, optionally filtered by kind, sorted."""
    entries = NAMES if kind is None else tuple(
        e for e in NAMES if e.kind == kind
    )
    return tuple(sorted(entries, key=lambda e: e.name))


def render_name_table() -> str:
    """The Markdown name table embedded in docs/TELEMETRY.md.

    Deterministic (sorted by name) so the docs block can be compared
    with string equality by the ``telemetry-names`` lint rule.
    """
    lines = [
        "| Name | Kind | Meaning |",
        "|---|---|---|",
    ]
    for entry in canonical_names():
        lines.append(
            f"| `{entry.name}` | {entry.kind} | {entry.description} |"
        )
    return "\n".join(lines)


def docs_table_problems(text: str) -> list[str]:
    """Why ``text`` (a docs page) disagrees with the registry, if it does.

    Empty list means the page embeds exactly the generated table between
    the :data:`TABLE_BEGIN` / :data:`TABLE_END` markers.
    """
    begin = text.find(TABLE_BEGIN)
    end = text.find(TABLE_END)
    if begin < 0 or end < 0 or end < begin:
        return [
            f"missing the generated name-table markers {TABLE_BEGIN!r} / "
            f"{TABLE_END!r}"
        ]
    embedded = text[begin + len(TABLE_BEGIN):end].strip("\n")
    expected = render_name_table()
    if embedded == expected:
        return []
    embedded_rows = set(embedded.splitlines())
    expected_rows = set(expected.splitlines())
    problems = []
    for row in sorted(expected_rows - embedded_rows):
        problems.append(f"docs table is missing registry row: {row}")
    for row in sorted(embedded_rows - expected_rows):
        problems.append(f"docs table has a row the registry lacks: {row}")
    if not problems:
        problems.append("docs table rows are out of order or reformatted")
    return [
        p + "  (regenerate: PYTHONPATH=src python -m repro.telemetry.names"
            " --write)"
        for p in problems
    ]


def write_docs_table(path: Path) -> bool:
    """Replace the generated block in ``path``; True if the file changed."""
    text = path.read_text(encoding="utf-8")
    begin = text.find(TABLE_BEGIN)
    end = text.find(TABLE_END)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError(
            f"{path} does not contain the {TABLE_BEGIN!r} / {TABLE_END!r} "
            f"markers"
        )
    updated = (
        text[:begin + len(TABLE_BEGIN)]
        + "\n" + render_name_table() + "\n"
        + text[end:]
    )
    if updated == text:
        return False
    path.write_text(updated, encoding="utf-8")
    return True


def _default_docs_path() -> Path:
    # src/repro/telemetry/names.py -> repo root is four parents up.
    return (
        Path(__file__).resolve().parents[3] / "docs" / "TELEMETRY.md"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.names",
        description="Render or sync the canonical telemetry name table.",
    )
    parser.add_argument(
        "--write", nargs="?", type=Path, const=_default_docs_path(),
        default=None, metavar="DOCS_MD",
        help="rewrite the generated block in DOCS_MD "
             "(default: docs/TELEMETRY.md)",
    )
    parser.add_argument(
        "--check", nargs="?", type=Path, const=_default_docs_path(),
        default=None, metavar="DOCS_MD",
        help="exit 1 if the generated block in DOCS_MD is stale",
    )
    args = parser.parse_args(argv)
    if args.write is not None:
        changed = write_docs_table(args.write)
        print(f"{args.write}: {'updated' if changed else 'already current'}")
        return 0
    if args.check is not None:
        problems = docs_table_problems(
            args.check.read_text(encoding="utf-8")
        )
        for problem in problems:
            print(f"{args.check}: {problem}", file=sys.stderr)
        return 1 if problems else 0
    print(render_name_table())
    return 0


if __name__ == "__main__":
    sys.exit(main())
