"""Stage-level observability for the detection pipeline.

The paper's central claim is an argument about *per-stage cost* —
histogram generation dominates the HOG+SVM pipeline, so scaling
features instead of images amortizes the expensive stage across pyramid
levels (PAPER.md §4, and the cycle budget of §5).  This package is the
measurement layer that lets the reproduction state its own per-stage
costs instead of re-measuring them externally:

:class:`MetricsRegistry`
    Process-local counters, gauges, histograms (p50/p95/max) and timing
    spans.  Created per pipeline; no global state.
:class:`Span` (via ``registry.span(name)`` / ``registry.timer(name)``)
    ``with``-block timing using :func:`time.perf_counter_ns`; spans
    nest into a path tree (``detect.frame/detect.extract/...``).
:class:`TelemetrySnapshot`
    Immutable export of a registry, serializable to/from JSON.
:data:`NULL_TELEMETRY`
    Shared disabled registry — the default wired into every
    instrumented component, so the uninstrumented path pays only a
    no-op ``enabled`` check.

Enable it from the user-facing API with
``DetectorConfig(telemetry=True)`` and read
``detector.telemetry.snapshot()``, or run ``repro-das profile`` for a
ready-made per-stage report.  See ``docs/TELEMETRY.md`` for the full
reference and ``docs/PERFORMANCE.md`` for measured numbers.
"""

from repro.telemetry.registry import (
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    NULL_TELEMETRY,
    TelemetrySnapshot,
    merge_snapshots,
)
from repro.telemetry.spans import NULL_SPAN, NullSpan, Span, SpanRecord
from repro.telemetry.export import (
    STAGE_LEAVES,
    aggregate_by_leaf,
    render_text,
    snapshot_from_json,
    snapshot_to_json,
    stage_report,
    write_json,
)

__all__ = [
    "Histogram",
    "HistogramSummary",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "TelemetrySnapshot",
    "merge_snapshots",
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "SpanRecord",
    "STAGE_LEAVES",
    "aggregate_by_leaf",
    "render_text",
    "snapshot_from_json",
    "snapshot_to_json",
    "stage_report",
    "write_json",
]
