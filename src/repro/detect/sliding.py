"""Sliding-window classification over a HOG feature grid.

The classifier slides one cell (8 original-scale pixels) at a time, as
in the paper (Figure 2: "Sliding each window by one cell either in
vertical or horizontal direction results in a new detection window").
Two interchangeable scoring strategies produce the score grid:

* ``scorer="conv"`` (default) — the partial-score convolution of
  :mod:`repro.detect.scoring`: one compact block-grid matmul plus
  summed shifts, the software analogue of the hardware's MACBAR array
  streaming each N-HOGMem block column past the classifiers exactly
  once.  No window descriptor is ever materialized.
* ``scorer="conv-cascade"`` — the conv scorer's staged early-reject
  aggregation (:func:`repro.detect.scoring.score_blocks_cascade`):
  anchors whose partial-score upper bound falls below the detection
  threshold stop accumulating early.  Exact: above-threshold scores
  (and hence the detection set) are bitwise identical to ``conv``.
* ``scorer="gemm"`` — the reference oracle: assemble the
  ``(n_windows, D)`` descriptor matrix and score it with one GEMM.
  Kept for equivalence testing (``benchmarks/bench_scorer.py``,
  ``tests/test_detect_scoring.py``) and as the didactically-obvious
  implementation.

All return the same scores to float round-off (the cascade, by design,
only where they exceed the threshold); see docs/ARCHITECTURE.md
("Scoring strategies").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.contracts import check_array
from repro.detect.scoring import (
    DEFAULT_CASCADE_K,
    plan_for,
    score_blocks_cascade,
    score_blocks_conv,
    validate_scorer,
)
from repro.detect.types import Detection
from repro.errors import ParameterError
from repro.hog.extractor import HogFeatureGrid, window_descriptor_matrix
from repro.svm.model import LinearSvmModel
from repro.telemetry import MetricsRegistry, NULL_TELEMETRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arena import BufferArena


def classify_grid(
    grid: HogFeatureGrid,
    model: LinearSvmModel,
    stride: int = 1,
    *,
    scorer: str = "conv",
    threshold: float = 0.0,
    cascade_k: int = DEFAULT_CASCADE_K,
    telemetry: MetricsRegistry = NULL_TELEMETRY,
    span: str | None = None,
    agg_span: str | None = None,
    arena: BufferArena | None = None,
) -> np.ndarray:
    """Score every window anchor of ``grid`` with ``model``.

    Returns a ``(rows, cols)`` array of decision values matching
    :meth:`HogFeatureGrid.window_positions` order; empty if the grid is
    smaller than one window.  ``scorer`` selects the strategy (see
    module docstring); ``threshold``/``cascade_k`` parameterize the
    early-reject cascade and must match the downstream detection
    threshold (``conv-cascade`` only); ``telemetry``/``span`` time the
    conv scorers' partial-score matmul (``agg_span`` the cascade's
    aggregation stage) and count plan-cache traffic.  ``arena`` backs
    the conv scorers' partial-score tensor and score grid with
    preallocated slabs (docs/MEMORY.md); the returned scores are then
    valid only until the next arena-backed classify call.
    """
    bx, by = grid.params.blocks_per_window
    return classify_grid_windows(
        grid, model, by, bx, stride=stride, scorer=scorer,
        threshold=threshold, cascade_k=cascade_k,
        telemetry=telemetry, span=span, agg_span=agg_span, arena=arena,
    )


def classify_grid_windows(
    grid: HogFeatureGrid,
    model: LinearSvmModel,
    blocks_y: int,
    blocks_x: int,
    stride: int = 1,
    *,
    scorer: str = "conv",
    threshold: float = 0.0,
    cascade_k: int = DEFAULT_CASCADE_K,
    telemetry: MetricsRegistry = NULL_TELEMETRY,
    span: str | None = None,
    agg_span: str | None = None,
    arena: BufferArena | None = None,
) -> np.ndarray:
    """Score every anchor of ``grid`` for an arbitrary window extent.

    Generalizes :func:`classify_grid` to window geometries other than
    the grid's own parameterization — used by rescaled-model detection
    and by multi-object detection where several classes with different
    window shapes share one feature grid.  Returns a ``(rows, cols)``
    score array (empty if the window does not fit).
    """
    if blocks_y < 1 or blocks_x < 1:
        raise ParameterError(
            f"window extent must be >= 1 block, got {blocks_y}x{blocks_x}"
        )
    if stride < 1:
        raise ParameterError(f"stride must be >= 1, got {stride}")
    validate_scorer(scorer)
    blocks = grid.blocks
    expected = blocks_y * blocks_x * blocks.shape[2]
    if model.n_features != expected:
        raise ParameterError(
            f"model has {model.n_features} weights; a {blocks_y}x{blocks_x}"
            f"-block window needs {expected}"
        )
    rows = blocks.shape[0] - blocks_y + 1
    cols = blocks.shape[1] - blocks_x + 1
    if rows <= 0 or cols <= 0:
        # Empty grids follow the scorer's output dtype (historically a
        # bare float64 ``np.empty`` regardless of input dtype).
        return np.empty(
            (0, 0), dtype=np.result_type(blocks.dtype, model.weights.dtype)
        )
    if scorer == "conv":
        plan = plan_for(model, blocks_y, blocks_x, telemetry=telemetry)
        return score_blocks_conv(
            blocks, plan, stride=stride, telemetry=telemetry, span=span,
            arena=arena,
        )
    if scorer == "conv-cascade":
        plan = plan_for(model, blocks_y, blocks_x, telemetry=telemetry)
        return score_blocks_cascade(
            blocks, plan, threshold, stride=stride, cascade_k=cascade_k,
            telemetry=telemetry, span=span, agg_span=agg_span, arena=arena,
        )
    matrix = window_descriptor_matrix(
        blocks, blocks_y, blocks_x, stride=stride
    )
    out_rows = len(range(0, rows, stride))
    out_cols = len(range(0, cols, stride))
    return model.decision_function(matrix).reshape(out_rows, out_cols)


def anchors_to_boxes(
    scores: np.ndarray,
    grid: HogFeatureGrid,
    threshold: float,
    stride: int = 1,
) -> list[Detection]:
    """Convert above-threshold anchors into original-image detections.

    A window anchored at cell ``(r, c)`` in a grid at pyramid scale
    ``s`` covers the original-image box starting at
    ``(r * cell * s, c * cell * s)`` with size
    ``(window_h * s, window_w * s)``.
    """
    check_array(scores, "scores", ndim=2)
    params = grid.params
    s = grid.scale
    cell = params.cell_size
    detections: list[Detection] = []
    hit_rows, hit_cols = np.nonzero(scores > threshold)
    for r_idx, c_idx in zip(hit_rows, hit_cols):
        r = r_idx * stride
        c = c_idx * stride
        detections.append(
            Detection(
                top=r * cell * s,
                left=c * cell * s,
                height=params.window_height * s,
                width=params.window_width * s,
                score=float(scores[r_idx, c_idx]),
                scale=s,
            )
        )
    return detections
