"""Sliding-window classification over a HOG feature grid.

The classifier slides one cell (8 original-scale pixels) at a time, as
in the paper (Figure 2: "Sliding each window by one cell either in
vertical or horizontal direction results in a new detection window").
All windows of a grid are scored with a single matrix-vector product —
the software analogue of the hardware's MACBAR array streaming block
columns through 16 parallel MAC units.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.hog.extractor import HogFeatureGrid
from repro.svm.model import LinearSvmModel
from repro.detect.types import Detection


def classify_grid(
    grid: HogFeatureGrid,
    model: LinearSvmModel,
    stride: int = 1,
) -> np.ndarray:
    """Score every window anchor of ``grid`` with ``model``.

    Returns a ``(rows, cols)`` array of decision values matching
    :meth:`HogFeatureGrid.window_positions` order; empty if the grid is
    smaller than one window.
    """
    if stride < 1:
        raise ParameterError(f"stride must be >= 1, got {stride}")
    rows, cols = grid.n_window_positions
    if rows == 0 or cols == 0:
        return np.empty((0, 0))
    descriptors = grid.descriptor_matrix(stride=stride)
    scores = model.decision_function(descriptors)
    out_rows = len(range(0, rows, stride))
    out_cols = len(range(0, cols, stride))
    return scores.reshape(out_rows, out_cols)


def classify_grid_windows(
    grid: HogFeatureGrid,
    model: LinearSvmModel,
    blocks_y: int,
    blocks_x: int,
) -> np.ndarray:
    """Score every anchor of ``grid`` for an arbitrary window extent.

    Generalizes :func:`classify_grid` to window geometries other than
    the grid's own parameterization — used by rescaled-model detection
    and by multi-object detection where several classes with different
    window shapes share one feature grid.  Returns a ``(rows, cols)``
    score array (empty if the window does not fit).
    """
    if blocks_y < 1 or blocks_x < 1:
        raise ParameterError(
            f"window extent must be >= 1 block, got {blocks_y}x{blocks_x}"
        )
    blocks = grid.blocks
    expected = blocks_y * blocks_x * blocks.shape[2]
    if model.n_features != expected:
        raise ParameterError(
            f"model has {model.n_features} weights; a {blocks_y}x{blocks_x}"
            f"-block window needs {expected}"
        )
    rows = blocks.shape[0] - blocks_y + 1
    cols = blocks.shape[1] - blocks_x + 1
    if rows <= 0 or cols <= 0:
        return np.empty((0, 0))
    view = np.lib.stride_tricks.sliding_window_view(
        blocks, (blocks_y, blocks_x), axis=(0, 1)
    )
    view = np.moveaxis(view, 2, 4)  # (rows, cols, by, bx, dim)
    matrix = view.reshape(rows * cols, expected)
    return model.decision_function(matrix).reshape(rows, cols)


def anchors_to_boxes(
    scores: np.ndarray,
    grid: HogFeatureGrid,
    threshold: float,
    stride: int = 1,
) -> list[Detection]:
    """Convert above-threshold anchors into original-image detections.

    A window anchored at cell ``(r, c)`` in a grid at pyramid scale
    ``s`` covers the original-image box starting at
    ``(r * cell * s, c * cell * s)`` with size
    ``(window_h * s, window_w * s)``.
    """
    params = grid.params
    s = grid.scale
    cell = params.cell_size
    detections: list[Detection] = []
    hit_rows, hit_cols = np.nonzero(scores > threshold)
    for r_idx, c_idx in zip(hit_rows, hit_cols):
        r = r_idx * stride
        c = c_idx * stride
        detections.append(
            Detection(
                top=r * cell * s,
                left=c * cell * s,
                height=params.window_height * s,
                width=params.window_width * s,
                score=float(scores[r_idx, c_idx]),
                scale=s,
            )
        )
    return detections
