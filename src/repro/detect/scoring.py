"""Partial-score convolutional SVM scoring (paper Section 4.3 in software).

The dense sliding-window classifier is redundant when expressed as one
window-by-window GEMM: adjacent stride-1 windows share all but one
column of their 105 blocks, so materializing a
``(n_windows, 3780)`` descriptor matrix copies every block of the grid
up to 105 times (~0.5 GB per 480x640 scale) before multiplying each
copy against the weight vector again.  The paper's MACBAR array avoids
exactly this: each N-HOGMem block column streams past the classifiers
*once*, and every window accumulates the partial products that fall
inside it.

This module is that dataflow, vectorized:

1. **Plan** (:class:`ScorerPlan`, built once per ``(model, by, bx)``
   and cached on the model): reshape the trained weight vector into a
   ``(block_dim, by*bx)`` tensor — one 36-dim weight column per block
   position inside the window.
2. **Partial scores**: one compact
   ``(block_rows*block_cols, block_dim) @ (block_dim, by*bx)`` matmul
   gives, for every block of the grid, its dot product against *every*
   window position it could occupy.  No descriptor is ever
   materialized.
3. **Aggregation**: the window score at anchor ``(r, c)`` is the sum of
   the 105 shifted partial maps,
   ``sum_{i,j} partial[r+i, c+j, i*bx+j] + bias`` — ``by*bx``
   vectorized slice additions over the whole anchor grid at once.

The result equals the GEMM reference (``scorer="gemm"``) to float
round-off (regrouped additions), with none of the descriptor-copy
traffic; ``benchmarks/bench_scorer.py`` measures the end-to-end win and
asserts the equivalence.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.contracts import check_array
from repro.errors import ParameterError, ShapeError
from repro.svm.model import LinearSvmModel
from repro.telemetry import MetricsRegistry, NULL_TELEMETRY
from repro.validation import validate_choice

#: Scoring strategies understood by ``classify_grid*`` and the detector
#: stack.  ``conv`` is the partial-score scorer above; ``gemm`` is the
#: descriptor-matrix reference oracle it is verified against.
SCORERS = ("conv", "gemm")

#: Attribute under which per-model plans are cached (living on the
#: model instance ties the cache lifetime to the weights it derives
#: from — no global registry to leak or invalidate).
_PLAN_CACHE_ATTR = "_scorer_plan_cache"


def validate_scorer(scorer: str) -> str:
    """Return ``scorer`` if it names a known strategy, else raise.

    The single gatekeeper for scorer strings: ``DetectorConfig`` and the
    CLI both route through here (via :func:`repro.validation
    .validate_choice`), so accepted values and error text cannot drift.
    """
    return validate_choice(scorer, SCORERS, "scorer")


@dataclasses.dataclass(frozen=True)
class ScorerPlan:
    """Precomputed weight layout for one (model, window geometry) pair.

    Attributes
    ----------
    weights_t:
        ``(block_dim, blocks_y * blocks_x)`` C-contiguous transpose of
        the model's block-major weight tensor: column ``i*blocks_x + j``
        is the 36-dim weight sub-vector a block contributes when it sits
        at window-relative position ``(i, j)``.
    bias:
        The model bias, added once per window during aggregation.
    blocks_y, blocks_x:
        Window extent in blocks (paper layout: 15 x 7).
    block_dim:
        Features per block (paper: 36).

    The plan is stride-independent: stride only selects which anchors
    the aggregation step reads, so one plan serves every stride.
    """

    weights_t: np.ndarray
    bias: float
    blocks_y: int
    blocks_x: int
    block_dim: int

    @property
    def n_positions(self) -> int:
        """Block positions per window (``blocks_y * blocks_x``)."""
        return self.blocks_y * self.blocks_x

    @classmethod
    def build(
        cls, model: LinearSvmModel, blocks_y: int, blocks_x: int
    ) -> "ScorerPlan":
        """Reshape ``model``'s weights for a ``blocks_y x blocks_x`` window."""
        if blocks_y < 1 or blocks_x < 1:
            raise ParameterError(
                f"window extent must be >= 1 block, got "
                f"{blocks_y}x{blocks_x}"
            )
        n_positions = blocks_y * blocks_x
        if model.n_features % n_positions:
            raise ParameterError(
                f"model has {model.n_features} weights, not divisible by "
                f"the {blocks_y}x{blocks_x} = {n_positions} block "
                f"positions of the window"
            )
        block_dim = model.n_features // n_positions
        weights_t = np.ascontiguousarray(
            model.weights.reshape(n_positions, block_dim).T
        )
        return cls(
            weights_t=weights_t,
            bias=float(model.bias),
            blocks_y=int(blocks_y),
            blocks_x=int(blocks_x),
            block_dim=block_dim,
        )


def plan_for(
    model: LinearSvmModel,
    blocks_y: int,
    blocks_x: int,
    telemetry: MetricsRegistry = NULL_TELEMETRY,
) -> ScorerPlan:
    """The cached :class:`ScorerPlan` of ``model`` for one window extent.

    Plans are cached on the model instance keyed by
    ``(blocks_y, blocks_x)`` — the model object *is* the cache's
    identity key, so rescaled-model pyramids (one
    :class:`~repro.svm.model_scaling.ScaledModel` per scale, each
    holding its own model) each warm their own plan exactly once and
    every later frame hits.  Cache traffic is observable as the
    ``detect.scorer.plan_cache_hits`` / ``_misses`` counters.
    """
    cache = model.__dict__.setdefault(_PLAN_CACHE_ATTR, {})
    key = (int(blocks_y), int(blocks_x))
    plan = cache.get(key)
    if plan is None:
        plan = ScorerPlan.build(model, blocks_y, blocks_x)
        cache[key] = plan
        telemetry.inc("detect.scorer.plan_cache_misses")
    else:
        telemetry.inc("detect.scorer.plan_cache_hits")
    return plan


def score_blocks_conv(
    blocks: np.ndarray,
    plan: ScorerPlan,
    stride: int = 1,
    telemetry: MetricsRegistry = NULL_TELEMETRY,
    span: str | None = None,
) -> np.ndarray:
    """Score every window anchor of a block grid via partial scores.

    Parameters
    ----------
    blocks:
        ``(block_rows, block_cols, block_dim)`` normalized block grid
        (:attr:`~repro.hog.extractor.HogFeatureGrid.blocks`).
    plan:
        Weight layout from :func:`plan_for` / :meth:`ScorerPlan.build`.
    stride:
        Anchor stride in cells; anchors are ``range(0, rows, stride)``
        exactly as in the GEMM path.
    telemetry, span:
        When telemetry is enabled the partial-score matmul is timed
        under ``span`` (default ``"detect.partial_matmul"``; the
        detector passes ``detect.scale[<s>].partial_matmul`` so the
        per-scale split is visible in ``repro-das profile``).

    Returns the ``(out_rows, out_cols)`` score grid, empty when the
    window does not fit.
    """
    if stride < 1:
        raise ParameterError(f"stride must be >= 1, got {stride}")
    if blocks.ndim != 3 or blocks.shape[2] != plan.block_dim:
        raise ShapeError(
            f"block grid {blocks.shape} does not match the plan's "
            f"block_dim {plan.block_dim}"
        )
    check_array(blocks, "blocks", ndim=3, dtype=np.floating)
    grid_rows, grid_cols, _ = blocks.shape
    rows = grid_rows - plan.blocks_y + 1
    cols = grid_cols - plan.blocks_x + 1
    if rows <= 0 or cols <= 0:
        return np.empty((0, 0))

    with telemetry.span(span or "detect.partial_matmul"):
        # One compact GEMM: every block of the grid against every
        # window-relative weight column.  (grid, block_dim) stays a view
        # for the (always C-contiguous) extractor/scaler output.
        partial = blocks.reshape(grid_rows * grid_cols, plan.block_dim) \
            @ plan.weights_t
    partial = partial.reshape(grid_rows, grid_cols, plan.n_positions)

    out_rows = len(range(0, rows, stride))
    out_cols = len(range(0, cols, stride))
    scores = np.full((out_rows, out_cols), plan.bias)
    # Summed shifts: position (i, j) of the window reads the partial
    # map shifted by (i, j).  Accumulation order is fixed (row-major
    # over positions), so strided anchors reproduce the dense run's
    # scores bitwise at the shared anchors.
    position = 0
    for i in range(plan.blocks_y):
        for j in range(plan.blocks_x):
            scores += partial[i:i + rows:stride, j:j + cols:stride, position]
            position += 1
    return scores
