"""Partial-score convolutional SVM scoring (paper Section 4.3 in software).

The dense sliding-window classifier is redundant when expressed as one
window-by-window GEMM: adjacent stride-1 windows share all but one
column of their 105 blocks, so materializing a
``(n_windows, 3780)`` descriptor matrix copies every block of the grid
up to 105 times (~0.5 GB per 480x640 scale) before multiplying each
copy against the weight vector again.  The paper's MACBAR array avoids
exactly this: each N-HOGMem block column streams past the classifiers
*once*, and every window accumulates the partial products that fall
inside it.

This module is that dataflow, vectorized:

1. **Plan** (:class:`ScorerPlan`, built once per ``(model, by, bx)``
   and cached on the model): reshape the trained weight vector into a
   ``(by*bx, block_dim)`` tensor — one 36-dim weight row per block
   position inside the window — plus the per-position weight norms the
   cascade's rejection bound is built from.
2. **Partial scores**: one compact
   ``(by*bx, block_dim) @ (block_dim, block_rows*block_cols)`` matmul
   gives, for every block of the grid, its dot product against *every*
   window position it could occupy — a position-major
   ``(by*bx, rows, cols)`` tensor of contiguous per-position planes.
   No descriptor is ever materialized.
3. **Aggregation**: the window score at anchor ``(r, c)`` is the sum of
   the 105 shifted partial maps,
   ``sum_{i,j} partial[r+i, c+j, i*bx+j] + bias`` — ``by*bx``
   vectorized slice additions over the whole anchor grid at once.

Three aggregation strategies share the partial maps:

* :func:`score_blocks_conv` — the dense aggregation above.
* :func:`score_blocks_cascade` — the staged early-reject cascade
  (``scorer="conv-cascade"``): bound every anchor's best possible
  score from the trained per-position weight norms and the L2-hys
  block norms its window actually covers, rejecting anchors — before
  the partial matmul even runs, when the whole grid is rejectable —
  whose upper bound already falls below the detection threshold;
  survivors accumulate the most discriminative positions first with
  further staged checks, restricted to the bounding box of anchors
  still alive.  **Exact, not approximate**: surviving anchors run the
  identical partial matmul and the same fixed discriminativity-order
  accumulation as the dense path, so their scores are bitwise
  identical; rejected anchors report an upper bound that is itself at
  or below the threshold, so the detection set is identical too.  The
  software transcription of the partial-score classification pruning
  that gives the paper's class of detectors (Suleiman et al.,
  PAPERS.md) its energy budget.
* :func:`score_blocks_conv_fixed` — the same dataflow on
  :mod:`repro.hardware`'s int16 fixed-point grid (Q16.14 features,
  Q16.12 weights, exact wide accumulation), for bounding what the RTL's
  quantization costs.

The result equals the GEMM reference (``scorer="gemm"``) to float
round-off (regrouped additions), with none of the descriptor-copy
traffic; ``benchmarks/bench_scorer.py`` / ``bench_cascade.py`` measure
the end-to-end win and assert the equivalence.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.contracts import check_array
from repro.errors import HardwareConfigError, ParameterError, ShapeError
from repro.svm.model import LinearSvmModel
from repro.telemetry import MetricsRegistry, NULL_TELEMETRY
from repro.validation import validate_choice

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arena import BufferArena

#: Scoring strategies understood by ``classify_grid*`` and the detector
#: stack.  ``conv`` is the partial-score scorer above, ``conv-cascade``
#: its early-reject variant (same scores where it matters — see
#: :func:`score_blocks_cascade`), and ``gemm`` is the descriptor-matrix
#: reference oracle both are verified against.
SCORERS = ("conv", "conv-cascade", "gemm")

#: Default number of most-discriminative block positions the cascade
#: accumulates before its first rejection check.
DEFAULT_CASCADE_K = 16

#: A cascade run that rejected less than this fraction of its anchors
#: by the end did pure dense-order work plus bookkeeping; such runs are
#: reported as bailouts (``detect.cascade.bailouts``) so profiles show
#: when the operating threshold gives the cascade nothing to prune.
_CASCADE_BAILOUT_MIN_REJECTED = 0.5

#: How many positions the cascade accumulates between rejection checks
#: (the first check happens after ``cascade_k`` positions; stage 0 runs
#: before any accumulation at all).
_CASCADE_CHECK_EVERY = 16

#: Attribute under which per-model plans are cached (living on the
#: model instance ties the cache lifetime to the weights it derives
#: from — no global registry to leak or invalidate).
_PLAN_CACHE_ATTR = "_scorer_plan_cache"

#: Serializes :func:`plan_for`'s check-then-set on the per-model cache:
#: without it two thread-backend workers racing on a cold model would
#: both build the plan and double-count the hit/miss telemetry.
_PLAN_CACHE_LOCK = threading.Lock()


def validate_scorer(scorer: str) -> str:
    """Return ``scorer`` if it names a known strategy, else raise.

    The single gatekeeper for scorer strings: ``DetectorConfig`` and the
    CLI both route through here (via :func:`repro.validation
    .validate_choice`), so accepted values and error text cannot drift.
    """
    return validate_choice(scorer, SCORERS, "scorer")


@dataclasses.dataclass(frozen=True)
class ScorerPlan:
    """Precomputed weight layout for one (model, window geometry) pair.

    Attributes
    ----------
    weights_rows:
        ``(blocks_y * blocks_x, block_dim)`` C-contiguous block-major
        weight tensor: row ``i*blocks_x + j`` is the 36-dim weight
        sub-vector a block contributes when it sits at window-relative
        position ``(i, j)``.  Row layout so the partial matmul produces
        the position-major ``(n_positions, rows, cols)`` tensor whose
        per-position planes are contiguous — the layout both the slice
        aggregation and the cascade's per-position maxima want.
    bias:
        The model bias, added once per window during aggregation.
    blocks_y, blocks_x:
        Window extent in blocks (paper layout: 15 x 7).
    block_dim:
        Features per block (paper: 36).
    col_norms:
        Per-position L2 norms of the weight rows.  By Cauchy-Schwarz a
        block feature vector ``x`` with ``||x||_2 <= B`` can contribute
        at most ``B * col_norms[p]`` at position ``p`` — the cascade's
        rejection bound, with ``B`` taken from the L2-hys block norms
        each anchor's window actually covers.
    position_order:
        Block positions sorted by descending training-time
        discriminativity (``col_norms``): the order in which the
        cascade accumulates partial maps so the remaining-contribution
        bound shrinks as fast as the trained weights allow.
    tail_norms:
        ``(n_positions + 1,)`` suffix sums of ``col_norms`` along
        ``position_order``: ``tail_norms[t]`` bounds (per unit block
        norm) the total contribution of every position not yet
        accumulated after ``t`` steps; ``tail_norms[0]`` is the whole
        window's bound, which stage 0 uses before any accumulation.

    The plan is stride-independent: stride only selects which anchors
    the aggregation step reads, so one plan serves every stride.
    """

    weights_rows: np.ndarray
    bias: float
    blocks_y: int
    blocks_x: int
    block_dim: int
    col_norms: np.ndarray
    position_order: np.ndarray
    tail_norms: np.ndarray

    @property
    def n_positions(self) -> int:
        """Block positions per window (``blocks_y * blocks_x``)."""
        return self.blocks_y * self.blocks_x

    @classmethod
    def build(
        cls, model: LinearSvmModel, blocks_y: int, blocks_x: int
    ) -> "ScorerPlan":
        """Reshape ``model``'s weights for a ``blocks_y x blocks_x`` window."""
        if blocks_y < 1 or blocks_x < 1:
            raise ParameterError(
                f"window extent must be >= 1 block, got "
                f"{blocks_y}x{blocks_x}"
            )
        n_positions = blocks_y * blocks_x
        if model.n_features % n_positions:
            raise ParameterError(
                f"model has {model.n_features} weights, not divisible by "
                f"the {blocks_y}x{blocks_x} = {n_positions} block "
                f"positions of the window"
            )
        block_dim = model.n_features // n_positions
        weights_rows = np.ascontiguousarray(
            model.weights.reshape(n_positions, block_dim)
        )
        col_norms = np.linalg.norm(weights_rows, axis=1)
        # Stable sort: ties keep row-major order, so the plan is
        # deterministic across builds of the same model.
        position_order = np.argsort(-col_norms, kind="stable")
        tail_norms = np.zeros(n_positions + 1)
        tail_norms[:n_positions] = \
            np.cumsum(col_norms[position_order][::-1])[::-1]
        return cls(
            weights_rows=weights_rows,
            bias=float(model.bias),
            blocks_y=int(blocks_y),
            blocks_x=int(blocks_x),
            block_dim=block_dim,
            col_norms=col_norms,
            position_order=position_order,
            tail_norms=tail_norms,
        )


def plan_for(
    model: LinearSvmModel,
    blocks_y: int,
    blocks_x: int,
    telemetry: MetricsRegistry = NULL_TELEMETRY,
) -> ScorerPlan:
    """The cached :class:`ScorerPlan` of ``model`` for one window extent.

    Plans are cached on the model instance keyed by
    ``(blocks_y, blocks_x)`` — the model object *is* the cache's
    identity key, so rescaled-model pyramids (one
    :class:`~repro.svm.model_scaling.ScaledModel` per scale, each
    holding its own model) each warm their own plan exactly once and
    every later frame hits.  Cache traffic is observable as the
    ``detect.scorer.plan_cache_hits`` / ``_misses`` counters.

    Thread-safe: the check-then-set runs under a module lock, so
    thread-backend workers sharing one model build each plan exactly
    once and the counters sum to the number of calls.
    """
    key = (int(blocks_y), int(blocks_x))
    with _PLAN_CACHE_LOCK:
        cache = model.__dict__.setdefault(_PLAN_CACHE_ATTR, {})
        plan = cache.get(key)
        if plan is None:
            plan = ScorerPlan.build(model, blocks_y, blocks_x)
            cache[key] = plan
            telemetry.inc("detect.scorer.plan_cache_misses")
        else:
            telemetry.inc("detect.scorer.plan_cache_hits")
    return plan


def _validate_grid(blocks: np.ndarray, plan: ScorerPlan, stride: int) -> None:
    if stride < 1:
        raise ParameterError(f"stride must be >= 1, got {stride}")
    if blocks.ndim != 3 or blocks.shape[2] != plan.block_dim:
        raise ShapeError(
            f"block grid {blocks.shape} does not match the plan's "
            f"block_dim {plan.block_dim}"
        )


def _empty_scores(blocks: np.ndarray, plan: ScorerPlan) -> np.ndarray:
    """A 0x0 score grid in the dtype the scorer would have produced.

    Empty returns used to be float64 unconditionally; with float32
    feature grids (and the fixed-point variant) that silently changed
    the score dtype on frames too small for one window.
    """
    return np.empty(
        (0, 0), dtype=np.result_type(blocks.dtype, plan.weights_rows.dtype)
    )


def _partial_maps(
    blocks: np.ndarray,
    plan: ScorerPlan,
    telemetry: MetricsRegistry,
    span: str | None,
    arena: BufferArena | None = None,
) -> np.ndarray:
    """The ``(n_positions, grid_rows, grid_cols)`` partial-score tensor.

    Position-major: plane ``p`` is the whole grid's dot products
    against weight row ``p``, C-contiguous — so the aggregation's
    shifted slice reads and the cascade's per-position maxima both
    stream sequential memory.

    With ``arena`` the tensor lives in the ``detect.partial`` slab —
    the single largest per-frame allocation of the detector (the
    ``matmul`` hits the identical BLAS GEMM whether or not ``out=`` is
    supplied, so results are bitwise equal).
    """
    grid_rows, grid_cols, _ = blocks.shape
    with telemetry.span(span or "detect.partial_matmul"):
        # One compact GEMM: every window-relative weight row against
        # every block of the grid.  The transposed block view costs
        # nothing (BLAS takes it as a stride flag) and the product
        # comes out C-contiguous in the position-major layout.
        blocks2d = blocks.reshape(grid_rows * grid_cols, plan.block_dim)
        if arena is None:
            partial = plan.weights_rows @ blocks2d.T
            return partial.reshape(plan.n_positions, grid_rows, grid_cols)
        dt = np.result_type(plan.weights_rows.dtype, blocks.dtype)
        partial = arena.get(
            "detect.partial", (plan.n_positions, grid_rows, grid_cols), dt
        )
        np.matmul(
            plan.weights_rows,
            blocks2d.T,
            out=partial.reshape(plan.n_positions, grid_rows * grid_cols),
        )
        return partial


def _scores_dest(
    out: np.ndarray | None,
    arena: BufferArena | None,
    blocks: np.ndarray,
    rows: int,
    cols: int,
    stride: int,
    name: str,
) -> np.ndarray | None:
    """Resolve the score-grid destination for an ``out=``/``arena=`` pair.

    Explicit ``out`` wins (validated against the docs/MEMORY.md
    contract: exact shape, float64, C-contiguous, no aliasing with the
    block grid); otherwise the arena's ``detect.scores`` slab; otherwise
    ``None`` (allocating path).
    """
    out_rows = len(range(0, rows, stride))
    out_cols = len(range(0, cols, stride))
    if out is not None:
        from repro.arena import check_out

        check_out(out, name, (out_rows, out_cols), np.float64, blocks)
        return out
    if arena is not None:
        return arena.get("detect.scores", (out_rows, out_cols), np.float64)
    return None


def _aggregate_dense(
    partial: np.ndarray,
    plan: ScorerPlan,
    rows: int,
    cols: int,
    stride: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Summed shifts in the plan's order: the reference accumulation.

    Positions are added in ``plan.position_order`` (descending
    training-time discriminativity) rather than row-major.  The order
    is an internal detail of the conv scorer — any fixed permutation
    stays within float regrouping error of the GEMM oracle — but
    making the *dense* path use the cascade's order is what lets the
    cascade freeze rejected anchors mid-sequence and have every
    survivor finish **bitwise identical** to this function without
    ever restarting its accumulation.
    """
    out_rows = len(range(0, rows, stride))
    out_cols = len(range(0, cols, stride))
    if out is None:
        scores = np.full((out_rows, out_cols), plan.bias)
    else:
        scores = out
        scores.fill(plan.bias)
    bx = plan.blocks_x
    # Summed shifts: position (i, j) of the window reads the partial
    # map shifted by (i, j).  The accumulation order is fixed by the
    # plan, so strided anchors reproduce the dense run's scores
    # bitwise at the shared anchors.
    for p in plan.position_order:
        p = int(p)
        i, j = divmod(p, bx)
        scores += partial[p, i:i + rows:stride, j:j + cols:stride]
    return scores


def score_blocks_conv(
    blocks: np.ndarray,
    plan: ScorerPlan,
    stride: int = 1,
    telemetry: MetricsRegistry = NULL_TELEMETRY,
    span: str | None = None,
    *,
    out: np.ndarray | None = None,
    arena: BufferArena | None = None,
) -> np.ndarray:
    """Score every window anchor of a block grid via partial scores.

    Parameters
    ----------
    blocks:
        ``(block_rows, block_cols, block_dim)`` normalized block grid
        (:attr:`~repro.hog.extractor.HogFeatureGrid.blocks`).
    plan:
        Weight layout from :func:`plan_for` / :meth:`ScorerPlan.build`.
    stride:
        Anchor stride in cells; anchors are ``range(0, rows, stride)``
        exactly as in the GEMM path.
    telemetry, span:
        When telemetry is enabled the partial-score matmul is timed
        under ``span`` (default ``"detect.partial_matmul"``; the
        detector passes ``detect.scale[<s>].partial_matmul`` so the
        per-scale split is visible in ``repro-das profile``).
    out, arena:
        Optional preallocated score destination (``(out_rows,
        out_cols)`` float64, docs/MEMORY.md ``out=`` contract) and/or a
        :class:`~repro.arena.BufferArena` backing the partial-score
        tensor (``detect.partial``) and, when ``out`` is omitted, the
        score grid itself (``detect.scores``).  Bitwise identical to
        the allocating path.

    Returns the ``(out_rows, out_cols)`` score grid, empty when the
    window does not fit.
    """
    check_array(blocks, "blocks", ndim=3, dtype=np.floating)
    _validate_grid(blocks, plan, stride)
    grid_rows, grid_cols, _ = blocks.shape
    rows = grid_rows - plan.blocks_y + 1
    cols = grid_cols - plan.blocks_x + 1
    if rows <= 0 or cols <= 0:
        return _empty_scores(blocks, plan)
    dest = _scores_dest(out, arena, blocks, rows, cols, stride,
                        "score_blocks_conv")
    partial = _partial_maps(blocks, plan, telemetry, span, arena=arena)
    return _aggregate_dense(partial, plan, rows, cols, stride, out=dest)


def score_blocks_cascade(
    blocks: np.ndarray,
    plan: ScorerPlan,
    threshold: float,
    stride: int = 1,
    cascade_k: int = DEFAULT_CASCADE_K,
    telemetry: MetricsRegistry = NULL_TELEMETRY,
    span: str | None = None,
    agg_span: str | None = None,
    stats_out: dict | None = None,
    *,
    out: np.ndarray | None = None,
    arena: BufferArena | None = None,
) -> np.ndarray:
    """Early-reject staged aggregation of the partial-score maps.

    **Stage 0 — before any accumulation.**  Every anchor's score is
    bounded by ``bias + min(B_row, B_col) * tail_norms[0]``, where
    ``B_row`` / ``B_col`` are the largest L2-hys block norms in the
    rows / columns the anchor's window covers (one ``O(grid)`` norm
    pass plus two sliding maxima).  Anchors whose bound falls at or
    below ``threshold`` minus a conservative float-rounding slack are
    rejected outright; if *no* anchor survives — textureless frames:
    flat road, unlit scenes, obstructed sensors, where L2-hys norms
    collapse to zero — the partial matmul itself is skipped and the
    scorer's cost is the norm pass alone.

    **Staged checks.**  Survivors run the **identical** partial matmul
    as the dense path, then walk ``plan.position_order`` — descending
    training-time discriminativity, the dense path's own accumulation
    sequence — restricted to the bounding box of anchors still alive.
    After the first ``cascade_k`` positions, and every
    :data:`_CASCADE_CHECK_EVERY` thereafter, anchors whose
    ``acc + min(B_row, B_col) * tail_norms[done]`` bound has fallen
    through the threshold are frozen at that bound (a scalar guard
    skips the per-anchor test at checkpoints where no anchor could
    freeze, so textured frames pay almost nothing).  Survivors keep
    accumulating the shared sequence, so every survivor's score is
    **bitwise equal** to :func:`score_blocks_conv`.

    A run that never rejects enough to matter costs the dense
    aggregation plus bound bookkeeping; such runs are counted in
    ``detect.cascade.bailouts``.

    Score-grid semantics: entries above ``threshold`` are exact (and
    identical to the dense/gemm run); rejected entries hold the
    anchor's partial-score **upper bound**, which is at or below
    ``threshold`` by construction — so thresholding the grid (as
    :func:`~repro.detect.sliding.anchors_to_boxes` does, with the same
    ``threshold``) yields the identical detection set.  ``threshold``
    must therefore be the downstream detection threshold; the detector
    wires its own.

    ``stats_out``, when given, receives the aggregation statistics
    (``anchors_in``, ``anchors_survived``, ``rejected_per_stage``,
    ``positions_accumulated``, ``bailed_out``, and the boolean
    ``rejected`` anchor mask) — the instrumentation hook the tests and
    ``benchmarks/bench_cascade.py`` use.

    ``out`` / ``arena`` mirror :func:`score_blocks_conv`: a
    preallocated score destination and/or an arena backing the
    partial-score tensor, bitwise identical to the allocating path.
    """
    check_array(blocks, "blocks", ndim=3, dtype=np.floating)
    _validate_grid(blocks, plan, stride)
    if cascade_k < 1:
        raise ParameterError(f"cascade_k must be >= 1, got {cascade_k}")
    threshold = float(threshold)
    grid_rows, grid_cols, _ = blocks.shape
    rows = grid_rows - plan.blocks_y + 1
    cols = grid_cols - plan.blocks_x + 1
    if rows <= 0 or cols <= 0:
        if stats_out is not None:
            stats_out.update(_cascade_stats(0, 0, [], 0, False,
                                            np.zeros((0, 0), dtype=bool)))
        return _empty_scores(blocks, plan)
    dest = _scores_dest(out, arena, blocks, rows, cols, stride,
                        "score_blocks_cascade")
    with telemetry.span(agg_span or "detect.cascade_aggregate"):
        bound0, brc, slack = _cascade_bounds(
            blocks, plan, threshold, stride, rows, cols
        )
        # Stage 0: reject on the bound alone.  ``~(... <= ...)`` keeps
        # NaN-poisoned anchors alive so corrupt data falls through to
        # the dense accumulation and propagates exactly.
        alive = None if bound0 is None \
            else ~(bound0 + slack <= threshold)
        if alive is None or alive.all():
            # Stage 0 rejected nothing — a fully textured frame, where
            # unit block norms keep the tail bound fat for the entire
            # walk and checkpoints cannot freeze anything either.  Run
            # the dense aggregation directly (bitwise identical to a
            # freeze-free cascade walk) and skip the bound bookkeeping.
            partial = _partial_maps(blocks, plan, telemetry, span,
                                    arena=arena)
            scores = _aggregate_dense(partial, plan, rows, cols, stride,
                                      out=dest)
            n_anchors = scores.size
            stats = _cascade_stats(
                n_anchors, n_anchors, [0],
                n_anchors * plan.n_positions, True,
                np.zeros(scores.shape, dtype=bool),
            )
        elif not alive.any():
            # Nothing can reach the threshold anywhere: the partial
            # matmul itself is skipped — the textureless-frame short
            # circuit that makes the cascade's best case so cheap.
            n_anchors = bound0.size
            scores = bound0
            stats = _cascade_stats(
                n_anchors, 0, [n_anchors], 0, False, ~alive
            )
        else:
            partial = _partial_maps(blocks, plan, telemetry, span,
                                    arena=arena)
            scores, stats = _aggregate_cascade(
                partial, plan, threshold, stride, cascade_k, rows, cols,
                bound0, brc, slack, alive,
            )
        if dest is not None and scores is not dest:
            # The bound/cascade paths accumulate into ``bound0``; copy
            # the finished grid into the caller's destination so the
            # out=/arena= contract (result lives in ``dest``) holds on
            # every branch.  An exact copy — bitwise identity holds.
            np.copyto(dest, scores)
            scores = dest
    if telemetry.enabled:
        telemetry.inc("detect.cascade.anchors_in", stats["anchors_in"])
        telemetry.inc("detect.cascade.anchors_survived",
                      stats["anchors_survived"])
        telemetry.inc("detect.cascade.positions_accumulated",
                      stats["positions_accumulated"])
        if stats["bailed_out"]:
            telemetry.inc("detect.cascade.bailouts")
        for stage, n in enumerate(stats["rejected_per_stage"]):
            if n:
                telemetry.inc(
                    f"detect.cascade.stage[{stage}].anchors_rejected", n
                )
    if stats_out is not None:
        stats_out.update(stats)
    return scores


def _cascade_stats(anchors_in, survived, per_stage, positions, bailed,
                   rejected_mask) -> dict:
    return {
        "anchors_in": int(anchors_in),
        "anchors_survived": int(survived),
        "rejected_per_stage": [int(n) for n in per_stage],
        "positions_accumulated": int(positions),
        "bailed_out": bool(bailed),
        "rejected": rejected_mask,
    }


def _window_norm_bounds(
    block_norms: np.ndarray,
    extent: int,
    stride: int,
    axis: int,
) -> np.ndarray:
    """Largest block norm in each window-sized span along ``axis``.

    ``block_norms`` is the (rows, cols) grid of per-block L2 norms;
    the result has one entry per anchor along ``axis``: the max norm
    over the ``extent`` consecutive block lines its window covers.
    """
    line_max = block_norms.max(axis=1 - axis)
    windows = np.lib.stride_tricks.sliding_window_view(line_max, extent)
    return windows.max(axis=1)[::stride]


def _cascade_bounds(
    blocks: np.ndarray,
    plan: ScorerPlan,
    threshold: float,
    stride: int,
    rows: int,
    cols: int,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Stage-0 score bounds: ``(bound0, brc, slack)``.

    By Cauchy-Schwarz, position ``p`` of an anchor's window contributes
    at most ``||block|| * col_norms[p]``, and every block the window
    covers has norm at most ``min(B_row, B_col)`` — the largest norm in
    the window's block rows / columns (``brc``, one entry per anchor).
    ``bound0 = bias + brc * tail_norms[0]`` therefore bounds the whole
    window score before any accumulation.  L2-hys normalization makes
    this bound collapse exactly where it should: textureless regions
    have zero-norm blocks, so their anchors are rejectable outright.

    ``slack`` is a conservative multiple of the worst-case float
    rounding in the bound arithmetic, so rejection can never claim an
    anchor whose exact score exceeds the threshold.  A NaN anywhere
    poisons the bounds into NaN, whose ``<=`` comparisons are all
    False — corrupt data is never rejected and falls through to the
    dense accumulation, reproducing its NaN scores exactly.

    Fully textured frames are detected without building the per-anchor
    bounds at all: every anchor's ``brc`` is at least the smallest
    per-line norm maximum (each window max covers its own leading
    line), so when even that floor keeps ``bound0`` above threshold,
    no anchor can reject and ``(None, None, slack)`` is returned —
    the quick guard that prices the cascade at one ``O(grid)`` norm
    pass plus two line reductions on busy scenes.
    """
    sq_norms = np.einsum("ijk,ijk->ij", blocks, blocks)
    sq_norms = sq_norms[:rows + plan.blocks_y - 1,
                        :cols + plan.blocks_x - 1]
    tail0 = float(plan.tail_norms[0])
    gross = abs(plan.bias) + abs(threshold) \
        + float(np.sqrt(np.max(sq_norms))) * tail0
    slack = 64.0 * (plan.n_positions + 2) * np.finfo(np.float64).eps \
        * (gross + 1.0)
    floor_sq = min(float(np.min(np.max(sq_norms, axis=1))),
                   float(np.min(np.max(sq_norms, axis=0))))
    floor_bound = plan.bias + np.sqrt(floor_sq) * tail0
    if not floor_bound + slack <= threshold:
        return None, None, slack
    norms = np.sqrt(sq_norms)
    b_row = _window_norm_bounds(norms, plan.blocks_y, stride, axis=0)
    b_col = _window_norm_bounds(norms, plan.blocks_x, stride, axis=1)
    brc = np.minimum.outer(b_row, b_col)
    bound0 = plan.bias + brc * tail0
    return bound0, brc, slack


def _aggregate_cascade(
    partial: np.ndarray,
    plan: ScorerPlan,
    threshold: float,
    stride: int,
    cascade_k: int,
    rows: int,
    cols: int,
    bound0: np.ndarray,
    brc: np.ndarray,
    slack: float,
    alive: np.ndarray,
) -> tuple[np.ndarray, dict]:
    out_rows, out_cols = bound0.shape
    n_anchors = out_rows * out_cols
    n_pos = plan.n_positions
    bx = plan.blocks_x
    k = min(int(cascade_k), n_pos)
    order = plan.position_order
    tail = plan.tail_norms

    # Anchors stage 0 already rejected hold their (at-or-below
    # threshold) bound; survivors get overwritten below.
    scores = bound0
    rejected_per_stage = [n_anchors - int(np.count_nonzero(alive))]
    positions_accumulated = 0

    # The accumulator walks the plan's position order — the exact
    # float-add sequence of _aggregate_dense — restricted to the
    # bounding box of anchors still alive.  Frozen anchors inside the
    # box keep receiving (harmless) slice adds; their reported value
    # was fixed in ``scores`` at freeze time.  Checkpoints shrink the
    # box as rejection sweeps regions clear, and the walk stops
    # entirely once nothing is alive.
    alive_rows = np.nonzero(alive.any(axis=1))[0]
    alive_cols = np.nonzero(alive.any(axis=0))[0]
    r0, r1 = int(alive_rows[0]), int(alive_rows[-1]) + 1
    c0, c1 = int(alive_cols[0]), int(alive_cols[-1]) + 1
    acc = np.full((r1 - r0, c1 - c0), plan.bias)
    finished = False
    for t in range(n_pos):
        p = int(order[t])
        i, j = divmod(p, bx)
        acc += partial[p,
                       r0 * stride + i:(r1 - 1) * stride + i + 1:stride,
                       c0 * stride + j:(c1 - 1) * stride + j + 1:stride]
        positions_accumulated += acc.size
        done = t + 1
        if done >= k and (done - k) % _CASCADE_CHECK_EVERY == 0 \
                and done < n_pos:
            tail_t = float(tail[done])
            brc_v = brc[r0:r1, c0:c1]
            # Scalar guard: when even the most rejectable anchor of
            # the box cannot fall through the threshold, skip the
            # per-anchor test (the common case on textured frames,
            # where unit block norms keep the tail bound fat).
            if float(np.min(acc)) + float(np.min(brc_v)) * tail_t \
                    + slack > threshold:
                rejected_per_stage.append(0)
                continue
            alive_v = alive[r0:r1, c0:c1]
            bound = acc + brc_v * tail_t
            freeze = alive_v & (bound + slack <= threshold)
            n_freeze = int(np.count_nonzero(freeze))
            rejected_per_stage.append(n_freeze)
            if not n_freeze:
                continue
            scores[r0:r1, c0:c1][freeze] = bound[freeze]
            # Frozen anchors keep receiving harmless slice adds, but
            # their low running sums would defeat the scalar guard at
            # every later checkpoint.  Poison them to +inf: survivors'
            # float sequences are untouched (the adds are elementwise)
            # and ``np.min(acc)`` goes back to measuring live anchors.
            acc[freeze] = np.inf
            alive_v &= ~freeze
            if not alive_v.any():
                finished = True
                break
            # Shrink the bounding box to what is still alive; ``acc``
            # stays a view into the same backing array, so survivors'
            # accumulation sequences are untouched.
            sub_rows = np.nonzero(alive_v.any(axis=1))[0]
            sub_cols = np.nonzero(alive_v.any(axis=0))[0]
            nr0 = r0 + int(sub_rows[0])
            nr1 = r0 + int(sub_rows[-1]) + 1
            nc0 = c0 + int(sub_cols[0])
            nc1 = c0 + int(sub_cols[-1]) + 1
            acc = acc[nr0 - r0:nr1 - r0, nc0 - c0:nc1 - c0]
            r0, r1, c0, c1 = nr0, nr1, nc0, nc1
    if not finished:
        alive_v = alive[r0:r1, c0:c1]
        scores[r0:r1, c0:c1][alive_v] = acc[alive_v]

    n_alive = int(np.count_nonzero(alive))
    n_rejected = n_anchors - n_alive
    stats = _cascade_stats(
        n_anchors, n_alive, rejected_per_stage, positions_accumulated,
        n_rejected < _CASCADE_BAILOUT_MIN_REJECTED * n_anchors,
        ~alive,
    )
    return scores, stats


def score_blocks_conv_fixed(
    blocks: np.ndarray,
    plan: ScorerPlan,
    stride: int = 1,
    feature_format=None,
    weight_format=None,
    accumulator_format=None,
    telemetry: MetricsRegistry = NULL_TELEMETRY,
    span: str | None = None,
) -> np.ndarray:
    """Partial-score aggregation on the hardware's int16 fixed-point grid.

    Features and weights are quantized to
    :data:`repro.hardware.fixed_point.FEATURE_FORMAT` (Q16.14) and
    :data:`~repro.hardware.fixed_point.WEIGHT_FORMAT` (Q16.12) —
    round-half-even with saturation, exactly like
    :func:`repro.hardware.fixed_point.quantize` — and stored as int16.
    The partial matmul and the row-major aggregation then run in int64,
    which is *exact*: every feature*weight product lies on the
    ``2**-(f_frac + w_frac)`` grid that the wide accumulator (Q48.26 by
    default) holds without rounding — the same contract
    :mod:`repro.hardware.mac` enforces for the MACBAR array.  The
    returned float64 scores are therefore bit-identical to scoring the
    quantized model on the quantized features in exact arithmetic; the
    only error versus :func:`score_blocks_conv` is the input
    quantization itself, which
    :func:`repro.hardware.fixed_point.quantization_error` bounds.

    Raises :class:`~repro.errors.HardwareConfigError` if the formats
    cannot guarantee exact accumulation (fractional-bit contract) or if
    a window score overflows the accumulator range.
    """
    from repro.hardware.fixed_point import (
        ACCUMULATOR_FORMAT,
        FEATURE_FORMAT,
        WEIGHT_FORMAT,
    )

    feature_format = feature_format or FEATURE_FORMAT
    weight_format = weight_format or WEIGHT_FORMAT
    accumulator_format = accumulator_format or ACCUMULATOR_FORMAT
    for name, fmt in (("feature", feature_format),
                      ("weight", weight_format)):
        if fmt.total_bits > 16:
            raise HardwareConfigError(
                f"{name} format {fmt.describe()} does not fit the int16 "
                f"datapath"
            )
    needed = feature_format.frac_bits + weight_format.frac_bits
    if accumulator_format.frac_bits < needed:
        raise HardwareConfigError(
            f"accumulator needs >= {needed} fractional bits to hold "
            f"feature*weight products exactly, got "
            f"{accumulator_format.frac_bits}"
        )
    check_array(blocks, "blocks", ndim=3, dtype=np.floating)
    _validate_grid(blocks, plan, stride)
    grid_rows, grid_cols, _ = blocks.shape
    rows = grid_rows - plan.blocks_y + 1
    cols = grid_cols - plan.blocks_x + 1
    if rows <= 0 or cols <= 0:
        return np.empty((0, 0), dtype=np.float64)

    def to_ints(values: np.ndarray, fmt) -> np.ndarray:
        scaled = np.round(np.asarray(values, dtype=np.float64)
                          / fmt.resolution)
        lo = fmt.min_value / fmt.resolution
        hi = fmt.max_value / fmt.resolution
        return np.clip(scaled, lo, hi).astype(np.int16)

    features_i = to_ints(blocks, feature_format)
    weights_i = to_ints(plan.weights_rows, weight_format).T
    # Bias lands on the product grid: weight-format quantization, then
    # a left shift by the feature fraction.
    bias_units = int(round(float(np.round(plan.bias
                                          / weight_format.resolution)))
                     ) << feature_format.frac_bits

    with telemetry.span(span or "detect.partial_matmul"):
        partial = (
            features_i.reshape(grid_rows * grid_cols, plan.block_dim)
            .astype(np.int64)
            @ weights_i.astype(np.int64)
        )
    partial = partial.reshape(grid_rows, grid_cols, plan.n_positions)

    out_rows = len(range(0, rows, stride))
    out_cols = len(range(0, cols, stride))
    acc = np.full((out_rows, out_cols), bias_units, dtype=np.int64)
    position = 0
    for i in range(plan.blocks_y):
        for j in range(plan.blocks_x):
            acc += partial[i:i + rows:stride, j:j + cols:stride, position]
            position += 1

    product_resolution = (feature_format.resolution
                          * weight_format.resolution)
    limit = accumulator_format.max_value / product_resolution
    if acc.size and (acc.max() > limit or acc.min() < -limit - 1):
        raise HardwareConfigError(
            f"window score overflows the "
            f"{accumulator_format.describe()} accumulator"
        )
    return acc.astype(np.float64) * product_resolution
