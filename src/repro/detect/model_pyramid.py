"""Multi-scale detection with rescaled models (Benenson et al. [1]).

**Paper mapping.**  This is the third corner of the design space the
paper's Section 2 surveys against its own Figure 3(b) feature pyramid:

* *image pyramid* (Figure 3a, conventional) — resize the frame per
  scale, re-extract HOG each time; the expensive histogram stage runs
  once per level.
* *feature pyramid* (Figure 3b, the paper's contribution) — extract
  HOG once, down-sample the normalized features per level.
* *model pyramid* (this module; Benenson et al. "Pedestrians detection
  at 100 frames per second" [1], also [5]) — extract HOG once and keep
  the features untouched; instead rescale the trained SVM *model* to
  each scale's window extent and slide every rescaled model over the
  same grid.

One HOG extraction, one *feature* grid — and one rescaled SVM model per
scale, each slid over the same grid with its own window extent.  The
complement of the paper's feature pyramid: scale lives entirely in the
classifier's model memory, which on the paper's hardware would trade
the Figure 6 shift-add scaler cascade for per-scale model-memory banks
(the trade-off the paper rejects in Section 2 because model memory, not
arithmetic, is the scarce BRAM resource — see Table 2).

``benchmarks/bench_baselines.py`` compares all three strategies on the
same frames.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.detect.nms import non_maximum_suppression
from repro.detect.types import Detection, DetectionResult, StageTimings
from repro.errors import ParameterError
from repro.hog.extractor import HogExtractor, HogFeatureGrid
from repro.svm.model import LinearSvmModel
from repro.svm.model_scaling import ScaledModel, model_pyramid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arena import BufferArena


def classify_grid_with_scaled_model(
    grid: HogFeatureGrid,
    scaled: ScaledModel,
    *,
    scorer: str = "conv",
    threshold: float = 0.0,
    cascade_k: int | None = None,
    arena: BufferArena | None = None,
) -> np.ndarray:
    """Score every anchor of ``grid`` under a rescaled model's window.

    Returns a ``(rows, cols)`` score array; empty when the scaled
    window no longer fits the grid.  ``scorer`` selects the scoring
    strategy; with the conv scorers each scaled model caches its own
    partial-score plan (keyed by its window extent), so the per-scale
    reshape happens once, not per frame.  ``threshold``/``cascade_k``
    parameterize the ``conv-cascade`` early-reject bound and must
    match the downstream detection threshold.  ``arena`` backs the conv
    scorers' scratch slabs (docs/MEMORY.md); arena-backed scores are
    valid only until the next arena-backed classify call.
    """
    from repro.detect.scoring import DEFAULT_CASCADE_K
    from repro.detect.sliding import classify_grid_windows

    return classify_grid_windows(
        grid, scaled.model, scaled.blocks_y, scaled.blocks_x, scorer=scorer,
        threshold=threshold,
        cascade_k=DEFAULT_CASCADE_K if cascade_k is None else cascade_k,
        arena=arena,
    )


class ModelPyramidDetector:
    """Sliding-window detector whose pyramid is a set of scaled models.

    Parameters mirror :class:`repro.detect.SlidingWindowDetector`; the
    difference is where the scale handling lives.
    """

    def __init__(
        self,
        model: LinearSvmModel,
        extractor: HogExtractor | None = None,
        *,
        scales: Sequence[float] = (1.0, 1.2),
        threshold: float = 0.0,
        nms_iou: float = 0.3,
        scorer: str = "conv",
        arena: BufferArena | None = None,
    ) -> None:
        from repro.detect.scoring import validate_scorer

        self.scorer = validate_scorer(scorer)
        owns_extractor = extractor is None
        self.extractor = extractor if extractor is not None else HogExtractor()
        self.arena = arena
        # One extraction per frame, scores consumed per scale before the
        # next classify reuses the slabs — the single-owner arena
        # contract (docs/MEMORY.md) holds; only an extractor this
        # detector constructed may borrow the arena.
        if arena is not None and owns_extractor:
            self.extractor.arena = arena
        if model.n_features != self.extractor.params.descriptor_length:
            raise ParameterError(
                f"model expects {model.n_features} features but the extractor "
                f"produces {self.extractor.params.descriptor_length}"
            )
        if not scales or any(s <= 0 for s in scales):
            raise ParameterError(f"scales must be positive and non-empty: {scales}")
        self.threshold = float(threshold)
        self.nms_iou = float(nms_iou)
        self.scaled_models = model_pyramid(
            model, self.extractor.params, tuple(scales)
        )

    def detect(self, image: np.ndarray) -> DetectionResult:
        """Detect pedestrians; every scale reuses the single base grid."""
        timings = StageTimings()
        start = time.perf_counter()
        grid = self.extractor.extract(image)
        timings.extraction = time.perf_counter() - start

        cell = self.extractor.params.cell_size
        detections: list[Detection] = []
        n_windows = 0
        scales_used = []
        start = time.perf_counter()
        for scaled in self.scaled_models:
            scores = classify_grid_with_scaled_model(
                grid, scaled, scorer=self.scorer, threshold=self.threshold,
                arena=self.arena,
            )
            if scores.size == 0:
                continue
            scales_used.append(scaled.scale)
            n_windows += scores.size
            hit_rows, hit_cols = np.nonzero(scores > self.threshold)
            for r, c in zip(hit_rows, hit_cols):
                detections.append(
                    Detection(
                        top=r * cell,
                        left=c * cell,
                        height=scaled.window_height_px,
                        width=scaled.window_width_px,
                        score=float(scores[r, c]),
                        scale=scaled.scale,
                    )
                )
        timings.classification = time.perf_counter() - start

        start = time.perf_counter()
        kept = non_maximum_suppression(detections, iou_threshold=self.nms_iou)
        timings.nms = time.perf_counter() - start
        return DetectionResult(
            detections=kept,
            timings=timings,
            n_windows_evaluated=n_windows,
            scales_used=scales_used,
        )
