"""Sliding-window multi-scale pedestrian detection.

Two interchangeable strategies mirror Figure 3 of the paper:

* ``PyramidStrategy.IMAGE`` — the conventional detector: build an image
  pyramid, re-extract HOG at every level.
* ``PyramidStrategy.FEATURE`` — the paper's detector: extract HOG once,
  down-sample the features per level.

Both feed the identical sliding-window classifier and non-maximum
suppression, so any accuracy or runtime difference is attributable to
the pyramid construction alone.
"""

from repro.detect.types import Detection, DetectionResult, StageTimings
from repro.detect.nms import box_iou, non_maximum_suppression
from repro.detect.scoring import (
    DEFAULT_CASCADE_K,
    SCORERS,
    ScorerPlan,
    plan_for,
    score_blocks_cascade,
    score_blocks_conv,
    score_blocks_conv_fixed,
    validate_scorer,
)
from repro.detect.sliding import (
    classify_grid,
    classify_grid_windows,
    anchors_to_boxes,
)
from repro.detect.detector import PyramidStrategy, SlidingWindowDetector
from repro.detect.model_pyramid import (
    ModelPyramidDetector,
    classify_grid_with_scaled_model,
)

__all__ = [
    "Detection",
    "DetectionResult",
    "StageTimings",
    "box_iou",
    "non_maximum_suppression",
    "DEFAULT_CASCADE_K",
    "SCORERS",
    "ScorerPlan",
    "plan_for",
    "score_blocks_cascade",
    "score_blocks_conv",
    "score_blocks_conv_fixed",
    "validate_scorer",
    "classify_grid",
    "classify_grid_windows",
    "anchors_to_boxes",
    "PyramidStrategy",
    "SlidingWindowDetector",
    "ModelPyramidDetector",
    "classify_grid_with_scaled_model",
]
