"""The multi-scale sliding-window detector (both Figure 3 configurations)."""

from __future__ import annotations

import enum
import time
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.detect.nms import non_maximum_suppression
from repro.detect.scoring import DEFAULT_CASCADE_K, validate_scorer
from repro.detect.sliding import anchors_to_boxes, classify_grid
from repro.detect.types import DetectionResult, StageTimings
from repro.errors import ParameterError
from repro.hog.extractor import HogExtractor
from repro.hog.pyramid import FeaturePyramid, ImagePyramid, pyramid_scales
from repro.hog.scaling import FeatureScaler
from repro.svm.model import LinearSvmModel
from repro.telemetry import MetricsRegistry, NULL_TELEMETRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arena import BufferArena


class PyramidStrategy(enum.Enum):
    """How the multi-scale pyramid is constructed."""

    IMAGE = "image"      # conventional: resize image, re-extract HOG
    FEATURE = "feature"  # proposed: extract HOG once, down-sample features


class SlidingWindowDetector:
    """Multi-scale pedestrian detector over full frames.

    Parameters
    ----------
    model:
        Trained linear SVM for the extractor's window descriptor layout.
    extractor:
        HOG extractor; its parameters define window geometry.
    strategy:
        Image-pyramid (conventional) or feature-pyramid (proposed).
    scales:
        Pyramid scales; defaults to the paper's hardware configuration
        of two scales (1.0 and 1.2).
    threshold:
        SVM decision threshold for accepting a window.
    stride:
        Window stride in cells (paper: 1).
    nms_iou:
        IoU threshold for non-maximum suppression.
    scorer:
        Window-scoring strategy: ``"conv"`` (default, the partial-score
        convolution of :mod:`repro.detect.scoring`),
        ``"conv-cascade"`` (the same partial scores with staged
        early-reject aggregation, exact at and above ``threshold``) or
        ``"gemm"`` (the descriptor-matrix reference oracle).  Same
        detections in all three; the conv scorers skip the per-window
        descriptor copies entirely (see docs/PERFORMANCE.md §2).
    cascade_k:
        ``conv-cascade`` only: how many of the most discriminative
        block positions stage 0 accumulates before the first rejection
        check (:data:`repro.detect.scoring.DEFAULT_CASCADE_K`).
    scaler:
        Feature scaler used by the FEATURE strategy.
    arena:
        Optional :class:`~repro.arena.BufferArena` backing the hot
        path's scratch arrays (HOG stage buffers and the conv scorers'
        partial/score slabs).  Follows the same ownership discipline as
        ``telemetry``: it is propagated only into an extractor the
        detector constructed itself, and only under the FEATURE
        strategy (the image strategy keeps several extracted grids
        alive at once, which the one-slab-per-role arena cannot back).
        Results are bitwise identical with or without an arena.
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry`.  When
        provided it is also propagated into the extractor and scaler —
        but only the ones the detector constructed itself (i.e. when
        ``extractor`` / ``scaler`` were omitted), so one registry
        observes the whole hot path: ``detect.*`` spans, per-scale
        window counters (``detect.scale[<s>].windows_scanned`` /
        ``_accepted`` / ``_rejected``) and the ``hog.*`` / ``scale.*``
        sub-stages.  Caller-supplied components keep whatever telemetry
        they were constructed with: two detectors sharing one extractor
        must not steal or cross-contaminate each other's registries.
        Wire a shared component explicitly
        (``HogExtractor(params, telemetry=registry)``) to include its
        sub-stages in the profile.
    """

    def __init__(
        self,
        model: LinearSvmModel,
        extractor: HogExtractor | None = None,
        *,
        strategy: PyramidStrategy | str = PyramidStrategy.FEATURE,
        scales: Sequence[float] | None = None,
        threshold: float = 0.0,
        stride: int = 1,
        nms_iou: float = 0.3,
        scorer: str = "conv",
        cascade_k: int = DEFAULT_CASCADE_K,
        scaler: FeatureScaler | None = None,
        chained: bool = True,
        telemetry: MetricsRegistry | None = None,
        arena: BufferArena | None = None,
    ) -> None:
        self.model = model
        owns_extractor = extractor is None
        self.extractor = extractor if extractor is not None else HogExtractor()
        if self.model.n_features != self.extractor.params.descriptor_length:
            raise ParameterError(
                f"model expects {self.model.n_features} features but the "
                f"extractor produces "
                f"{self.extractor.params.descriptor_length}-dim descriptors"
            )
        self.strategy = (
            PyramidStrategy(strategy) if isinstance(strategy, str) else strategy
        )
        self.scales = (
            list(scales) if scales is not None else pyramid_scales(2, step=1.2)
        )
        if not self.scales:
            raise ParameterError("scales must be non-empty")
        if any(s <= 0 for s in self.scales):
            raise ParameterError(f"scales must be positive, got {self.scales}")
        if stride < 1:
            raise ParameterError(f"stride must be >= 1, got {stride}")
        self.threshold = float(threshold)
        self.stride = int(stride)
        self.nms_iou = float(nms_iou)
        self.scorer = validate_scorer(scorer)
        if cascade_k < 1:
            raise ParameterError(f"cascade_k must be >= 1, got {cascade_k}")
        self.cascade_k = int(cascade_k)
        owns_scaler = scaler is None
        self.scaler = scaler if scaler is not None else FeatureScaler()
        self.chained = bool(chained)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Propagate the registry only into components this detector
        # constructed: overwriting a caller-owned extractor/scaler would
        # silently cross-contaminate detectors that share one.
        if telemetry is not None:
            if owns_extractor:
                self.extractor.telemetry = telemetry
            if owns_scaler:
                self.scaler.telemetry = telemetry
        self.arena = arena
        # Same ownership discipline as telemetry: only an extractor this
        # detector constructed gets the arena (an arena has exactly one
        # owner — docs/MEMORY.md).  The image-pyramid strategy keeps
        # multiple extracted grids live at once, so arena-backed
        # extraction (which reuses one set of slabs per extract call) is
        # restricted to the feature strategy; scoring slabs are safe in
        # both because each scale's scores are consumed before the next
        # classify call reuses them.
        if (arena is not None and owns_extractor
                and self.strategy is PyramidStrategy.FEATURE):
            self.extractor.arena = arena

    def _build_pyramid(self, image: np.ndarray, timings: StageTimings):
        if self.strategy is PyramidStrategy.IMAGE:
            start = time.perf_counter()
            with self.telemetry.span("detect.extract"):
                pyramid = ImagePyramid.build(image, self.scales, self.extractor)
            elapsed = time.perf_counter() - start
            # For the image strategy, extraction and pyramid building are
            # one fused pass; attribute it all to extraction, which is
            # where the paper says the cost lives.
            timings.extraction += elapsed
            return pyramid
        start = time.perf_counter()
        with self.telemetry.span("detect.extract"):
            base = self.extractor.extract(image)
        timings.extraction += time.perf_counter() - start
        start = time.perf_counter()
        with self.telemetry.span("detect.pyramid"):
            pyramid = FeaturePyramid.build(
                image, self.scales, self.extractor, self.scaler, base=base,
                chained=self.chained,
            )
        timings.pyramid += time.perf_counter() - start
        return pyramid

    def detect(self, image: np.ndarray) -> DetectionResult:
        """Detect pedestrians in ``image`` at all configured scales."""
        tm = self.telemetry
        with tm.span("detect.frame"):
            timings = StageTimings()
            pyramid = self._build_pyramid(image, timings)

            detections = []
            n_windows = 0
            start = time.perf_counter()
            for grid in pyramid:
                with tm.span("detect.classify"):
                    scores = classify_grid(
                        grid, self.model, stride=self.stride,
                        scorer=self.scorer, threshold=self.threshold,
                        cascade_k=self.cascade_k, telemetry=tm,
                        span=f"detect.scale[{grid.scale:.2f}].partial_matmul",
                        agg_span=(f"detect.scale[{grid.scale:.2f}]"
                                  f".cascade_aggregate"),
                        arena=self.arena,
                    )
                    boxes = anchors_to_boxes(
                        scores, grid, self.threshold, stride=self.stride
                    )
                n_windows += scores.size
                detections.extend(boxes)
                if tm.enabled:
                    # Full literal names at each record site so the
                    # telemetry-names lint rule can resolve them against
                    # the registry.
                    s = grid.scale
                    tm.inc(f"detect.scale[{s:.2f}].windows_scanned",
                           scores.size)
                    tm.inc(f"detect.scale[{s:.2f}].windows_accepted",
                           len(boxes))
                    tm.inc(f"detect.scale[{s:.2f}].windows_rejected",
                           scores.size - len(boxes))
            timings.classification += time.perf_counter() - start

            start = time.perf_counter()
            with tm.span("detect.nms"):
                kept = non_maximum_suppression(
                    detections, iou_threshold=self.nms_iou
                )
            timings.nms += time.perf_counter() - start

            if tm.enabled:
                tm.inc("detect.frames")
                tm.inc("detect.windows_scanned", n_windows)
                tm.inc("detect.windows_accepted", len(detections))
                tm.inc("detect.windows_rejected", n_windows - len(detections))
                tm.inc("detect.nms_candidates", len(detections))
                tm.inc("detect.nms_kept", len(kept))

        return DetectionResult(
            detections=kept,
            timings=timings,
            n_windows_evaluated=n_windows,
            scales_used=pyramid.scales,
        )

    def detect_batch(
        self, frames: Sequence[np.ndarray]
    ) -> list[DetectionResult]:
        """Detect over a batch of frames, one result per frame, in order.

        Sequential reference implementation: frame ``i`` fails → the
        exception propagates and frames ``i+1..`` never run.  For
        parallel batch execution with per-frame fault reporting use
        :meth:`repro.core.MultiScalePedestrianDetector.detect_batch`.
        """
        return [self.detect(frame) for frame in frames]
