"""Non-maximum suppression over detection windows.

Multi-scale sliding-window detection fires clusters of overlapping
windows around each true pedestrian; greedy IoU-based NMS keeps the
highest-scoring window per cluster.
"""

from __future__ import annotations

from repro.detect.types import Detection
from repro.errors import ParameterError


def box_iou(a: Detection, b: Detection) -> float:
    """Intersection-over-union of two detection boxes in [0, 1]."""
    top = max(a.top, b.top)
    left = max(a.left, b.left)
    bottom = min(a.bottom, b.bottom)
    right = min(a.right, b.right)
    if bottom <= top or right <= left:
        return 0.0
    inter = (bottom - top) * (right - left)
    union = a.area + b.area - inter
    return inter / union


def non_maximum_suppression(
    detections: list[Detection],
    iou_threshold: float = 0.3,
    max_detections: int | None = None,
) -> list[Detection]:
    """Greedy NMS: keep the best-scoring box, drop overlapping rivals.

    Parameters
    ----------
    detections:
        Candidate windows (any order).
    iou_threshold:
        Boxes overlapping a kept box by more than this IoU are removed.
    max_detections:
        Optional cap on the number of boxes returned.

    Returns
    -------
    Kept detections, sorted by descending score.
    """
    if not 0.0 <= iou_threshold <= 1.0:
        raise ParameterError(
            f"iou_threshold must be in [0, 1], got {iou_threshold}"
        )
    if max_detections is not None and max_detections < 0:
        raise ParameterError(
            f"max_detections must be >= 0, got {max_detections}"
        )
    remaining = sorted(detections, key=lambda d: d.score, reverse=True)
    kept: list[Detection] = []
    while remaining:
        best = remaining.pop(0)
        kept.append(best)
        if max_detections is not None and len(kept) >= max_detections:
            break
        remaining = [
            d for d in remaining if box_iou(best, d) <= iou_threshold
        ]
    return kept
