"""Detection records and per-stage timing containers."""

from __future__ import annotations

import dataclasses

from repro.errors import ParameterError


@dataclasses.dataclass(frozen=True)
class Detection:
    """One detected pedestrian window in original-image coordinates.

    Attributes
    ----------
    top, left, height, width:
        Pixel bounding box of the detection window.
    score:
        SVM decision value ``w . x + b`` (higher = more confident).
    scale:
        Pyramid scale the window was found at (window covers
        ``scale * 64 x scale * 128`` original pixels).
    label:
        Object class; single-class detectors leave the default.
    """

    top: float
    left: float
    height: float
    width: float
    score: float
    scale: float
    label: str = "pedestrian"

    def __post_init__(self) -> None:
        if self.height <= 0 or self.width <= 0:
            raise ParameterError(
                f"detection box must have positive size, got "
                f"{self.height}x{self.width}"
            )
        if self.scale <= 0:
            raise ParameterError(f"scale must be positive, got {self.scale}")

    @property
    def bottom(self) -> float:
        return self.top + self.height

    @property
    def right(self) -> float:
        return self.left + self.width

    @property
    def area(self) -> float:
        return self.height * self.width


@dataclasses.dataclass
class StageTimings:
    """Wall-clock seconds spent in each detector stage.

    The paper's argument is exactly about this split: feature
    extraction (histogram generation) dominates, so moving pyramid
    construction into feature space amortizes the expensive stage over
    all scales.
    """

    extraction: float = 0.0
    pyramid: float = 0.0
    classification: float = 0.0
    nms: float = 0.0

    @property
    def total(self) -> float:
        return self.extraction + self.pyramid + self.classification + self.nms


@dataclasses.dataclass
class DetectionResult:
    """Detections plus diagnostics for one processed frame."""

    detections: list[Detection]
    timings: StageTimings
    n_windows_evaluated: int
    scales_used: list[float]
