"""The bounded-queue producer / worker / collector frame pipeline.

Turns single-frame :meth:`MultiScalePedestrianDetector.detect` calls
into a continuous, fault-tolerant stream consumer (the form the paper's
60 fps HDTV requirement actually takes — §5, and cf. the pipelined
stream architectures of Wasala & Kryjak and Campmany et al. in
PAPERS.md):

* a **producer** thread reads frames from a
  :class:`~repro.stream.sources.FrameSource` into a
  :class:`~repro.stream.queues.BoundedFrameQueue` under an explicit
  backpressure policy;
* **N worker** threads run the detector with per-frame fault isolation
  — a corrupt frame becomes a ``FrameResult(status=FAILED)`` record,
  never a dead stream;
* the **collector** (the caller's thread, inside :meth:`process`)
  re-orders results by frame index before emission, so downstream
  frame-order consumers (``das.tracking.IouTracker``) can read the
  stream directly, and trips a configurable consecutive-failure
  circuit breaker.

Threading notes.  Multi-worker mode clones the detector per worker
(sharing the read-only SVM model but nothing mutable); per-stage
``detect.*``/``hog.*`` telemetry therefore only accumulates in
single-worker mode, where the one detector instance is used as-is.
Stream-level telemetry (``stream.*`` counters, gauges and histograms)
is recorded only from the producer and collector threads, each writing
disjoint keys, so a plain :class:`~repro.telemetry.MetricsRegistry`
stays safe without locking the hot path.

Execution backends.  ``backend="thread"`` (default) runs the workers as
threads as described above.  ``backend="process"`` swaps the worker
threads for a warm :class:`~repro.parallel.ProcessWorkerPool`: a
dispatcher thread feeds frames into shared-memory ring slots, worker
*processes* detect, and a receiver thread converts their messages back
into results for the same collector — so ordering, DROPPED-gapless
emission, per-frame fault isolation and the circuit breaker are
backend-independent by construction.  The pool outlives individual
runs (worker warm start is paid once); call :meth:`close` — or use the
pipeline as a context manager — to shut it down and merge the workers'
telemetry snapshots into the parent registry.
"""

from __future__ import annotations

import dataclasses
import queue as _queue
import threading
import time
from collections.abc import Iterable, Iterator
from typing import Callable

from repro.errors import (
    CircuitBreakerOpen,
    ParallelError,
    ParameterError,
    StreamError,
)
from repro.stream.queues import BoundedFrameQueue, CLOSED
from repro.stream.sources import FrameSource
from repro.stream.types import (
    BackpressurePolicy,
    ExecutionBackend,
    FrameResult,
    FrameStatus,
    StreamReport,
    validate_backend,
)
from repro.telemetry import Histogram, MetricsRegistry, NULL_TELEMETRY

#: Seconds the collector waits on the result queue per poll; each
#: timeout re-checks liveness so a wedged worker cannot hang the stream.
_POLL_S = 0.05

#: Seconds to wait for threads on shutdown before giving up the join.
_JOIN_TIMEOUT_S = 5.0

#: Most frames the process-backend dispatcher coalesces into one
#: submit_batch (further capped by the ring's slot budget, workers+2).
_DISPATCH_BATCH_CAP = 4


@dataclasses.dataclass(frozen=True)
class StreamRun:
    """Everything :meth:`StreamPipeline.run` collected: results + report."""

    results: list[FrameResult]
    report: StreamReport


class StreamPipeline:
    """Stream frames from a source through a detector, in order.

    Parameters
    ----------
    detector:
        A :class:`~repro.core.MultiScalePedestrianDetector` (anything
        with ``detect(image) -> DetectionResult``).  With ``workers >
        1`` the pipeline builds one clone per worker from
        ``detector.model`` / ``detector.config``; pass
        ``detector_factory`` instead for detector types that cannot be
        cloned that way.
    workers:
        Detection threads.  NumPy releases the GIL inside the large
        dot-products that dominate ``detect``, so modest thread counts
        raise throughput without processes.
    queue_size:
        Capacity of the frame intake queue.
    policy:
        Backpressure discipline — see
        :class:`~repro.stream.types.BackpressurePolicy`.
    max_consecutive_failures:
        Circuit breaker: abort the stream with
        :class:`~repro.errors.CircuitBreakerOpen` once this many
        *consecutive* frames fail (in emission order; a dropped frame
        neither trips nor resets the streak).  ``None`` disables the
        breaker — isolated failures then never stop the stream.
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry` receiving
        ``stream.*`` counters/gauges/histograms (see docs/STREAMING.md).
        With the process backend it additionally receives the workers'
        merged per-stage telemetry (and ``parallel.*`` transport
        counters) when the pool is closed.
    detector_factory:
        Builds one detector per worker; overrides clone-from-``detector``.
        Thread backend only — a factory closure need not pickle.
    backend:
        ``"thread"`` (default) or ``"process"`` — see
        :class:`~repro.stream.types.ExecutionBackend` and
        docs/STREAMING.md for selection guidance.  The process backend
        requires ``detector.model`` / ``detector.config`` (they form
        the picklable :class:`~repro.parallel.DetectorSpec` hand-off).
    mp_start_method:
        Multiprocessing start method for the process backend; default
        per :func:`repro.parallel.default_start_method`.
    """

    def __init__(
        self,
        detector=None,
        *,
        workers: int = 1,
        queue_size: int = 8,
        policy: BackpressurePolicy | str = BackpressurePolicy.BLOCK,
        max_consecutive_failures: int | None = None,
        telemetry: MetricsRegistry | None = None,
        detector_factory: Callable[[], object] | None = None,
        backend: ExecutionBackend | str = ExecutionBackend.THREAD,
        mp_start_method: str | None = None,
    ) -> None:
        if detector is None and detector_factory is None:
            raise ParameterError("provide a detector or a detector_factory")
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if queue_size < 1:
            raise ParameterError(f"queue_size must be >= 1, got {queue_size}")
        if max_consecutive_failures is not None and max_consecutive_failures < 1:
            raise ParameterError(
                f"max_consecutive_failures must be >= 1 or None, got "
                f"{max_consecutive_failures}"
            )
        self.backend = validate_backend(backend)
        if (self.backend is ExecutionBackend.PROCESS
                and detector_factory is not None):
            raise ParameterError(
                "detector_factory is thread-backend only; the process "
                "backend rebuilds workers from detector.model/.config "
                "(a factory closure would have to pickle)"
            )
        self.detector = detector
        self.detector_factory = detector_factory
        self.workers = int(workers)
        self.queue_size = int(queue_size)
        self.policy = BackpressurePolicy(policy)
        self.max_consecutive_failures = max_consecutive_failures
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.mp_start_method = mp_start_method
        self._pool = None
        self._generation = 0
        self._backend_error: str | None = None
        self._reset_stats()

    # -- Worker detector construction ---------------------------------------

    def _worker_detectors(self) -> list:
        if self.detector_factory is not None:
            return [self.detector_factory() for _ in range(self.workers)]
        if self.workers == 1:
            return [self.detector]
        model = getattr(self.detector, "model", None)
        config = getattr(self.detector, "config", None)
        if model is None or config is None:
            raise ParameterError(
                "multi-worker streaming needs detector.model/.config to "
                "clone per-worker detectors; pass detector_factory instead"
            )
        # Clones share the read-only SVM weights but get their own
        # extractor/scaler state; per-stage telemetry is disabled on
        # clones because MetricsRegistry is not thread-safe.
        cfg = dataclasses.replace(config, telemetry=False)
        return [type(self.detector)(model, cfg) for _ in range(self.workers)]

    # -- Process-backend pool management ------------------------------------

    def _ensure_pool(self):
        """The warm worker pool, (re)built when absent or broken."""
        from repro.parallel import DetectorSpec, ProcessWorkerPool

        if self._pool is not None and not self._pool.healthy:
            self.close()
        if self._pool is None:
            spec = DetectorSpec.from_detector(self.detector)
            self._pool = ProcessWorkerPool(
                spec, self.workers, start_method=self.mp_start_method
            )
            if self.telemetry.enabled:
                self.telemetry.set_gauge("parallel.workers", self.workers)
        return self._pool

    def close(self) -> None:
        """Shut the process-backend pool down (no-op for threads).

        Collects every worker's final telemetry snapshot and merges it
        into this pipeline's registry
        (:meth:`~repro.telemetry.MetricsRegistry.absorb_snapshot`), so
        the parent profile includes the per-stage costs paid inside the
        worker processes.  Idempotent; the next process-backend run
        simply warm-starts a fresh pool.
        """
        if self._pool is None:
            return
        if self.telemetry.enabled:
            # Result-transport tallies live in the pool (it decodes the
            # lane); fold them into the registry before the pool dies so
            # profiles show which return path the results actually took.
            counts = self._pool.transport_counts()
            if counts["results_shm"]:
                self.telemetry.inc(
                    "parallel.results_shm", counts["results_shm"]
                )
            if counts["results_pickled"]:
                self.telemetry.inc(
                    "parallel.results_pickled", counts["results_pickled"]
                )
            if counts.get("batches"):
                self.telemetry.inc(
                    "parallel.batches", counts["batches"]
                )
        snapshots = self._pool.close()
        self._pool = None
        if self.telemetry.enabled and snapshots:
            for snapshot in snapshots:
                self.telemetry.absorb_snapshot(snapshot)
            self.telemetry.inc(
                "parallel.worker_snapshots_merged", len(snapshots)
            )

    def __enter__(self) -> "StreamPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- Statistics ---------------------------------------------------------

    def _reset_stats(self) -> None:
        self._frames_in = 0
        self._frames_ok = 0
        self._frames_failed = 0
        self._frames_dropped = 0
        self._latency = Histogram()
        self._depth = Histogram()
        self._busy_s = [0.0] * self.workers
        self._elapsed_s = 0.0

    def report(self) -> StreamReport:
        """Aggregate view of the most recent (or in-progress) run."""
        lat = self._latency.summary()
        depth = self._depth.summary()
        elapsed = self._elapsed_s
        emitted = self._frames_ok + self._frames_failed + self._frames_dropped
        return StreamReport(
            frames_in=self._frames_in,
            frames_ok=self._frames_ok,
            frames_failed=self._frames_failed,
            frames_dropped=self._frames_dropped,
            workers=self.workers,
            policy=self.policy.value,
            backend=self.backend.value,
            elapsed_s=elapsed,
            achieved_fps=emitted / elapsed if elapsed > 0 else 0.0,
            latency_p50_ms=lat.p50 * 1e3,
            latency_p95_ms=lat.p95 * 1e3,
            latency_max_ms=(lat.maximum if lat.count else 0.0) * 1e3,
            queue_depth_max=depth.maximum if depth.count else 0.0,
            queue_depth_mean=depth.mean,
            worker_utilization=(
                sum(self._busy_s) / (elapsed * self.workers)
                if elapsed > 0 else 0.0
            ),
        )

    # -- The pipeline -------------------------------------------------------

    def process(self, source: FrameSource) -> Iterator[FrameResult]:
        """Yield one :class:`FrameResult` per frame, in frame-index order.

        The generator owns the producer/worker threads: exhausting it
        (or closing it early with ``break``) always shuts the pipeline
        down and joins the threads.  Raises
        :class:`~repro.errors.CircuitBreakerOpen` after emitting the
        failure that tripped the breaker.
        """
        self._reset_stats()
        tm = self.telemetry
        in_q = BoundedFrameQueue(self.queue_size, self.policy)
        out_q: _queue.Queue = _queue.Queue()
        abort = threading.Event()
        producer_done = threading.Event()

        def produce() -> None:
            count = 0
            try:
                for image in source:
                    if abort.is_set():
                        break
                    count += 1
                    self._frames_in = count
                    if tm.enabled:
                        tm.inc("stream.frames_in")
                    try:
                        displaced = in_q.put(
                            (count - 1, image, time.perf_counter())
                        )
                    except StreamError:
                        break  # queue closed under us: consumer aborted
                    if displaced is not None:
                        d_index, _, d_t0 = displaced
                        out_q.put(
                            (d_t0, FrameResult(index=d_index,
                                               status=FrameStatus.DROPPED))
                        )
                    self._depth.observe(in_q.depth)
                    if tm.enabled:
                        tm.observe("stream.queue_depth", in_q.depth)
            finally:
                producer_done.set()
                in_q.close()

        def work(wid: int, det) -> None:
            while True:
                item = in_q.get()
                if item is CLOSED:
                    break
                index, image, t0 = item
                start = time.perf_counter()
                try:
                    res = det.detect(image)
                    fr = FrameResult(
                        index=index,
                        status=FrameStatus.OK,
                        detections=tuple(res.detections),
                        result=res,
                        worker=wid,
                    )
                except Exception as exc:  # per-frame fault isolation
                    fr = FrameResult(
                        index=index,
                        status=FrameStatus.FAILED,
                        error=f"{type(exc).__name__}: {exc}",
                        worker=wid,
                    )
                self._busy_s[wid] += time.perf_counter() - start
                out_q.put((t0, fr))

        # Process backend: a dispatcher thread moves frames from the
        # bounded intake queue into the pool's shared-memory ring and a
        # receiver thread converts worker messages back into results —
        # the collector below is backend-agnostic.
        self._backend_error = None
        self._generation += 1
        generation = self._generation
        dispatch_done = threading.Event()
        self._dispatched = 0

        # Opportunistic coalescing: each queue visit takes whatever
        # backlog is already there (up to the ring's slot budget) and
        # ships it as one submit_batch — one task message instead of
        # one per frame when the intake runs ahead of the workers, and
        # plain per-frame dispatch (batches of 1) when frames trickle.
        dispatch_batch = min(_DISPATCH_BATCH_CAP, self.workers + 2)

        def dispatch(pool) -> None:
            batch: list = []
            try:
                while True:
                    batch = in_q.get_many(dispatch_batch)
                    if not batch:
                        break
                    if len(batch) == 1:
                        index, image, t0 = batch[0]
                        transports = [
                            pool.submit(generation, index, image, t0)
                        ]
                    else:
                        transports = pool.submit_batch(
                            generation,
                            [(index, image, t0)
                             for index, image, t0 in batch],
                        )
                    self._dispatched += len(batch)
                    batch = []
                    if tm.enabled:
                        for transport in transports:
                            tm.inc("parallel.frames_shm"
                                   if transport == "shm"
                                   else "parallel.frames_pickled")
            except ParallelError as exc:
                self._backend_error = str(exc)
                pool.mark_broken()
                abort.set()
                # Account for every frame this abort throws away — the
                # batch whose dispatch failed (submit_batch is
                # all-or-nothing, so none of it reached a worker) plus
                # the drained backlog: each becomes a DROPPED record
                # for the collector, keeping frames_in == ok + failed +
                # dropped even on abort.
                undispatched = list(batch)
                undispatched.extend(in_q.close(drain=True))
                for d_index, _, d_t0 in undispatched:
                    out_q.put(
                        (d_t0, FrameResult(index=d_index,
                                           status=FrameStatus.DROPPED))
                    )
            finally:
                dispatch_done.set()

        def receive(pool) -> None:
            completed = 0
            while True:
                if dispatch_done.is_set() and completed >= self._dispatched:
                    break
                message = pool.next_message(timeout=_POLL_S)
                if message is None:
                    if not pool.healthy:
                        self._backend_error = (
                            self._backend_error
                            or "worker pool lost its processes"
                        )
                        break
                    continue
                kind = message[0]
                if kind == "dead":
                    self._backend_error = f"worker failed to start: " \
                                          f"{message[2]}"
                    break
                if kind != "result":
                    continue  # snapshot flushes belong to close()
                _, gen, index, status, result, error, wid, busy_s, t0 = \
                    message
                if gen != generation:
                    continue  # stale result from an aborted earlier run
                completed += 1
                self._busy_s[wid] += busy_s
                if status == "ok":
                    fr = FrameResult(
                        index=index,
                        status=FrameStatus.OK,
                        detections=tuple(result.detections),
                        result=result,
                        worker=wid,
                    )
                else:
                    fr = FrameResult(
                        index=index,
                        status=FrameStatus.FAILED,
                        error=error,
                        worker=wid,
                    )
                out_q.put((t0, fr))

        threads = [threading.Thread(target=produce, name="stream-producer",
                                    daemon=True)]
        if self.backend is ExecutionBackend.PROCESS:
            # Build (or reuse) the pool before starting any thread of
            # our own: with the fork start method, forking from a
            # single-threaded parent is the safe order.
            pool = self._ensure_pool()
            threads.append(
                threading.Thread(target=dispatch, args=(pool,),
                                 name="stream-dispatch", daemon=True)
            )
            threads.append(
                threading.Thread(target=receive, args=(pool,),
                                 name="stream-receive", daemon=True)
            )
        else:
            for wid, det in enumerate(self._worker_detectors()):
                threads.append(
                    threading.Thread(target=work, args=(wid, det),
                                     name=f"stream-worker-{wid}",
                                     daemon=True)
                )

        start_time = time.perf_counter()
        pending: dict[int, tuple[float, FrameResult]] = {}
        received = 0
        emit_next = 0
        streak = 0
        try:
            for t in threads:
                t.start()
            while True:
                if (producer_done.is_set() and received == self._frames_in
                        and not pending):
                    break
                try:
                    t0, fr = out_q.get(timeout=_POLL_S)
                except _queue.Empty:
                    if (producer_done.is_set() and out_q.empty()
                            and not any(t.is_alive() for t in threads[1:])):
                        if received == self._frames_in and not pending:
                            break
                        detail = (
                            f"; backend error: {self._backend_error}"
                            if self._backend_error else ""
                        )
                        raise StreamError(
                            f"stream stalled: {received} of "
                            f"{self._frames_in} results arrived and all "
                            f"workers exited{detail}"
                        )
                    continue
                received += 1
                pending[fr.index] = (t0, fr)
                while emit_next in pending:
                    t0, fr = pending.pop(emit_next)
                    emit_next += 1
                    if fr.status is not FrameStatus.DROPPED:
                        fr = dataclasses.replace(
                            fr, latency_s=time.perf_counter() - t0
                        )
                        self._latency.observe(fr.latency_s)
                    if fr.status is FrameStatus.OK:
                        self._frames_ok += 1
                        streak = 0
                    elif fr.status is FrameStatus.FAILED:
                        self._frames_failed += 1
                        streak += 1
                    else:
                        self._frames_dropped += 1
                    if tm.enabled:
                        tm.inc(f"stream.frames_{fr.status.value}")
                        if fr.status is not FrameStatus.DROPPED:
                            tm.observe("stream.latency_ms",
                                       fr.latency_s * 1e3)
                    yield fr
                    if (self.max_consecutive_failures is not None
                            and streak >= self.max_consecutive_failures):
                        raise CircuitBreakerOpen(
                            f"{streak} consecutive frames failed "
                            f"(limit {self.max_consecutive_failures}); "
                            f"last error: {fr.error}"
                        )
        finally:
            abort.set()
            # An early exit (circuit breaker, caller break) leaves a
            # backlog; the generator is past yielding, so the discarded
            # frames are counted straight into the dropped tally rather
            # than vanishing from the report's reconciliation.
            discarded = in_q.close(drain=True)
            if discarded:
                self._frames_dropped += len(discarded)
                if tm.enabled:
                    tm.inc(
                        f"stream.frames_{FrameStatus.DROPPED.value}",
                        len(discarded),
                    )
            for t in threads:
                t.join(timeout=_JOIN_TIMEOUT_S)
            self._elapsed_s = time.perf_counter() - start_time
            self._finalize_telemetry(in_q)

    def _finalize_telemetry(self, in_q: BoundedFrameQueue) -> None:
        tm = self.telemetry
        if not tm.enabled:
            return
        report = self.report()
        tm.set_gauge("stream.workers", self.workers)
        tm.set_gauge("stream.achieved_fps", report.achieved_fps)
        tm.set_gauge("stream.worker_utilization", report.worker_utilization)
        tm.set_gauge("stream.queue_depth_max", in_q.depth_peak)

    def run(
        self,
        source: FrameSource,
        *,
        on_result: Callable[[FrameResult], None] | None = None,
    ) -> StreamRun:
        """Drain ``source`` and return all results plus the final report.

        ``on_result`` is invoked per emitted frame (e.g. a tracker
        update) while keeping the convenience of one blocking call.
        """
        results: list[FrameResult] = []
        for fr in self.process(source):
            results.append(fr)
            if on_result is not None:
                on_result(fr)
        return StreamRun(results=results, report=self.report())


def track_stream(
    results: Iterable[FrameResult],
    tracker,
) -> list:
    """Feed an in-order result stream into a tracker; returns live tracks.

    Thin functional wrapper over
    :meth:`repro.das.IouTracker.consume` for pipeline-style call sites.
    """
    return tracker.consume(results)
