"""Streaming frame pipeline with per-frame fault isolation.

The paper's claim is sustained real-time throughput on a *video stream*
(60 fps HDTV, §5); this package is the component that turns the
single-frame detector into a continuous stream consumer:

:class:`StreamPipeline`
    Bounded-queue producer / worker / collector pipeline around
    :meth:`repro.core.MultiScalePedestrianDetector.detect` — N worker
    threads, explicit backpressure (block / drop-oldest / drop-newest),
    per-frame fault isolation with a consecutive-failure circuit
    breaker, and in-order emission so
    :class:`repro.das.IouTracker` can consume the stream directly.
:class:`SyntheticVideoSource` / :class:`ArraySource`
    Deterministic synthetic dash-cam footage (with NaN-frame fault
    injection) and an adapter for any iterable of frames.
:class:`BoundedFrameQueue`
    The policy-bearing hand-off queue, usable on its own.
:class:`ExecutionBackend`
    Worker execution strategy: in-process threads (default) or the
    shared-memory process pool of :mod:`repro.parallel`
    (``StreamPipeline(..., backend="process")``).

See docs/STREAMING.md for architecture, failure semantics and the
``stream.*`` telemetry keys, and ``repro-das stream`` for the CLI
front-end.
"""

from repro.stream.pipeline import StreamPipeline, StreamRun, track_stream
from repro.stream.queues import CLOSED, BoundedFrameQueue
from repro.stream.sources import ArraySource, FrameSource, SyntheticVideoSource
from repro.stream.types import (
    BACKENDS,
    BackpressurePolicy,
    ExecutionBackend,
    FrameResult,
    FrameStatus,
    StreamReport,
    validate_backend,
)

__all__ = [
    "BACKENDS",
    "BackpressurePolicy",
    "ExecutionBackend",
    "FrameResult",
    "FrameStatus",
    "StreamReport",
    "CLOSED",
    "BoundedFrameQueue",
    "ArraySource",
    "FrameSource",
    "SyntheticVideoSource",
    "StreamPipeline",
    "StreamRun",
    "track_stream",
    "validate_backend",
]
