"""Bounded hand-off queue with an explicit backpressure policy.

``queue.Queue`` only offers the blocking policy; a live detection
pipeline also needs the two lossy disciplines (drop-oldest keeps
latency bounded, drop-newest keeps queued work stable).  This
implementation makes the policy — and every frame it costs — explicit:
``put`` returns the displaced item so the producer can account for it
(the stream pipeline turns each one into a ``FrameResult(DROPPED)``
record instead of losing it silently).
"""

from __future__ import annotations

import collections
import threading

from repro.errors import ParameterError, StreamError
from repro.stream.types import BackpressurePolicy

#: Sentinel returned by :meth:`BoundedFrameQueue.get` once the queue is
#: closed and drained.  Consumers compare with ``is``.
CLOSED = object()


class BoundedFrameQueue:
    """Thread-safe bounded FIFO with block / drop-oldest / drop-newest.

    Parameters
    ----------
    maxsize:
        Capacity; ``put`` applies the policy once this many items are
        queued.
    policy:
        A :class:`~repro.stream.types.BackpressurePolicy` (or its string
        value).

    Closing (:meth:`close`) is how producers signal end-of-stream:
    subsequent ``put`` calls raise :class:`~repro.errors.StreamError`
    (and blocked producers wake up and raise), while consumers drain the
    remaining items and then receive :data:`CLOSED`.
    """

    def __init__(
        self,
        maxsize: int,
        policy: BackpressurePolicy | str = BackpressurePolicy.BLOCK,
    ) -> None:
        if maxsize < 1:
            raise ParameterError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.policy = BackpressurePolicy(policy)
        self._items: collections.deque = collections.deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._dropped = 0
        self._depth_peak = 0

    # -- Producer side ------------------------------------------------------

    def put(self, item):
        """Enqueue ``item``; returns the frame the policy displaced, if any.

        * ``BLOCK``: waits for space, returns ``None``.
        * ``DROP_OLDEST``: on a full queue, evicts and returns the
          oldest queued item.
        * ``DROP_NEWEST``: on a full queue, rejects and returns ``item``
          itself.

        Raises :class:`~repro.errors.StreamError` if the queue is (or
        becomes, while blocked) closed.
        """
        with self._not_full:
            if self.policy is BackpressurePolicy.BLOCK:
                while not self._closed and len(self._items) >= self.maxsize:
                    self._not_full.wait()
            if self._closed:
                raise StreamError("put() on a closed frame queue")
            displaced = None
            if len(self._items) >= self.maxsize:
                self._dropped += 1
                if self.policy is BackpressurePolicy.DROP_NEWEST:
                    return item
                displaced = self._items.popleft()
            self._items.append(item)
            if len(self._items) > self._depth_peak:
                self._depth_peak = len(self._items)
            self._not_empty.notify()
            return displaced

    def close(self, drain: bool = False) -> list:
        """No more puts; wake everyone.  ``drain=True`` discards backlog.

        Returns the discarded items (empty unless ``drain=True`` found
        a backlog) and counts them in :attr:`dropped`, so a closing
        producer can account for every frame it threw away — the same
        no-silent-loss contract ``put`` keeps by returning displaced
        items.
        """
        with self._lock:
            self._closed = True
            discarded: list = []
            if drain:
                discarded = list(self._items)
                self._items.clear()
                self._dropped += len(discarded)
            self._not_empty.notify_all()
            self._not_full.notify_all()
            return discarded

    # -- Consumer side ------------------------------------------------------

    def get(self):
        """Dequeue the next item; :data:`CLOSED` once closed and empty."""
        with self._not_empty:
            while not self._items and not self._closed:
                self._not_empty.wait()
            if self._items:
                item = self._items.popleft()
                self._not_full.notify()
                return item
            return CLOSED

    def get_many(self, max_items: int) -> list:
        """Dequeue up to ``max_items`` items in one lock acquisition.

        Blocks for the *first* item like :meth:`get`, then takes
        whatever else is already queued (never waiting for more) — the
        opportunistic coalescing a batching dispatcher wants: full
        batches under load, no added latency when frames trickle.
        Returns an empty list once the queue is closed and drained.
        """
        if max_items < 1:
            raise ParameterError(
                f"max_items must be >= 1, got {max_items}"
            )
        with self._not_empty:
            while not self._items and not self._closed:
                self._not_empty.wait()
            taken: list = []
            while self._items and len(taken) < max_items:
                taken.append(self._items.popleft())
            if taken:
                self._not_full.notify_all()
            return taken

    # -- Introspection ------------------------------------------------------

    @property
    def depth(self) -> int:
        """Items currently queued."""
        with self._lock:
            return len(self._items)

    @property
    def depth_peak(self) -> int:
        """Highest occupancy observed since construction."""
        with self._lock:
            return self._depth_peak

    @property
    def dropped(self) -> int:
        """Frames displaced by a lossy policy since construction."""
        with self._lock:
            return self._dropped

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
