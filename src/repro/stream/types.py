"""Record types shared across the streaming pipeline.

The stream layer communicates exclusively through immutable records:
every frame that enters the pipeline produces exactly one
:class:`FrameResult` (detections, an isolated failure, or a
backpressure drop), and a finished run distills into one
:class:`StreamReport`.  Keeping these as plain frozen dataclasses means
the worker threads never share mutable state with the consumer.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.detect.types import Detection, DetectionResult
from repro.errors import ParameterError
from repro.validation import validate_choice


class BackpressurePolicy(enum.Enum):
    """What a bounded frame queue does when a producer outruns the workers.

    ``BLOCK``
        The producer waits for a free slot — no frame is ever lost, but
        a slow detector stalls capture (lab / offline semantics).
    ``DROP_OLDEST``
        The oldest *queued* frame is evicted to admit the new one — the
        live-video semantics: stale frames are worthless to a DAS, so
        latency is bounded at the cost of completeness.
    ``DROP_NEWEST``
        The incoming frame is discarded and the queue left untouched —
        cheapest under burst load; already-queued frames keep their
        place.
    """

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    DROP_NEWEST = "drop-newest"


class ExecutionBackend(enum.Enum):
    """Where the pipeline runs its detection workers.

    ``THREAD``
        Worker threads in-process.  NumPy releases the GIL inside the
        classifier's dot products, so threads scale while that work
        dominates; zero hand-off cost, shared read-only model.
    ``PROCESS``
        A warm :class:`~repro.parallel.ProcessWorkerPool`: one detector
        per worker process, frames moved over shared-memory ring slots.
        Sidesteps the GIL entirely — the win when Python-level work
        (window bookkeeping, NMS, small-frame extraction) bounds the
        thread backend.  See docs/STREAMING.md for selection guidance.
    """

    THREAD = "thread"
    PROCESS = "process"


#: Accepted backend strings, in declaration order (CLI ``choices`` and
#: error messages both derive from this).
BACKENDS = tuple(backend.value for backend in ExecutionBackend)


def validate_backend(
    backend: "ExecutionBackend | str",
) -> ExecutionBackend:
    """Coerce a backend name to :class:`ExecutionBackend`, else raise.

    The single gatekeeper for backend strings — the pipeline and the
    CLI both route through here, so accepted values and the
    :class:`~repro.errors.ParameterError` message cannot drift.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    validate_choice(backend, BACKENDS, "backend")
    return ExecutionBackend(backend)


class FrameStatus(enum.Enum):
    """Terminal state of one frame's trip through the pipeline."""

    OK = "ok"
    FAILED = "failed"
    DROPPED = "dropped"


@dataclasses.dataclass(frozen=True)
class FrameResult:
    """Outcome of one frame, emitted in frame-index order.

    Attributes
    ----------
    index:
        Zero-based position of the frame in the source stream.
    status:
        ``OK`` (detections valid), ``FAILED`` (the detector raised; the
        error is captured, the stream continued) or ``DROPPED`` (the
        backpressure policy discarded the frame before detection).
    detections:
        Detections for ``OK`` frames; empty otherwise.
    result:
        The full :class:`~repro.detect.types.DetectionResult` for ``OK``
        frames (timings, window counts); ``None`` otherwise.
    error:
        ``"ExceptionType: message"`` for ``FAILED`` frames.
    latency_s:
        End-to-end seconds from frame capture (read from the source) to
        in-order emission; 0.0 for dropped frames.
    worker:
        Index of the worker that processed the frame (``None`` for
        dropped frames, which never reach a worker).
    """

    index: int
    status: FrameStatus
    detections: tuple[Detection, ...] = ()
    result: DetectionResult | None = None
    error: str | None = None
    latency_s: float = 0.0
    worker: int | None = None

    @property
    def ok(self) -> bool:
        return self.status is FrameStatus.OK

    def to_dict(self) -> dict:
        """Compact JSON-ready view (detections summarized to a count)."""
        return {
            "index": self.index,
            "status": self.status.value,
            "n_detections": len(self.detections),
            "error": self.error,
            "latency_ms": self.latency_s * 1e3,
            "worker": self.worker,
        }


@dataclasses.dataclass(frozen=True)
class StreamReport:
    """Aggregate statistics of one completed (or aborted) stream run.

    ``frames_in == frames_ok + frames_failed + frames_dropped`` for a
    run that drained completely; an aborted run (circuit breaker,
    consumer walked away) may leave frames unaccounted.
    """

    frames_in: int
    frames_ok: int
    frames_failed: int
    frames_dropped: int
    workers: int
    policy: str
    elapsed_s: float
    achieved_fps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_max_ms: float
    queue_depth_max: float
    queue_depth_mean: float
    worker_utilization: float
    backend: str = ExecutionBackend.THREAD.value

    def __post_init__(self) -> None:
        for name in ("frames_in", "frames_ok", "frames_failed",
                     "frames_dropped"):
            if getattr(self, name) < 0:
                raise ParameterError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )

    @property
    def frames_out(self) -> int:
        """Results emitted (every status counts as an emission)."""
        return self.frames_ok + self.frames_failed + self.frames_dropped

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)
