"""Frame sources: what the streaming pipeline consumes.

A frame source is anything iterable over 2-D grayscale arrays — the
:class:`FrameSource` protocol deliberately matches plain iterables so a
list of frames, a generator reading a camera, or the deterministic
:class:`SyntheticVideoSource` all plug in unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Protocol, runtime_checkable

import numpy as np

from repro.dataset.synthetic import SyntheticPedestrianDataset
from repro.errors import ParameterError


@runtime_checkable
class FrameSource(Protocol):
    """Anything that yields frames (2-D ``np.ndarray``) when iterated."""

    def __iter__(self) -> Iterator[np.ndarray]: ...


class ArraySource:
    """Adapt an in-memory sequence (or any iterable) of frames.

    A list/tuple source is re-iterable (each ``__iter__`` restarts); a
    one-shot iterator is passed through and can be consumed once, like
    a real capture device.
    """

    def __init__(self, frames: Iterable[np.ndarray]) -> None:
        self._frames = frames

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._frames)


class SyntheticVideoSource:
    """Deterministic synthetic dash-cam footage with fault injection.

    Frames are street scenes from
    :class:`~repro.dataset.synthetic.SyntheticPedestrianDataset`; the
    same ``(seed, n_frames)`` always reproduces the same video.

    Parameters
    ----------
    n_frames:
        Length of the stream.
    height, width, n_pedestrians:
        Scene geometry (defaults match ``repro-das profile``).
    seed:
        Dataset master seed.
    scene_hold:
        Consecutive frames that share one scene (``scene_index = i //
        scene_hold``).  Values > 1 give a shot-by-shot "video" whose
        held frames produce stable boxes — enough frame-to-frame
        coherence for :class:`~repro.das.IouTracker` to confirm tracks.
    corrupt_frames:
        Frame indices replaced by an all-NaN frame.  NaN pixels fail
        image validation inside the detector, so these frames exercise
        the pipeline's per-frame fault isolation.
    """

    def __init__(
        self,
        n_frames: int,
        *,
        height: int = 240,
        width: int = 320,
        n_pedestrians: int = 2,
        seed: int = 0,
        scene_hold: int = 1,
        corrupt_frames: Iterable[int] = (),
    ) -> None:
        if n_frames < 1:
            raise ParameterError(f"n_frames must be >= 1, got {n_frames}")
        if scene_hold < 1:
            raise ParameterError(f"scene_hold must be >= 1, got {scene_hold}")
        self.n_frames = int(n_frames)
        self.height = int(height)
        self.width = int(width)
        self.n_pedestrians = int(n_pedestrians)
        self.seed = int(seed)
        self.scene_hold = int(scene_hold)
        self.corrupt_frames = frozenset(int(i) for i in corrupt_frames)
        for i in self.corrupt_frames:
            if not 0 <= i < self.n_frames:
                raise ParameterError(
                    f"corrupt frame index {i} outside [0, {self.n_frames})"
                )

    def __len__(self) -> int:
        return self.n_frames

    def __iter__(self) -> Iterator[np.ndarray]:
        dataset = SyntheticPedestrianDataset(seed=self.seed)
        # Scenes are regenerated per held shot, not cached per frame:
        # a video source must stream at O(1) memory.
        scene_image = None
        scene_of = -1
        for i in range(self.n_frames):
            if i in self.corrupt_frames:
                yield np.full((self.height, self.width), np.nan)
                continue
            shot = i // self.scene_hold
            if shot != scene_of:
                scene_image = dataset.make_scene(
                    height=self.height,
                    width=self.width,
                    n_pedestrians=self.n_pedestrians,
                    scene_index=shot,
                ).image
                scene_of = shot
            yield scene_image
