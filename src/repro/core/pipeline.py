"""The user-facing multi-scale pedestrian detector."""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import DetectorConfig
from repro.dataset.synthetic import SyntheticPedestrianDataset
from repro.dataset.windows import WindowSet
from repro.detect.detector import PyramidStrategy, SlidingWindowDetector
from repro.detect.types import DetectionResult
from repro.errors import ParameterError, TrainingError
from repro.hardware.accelerator import (
    AcceleratorConfig,
    PedestrianDetectorAccelerator,
)
from repro.hog.extractor import HogExtractor
from repro.hog.scaling import FeatureScaler
from repro.svm.model import LinearSvmModel
from repro.svm.trainer import train_linear_svm
from repro.telemetry import MetricsRegistry, TelemetrySnapshot

if TYPE_CHECKING:
    from repro.arena import BufferArena
    from repro.stream import ExecutionBackend


class MultiScalePedestrianDetector:
    """Train-once, detect-anywhere HOG+SVM pedestrian detector.

    Wraps the paper's full pipeline: HOG extraction, linear SVM
    classification, and multi-scale detection via the HOG feature
    pyramid (Section 4) or the conventional image pyramid.

    Construct with a trained model, or use :meth:`train` /
    :meth:`train_default`.
    """

    def __init__(
        self,
        model: LinearSvmModel,
        config: DetectorConfig | None = None,
        *,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        """``telemetry`` supplies an existing registry to record into
        (requires ``config.telemetry=True``); :meth:`train` uses it so
        training-time extraction and inference share one profile.  Left
        ``None``, a fresh registry is created when the config asks for
        telemetry."""
        self.config = config if config is not None else DetectorConfig()
        # Validate the scale ladder up front: a config object that
        # skipped DetectorConfig.__post_init__ (subclass, replace-style
        # construction) would otherwise only fail frames-deep inside
        # pyramid construction.
        if not self.config.scales:
            raise ParameterError("config.scales must be non-empty")
        if any(s <= 0 for s in self.config.scales):
            raise ParameterError(
                f"config.scales must be strictly positive, got "
                f"{self.config.scales}"
            )
        if telemetry is not None and not self.config.telemetry:
            raise ParameterError(
                "a telemetry registry was supplied but config.telemetry is "
                "False; enable DetectorConfig(telemetry=True)"
            )
        self.telemetry: MetricsRegistry | None = (
            telemetry if telemetry is not None
            else MetricsRegistry() if self.config.telemetry
            else None
        )
        self.extractor = HogExtractor(self.config.hog, telemetry=self.telemetry)
        if model.n_features != self.config.hog.descriptor_length:
            raise ParameterError(
                f"model dimensionality {model.n_features} does not match the "
                f"HOG descriptor length {self.config.hog.descriptor_length}"
            )
        self.model = model
        self.scaler = FeatureScaler(
            mode=self.config.scaling_mode,
            renormalize=self.config.renormalize_scaled,
            telemetry=self.telemetry,
        )
        # One arena per detector instance — the single-owner contract of
        # docs/MEMORY.md.  This detector owns its extractor, so (under
        # the feature strategy, which extracts exactly once per frame)
        # the extractor borrows the same arena for the HOG stage
        # buffers; the sliding-window detector would not propagate it
        # into a caller-supplied extractor itself.
        self.arena: BufferArena | None = None
        if self.config.arena:
            from repro.arena import BufferArena

            self.arena = BufferArena(telemetry=self.telemetry)
            if self.config.strategy == "feature":
                self.extractor.arena = self.arena
        self._detector = SlidingWindowDetector(
            model,
            self.extractor,
            strategy=PyramidStrategy(self.config.strategy),
            scales=self.config.scales,
            threshold=self.config.threshold,
            stride=self.config.stride,
            nms_iou=self.config.nms_iou,
            scorer=self.config.scorer,
            cascade_k=self.config.cascade_k,
            scaler=self.scaler,
            chained=self.config.chained_pyramid,
            telemetry=self.telemetry,
            arena=self.arena,
        )

    # -- Training -----------------------------------------------------------

    @classmethod
    def train(
        cls,
        windows: WindowSet,
        config: DetectorConfig | None = None,
    ) -> "MultiScalePedestrianDetector":
        """Train from a labeled window set (positives + negatives)."""
        cfg = config if config is not None else DetectorConfig()
        if windows.n_positive == 0 or windows.n_negative == 0:
            raise TrainingError(
                f"training needs both classes, got {windows.n_positive} "
                f"positive / {windows.n_negative} negative windows"
            )
        # The training-time extractor records into the same registry the
        # detector will use, so DetectorConfig(telemetry=True) profiles
        # include training-time extraction rather than silently
        # excluding it.
        registry = MetricsRegistry() if cfg.telemetry else None
        extractor = HogExtractor(cfg.hog, telemetry=registry)
        descriptors = np.stack(
            [extractor.extract_window(img) for img in windows.images]
        )
        model = train_linear_svm(descriptors, windows.labels, cfg.train)
        return cls(model, cfg, telemetry=registry)

    @classmethod
    def train_default(
        cls,
        dataset: SyntheticPedestrianDataset | None = None,
        seed: int = 0,
        config: DetectorConfig | None = None,
    ) -> "MultiScalePedestrianDetector":
        """Train on a dataset's training split (generated if omitted)."""
        if dataset is None:
            dataset = SyntheticPedestrianDataset(seed=seed)
        return cls.train(dataset.train_windows(), config)

    # -- Inference ----------------------------------------------------------

    def detect(self, image: np.ndarray) -> DetectionResult:
        """Detect pedestrians in a full frame at all configured scales."""
        return self._detector.detect(image)

    def detect_batch(
        self,
        frames: Sequence[np.ndarray],
        *,
        workers: int = 1,
        backend: str | ExecutionBackend = "thread",
        mp_start_method: str | None = None,
    ) -> list[DetectionResult]:
        """Detect over a batch of frames, one result per frame, in order.

        ``workers`` / ``backend`` select the execution strategy: worker
        threads in-process (``"thread"``, the default) or the warm
        shared-memory process pool of :mod:`repro.parallel`
        (``"process"``) — see docs/STREAMING.md for when each wins.
        Built on :class:`~repro.stream.StreamPipeline` with the
        ``block`` backpressure policy, so no frame is ever dropped.

        Unlike streaming, a batch has all-or-nothing semantics: if any
        frame fails, a :class:`~repro.errors.StreamError` is raised
        naming every failed frame index and its captured error.  With
        ``config.telemetry=True`` and the process backend, worker-side
        telemetry is merged into :attr:`telemetry` before returning.
        """
        from repro.errors import StreamError
        from repro.stream import ArraySource, StreamPipeline

        frames = list(frames)
        if not frames:
            return []
        pipeline = StreamPipeline(
            self,
            workers=workers,
            policy="block",
            backend=backend,
            mp_start_method=mp_start_method,
            telemetry=self.telemetry,
        )
        try:
            results = list(pipeline.process(ArraySource(frames)))
        finally:
            # Closing stops the warm pool and, for the process backend,
            # absorbs worker telemetry snapshots into self.telemetry.
            pipeline.close()
        failures = [fr for fr in results if not fr.ok]
        if failures:
            detail = "; ".join(
                f"frame {fr.index}: {fr.error or fr.status.value}"
                for fr in failures
            )
            raise StreamError(
                f"detect_batch: {len(failures)}/{len(frames)} frames "
                f"failed ({detail})"
            )
        if len(results) != len(frames):
            raise StreamError(
                f"detect_batch: run aborted after {len(results)}/"
                f"{len(frames)} frames"
            )
        return [fr.result for fr in results]

    def score_window(self, window_image: np.ndarray) -> float:
        """SVM decision value for a single window-sized image."""
        descriptor = self.extractor.extract_window(window_image)
        return float(self.model.decision_function(descriptor)[0])

    def classify_window(self, window_image: np.ndarray) -> bool:
        """True if the window is classified as containing a pedestrian."""
        return self.score_window(window_image) > self.config.threshold

    # -- Telemetry ----------------------------------------------------------

    def snapshot(self) -> TelemetrySnapshot:
        """Per-stage telemetry accumulated so far (see docs/TELEMETRY.md).

        Requires ``DetectorConfig(telemetry=True)``; raises
        :class:`~repro.errors.ParameterError` otherwise so callers
        notice a silently-empty profile.
        """
        if self.telemetry is None:
            raise ParameterError(
                "telemetry is disabled; construct with "
                "DetectorConfig(telemetry=True)"
            )
        return self.telemetry.snapshot()

    # -- Interop ------------------------------------------------------------

    def to_accelerator(
        self, accel_config: AcceleratorConfig | None = None
    ) -> PedestrianDetectorAccelerator:
        """Commit the trained model to the hardware accelerator model."""
        if accel_config is None:
            accel_config = AcceleratorConfig(scales=tuple(self.config.scales))
        return PedestrianDetectorAccelerator(
            self.model,
            params=self.config.hog,
            config=accel_config,
            telemetry=self.telemetry,
        )

    def save_model(self, path: str | Path) -> None:
        """Persist the trained SVM to a ``.npz`` file."""
        self.model.save(path)

    @classmethod
    def load_model(
        cls, path: str | Path, config: DetectorConfig | None = None
    ) -> "MultiScalePedestrianDetector":
        """Rebuild a detector from a model saved with :meth:`save_model`."""
        return cls(LinearSvmModel.load(path), config)
