"""Hard-negative mining (bootstrapping) — the INRIA training protocol.

Dalal & Triggs [3] train in two passes: fit an initial model on random
negatives, scan person-free images exhaustively, collect the false
positives ("hard negatives"), and retrain with them appended.  Every
serious HOG+SVM deployment — including models destined for the paper's
accelerator, whose training happens off-line — uses this loop; it is
what turns a window classifier into a usable full-frame detector.

:func:`mine_hard_negatives` runs the scan over negative scenes;
:func:`bootstrap_train` wraps the full iterate-until-quiet loop.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.dataset.windows import WindowSet
from repro.detect.sliding import classify_grid
from repro.errors import ParameterError, TrainingError
from repro.hog.extractor import HogExtractor
from repro.svm.model import LinearSvmModel
from repro.svm.trainer import TrainOptions, train_linear_svm


def mine_hard_negatives(
    model: LinearSvmModel,
    extractor: HogExtractor,
    negative_images: Sequence[np.ndarray],
    *,
    threshold: float = 0.0,
    max_per_image: int = 20,
) -> list[np.ndarray]:
    """Collect false-positive windows from person-free images.

    Every window of every image is scored; windows above ``threshold``
    are cropped and returned (highest-scoring first, at most
    ``max_per_image`` per image).
    """
    if max_per_image < 1:
        raise ParameterError(f"max_per_image must be >= 1, got {max_per_image}")
    params = extractor.params
    cell = params.cell_size
    wh, ww = params.window_height, params.window_width
    hard: list[np.ndarray] = []
    for image in negative_images:
        if image.shape[0] < wh or image.shape[1] < ww:
            continue
        grid = extractor.extract(image)
        scores = classify_grid(grid, model)
        if scores.size == 0:
            continue
        rows, cols = np.nonzero(scores > threshold)
        if rows.size == 0:
            continue
        order = np.argsort(-scores[rows, cols])[:max_per_image]
        for idx in order:
            top = rows[idx] * cell
            left = cols[idx] * cell
            hard.append(image[top : top + wh, left : left + ww].copy())
    return hard


@dataclasses.dataclass
class BootstrapResult:
    """Outcome of the bootstrapping loop."""

    model: LinearSvmModel
    rounds: int
    hard_negatives_added: list[int]

    @property
    def total_added(self) -> int:
        return sum(self.hard_negatives_added)


def bootstrap_train(
    train_windows: WindowSet,
    negative_images: Sequence[np.ndarray],
    extractor: HogExtractor | None = None,
    options: TrainOptions | None = None,
    *,
    max_rounds: int = 3,
    mining_threshold: float = 0.0,
    max_per_image: int = 20,
) -> BootstrapResult:
    """Train, mine, retrain — until quiet or ``max_rounds``.

    Parameters
    ----------
    train_windows:
        Initial labeled windows (positives + random negatives).
    negative_images:
        Person-free full images to scan for hard negatives (the INRIA
        protocol's negative set).
    max_rounds:
        Mining rounds; the loop also stops early when a scan finds no
        false positives.
    """
    if max_rounds < 1:
        raise ParameterError(f"max_rounds must be >= 1, got {max_rounds}")
    if train_windows.n_positive == 0 or train_windows.n_negative == 0:
        raise TrainingError("bootstrap needs both classes in the initial set")
    extractor = extractor if extractor is not None else HogExtractor()

    descriptors = [extractor.extract_window(w) for w in train_windows.images]
    labels = list(train_windows.labels)

    model = train_linear_svm(np.stack(descriptors), np.asarray(labels), options)
    added_per_round: list[int] = []
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        hard = mine_hard_negatives(
            model,
            extractor,
            negative_images,
            threshold=mining_threshold,
            max_per_image=max_per_image,
        )
        added_per_round.append(len(hard))
        if not hard:
            break
        descriptors.extend(extractor.extract_window(w) for w in hard)
        labels.extend([0] * len(hard))
        model = train_linear_svm(
            np.stack(descriptors), np.asarray(labels), options
        )
    return BootstrapResult(
        model=model, rounds=rounds, hard_negatives_added=added_per_round
    )
