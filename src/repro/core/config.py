"""Top-level detector configuration."""

from __future__ import annotations

import dataclasses

from repro.detect.scoring import DEFAULT_CASCADE_K, validate_scorer
from repro.errors import ParameterError
from repro.hog.parameters import HogParameters
from repro.svm.trainer import TrainOptions
from repro.validation import validate_choice


@dataclasses.dataclass(frozen=True)
class DetectorConfig:
    """Configuration of :class:`repro.core.MultiScalePedestrianDetector`.

    Attributes
    ----------
    hog:
        HOG window/descriptor parameters.
    train:
        SVM training options.
    scales:
        Pyramid scales for full-frame detection (paper hardware: two).
    strategy:
        ``"feature"`` (the paper's method) or ``"image"`` (conventional).
    scaling_mode:
        Surface for feature resampling, ``"blocks"`` or ``"cells"``
        (see :class:`repro.hog.scaling.FeatureScaler`).
    chained_pyramid:
        True (hardware-faithful, Figure 6) derives each feature-pyramid
        level from the previous one; False resamples every level from
        the base grid (less accumulated error on dense ladders).
    threshold:
        SVM decision threshold for detection.
    stride:
        Window stride in cells.
    nms_iou:
        Non-maximum suppression IoU threshold.
    scorer:
        Window-scoring strategy: ``"conv"`` (default, the partial-score
        convolution of :mod:`repro.detect.scoring` — one block-grid
        matmul per scale, no descriptor materialization),
        ``"conv-cascade"`` (the same partial scores with staged
        early-reject aggregation bounded by ``threshold``; identical
        detections) or ``"gemm"`` (the descriptor-matrix reference
        oracle).  Equivalent scores to float round-off; see
        docs/PERFORMANCE.md §2.
    cascade_k:
        ``conv-cascade`` only: block positions accumulated before the
        first rejection check
        (:data:`repro.detect.scoring.DEFAULT_CASCADE_K`).
    telemetry:
        Enable per-stage telemetry (:mod:`repro.telemetry`): the
        detector creates a :class:`~repro.telemetry.MetricsRegistry`,
        threads it through extractor / scaler / sliding-window stages,
        and exposes it as ``detector.telemetry``.  Off by default — the
        uninstrumented hot path then pays only a no-op guard.
    arena:
        Preallocate the hot path's scratch arrays in a per-detector
        :class:`~repro.arena.BufferArena` (docs/MEMORY.md): gradient /
        histogram / block buffers and the conv scorers' partial-score
        and score-grid slabs are allocated once at the stream's frame
        geometry and reused every frame — zero hot-path allocations
        after warmup, bitwise-identical detections.  On by default; the
        slabs cost roughly four frames' worth of float64 per detector.
    """

    hog: HogParameters = dataclasses.field(default_factory=HogParameters)
    train: TrainOptions = dataclasses.field(default_factory=TrainOptions)
    scales: tuple[float, ...] = (1.0, 1.2)
    strategy: str = "feature"
    scaling_mode: str = "blocks"
    renormalize_scaled: bool = True
    chained_pyramid: bool = True
    threshold: float = 0.0
    stride: int = 1
    nms_iou: float = 0.3
    scorer: str = "conv"
    cascade_k: int = DEFAULT_CASCADE_K
    telemetry: bool = False
    arena: bool = True

    def __post_init__(self) -> None:
        validate_choice(self.strategy, ("feature", "image"), "strategy")
        validate_choice(self.scaling_mode, ("blocks", "cells"),
                        "scaling_mode")
        if not self.scales:
            raise ParameterError("scales must be non-empty")
        if any(s <= 0 for s in self.scales):
            raise ParameterError(f"scales must be positive: {self.scales}")
        if self.stride < 1:
            raise ParameterError(f"stride must be >= 1, got {self.stride}")
        validate_scorer(self.scorer)
        if self.cascade_k < 1:
            raise ParameterError(
                f"cascade_k must be >= 1, got {self.cascade_k}"
            )
