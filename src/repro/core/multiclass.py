"""Multi-object detection over one shared feature extraction.

"Employing several instances of the SVM classifier could provide
real-time multiple object detection capability which is highly demanded
in applications such as driver assistance systems" (paper, Section 1).

:class:`MultiObjectDetector` realizes that sentence in software: all
object classes share the HOG extraction and the feature pyramid (one
N-HOGMem in hardware terms); each class brings only its own model
memory and window geometry — exactly the marginal cost of one more
classifier instance in Table 2.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Sequence

import numpy as np

from repro.detect.nms import non_maximum_suppression
from repro.detect.sliding import classify_grid_windows
from repro.detect.types import Detection, DetectionResult, StageTimings
from repro.errors import ParameterError
from repro.hog.extractor import HogExtractor, HogFeatureGrid
from repro.hog.parameters import HogParameters
from repro.hog.scaling import FeatureScaler
from repro.svm.model import LinearSvmModel


@dataclasses.dataclass(frozen=True)
class ObjectClass:
    """One object class: a name, a trained model and its window layout."""

    name: str
    model: LinearSvmModel
    hog: HogParameters
    scales: tuple[float, ...] = (1.0, 1.2)
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("class name must be non-empty")
        if self.model.n_features != self.hog.descriptor_length:
            raise ParameterError(
                f"class {self.name!r}: model has {self.model.n_features} "
                f"weights, layout needs {self.hog.descriptor_length}"
            )
        if not self.scales or any(s <= 0 for s in self.scales):
            raise ParameterError(
                f"class {self.name!r}: scales must be positive and non-empty"
            )


def _feature_compatible(a: HogParameters, b: HogParameters) -> bool:
    """True if two layouts can share one feature grid (same cells,
    bins, blocks and normalization — only the window may differ)."""
    return (
        a.cell_size == b.cell_size
        and a.block_size == b.block_size
        and a.block_stride == b.block_stride
        and a.n_bins == b.n_bins
        and a.signed_gradients == b.signed_gradients
        and a.normalization == b.normalization
        and a.gradient_filter == b.gradient_filter
        and a.gamma == b.gamma
        and a.spatial_interpolation == b.spatial_interpolation
    )


class MultiObjectDetector:
    """Detect several object classes from one HOG extraction.

    All classes must share the feature-level HOG configuration (cell
    size, bins, block layout, normalization); window geometry is free
    per class — the pedestrian's 64x128 portrait and the vehicle's
    128x64 landscape windows both slice the same block grid.
    """

    def __init__(
        self,
        classes: Sequence[ObjectClass],
        scaler: FeatureScaler | None = None,
        *,
        nms_iou: float = 0.3,
        chained: bool = True,
    ) -> None:
        """``chained=True`` derives each pyramid level from the previous
        one (the hardware's cascade, Figure 6); with a dense shared
        scale ladder the accumulated resampling error grows, and
        ``chained=False`` (every level from the base grid) trades a
        little extra compute for accuracy."""
        if not classes:
            raise ParameterError("at least one object class is required")
        names = [c.name for c in classes]
        if len(set(names)) != len(names):
            raise ParameterError(f"duplicate class names: {names}")
        base = classes[0].hog
        for cls in classes[1:]:
            if not _feature_compatible(base, cls.hog):
                raise ParameterError(
                    f"class {cls.name!r} cannot share the feature grid of "
                    f"{classes[0].name!r}: cell/block/bin configuration differs"
                )
        self.classes = list(classes)
        self.extractor = HogExtractor(base)
        self.scaler = scaler if scaler is not None else FeatureScaler()
        self.nms_iou = float(nms_iou)
        self.chained = bool(chained)

    def _pyramid_levels(
        self, base_grid: HogFeatureGrid
    ) -> dict[float, HogFeatureGrid]:
        """One feature-pyramid level per distinct scale, shared by all
        classes."""
        wanted = sorted({s for cls in self.classes for s in cls.scales})
        levels: dict[float, HogFeatureGrid] = {}
        prev = base_grid
        for scale in wanted:
            if scale == 1.0:
                levels[scale] = base_grid
            else:
                source = prev if self.chained else base_grid
                levels[scale] = self.scaler.scale_grid(
                    source, scale / source.scale
                )
            prev = levels[scale]
        return levels

    def detect(self, image: np.ndarray) -> DetectionResult:
        """Detect every configured class at every configured scale."""
        timings = StageTimings()
        start = time.perf_counter()
        base = self.extractor.extract(image)
        base.scale = 1.0
        timings.extraction = time.perf_counter() - start

        start = time.perf_counter()
        levels = self._pyramid_levels(base)
        timings.pyramid = time.perf_counter() - start

        cell = self.extractor.params.cell_size
        detections: list[Detection] = []
        n_windows = 0
        start = time.perf_counter()
        for cls in self.classes:
            bx, by = cls.hog.blocks_per_window
            for scale in cls.scales:
                grid = levels[scale]
                scores = classify_grid_windows(grid, cls.model, by, bx)
                if scores.size == 0:
                    continue
                n_windows += scores.size
                hit_rows, hit_cols = np.nonzero(scores > cls.threshold)
                for r, c in zip(hit_rows, hit_cols):
                    detections.append(
                        Detection(
                            top=r * cell * scale,
                            left=c * cell * scale,
                            height=cls.hog.window_height * scale,
                            width=cls.hog.window_width * scale,
                            score=float(scores[r, c]),
                            scale=scale,
                            label=cls.name,
                        )
                    )
        timings.classification = time.perf_counter() - start

        # NMS within each class; classes do not suppress each other.
        start = time.perf_counter()
        kept: list[Detection] = []
        for cls in self.classes:
            kept.extend(
                non_maximum_suppression(
                    [d for d in detections if d.label == cls.name],
                    iou_threshold=self.nms_iou,
                )
            )
        timings.nms = time.perf_counter() - start

        return DetectionResult(
            detections=sorted(kept, key=lambda d: d.score, reverse=True),
            timings=timings,
            n_windows_evaluated=n_windows,
            scales_used=sorted(levels),
        )
