"""Experiment drivers shared by the benchmarks and examples.

The paper's Section 4 verification (Figure 3) is one experiment run two
ways per scale:

* **conventional** — resize each up-sampled test window back to 64x128
  in the pixel domain, extract HOG, classify;
* **proposed** — extract HOG from the up-sampled window at full size,
  down-sample the *features* to the model's window geometry, classify.

:func:`run_scaling_experiment` executes both paths once and keeps the
raw SVM scores, from which Table 1 (accuracy / TP / TN per scale) and
Figure 4 (ROC curves with AUC and EER) both derive without recomputing
anything.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

import numpy as np

from repro.dataset.augment import TABLE1_SCALES, upsample_window_set
from repro.dataset.synthetic import SyntheticPedestrianDataset
from repro.dataset.windows import WindowSet
from repro.errors import ParameterError
from repro.eval.accuracy import AccuracyReport, evaluate_scores
from repro.eval.report import format_float, format_table
from repro.eval.roc import RocCurve, roc_curve
from repro.hog.extractor import HogExtractor
from repro.hog.parameters import HogParameters
from repro.hog.scaling import FeatureScaler
from repro.imgproc.resize import Interpolation, resize
from repro.svm.model import LinearSvmModel
from repro.svm.trainer import TrainOptions, train_linear_svm


def extract_descriptors(
    extractor: HogExtractor, images: Sequence[np.ndarray]
) -> np.ndarray:
    """Window descriptors for a list of window-sized images."""
    return np.stack([extractor.extract_window(img) for img in images])


def train_window_model(
    windows: WindowSet,
    hog_params: HogParameters | None = None,
    train_options: TrainOptions | None = None,
) -> tuple[LinearSvmModel, HogExtractor]:
    """Train the pedestrian SVM from a labeled window set."""
    extractor = HogExtractor(hog_params)
    descriptors = extract_descriptors(extractor, windows.images)
    model = train_linear_svm(descriptors, windows.labels, train_options)
    return model, extractor


@dataclasses.dataclass
class ScaleScores:
    """Raw decision values for one scale, both methods."""

    scale: float
    image_scores: np.ndarray
    feature_scores: np.ndarray
    labels: np.ndarray


@dataclasses.dataclass
class ScalingExperiment:
    """All raw outputs of the Figure 3 verification protocol."""

    model: LinearSvmModel
    extractor: HogExtractor
    baseline_scores: np.ndarray
    labels: np.ndarray
    per_scale: list[ScaleScores]

    # -- Table 1 -------------------------------------------------------------

    def baseline_report(self, threshold: float = 0.0) -> AccuracyReport:
        """Accuracy of the original (non-up-sampled) test split."""
        return evaluate_scores(self.baseline_scores, self.labels, threshold)

    def table1(self, threshold: float = 0.0) -> "Table1Result":
        """Derive the Table 1 rows from the stored raw scores."""
        rows = []
        for entry in self.per_scale:
            image = evaluate_scores(entry.image_scores, entry.labels, threshold)
            feature = evaluate_scores(
                entry.feature_scores, entry.labels, threshold
            )
            rows.append(
                Table1Row(scale=entry.scale, image=image, feature=feature)
            )
        return Table1Result(
            baseline=self.baseline_report(threshold),
            rows=rows,
            n_positive=int(self.labels.sum()),
            n_negative=int(self.labels.size - self.labels.sum()),
        )

    # -- Figure 4 -------------------------------------------------------------

    def roc_baseline(self) -> RocCurve:
        """ROC of the original-scale classifier (Figure 4's first curve)."""
        return roc_curve(self.baseline_scores, self.labels)

    def roc_at_scale(self, scale: float) -> tuple[RocCurve, RocCurve]:
        """(image-method, feature-method) ROC curves at ``scale``."""
        for entry in self.per_scale:
            if entry.scale == scale:
                return (
                    roc_curve(entry.image_scores, entry.labels),
                    roc_curve(entry.feature_scores, entry.labels),
                )
        raise ParameterError(
            f"scale {scale} was not part of this experiment "
            f"(have {[e.scale for e in self.per_scale]})"
        )


@dataclasses.dataclass(frozen=True)
class Table1Row:
    """One scale's comparison (both methods)."""

    scale: float
    image: AccuracyReport
    feature: AccuracyReport


@dataclasses.dataclass
class Table1Result:
    """The reproduction of the paper's Table 1."""

    baseline: AccuracyReport
    rows: list[Table1Row]
    n_positive: int
    n_negative: int

    def format(self) -> str:
        """Render in the layout of the paper's Table 1."""
        header = [
            "Scale",
            "Acc% (Image)",
            "Acc% (HOG)",
            "TP (Image)",
            "TP (HOG)",
            "TN (Image)",
            "TN (HOG)",
        ]
        body: list[list[object]] = [
            [
                "1.0",
                format_float(self.baseline.accuracy_percent, 2),
                "-",
                self.baseline.true_positives,
                "-",
                self.baseline.true_negatives,
                "-",
            ]
        ]
        for row in self.rows:
            body.append(
                [
                    f"{row.scale:.1f}",
                    format_float(row.image.accuracy_percent, 2),
                    format_float(row.feature.accuracy_percent, 2),
                    row.image.true_positives,
                    row.feature.true_positives,
                    row.image.true_negatives,
                    row.feature.true_negatives,
                ]
            )
        title = (
            f"Table 1 reproduction — {self.n_positive} positive / "
            f"{self.n_negative} negative test windows"
        )
        return format_table(header, body, title=title)


def run_scaling_experiment(
    dataset: SyntheticPedestrianDataset,
    scales: Sequence[float] = TABLE1_SCALES,
    scaler: FeatureScaler | None = None,
    train_options: TrainOptions | None = None,
    hog_params: HogParameters | None = None,
    upsample_method: Interpolation | str = Interpolation.BILINEAR,
) -> ScalingExperiment:
    """Run the full Figure 3 verification protocol.

    Trains on the dataset's training split, then for every scale
    evaluates the up-sampled test split through both detector
    configurations.
    """
    if not scales:
        raise ParameterError("scales must be non-empty")
    model, extractor = train_window_model(
        dataset.train_windows(), hog_params, train_options
    )
    if scaler is None:
        scaler = FeatureScaler()
    test = dataset.test_windows()
    params = extractor.params
    window_shape = (params.window_height, params.window_width)

    baseline = model.decision_function(
        extract_descriptors(extractor, test.images)
    )

    per_scale = []
    for scale in scales:
        if scale <= 1.0:
            raise ParameterError(
                f"the protocol up-samples; scales must exceed 1.0, got {scale}"
            )
        up = upsample_window_set(test, scale, method=upsample_method)
        image_desc = np.stack(
            [
                extractor.extract_window(
                    resize(img, window_shape, method=upsample_method)
                )
                for img in up.images
            ]
        )
        feature_desc = np.stack(
            [
                scaler.rescale_to_window(extractor.extract(img))
                for img in up.images
            ]
        )
        per_scale.append(
            ScaleScores(
                scale=float(scale),
                image_scores=model.decision_function(image_desc),
                feature_scores=model.decision_function(feature_desc),
                labels=up.labels,
            )
        )
    return ScalingExperiment(
        model=model,
        extractor=extractor,
        baseline_scores=baseline,
        labels=test.labels,
        per_scale=per_scale,
    )


def run_table1(
    dataset: SyntheticPedestrianDataset,
    scales: Sequence[float] = TABLE1_SCALES,
    **kwargs,
) -> Table1Result:
    """Reproduce Table 1 (accuracy / TP / TN per scale, both methods)."""
    return run_scaling_experiment(dataset, scales, **kwargs).table1()


@dataclasses.dataclass
class RocExperimentResult:
    """The reproduction of Figure 4: ROC curves with AUC / EER."""

    baseline: RocCurve
    image_curves: dict[float, RocCurve]
    feature_curves: dict[float, RocCurve]

    def format(self) -> str:
        """Render the AUC/EER summary as an aligned text table."""
        header = ["Curve", "AUC", "EER"]
        rows: list[list[object]] = [
            [
                "original scale",
                format_float(self.baseline.auc, 4),
                format_float(self.baseline.eer, 4),
            ]
        ]
        for scale in sorted(self.image_curves):
            rows.append(
                [
                    f"image scaling s={scale:.1f}",
                    format_float(self.image_curves[scale].auc, 4),
                    format_float(self.image_curves[scale].eer, 4),
                ]
            )
            rows.append(
                [
                    f"HOG scaling s={scale:.1f}",
                    format_float(self.feature_curves[scale].auc, 4),
                    format_float(self.feature_curves[scale].eer, 4),
                ]
            )
        return format_table(header, rows, title="Figure 4 reproduction — ROC")


def run_roc_experiment(
    dataset: SyntheticPedestrianDataset,
    scales: Sequence[float] = (1.1,),
    **kwargs,
) -> RocExperimentResult:
    """Reproduce Figure 4 (ROC at the original scale and at ``scales``)."""
    experiment = run_scaling_experiment(dataset, scales, **kwargs)
    image_curves = {}
    feature_curves = {}
    for scale in scales:
        image_curve, feature_curve = experiment.roc_at_scale(float(scale))
        image_curves[float(scale)] = image_curve
        feature_curves[float(scale)] = feature_curve
    return RocExperimentResult(
        baseline=experiment.roc_baseline(),
        image_curves=image_curves,
        feature_curves=feature_curves,
    )
