"""The paper's contribution assembled into a user-facing API.

:class:`MultiScalePedestrianDetector` is the library's front door: it
trains a HOG+SVM pedestrian model, detects at multiple scales with the
paper's feature-pyramid method (or the conventional image pyramid, for
comparison), and converts to the hardware accelerator model.

:mod:`repro.core.experiments` holds the experiment drivers the
benchmarks and examples share — one function per paper artifact
(Table 1, Figure 4, Table 2, the throughput claims).
"""

from repro.core.config import DetectorConfig
from repro.core.pipeline import MultiScalePedestrianDetector
from repro.core.experiments import (
    Table1Row,
    Table1Result,
    run_table1,
    RocExperimentResult,
    run_roc_experiment,
    train_window_model,
    extract_descriptors,
)
from repro.core.multiclass import MultiObjectDetector, ObjectClass
from repro.core.mining import (
    BootstrapResult,
    bootstrap_train,
    mine_hard_negatives,
)

__all__ = [
    "DetectorConfig",
    "MultiScalePedestrianDetector",
    "Table1Row",
    "Table1Result",
    "run_table1",
    "RocExperimentResult",
    "run_roc_experiment",
    "train_window_model",
    "extract_descriptors",
    "MultiObjectDetector",
    "ObjectClass",
    "BootstrapResult",
    "bootstrap_train",
    "mine_hard_negatives",
]
