"""The banked normalized-HOG feature memory (N-HOGMem).

Hemmati et al. [10] store normalized HOG features in 16 memory banks by
dividing cells into four parity groups — LU (even row, even column),
RU (even, odd), LB (odd, even), RB (odd, odd) — so that the four cells
of any 2x2 block always live in *different* banks and a block can be
fetched in one access per bank.  This paper reuses that structure but
shrinks the buffer to a rolling window of 18 cell rows (from 135):
just enough to hold one 16-cell-row detection window plus the rows
being produced ahead of the classifier.

The model tracks content functionally (so the hardware classifier reads
real feature words) and enforces the single-port-per-bank-per-cycle
constraint that shaped the paper's scheduling.
"""

from __future__ import annotations

import dataclasses
import enum

import numpy as np

from repro.errors import HardwareConfigError, ScheduleError


class CellGroup(enum.Enum):
    """The four cell parity groups of [10]."""

    LU = 0  # even row, even column (left-upper)
    RU = 1  # even row, odd column (right-upper)
    LB = 2  # odd row, even column (left-bottom)
    RB = 3  # odd row, odd column (right-bottom)

    @classmethod
    def of_cell(cls, row: int, col: int) -> "CellGroup":
        return cls((row % 2) * 2 + (col % 2))


@dataclasses.dataclass
class BankAccessStats:
    """Per-bank read/write counters for bandwidth accounting."""

    reads: np.ndarray
    writes: np.ndarray

    @property
    def total_reads(self) -> int:
        return int(self.reads.sum())

    @property
    def total_writes(self) -> int:
        return int(self.writes.sum())


class BankedFeatureMemory:
    """Rolling, banked storage of per-cell normalized feature words.

    Parameters
    ----------
    n_banks:
        Total banks; must be a multiple of 4 (banks per parity group =
        ``n_banks // 4``).  The paper uses 16.
    n_rows:
        Cell rows held at once (the rolling window; paper: 18).
    n_cols:
        Cell columns per row (HDTV at 8-px cells: 240).
    words_per_cell:
        Feature words stored per cell (9 bins for raw histograms, or a
        cell's share of normalized block data).
    word_bits:
        Width of one stored word, for capacity accounting.
    """

    def __init__(
        self,
        n_banks: int = 16,
        n_rows: int = 18,
        n_cols: int = 240,
        words_per_cell: int = 9,
        word_bits: int = 16,
    ) -> None:
        if n_banks < 4 or n_banks % 4:
            raise HardwareConfigError(
                f"n_banks must be a positive multiple of 4, got {n_banks}"
            )
        if n_rows < 2:
            raise HardwareConfigError(f"n_rows must be >= 2, got {n_rows}")
        if n_cols < 2:
            raise HardwareConfigError(f"n_cols must be >= 2, got {n_cols}")
        if words_per_cell < 1:
            raise HardwareConfigError(
                f"words_per_cell must be >= 1, got {words_per_cell}"
            )
        if word_bits < 1:
            raise HardwareConfigError(f"word_bits must be >= 1, got {word_bits}")
        self.n_banks = n_banks
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.words_per_cell = words_per_cell
        self.word_bits = word_bits
        self._data = np.zeros((n_rows, n_cols, words_per_cell))
        self._row_tags = np.full(n_rows, -1, dtype=np.int64)  # absolute cell row
        self._stats = BankAccessStats(
            reads=np.zeros(n_banks, dtype=np.int64),
            writes=np.zeros(n_banks, dtype=np.int64),
        )

    # -- Geometry ---------------------------------------------------------

    def bank_of_cell(self, row: int, col: int) -> int:
        """The bank holding cell ``(row, col)`` (absolute coordinates).

        Within a parity group, cells interleave across the group's
        ``n_banks // 4`` banks by column so horizontally-adjacent
        same-group cells are also conflict-free.
        """
        group = CellGroup.of_cell(row, col)
        per_group = self.n_banks // 4
        lane = (col // 2) % per_group
        return group.value * per_group + lane

    def slot_of_row(self, row: int) -> int:
        """The rolling-buffer slot for absolute cell row ``row``."""
        return row % self.n_rows

    @property
    def capacity_bits(self) -> int:
        """Total storage in bits."""
        return self.n_rows * self.n_cols * self.words_per_cell * self.word_bits

    @property
    def bits_per_bank(self) -> int:
        # Cells distribute evenly across banks by construction.
        return self.capacity_bits // self.n_banks

    @property
    def stats(self) -> BankAccessStats:
        return self._stats

    # -- Functional access --------------------------------------------------

    def write_cell(self, row: int, col: int, words: np.ndarray) -> None:
        """Store one cell's feature words (produced by the HOG stage)."""
        w = np.asarray(words, dtype=np.float64).ravel()
        if w.size != self.words_per_cell:
            raise HardwareConfigError(
                f"cell write of {w.size} words, bank stores {self.words_per_cell}"
            )
        if not 0 <= col < self.n_cols:
            raise ScheduleError(f"cell column {col} outside 0..{self.n_cols - 1}")
        slot = self.slot_of_row(row)
        self._data[slot, col] = w
        self._row_tags[slot] = row
        self._stats.writes[self.bank_of_cell(row, col)] += 1

    def read_cell(self, row: int, col: int) -> np.ndarray:
        """Fetch one cell's words; raises if the row was overwritten."""
        if not 0 <= col < self.n_cols:
            raise ScheduleError(f"cell column {col} outside 0..{self.n_cols - 1}")
        slot = self.slot_of_row(row)
        if self._row_tags[slot] != row:
            raise ScheduleError(
                f"cell row {row} is no longer resident (slot holds row "
                f"{self._row_tags[slot]}); the classifier fell more than "
                f"{self.n_rows} rows behind the extractor"
            )
        self._stats.reads[self.bank_of_cell(row, col)] += 1
        return self._data[slot, col].copy()

    def read_block_column(self, top_row: int, left_col: int) -> np.ndarray:
        """Fetch the 2x2 cells of one block in a single conflict-free access.

        The four cells belong to the four different parity groups, so
        they occupy four distinct banks — the property the layout of
        [10] exists to provide.  Returns ``(4, words_per_cell)`` in
        LU, RU, LB, RB order.
        """
        cells = [
            (top_row, left_col),
            (top_row, left_col + 1),
            (top_row + 1, left_col),
            (top_row + 1, left_col + 1),
        ]
        banks = {self.bank_of_cell(r, c) for r, c in cells}
        if len(banks) != 4:
            raise ScheduleError(
                f"block at ({top_row}, {left_col}) maps to banks {sorted(banks)}"
                " — bank conflict; the parity grouping is broken"
            )
        return np.stack([self.read_cell(r, c) for r, c in cells])

    def resident_rows(self) -> list[int]:
        """Absolute cell rows currently held, oldest first."""
        rows = [int(r) for r in self._row_tags if r >= 0]
        return sorted(rows)
