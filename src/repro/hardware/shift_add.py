"""Canonical-signed-digit shift-and-add coefficient approximation.

"Scaling modules are implemented by shift-and-add instead of multiplier
to keep resource utilization as low as possible" (paper Section 5).  A
real coefficient ``c`` is approximated as a short sum of signed powers
of two, ``c ~ sum_k s_k * 2**(-p_k)`` with ``s_k in {-1, +1}``; each
term costs one shifter and the sum one adder tree, no DSP multiplier.

The canonical signed digit (CSD) decomposition is the classic minimal-
term recoding: greedily take the nearest power of two of the residual.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import HardwareConfigError


def csd_decompose(
    value: float,
    max_terms: int = 3,
    max_shift: int = 8,
) -> list[tuple[int, int]]:
    """Decompose ``value`` into signed power-of-two terms.

    Parameters
    ----------
    value:
        Coefficient to approximate; the useful domain for interpolation
        weights is roughly ``[-2, 2]``.
    max_terms:
        Hardware adder budget (terms in the sum).
    max_shift:
        Largest right-shift available, i.e. the smallest representable
        term is ``2**-max_shift``.

    Returns
    -------
    List of ``(sign, shift)`` pairs meaning ``sign * 2**shift`` with
    ``shift`` possibly negative (right shifts).  Empty list represents
    zero.  Greedy nearest-power-of-two recoding; residuals smaller than
    half the smallest term terminate early.
    """
    if max_terms < 1:
        raise HardwareConfigError(f"max_terms must be >= 1, got {max_terms}")
    if max_shift < 0:
        raise HardwareConfigError(f"max_shift must be >= 0, got {max_shift}")
    terms: list[tuple[int, int]] = []
    residual = float(value)
    floor_term = 2.0 ** (-max_shift)
    for _ in range(max_terms):
        if abs(residual) < floor_term / 2.0:
            break
        sign = 1 if residual > 0 else -1
        shift = round(math.log2(abs(residual)))
        shift = min(shift, 62)
        shift = max(shift, -max_shift)
        terms.append((sign, shift))
        residual -= sign * 2.0**shift
    return terms


def shift_add_value(terms: list[tuple[int, int]]) -> float:
    """Evaluate a CSD term list back into a float coefficient."""
    return float(sum(sign * 2.0**shift for sign, shift in terms))


@dataclasses.dataclass(frozen=True)
class ShiftAddCoefficient:
    """A coefficient committed to shift-and-add hardware.

    Stores both the ideal value and its CSD approximation; ``apply``
    multiplies data by the *approximated* value, which is what the RTL
    datapath would compute.
    """

    ideal: float
    terms: tuple[tuple[int, int], ...]

    @classmethod
    def approximate(
        cls, value: float, max_terms: int = 3, max_shift: int = 8
    ) -> "ShiftAddCoefficient":
        terms = csd_decompose(value, max_terms=max_terms, max_shift=max_shift)
        return cls(ideal=float(value), terms=tuple(terms))

    @property
    def value(self) -> float:
        """The realized (approximated) coefficient."""
        return shift_add_value(list(self.terms))

    @property
    def error(self) -> float:
        return self.value - self.ideal

    @property
    def n_adders(self) -> int:
        """Adders consumed: one per term beyond the first."""
        return max(0, len(self.terms) - 1)

    def apply(self, data: np.ndarray | float) -> np.ndarray:
        """Multiply ``data`` by the realized coefficient (shift semantics)."""
        arr = np.asarray(data, dtype=np.float64)
        out = np.zeros_like(arr)
        for sign, shift in self.terms:
            out += sign * np.ldexp(arr, shift)
        return out
