"""Cycle-level behavioural model of the paper's FPGA accelerator.

The paper's hardware contribution (Section 5) is modelled structurally:

* :mod:`repro.hardware.fixed_point` — quantized arithmetic formats.
* :mod:`repro.hardware.shift_add` — CSD shift-and-add coefficient
  approximation (the paper's multiplier-free scaling modules).
* :mod:`repro.hardware.memory` — the 16-bank N-HOGMem feature memory
  with the LU/RU/LB/RB cell grouping of Hemmati et al. [10], reduced to
  an 18-cell-row rolling buffer.
* :mod:`repro.hardware.mac` — MAC cells, 16-wide MACBAR bars and the
  8-deep pipelined SVM classifier array.
* :mod:`repro.hardware.scaler_hw` — the hardware feature down-scaling
  module (quantized shift-add bilinear resampling).
* :mod:`repro.hardware.classifier` — the scheduled, fixed-point sliding
  window classifier (functionally equivalent to the software SVM).
* :mod:`repro.hardware.timing` — the analytic frame-cycle model that
  reproduces the paper's 1,200,420 cycles / <10 ms / 60 fps claims.
* :mod:`repro.hardware.resources` — the parametric Zynq ZC7020 resource
  estimator calibrated against Table 2.
* :mod:`repro.hardware.accelerator` — the assembled top level.
"""

from repro.hardware.fixed_point import FixedPointFormat, quantize, quantization_error
from repro.hardware.shift_add import (
    csd_decompose,
    shift_add_value,
    ShiftAddCoefficient,
)
from repro.hardware.memory import BankedFeatureMemory, CellGroup
from repro.hardware.mac import MacUnit, MacBar, SvmClassifierArray
from repro.hardware.scaler_hw import HardwareFeatureScaler
from repro.hardware.classifier import HardwareSvmClassifier, HardwareClassifierReport
from repro.hardware.timing import FrameTimingModel, FrameTimingReport
from repro.hardware.resources import (
    Zc7020,
    ResourceBudget,
    ResourceEstimator,
    ResourceUsage,
)
from repro.hardware.accelerator import (
    AcceleratorConfig,
    PedestrianDetectorAccelerator,
)
from repro.hardware.event_sim import (
    PipelineConfig,
    SimulationResult,
    simulate_frame,
)
from repro.hardware.hog_pipe import HardwareHogFrontEnd, alpha_max_beta_min

__all__ = [
    "FixedPointFormat",
    "quantize",
    "quantization_error",
    "csd_decompose",
    "shift_add_value",
    "ShiftAddCoefficient",
    "BankedFeatureMemory",
    "CellGroup",
    "MacUnit",
    "MacBar",
    "SvmClassifierArray",
    "HardwareFeatureScaler",
    "HardwareSvmClassifier",
    "HardwareClassifierReport",
    "FrameTimingModel",
    "FrameTimingReport",
    "Zc7020",
    "ResourceBudget",
    "ResourceEstimator",
    "ResourceUsage",
    "AcceleratorConfig",
    "PedestrianDetectorAccelerator",
    "PipelineConfig",
    "SimulationResult",
    "simulate_frame",
    "HardwareHogFrontEnd",
    "alpha_max_beta_min",
]
