"""Discrete-event simulation of the extractor -> N-HOGMem -> classifier
pipeline.

**Paper mapping.**  This module models the dataflow of the paper's
Figure 5 block diagram at cycle granularity: the HOG feature extractor
of Hemmati et al. [10] streaming one pixel per cycle (Section 5's
2,073,600-cycle HDTV occupancy), the 18-row rolling N-HOGMem buffer
(Section 4.2 — "reduced to 18 cell rows" from a full-frame feature
store), and the parallel SVM classifier built from 8 pipelined MACBAR
units consuming one block column every 36 cycles (Section 4.3, the
1,200,420-cycles-per-frame budget restated in Table 2's context).

The analytic model in :mod:`repro.hardware.timing` *derives* those
cycle counts in closed form; this module *simulates* them: a
cycle-driven model of the three stages with their real handshakes — the
extractor streams pixels and emits finished cell rows, the rolling
N-HOGMem holds a bounded number of rows, and the classifier consumes
block columns at the MACBAR cadence, stalling when its window rows are
not yet resident.  A too-small buffer surfaces as a
:class:`~repro.errors.ScheduleError` — the overrun the 18-row sizing
exists to prevent.

Cross-checking simulation against the closed-form count (see
``tests/test_hw_event_sim.py``) is the standard way an RTL team
validates a performance model, and it exposes the assumptions the
closed form hides (who stalls whom, and when).  Pass a
:class:`~repro.telemetry.MetricsRegistry` to :func:`simulate_frame` to
record the simulated cycle counts as ``hw.sim.*`` gauges next to the
software pipeline's measured timings (``repro-das profile`` does this;
docs/PERFORMANCE.md interprets the two side by side).
"""

from __future__ import annotations

import dataclasses

from repro.errors import HardwareConfigError, ScheduleError
from repro.telemetry import MetricsRegistry


@dataclasses.dataclass(frozen=True)
class PipelineConfig:
    """Structural parameters of the simulated pipeline.

    Defaults are the paper's: HDTV frame, 8-px cells, 16-cell-row
    windows, 18-row N-HOGMem, one pixel per cycle into the extractor,
    8 MACBARs at 36 cycles per block column.
    """

    image_height: int = 1080
    image_width: int = 1920
    cell_size: int = 8
    window_cell_rows: int = 16
    block_size: int = 2
    buffer_rows: int = 18
    pixels_per_cycle: int = 1
    n_macbars: int = 8
    cycles_per_column: int = 36

    def __post_init__(self) -> None:
        for name in (
            "image_height",
            "image_width",
            "cell_size",
            "window_cell_rows",
            "block_size",
            "buffer_rows",
            "pixels_per_cycle",
            "n_macbars",
            "cycles_per_column",
        ):
            if getattr(self, name) < 1:
                raise HardwareConfigError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.buffer_rows < self.window_cell_rows:
            raise HardwareConfigError(
                f"buffer_rows {self.buffer_rows} cannot hold a "
                f"{self.window_cell_rows}-row window"
            )

    @property
    def cell_rows(self) -> int:
        return self.image_height // self.cell_size

    @property
    def cell_cols(self) -> int:
        return self.image_width // self.cell_size

    @property
    def block_cols(self) -> int:
        return max(1, self.cell_cols - self.block_size + 1)

    @property
    def cycles_per_cell_row(self) -> int:
        """Extractor cycles to produce one full row of cells."""
        pixels = self.cell_size * self.image_width
        return -(-pixels // self.pixels_per_cycle)  # ceil

    @property
    def classifier_cycles_per_row(self) -> int:
        """Classifier occupancy per window row: fill + column stream."""
        return (
            self.n_macbars * self.cycles_per_column
            + self.cycles_per_column * self.block_cols
        )


@dataclasses.dataclass
class SimulationResult:
    """Cycle-level outcome of one simulated frame."""

    total_cycles: int
    extractor_busy_cycles: int
    classifier_busy_cycles: int
    classifier_stall_cycles: int
    rows_classified: int
    peak_buffer_occupancy: int

    @property
    def classifier_utilization(self) -> float:
        denom = self.classifier_busy_cycles + self.classifier_stall_cycles
        return self.classifier_busy_cycles / denom if denom else 0.0


def simulate_frame(
    config: PipelineConfig | None = None,
    telemetry: MetricsRegistry | None = None,
) -> SimulationResult:
    """Simulate one frame through the pipeline, event by event.

    The extractor finishes cell row ``r`` at time ``(r+1) * T_row``.
    The classifier starts window row ``a`` when (i) its previous row is
    done and (ii) cell rows ``a .. a + window - 1`` have been produced.
    Rows are retired from the rolling buffer once no later window needs
    them; the simulation verifies the producer never has to overwrite a
    row that is still live (a :class:`~repro.errors.ScheduleError`
    otherwise — the situation a too-small N-HOGMem causes).

    When ``telemetry`` is given, the result is also recorded as
    ``hw.sim.*`` gauges (total / busy / stall cycles, utilization,
    peak buffer occupancy) under a ``hw.simulate_frame`` span.
    """
    cfg = config if config is not None else PipelineConfig()
    if telemetry is not None and telemetry.enabled:
        with telemetry.span("hw.simulate_frame"):
            result = _simulate_frame(cfg)
        telemetry.set_gauge("hw.sim.total_cycles", result.total_cycles)
        telemetry.set_gauge(
            "hw.sim.extractor_busy_cycles", result.extractor_busy_cycles
        )
        telemetry.set_gauge(
            "hw.sim.classifier_busy_cycles", result.classifier_busy_cycles
        )
        telemetry.set_gauge(
            "hw.sim.classifier_stall_cycles", result.classifier_stall_cycles
        )
        telemetry.set_gauge(
            "hw.sim.classifier_utilization", result.classifier_utilization
        )
        telemetry.set_gauge(
            "hw.sim.peak_buffer_occupancy", result.peak_buffer_occupancy
        )
        return result
    return _simulate_frame(cfg)


def _simulate_frame(cfg: PipelineConfig) -> SimulationResult:

    t_row = cfg.cycles_per_cell_row
    c_row = cfg.classifier_cycles_per_row
    window = cfg.window_cell_rows
    n_rows = cfg.cell_rows
    anchor_rows = max(0, n_rows - window + 1)

    extractor_busy = n_rows * t_row
    classifier_busy = 0
    classifier_stall = 0
    peak_occupancy = 0

    # Completion time of each produced cell row (back-pressure-free
    # producer; back-pressure is detected as a buffer violation).
    produced_at = [(r + 1) * t_row for r in range(n_rows)]

    classifier_free_at = 0
    for anchor in range(anchor_rows):
        data_ready = produced_at[anchor + window - 1]
        start = max(classifier_free_at, data_ready)
        if start > data_ready and anchor > 0:
            pass  # classifier-bound: no stall, it was simply busy
        stall = max(0, data_ready - classifier_free_at)
        if anchor > 0:
            classifier_stall += stall
        end = start + c_row
        classifier_busy += c_row

        # Buffer check: while this window row is being read, the
        # producer may be writing any row finished before `end`.
        rows_produced_by_end = min(n_rows, end // t_row)
        live_from = anchor  # oldest row still being read
        occupancy = rows_produced_by_end - live_from
        peak_occupancy = max(peak_occupancy, occupancy)
        if occupancy > cfg.buffer_rows:
            raise ScheduleError(
                f"window row {anchor}: producer is {occupancy} rows ahead "
                f"of the oldest live row but the buffer holds only "
                f"{cfg.buffer_rows}"
            )
        classifier_free_at = end

    total = max(extractor_busy, classifier_free_at)
    return SimulationResult(
        total_cycles=int(total),
        extractor_busy_cycles=int(extractor_busy),
        classifier_busy_cycles=int(classifier_busy),
        classifier_stall_cycles=int(classifier_stall),
        rows_classified=anchor_rows,
        peak_buffer_occupancy=int(peak_occupancy),
    )
