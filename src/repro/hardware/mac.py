"""MAC cells, MACBAR bars and the pipelined SVM classifier array.

Figure 7/8 of the paper: the classifier datapath is eight pipelined
MACBAR units, each a bar of 16 multiply-accumulate cells.  One MACBAR
consumes one *window column* — 16 blocks x 36 features = 576 feature
words — in 36 cycles (16 MACs x 36 cycles = 576 MAC operations), and a
finished column's partials pipe to the next MACBAR, so after the
288-cycle fill the array emits one window score every 36 cycles.

Two model granularities:

* :class:`MacUnit` / :class:`MacBar` — cycle-by-cycle functional units,
  used by unit tests to validate the arithmetic contract.
* :class:`SvmClassifierArray` — the vectorized whole-row model the
  frame-level classifier uses.  Because the accumulator format keeps
  at least ``feature.frac_bits + weight.frac_bits`` fractional bits,
  every partial product lies exactly on the accumulator grid and the
  sequential MAC chain is *bit-exact* equal to a single wide dot
  product — which is what the vectorized path computes (a property test
  pins this equivalence).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import HardwareConfigError, ShapeError
from repro.hardware.fixed_point import (
    ACCUMULATOR_FORMAT,
    FEATURE_FORMAT,
    FixedPointFormat,
    WEIGHT_FORMAT,
    quantize,
)


class MacUnit:
    """One fixed-point multiply-accumulate cell."""

    def __init__(
        self,
        feature_format: FixedPointFormat = FEATURE_FORMAT,
        weight_format: FixedPointFormat = WEIGHT_FORMAT,
        accumulator_format: FixedPointFormat = ACCUMULATOR_FORMAT,
    ) -> None:
        _check_accumulator(feature_format, weight_format, accumulator_format)
        self.feature_format = feature_format
        self.weight_format = weight_format
        self.accumulator_format = accumulator_format
        self._acc = 0.0
        self.n_ops = 0

    @property
    def accumulator(self) -> float:
        return self._acc

    def reset(self) -> None:
        self._acc = 0.0

    def step(self, feature: float, weight: float) -> float:
        """One MAC cycle: ``acc += q(feature) * q(weight)``."""
        f = float(quantize(feature, self.feature_format))
        w = float(quantize(weight, self.weight_format))
        self._acc = float(quantize(self._acc + f * w, self.accumulator_format))
        self.n_ops += 1
        return self._acc


class MacBar:
    """A bar of ``n_macs`` MAC cells fed one column slice per cycle."""

    def __init__(
        self,
        n_macs: int = 16,
        feature_format: FixedPointFormat = FEATURE_FORMAT,
        weight_format: FixedPointFormat = WEIGHT_FORMAT,
        accumulator_format: FixedPointFormat = ACCUMULATOR_FORMAT,
    ) -> None:
        if n_macs < 1:
            raise HardwareConfigError(f"n_macs must be >= 1, got {n_macs}")
        self.macs = [
            MacUnit(feature_format, weight_format, accumulator_format)
            for _ in range(n_macs)
        ]

    @property
    def n_macs(self) -> int:
        return len(self.macs)

    def reset(self) -> None:
        for mac in self.macs:
            mac.reset()

    def step(self, features: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """One cycle: each MAC consumes its lane's feature/weight pair."""
        f = np.asarray(features, dtype=np.float64).ravel()
        w = np.asarray(weights, dtype=np.float64).ravel()
        if f.size != self.n_macs or w.size != self.n_macs:
            raise ShapeError(
                f"bar of {self.n_macs} MACs fed {f.size} features / {w.size} weights"
            )
        return np.array(
            [mac.step(f[i], w[i]) for i, mac in enumerate(self.macs)]
        )

    def process_column(
        self, features: np.ndarray, weights: np.ndarray
    ) -> tuple[float, int]:
        """Stream a whole column through the bar.

        ``features`` and ``weights`` are ``(n_cycles, n_macs)``; returns
        the column dot product (sum over all MAC accumulators) and the
        cycle count consumed.
        """
        f = np.asarray(features, dtype=np.float64)
        w = np.asarray(weights, dtype=np.float64)
        if f.shape != w.shape or f.ndim != 2 or f.shape[1] != self.n_macs:
            raise ShapeError(
                f"column shapes {f.shape} / {w.shape} do not fit a "
                f"{self.n_macs}-MAC bar"
            )
        self.reset()
        for cycle in range(f.shape[0]):
            self.step(f[cycle], w[cycle])
        total = float(sum(mac.accumulator for mac in self.macs))
        return total, f.shape[0]


@dataclasses.dataclass(frozen=True)
class ClassifierGeometry:
    """Window geometry as the classifier array sees it.

    The paper's hardware counts the window as 16 block rows x 8 block
    columns of 36 features (Section 5) — one MACBAR per block column,
    one MAC per block row.
    """

    block_rows: int = 16
    block_cols: int = 8
    features_per_block: int = 36

    @property
    def column_dim(self) -> int:
        return self.block_rows * self.features_per_block

    @property
    def window_dim(self) -> int:
        return self.column_dim * self.block_cols


class SvmClassifierArray:
    """The 8-MACBAR pipelined classifier, vectorized over a window row.

    Parameters
    ----------
    geometry:
        Window geometry; ``geometry.block_cols`` MACBARs are instanced.
    cycles_per_column:
        Cycles to stream one column through a MACBAR (paper: 36 =
        features_per_block when 16 MACs cover the 16 block rows).
    """

    def __init__(
        self,
        geometry: ClassifierGeometry | None = None,
        feature_format: FixedPointFormat = FEATURE_FORMAT,
        weight_format: FixedPointFormat = WEIGHT_FORMAT,
        accumulator_format: FixedPointFormat = ACCUMULATOR_FORMAT,
        cycles_per_column: int = 36,
    ) -> None:
        _check_accumulator(feature_format, weight_format, accumulator_format)
        if cycles_per_column < 1:
            raise HardwareConfigError(
                f"cycles_per_column must be >= 1, got {cycles_per_column}"
            )
        self.geometry = geometry if geometry is not None else ClassifierGeometry()
        self.feature_format = feature_format
        self.weight_format = weight_format
        self.accumulator_format = accumulator_format
        self.cycles_per_column = cycles_per_column

    @property
    def n_macbars(self) -> int:
        return self.geometry.block_cols

    @property
    def fill_cycles(self) -> int:
        """Cycles to prime the pipeline (paper: 8 x 36 = 288)."""
        return self.n_macbars * self.cycles_per_column

    def quantize_weights(self, weights: np.ndarray) -> np.ndarray:
        return quantize(np.asarray(weights, dtype=np.float64), self.weight_format)

    def quantize_features(self, features: np.ndarray) -> np.ndarray:
        return quantize(np.asarray(features, dtype=np.float64), self.feature_format)

    def classify_row(
        self,
        column_features: np.ndarray,
        weights: np.ndarray,
        bias: float,
    ) -> tuple[np.ndarray, int]:
        """Score every window anchor of one row of block columns.

        Parameters
        ----------
        column_features:
            ``(n_columns, column_dim)`` — every block column of the row,
            already in window-column feature order.
        weights:
            ``(window_dim,)`` SVM weight vector in the same order.
        bias:
            SVM bias term.

        Returns
        -------
        ``(scores, cycles)`` where scores has one entry per window
        anchor (``n_columns - block_cols + 1``) and cycles counts the
        pipeline fill plus one ``cycles_per_column`` slot per column.
        """
        g = self.geometry
        cols = np.asarray(column_features, dtype=np.float64)
        if cols.ndim != 2 or cols.shape[1] != g.column_dim:
            raise ShapeError(
                f"column features {cols.shape} do not match column_dim "
                f"{g.column_dim}"
            )
        w = np.asarray(weights, dtype=np.float64).ravel()
        if w.size != g.window_dim:
            raise ShapeError(
                f"weights {w.size} do not match window_dim {g.window_dim}"
            )
        qc = self.quantize_features(cols)
        qw = self.quantize_weights(w).reshape(g.block_cols, g.column_dim)

        n_anchors = cols.shape[0] - g.block_cols + 1
        cycles = self.fill_cycles + self.cycles_per_column * cols.shape[0]
        if n_anchors <= 0:
            return np.empty(0), cycles

        # Column c against model column j contributes to the window
        # anchored at c - j.  partial[j] has one entry per anchor.
        partial = np.stack(
            [qc[j : j + n_anchors] @ qw[j] for j in range(g.block_cols)]
        )
        scores = partial.sum(axis=0) + float(quantize(bias, self.weight_format))
        scores = quantize(scores, self.accumulator_format)
        return scores, cycles


def _check_accumulator(
    feature_format: FixedPointFormat,
    weight_format: FixedPointFormat,
    accumulator_format: FixedPointFormat,
) -> None:
    """Enforce the exact-accumulation contract documented above."""
    needed = feature_format.frac_bits + weight_format.frac_bits
    if accumulator_format.frac_bits < needed:
        raise HardwareConfigError(
            f"accumulator needs >= {needed} fractional bits to hold "
            f"feature*weight products exactly, got "
            f"{accumulator_format.frac_bits}"
        )
