"""The assembled pedestrian-detector accelerator (Figure 5).

:class:`PedestrianDetectorAccelerator` wires the behavioural components
together the way the block diagram does: HOG feature extractor ->
N-HOGMem -> cascade of shift-add feature scalers -> one fixed-point SVM
classifier instance per scale.  ``process_frame`` runs the functional
pipeline on a real image and returns detections *plus* the cycle-level
timing and resource reports, so a single call answers both "what does
the hardware see?" and "how fast / how big is it?".
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.detect.nms import non_maximum_suppression
from repro.detect.sliding import anchors_to_boxes
from repro.detect.types import Detection
from repro.errors import HardwareConfigError
from repro.hardware.classifier import (
    HardwareClassifierReport,
    HardwareSvmClassifier,
    geometry_for,
)
from repro.hardware.fixed_point import (
    ACCUMULATOR_FORMAT,
    FEATURE_FORMAT,
    FixedPointFormat,
    WEIGHT_FORMAT,
    quantize,
)
from repro.hardware.mac import SvmClassifierArray
from repro.hardware.resources import ResourceEstimator, ResourceUsage, Zc7020
from repro.hardware.scaler_hw import HardwareFeatureScaler
from repro.hardware.timing import FrameTimingModel, FrameTimingReport
from repro.hog.extractor import HogExtractor, HogFeatureGrid
from repro.hog.parameters import HogParameters
from repro.svm.model import LinearSvmModel
from repro.telemetry import MetricsRegistry, NULL_TELEMETRY


@dataclasses.dataclass(frozen=True)
class AcceleratorConfig:
    """Structural configuration of the accelerator.

    Defaults are the paper's: two scales, 125 MHz, HDTV frames,
    16-bit feature/weight words, 3-term shift-add scaling coefficients.
    """

    scales: tuple[float, ...] = (1.0, 1.2)
    clock_hz: float = 125e6
    image_height: int = 1080
    image_width: int = 1920
    feature_format: FixedPointFormat = FEATURE_FORMAT
    weight_format: FixedPointFormat = WEIGHT_FORMAT
    accumulator_format: FixedPointFormat = ACCUMULATOR_FORMAT
    scaler_max_terms: int | None = 3
    threshold: float = 0.0
    nms_iou: float = 0.3
    parallel_scales: bool = True

    def __post_init__(self) -> None:
        if not self.scales:
            raise HardwareConfigError("scales must be non-empty")
        if any(s <= 0 for s in self.scales):
            raise HardwareConfigError(f"scales must be positive: {self.scales}")
        if sorted(self.scales)[0] != 1.0:
            raise HardwareConfigError(
                "the first (smallest) scale must be 1.0 — the classifier "
                "cascade derives every level from the base features"
            )
        if self.clock_hz <= 0:
            raise HardwareConfigError(f"clock_hz must be positive: {self.clock_hz}")


@dataclasses.dataclass
class AcceleratorFrameResult:
    """Everything one frame produces."""

    detections: list[Detection]
    scale_reports: dict[float, HardwareClassifierReport]
    timing: FrameTimingReport

    @property
    def total_windows(self) -> int:
        return sum(r.n_windows for r in self.scale_reports.values())


class PedestrianDetectorAccelerator:
    """Behavioural model of the full FPGA pedestrian detector.

    Parameters
    ----------
    model:
        Trained linear SVM (quantized into each classifier instance's
        model memory).
    params:
        HOG window geometry; defaults to the standard 64x128 layout.
    config:
        Structural configuration (scales, clock, formats).
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; when
        enabled, :meth:`process_frame` times its stages under
        ``accel.*`` spans and records the analytic cycle model as
        ``hw.*`` gauges, so the behavioural model's wall time and the
        paper's cycle budget land in one snapshot.
    """

    def __init__(
        self,
        model: LinearSvmModel,
        params: HogParameters | None = None,
        config: AcceleratorConfig | None = None,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        self.params = params if params is not None else HogParameters()
        self.config = config if config is not None else AcceleratorConfig()
        self.model = model
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.extractor = HogExtractor(self.params, telemetry=telemetry)

        geometry = geometry_for(self.params)
        array = SvmClassifierArray(
            geometry=geometry,
            feature_format=self.config.feature_format,
            weight_format=self.config.weight_format,
            accumulator_format=self.config.accumulator_format,
            cycles_per_column=geometry.features_per_block,
        )
        # The paper instantiates one classifier per scale; they share
        # the model memory, which this model expresses by sharing the
        # classifier object (its arithmetic is stateless per call).
        self.classifier = HardwareSvmClassifier(model, self.params, array=array)
        self.scaler = HardwareFeatureScaler(
            feature_format=self.config.feature_format,
            max_terms=self.config.scaler_max_terms,
        )

    # -- Static reports -----------------------------------------------------

    def timing_model(
        self, image_height: int | None = None, image_width: int | None = None
    ) -> FrameTimingModel:
        geometry = geometry_for(self.params)
        return FrameTimingModel(
            image_height=image_height or self.config.image_height,
            image_width=image_width or self.config.image_width,
            cell_size=self.params.cell_size,
            block_size=self.params.block_size,
            n_macbars=geometry.block_cols,
            cycles_per_column=geometry.features_per_block,
            clock_hz=self.config.clock_hz,
        )

    def timing_report(
        self, image_height: int | None = None, image_width: int | None = None
    ) -> FrameTimingReport:
        return self.timing_model(image_height, image_width).frame_report(
            scales=self.config.scales,
            parallel_scales=self.config.parallel_scales,
        )

    def resource_estimate(self) -> ResourceUsage:
        geometry = geometry_for(self.params)
        estimator = ResourceEstimator(
            n_scales=len(self.config.scales),
            n_macbars=geometry.block_cols,
            macs_per_bar=geometry.block_rows,
            cell_cols=self.config.image_width // self.params.cell_size,
            n_bins=self.params.n_bins,
            feature_bits=self.config.feature_format.total_bits,
            weight_bits=self.config.weight_format.total_bits,
            window_dim=self.model.n_features,
            image_width=self.config.image_width,
        )
        return estimator.total()

    def fits_device(self, budget=Zc7020) -> bool:
        return self.resource_estimate().fits(budget)

    # -- Functional frame processing ----------------------------------------

    def process_frame(self, image: np.ndarray) -> AcceleratorFrameResult:
        """Run the full fixed-point pipeline on one frame.

        The software HOG extractor plays the role of the [10] front end
        (its arithmetic is modelled as exact; quantization enters at
        the N-HOGMem write, i.e. the feature format), then the scaler
        cascade and one classifier pass per scale.
        """
        tm = self.telemetry
        with tm.span("accel.frame"):
            with tm.span("accel.extract"):
                base = self.extractor.extract(image)
                base.scale = 1.0
                base = HogFeatureGrid(
                    cells=quantize(base.cells, self.config.feature_format),
                    blocks=quantize(base.blocks, self.config.feature_format),
                    params=base.params,
                    scale=1.0,
                )

            detections: list[Detection] = []
            reports: dict[float, HardwareClassifierReport] = {}
            grid = base
            bx, by = self.params.blocks_per_window
            for scale in sorted(self.config.scales):
                if scale != grid.scale:
                    with tm.span("scale.grid"):
                        grid = self.scaler.scale_grid(grid, scale / grid.scale)
                rows, cols = grid.block_grid_shape
                if rows < by or cols < bx:
                    break
                with tm.span("detect.classify"):
                    report = self.classifier.classify_grid(grid)
                reports[scale] = report
                boxes = anchors_to_boxes(
                    report.scores, grid, self.config.threshold
                )
                detections.extend(boxes)
                if tm.enabled:
                    # Full literal names so the telemetry-names lint
                    # rule can resolve them against the registry.
                    tm.inc(f"accel.scale[{scale:.2f}].windows_scanned",
                           report.n_windows)
                    tm.inc(f"accel.scale[{scale:.2f}].windows_accepted",
                           len(boxes))

            with tm.span("detect.nms"):
                kept = non_maximum_suppression(
                    detections, iou_threshold=self.config.nms_iou
                )
            timing = self.timing_model(
                image.shape[0], image.shape[1]
            ).frame_report(
                scales=tuple(reports.keys()) or (1.0,),
                parallel_scales=self.config.parallel_scales,
            )
            if tm.enabled:
                tm.inc("accel.frames")
                tm.set_gauge("hw.extractor_cycles", timing.extractor_cycles)
                tm.set_gauge(
                    "hw.classifier_cycles_effective",
                    timing.classifier_cycles_effective,
                )
                tm.set_gauge("hw.frame_time_s", timing.frame_time_s)
                tm.set_gauge("hw.frames_per_second", timing.frames_per_second)
        return AcceleratorFrameResult(
            detections=kept,
            scale_reports=reports,
            timing=timing,
        )
