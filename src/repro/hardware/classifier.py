"""The scheduled, fixed-point sliding-window SVM classifier.

Drives the :class:`~repro.hardware.mac.SvmClassifierArray` over a whole
HOG feature grid exactly the way the RTL does: row by row, streaming
one block column per 36-cycle slot after a 288-cycle pipeline fill, and
reading features through the banked N-HOGMem when asked to verify the
memory schedule.

Functionally the hardware path must agree with the software SVM up to
fixed-point quantization — ``tests/test_hw_classifier.py`` pins that
equivalence, which is the model's substitute for RTL-vs-golden-model
verification.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import HardwareConfigError, ShapeError
from repro.hardware.mac import ClassifierGeometry, SvmClassifierArray
from repro.hardware.memory import BankedFeatureMemory
from repro.hog.extractor import HogFeatureGrid
from repro.svm.model import LinearSvmModel


@dataclasses.dataclass
class HardwareClassifierReport:
    """Scores plus the cycle/bandwidth accounting for one grid."""

    scores: np.ndarray  # (anchor_rows, anchor_cols)
    cycles: int
    n_windows: int
    cell_rows: int
    block_cols: int
    fill_cycles: int

    def scores_flat(self) -> np.ndarray:
        return self.scores.reshape(-1)


def geometry_for(params) -> ClassifierGeometry:
    """Classifier geometry implied by a HOG parameterization."""
    bx, by = params.blocks_per_window
    return ClassifierGeometry(
        block_rows=by,
        block_cols=bx,
        features_per_block=params.block_dim,
    )


class HardwareSvmClassifier:
    """Fixed-point sliding-window classification of a feature grid.

    Parameters
    ----------
    model:
        Trained software SVM; weights are quantized into the model
        memory on construction.
    params:
        HOG parameters defining the window geometry.
    array:
        Optionally a preconfigured classifier array (formats, cadence);
        its geometry must match ``params``.
    """

    def __init__(
        self,
        model: LinearSvmModel,
        params,
        array: SvmClassifierArray | None = None,
    ) -> None:
        geometry = geometry_for(params)
        if array is None:
            array = SvmClassifierArray(geometry=geometry)
        elif array.geometry != geometry:
            raise HardwareConfigError(
                f"classifier array geometry {array.geometry} does not match "
                f"the window geometry {geometry} implied by the HOG parameters"
            )
        if model.n_features != geometry.window_dim:
            raise HardwareConfigError(
                f"model has {model.n_features} weights; window needs "
                f"{geometry.window_dim}"
            )
        self.model = model
        self.params = params
        self.array = array
        # Model memory layout: one weight column per MACBAR, each in
        # block-row-major order — the order block columns stream in.
        by, bx = geometry.block_rows, geometry.block_cols
        w = model.weights.reshape(by, bx, geometry.features_per_block)
        self._weight_columns = np.ascontiguousarray(
            np.moveaxis(w, 1, 0).reshape(bx, by * geometry.features_per_block)
        )

    def _column_matrix(self, blocks: np.ndarray, anchor_row: int) -> np.ndarray:
        """All block columns for the window row at ``anchor_row``.

        Returns ``(n_block_cols, block_rows * block_dim)`` — column
        ``c`` is the vertical stack of blocks ``[anchor_row : anchor_row
        + block_rows, c]`` in block-row-major order.
        """
        g = self.array.geometry
        band = blocks[anchor_row : anchor_row + g.block_rows]
        return np.ascontiguousarray(
            np.moveaxis(band, 1, 0).reshape(blocks.shape[1], -1)
        )

    def classify_grid(self, grid: HogFeatureGrid) -> HardwareClassifierReport:
        """Score every window anchor of ``grid`` through the MACBAR array.

        Cycle accounting follows the paper's schedule: *every* cell row
        of the grid streams through the pipeline (fill + one column
        slot per block column), whether or not a full window can anchor
        there — that is how Section 5's 1,200,420-cycle frame count
        arises (135 cell rows x 8,892 cycles).
        """
        g = self.array.geometry
        blocks = np.asarray(grid.blocks, dtype=np.float64)
        if blocks.ndim != 3 or blocks.shape[2] != g.features_per_block:
            raise ShapeError(
                f"grid blocks {blocks.shape} do not match geometry {g}"
            )
        anchor_rows = max(0, blocks.shape[0] - g.block_rows + 1)
        anchor_cols = max(0, blocks.shape[1] - g.block_cols + 1)
        block_cols = blocks.shape[1]
        cell_rows = grid.cells.shape[0]

        scores = np.empty((anchor_rows, anchor_cols))
        for r in range(anchor_rows):
            row_scores, _ = self.array.classify_row(
                self._column_matrix(blocks, r),
                self._weight_columns.reshape(-1),
                self.model.bias,
            )
            scores[r] = row_scores

        cycles_per_row = (
            self.array.fill_cycles + self.array.cycles_per_column * block_cols
        )
        return HardwareClassifierReport(
            scores=scores,
            cycles=cell_rows * cycles_per_row,
            n_windows=anchor_rows * anchor_cols,
            cell_rows=cell_rows,
            block_cols=block_cols,
            fill_cycles=self.array.fill_cycles,
        )

    def verify_memory_schedule(
        self,
        grid: HogFeatureGrid,
        memory: BankedFeatureMemory | None = None,
        lookahead_rows: int = 2,
    ) -> BankedFeatureMemory:
        """Stream the grid's cells through an N-HOGMem and read them back
        in classification order, proving the rolling buffer suffices.

        The extractor writes cell rows in raster order and — because the
        two stages are rate-matched, not hand-shaken — keeps producing
        ``lookahead_rows`` rows ahead while the classifier drains the
        current window row.  A window is 16 cell rows, so the buffer
        must hold 16 + lookahead rows: the paper's 18-row N-HOGMem is
        exactly one window plus two rows of production slack.  Raises
        :class:`~repro.errors.ScheduleError` if any read misses the
        rolling window or hits a bank conflict.
        """
        cells = np.asarray(grid.cells, dtype=np.float64)
        n_rows, n_cols = cells.shape[0], cells.shape[1]
        if memory is None:
            memory = BankedFeatureMemory(
                n_rows=18,
                n_cols=n_cols,
                words_per_cell=cells.shape[2],
            )
        cx, cy = self.params.cells_per_window
        bs = self.params.block_size

        next_write = 0

        def produce_up_to(row: int) -> None:
            nonlocal next_write
            while next_write <= min(row, n_rows - 1):
                for col in range(n_cols):
                    memory.write_cell(next_write, col, cells[next_write, col])
                next_write += 1

        anchor_rows = max(0, n_rows - cy + 1)
        for anchor in range(anchor_rows):
            # The classifier needs cell rows [anchor, anchor + cy - 1];
            # by the time it reads them the extractor has already pushed
            # the lookahead rows into the buffer.
            produce_up_to(anchor + cy - 1 + lookahead_rows)
            for col in range(0, n_cols - bs + 1):
                for block_top in range(anchor, anchor + cy - bs + 1, bs):
                    memory.read_block_column(block_top, col)
        return memory
