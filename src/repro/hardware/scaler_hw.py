"""The hardware feature down-scaling module (Figures 5-6).

The RTL resamples the normalized HOG feature grid with interpolation
coefficients realized as shift-and-add networks (no DSP multipliers)
and stores results in fixed point.  This model mirrors the software
:class:`repro.hog.scaling.FeatureScaler` but quantizes both the
interpolation coefficients (CSD, ``max_terms`` adders) and the output
feature words, so the quantization cost of the paper's resource
optimization is measurable (ablation bench: shift-add vs exact).
"""

from __future__ import annotations

import numpy as np

from repro.errors import HardwareConfigError, ShapeError
from repro.hardware.fixed_point import FEATURE_FORMAT, FixedPointFormat, quantize
from repro.hardware.shift_add import ShiftAddCoefficient
from repro.hog.extractor import HogFeatureGrid


class HardwareFeatureScaler:
    """Bilinear feature-grid down-scaler with CSD-quantized weights.

    Parameters
    ----------
    feature_format:
        Fixed-point format of stored feature words.
    max_terms:
        Shift-add terms available per interpolation coefficient
        (``None`` = exact multipliers, for ablation baselines).
    max_shift:
        Smallest representable coefficient term is ``2**-max_shift``.
    """

    def __init__(
        self,
        feature_format: FixedPointFormat = FEATURE_FORMAT,
        max_terms: int | None = 3,
        max_shift: int = 8,
    ) -> None:
        if max_terms is not None and max_terms < 1:
            raise HardwareConfigError(f"max_terms must be >= 1, got {max_terms}")
        self.feature_format = feature_format
        self.max_terms = max_terms
        self.max_shift = max_shift

    def _coefficient(self, value: float) -> float:
        if self.max_terms is None:
            return float(value)
        return ShiftAddCoefficient.approximate(
            value, max_terms=self.max_terms, max_shift=self.max_shift
        ).value

    def _axis_taps(
        self, out_len: int, in_len: int
    ) -> list[tuple[int, int, float, float]]:
        """Per-output (tap0, tap1, coeff0, coeff1) with CSD coefficients."""
        taps = []
        scale = in_len / out_len
        for i in range(out_len):
            pos = (i + 0.5) * scale - 0.5
            lo = int(np.floor(pos))
            frac = pos - lo
            i0 = min(max(lo, 0), in_len - 1)
            i1 = min(max(lo + 1, 0), in_len - 1)
            c1 = self._coefficient(frac)
            c0 = self._coefficient(1.0 - frac)
            taps.append((i0, i1, c0, c1))
        return taps

    def resample(self, grid: np.ndarray, out_shape: tuple[int, int]) -> np.ndarray:
        """Bilinear resample of a ``(H, W, D)`` grid with quantized math.

        The interpolation runs separably (rows, then columns) and the
        result of each axis pass is re-quantized to the feature format —
        modelling the temporary feature memories between pipelined
        scaling stages (Figure 6).
        """
        arr = np.asarray(grid, dtype=np.float64)
        if arr.ndim != 3:
            raise ShapeError(f"feature grid must be 3-D, got {arr.shape}")
        out_h, out_w = int(out_shape[0]), int(out_shape[1])
        if out_h < 1 or out_w < 1:
            raise HardwareConfigError(f"out_shape must be positive, got {out_shape}")

        arr = quantize(arr, self.feature_format)
        rows = np.empty((out_h, arr.shape[1], arr.shape[2]))
        for i, (i0, i1, c0, c1) in enumerate(self._axis_taps(out_h, arr.shape[0])):
            rows[i] = c0 * arr[i0] + c1 * arr[i1]
        rows = quantize(rows, self.feature_format)

        out = np.empty((out_h, out_w, arr.shape[2]))
        for j, (j0, j1, c0, c1) in enumerate(self._axis_taps(out_w, arr.shape[1])):
            out[:, j] = c0 * rows[:, j0] + c1 * rows[:, j1]
        return quantize(out, self.feature_format)

    def scale_grid(self, grid: HogFeatureGrid, scale: float) -> HogFeatureGrid:
        """Hardware analogue of ``FeatureScaler.scale_grid`` (blocks mode)."""
        if scale <= 0:
            raise HardwareConfigError(f"scale must be positive, got {scale}")
        params = grid.params
        cell_rows, cell_cols = grid.cell_grid_shape
        out_cells = (
            max(1, round(cell_rows / scale)),
            max(1, round(cell_cols / scale)),
        )
        out_blocks = params.block_grid_shape(*out_cells)
        if out_blocks == (0, 0):
            raise ShapeError(
                f"scale {scale} leaves fewer cells {out_cells} than one block"
            )
        blocks = self.resample(grid.blocks, out_blocks)
        cells = self.resample(grid.cells, out_cells)
        return HogFeatureGrid(
            cells=cells,
            blocks=blocks,
            params=params,
            scale=grid.scale * scale,
        )

    def rescale_to_window(self, grid: HogFeatureGrid) -> np.ndarray:
        """Hardware analogue of ``FeatureScaler.rescale_to_window``."""
        params = grid.params
        blocks_x, blocks_y = params.blocks_per_window
        blocks = self.resample(grid.blocks, (blocks_y, blocks_x))
        return blocks.reshape(-1)
