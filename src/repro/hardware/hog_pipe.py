"""Fixed-point model of the HOG extractor front end of [10].

The accelerator's first stage (Hemmati et al., DSD 2014) computes HOG
features in streaming integer hardware.  Its arithmetic differs from
the floating-point software extractor in three classic ways:

* **pixels** are 8-bit integers; centered differences are 9-bit ints;
* **magnitude** avoids the square root with the alpha-max-beta-min
  approximation, ``max(|fx|, |fy|) + 0.5 * min(|fx|, |fy|)``
  (worst-case error ~11.8 %, zero at the axes) — or the even cheaper
  L1 norm ``|fx| + |fy|``;
* **orientation binning** avoids the arctangent: the bin of
  ``(fx, fy)`` is found by comparing ``fy * cos(theta_k)`` against
  ``fx * sin(theta_k)`` for the 9 bin edges (a comparator tree with
  constant multipliers).  The result is a *hard* single-bin vote —
  no bilinear splitting — which is mathematically identical to
  ``floor(angle / bin_width)``, the form this model computes.

Because block normalization divides out any common gain, these
approximations cost little accuracy; the ablation bench measures
exactly how little, and ``tests/test_hw_hog_pipe.py`` pins the
approximation bounds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HardwareConfigError, ShapeError
from repro.hardware.fixed_point import FEATURE_FORMAT, FixedPointFormat, quantize
from repro.hog.extractor import HogFeatureGrid
from repro.hog.normalize import normalize_blocks
from repro.hog.parameters import HogParameters
from repro.imgproc.validate import ensure_grayscale


def alpha_max_beta_min(fx: np.ndarray, fy: np.ndarray) -> np.ndarray:
    """The classic sqrt-free magnitude: ``max + 0.5 * min``."""
    ax, ay = np.abs(fx), np.abs(fy)
    return np.maximum(ax, ay) + 0.5 * np.minimum(ax, ay)


class HardwareHogFrontEnd:
    """Streaming fixed-point HOG extraction (the paper's first stage).

    Parameters
    ----------
    params:
        HOG layout; ``spatial_interpolation`` is ignored (the hardware
        votes each pixel into its own cell only).
    pixel_bits:
        Input pixel quantization (camera interface width).
    magnitude:
        ``"alpha-beta"`` (default, [10]'s datapath), ``"l1"`` or
        ``"exact"``.
    hard_binning:
        True (default): single-bin comparator-tree vote.  False: the
        software's two-bin bilinear vote (for ablation).
    feature_format:
        Quantization of the normalized features written to N-HOGMem.
    """

    def __init__(
        self,
        params: HogParameters | None = None,
        *,
        pixel_bits: int = 8,
        magnitude: str = "alpha-beta",
        hard_binning: bool = True,
        feature_format: FixedPointFormat = FEATURE_FORMAT,
    ) -> None:
        if pixel_bits < 1:
            raise HardwareConfigError(f"pixel_bits must be >= 1, got {pixel_bits}")
        if magnitude not in ("alpha-beta", "l1", "exact"):
            raise HardwareConfigError(
                f"magnitude must be 'alpha-beta', 'l1' or 'exact', got "
                f"{magnitude!r}"
            )
        self.params = params if params is not None else HogParameters()
        self.pixel_bits = int(pixel_bits)
        self.magnitude = magnitude
        self.hard_binning = bool(hard_binning)
        self.feature_format = feature_format

    # -- Stage models ---------------------------------------------------------

    def quantize_pixels(self, image: np.ndarray) -> np.ndarray:
        """[0, 1] floats to the camera's integer levels (as floats)."""
        gray = ensure_grayscale(image)
        levels = 2**self.pixel_bits - 1
        return np.round(np.clip(gray, 0.0, 1.0) * levels)

    def gradients(self, pixels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Integer centered differences (no /2 — gain is normalized out)."""
        padded = np.pad(pixels, 1, mode="edge")
        fx = padded[1:-1, 2:] - padded[1:-1, :-2]
        fy = padded[2:, 1:-1] - padded[:-2, 1:-1]
        return fx, fy

    def magnitude_of(self, fx: np.ndarray, fy: np.ndarray) -> np.ndarray:
        if self.magnitude == "exact":
            return np.hypot(fx, fy)
        if self.magnitude == "l1":
            return np.abs(fx) + np.abs(fy)
        return alpha_max_beta_min(fx, fy)

    def bin_of(self, fx: np.ndarray, fy: np.ndarray) -> np.ndarray:
        """Comparator-tree unsigned bin index in ``[0, n_bins)``.

        Computed via the angle for clarity; identical to comparing
        ``fy cos(theta_k)`` vs ``fx sin(theta_k)`` at the bin edges.
        """
        n_bins = self.params.n_bins
        angle = np.mod(np.arctan2(fy, fx), np.pi)
        idx = np.floor(angle / (np.pi / n_bins)).astype(np.intp)
        return np.clip(idx, 0, n_bins - 1)

    # -- Full extraction ------------------------------------------------------

    def extract(self, image: np.ndarray) -> HogFeatureGrid:
        """Run the full fixed-point front end on ``image``."""
        pixels = self.quantize_pixels(image)
        if (
            pixels.shape[0] < self.params.cell_size
            or pixels.shape[1] < self.params.cell_size
        ):
            raise ShapeError(
                f"image {pixels.shape} smaller than one cell"
            )
        fx, fy = self.gradients(pixels)
        mag = self.magnitude_of(fx, fy)

        cs = self.params.cell_size
        n_bins = self.params.n_bins
        n_rows = pixels.shape[0] // cs
        n_cols = pixels.shape[1] // cs
        h, w = n_rows * cs, n_cols * cs
        mag = mag[:h, :w]

        cell_r = (np.arange(h) // cs)[:, None]
        cell_c = (np.arange(w) // cs)[None, :]
        base = np.broadcast_to((cell_r * n_cols + cell_c) * n_bins, mag.shape)
        hist = np.zeros(n_rows * n_cols * n_bins)

        if self.hard_binning:
            bins = self.bin_of(fx[:h, :w], fy[:h, :w])
            hist += np.bincount(
                (base + bins).ravel(), weights=mag.ravel(), minlength=hist.size
            )
        else:
            angle = np.mod(np.arctan2(fy[:h, :w], fx[:h, :w]), np.pi)
            coord = angle / (np.pi / n_bins) - 0.5
            lo = np.floor(coord).astype(np.intp)
            frac = coord - lo
            for bins, weight in (
                (np.mod(lo, n_bins), mag * (1.0 - frac)),
                (np.mod(lo + 1, n_bins), mag * frac),
            ):
                hist += np.bincount(
                    (base + bins).ravel(),
                    weights=weight.ravel(),
                    minlength=hist.size,
                )

        cells = hist.reshape(n_rows, n_cols, n_bins)
        blocks = normalize_blocks(cells, self.params)
        blocks = quantize(blocks, self.feature_format)
        return HogFeatureGrid(cells=cells, blocks=blocks, params=self.params)

    def extract_window(self, window_image: np.ndarray) -> np.ndarray:
        """Descriptor of one window-sized image (as the software API)."""
        gray = ensure_grayscale(window_image)
        expected = (self.params.window_height, self.params.window_width)
        if gray.shape != expected:
            raise ShapeError(f"window image is {gray.shape}, expected {expected}")
        return self.extract(gray).window_descriptor(0, 0)
