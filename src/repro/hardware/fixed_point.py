"""Fixed-point arithmetic formats for the behavioural hardware model.

The RTL stores HOG features, SVM weights and partial sums in fixed
point.  This module provides the quantization grid: a
:class:`FixedPointFormat` (Q-format) with saturation, plus helpers to
measure the quantization error the format induces — the quantity the
bit-width ablation bench sweeps.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import HardwareConfigError


@dataclasses.dataclass(frozen=True)
class FixedPointFormat:
    """A signed/unsigned Q-format: ``total_bits`` with ``frac_bits``.

    A signed Q(16, 12) value has one sign bit, three integer bits and
    twelve fractional bits; resolution ``2**-12``, range
    ``[-8, 8 - 2**-12]``.

    Attributes
    ----------
    total_bits:
        Word width, including the sign bit when signed.
    frac_bits:
        Bits to the right of the binary point (may be 0, or equal to
        ``total_bits`` for pure fractions; may not be negative).
    signed:
        Two's-complement when True (the default).
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.total_bits < 1:
            raise HardwareConfigError(
                f"total_bits must be >= 1, got {self.total_bits}"
            )
        if not 0 <= self.frac_bits <= self.total_bits:
            raise HardwareConfigError(
                f"frac_bits must be in [0, total_bits], got {self.frac_bits}"
            )
        if self.signed and self.total_bits < 2:
            raise HardwareConfigError("a signed format needs at least 2 bits")

    @property
    def resolution(self) -> float:
        """The quantization step ``2**-frac_bits``."""
        return 2.0**-self.frac_bits

    @property
    def max_value(self) -> float:
        magnitude_bits = self.total_bits - (1 if self.signed else 0)
        return (2.0**magnitude_bits - 1.0) * self.resolution

    @property
    def min_value(self) -> float:
        if not self.signed:
            return 0.0
        return -(2.0 ** (self.total_bits - 1)) * self.resolution

    @property
    def n_levels(self) -> int:
        return 2**self.total_bits

    def describe(self) -> str:
        """Human-readable format name, e.g. ``Q16.12 (signed)``."""
        kind = "signed" if self.signed else "unsigned"
        return f"Q{self.total_bits}.{self.frac_bits} ({kind})"


#: The model's default feature word (normalized HOG features lie in
#: [0, ~1]; a sign bit tolerates filter intermediate values).
FEATURE_FORMAT = FixedPointFormat(total_bits=16, frac_bits=14)

#: The default SVM weight word.
WEIGHT_FORMAT = FixedPointFormat(total_bits=16, frac_bits=12)

#: Wide accumulator: >= feature.frac + weight.frac fractional bits makes
#: sequential MAC accumulation exact (no per-op rounding), and 48 total
#: bits keep 4608-term dot products far from saturation.
ACCUMULATOR_FORMAT = FixedPointFormat(total_bits=48, frac_bits=26)


def quantize(values: np.ndarray | float, fmt: FixedPointFormat) -> np.ndarray:
    """Round ``values`` to the format's grid with saturation.

    Round-half-to-even (the behaviour of ``numpy.round``) is used, which
    matches a convergent-rounding RTL quantizer.  Returns float64 values
    that lie exactly on the representable grid.
    """
    arr = np.asarray(values, dtype=np.float64)
    scaled = np.round(arr / fmt.resolution)
    limit_hi = fmt.max_value / fmt.resolution
    limit_lo = fmt.min_value / fmt.resolution
    return np.clip(scaled, limit_lo, limit_hi) * fmt.resolution


def quantization_error(
    values: np.ndarray, fmt: FixedPointFormat
) -> dict[str, float]:
    """Error statistics of quantizing ``values`` to ``fmt``.

    Returns max absolute error, RMS error, and the fraction of samples
    that saturated — the three quantities the bit-width sweep reports.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise HardwareConfigError("cannot measure error on an empty array")
    q = quantize(arr, fmt)
    err = q - arr
    saturated = np.mean((arr > fmt.max_value) | (arr < fmt.min_value))
    return {
        "max_abs_error": float(np.max(np.abs(err))),
        "rms_error": float(np.sqrt(np.mean(err * err))),
        "saturation_rate": float(saturated),
    }
