"""Analytic frame timing of the accelerator.

The paper's throughput numbers decompose exactly as:

* Per cell row, the classifier needs a 288-cycle pipeline fill
  (8 MACBARs x 36 cycles) plus 36 cycles per block column.  For HDTV at
  8-px cells there are 240 cell columns, hence 239 block columns::

      cycles/row  = 288 + 36 * 239           = 8,892
      cycles/frame = 135 cell rows * 8,892   = 1,200,420

  which is the paper's stated 1,200,420 cycles; at 125 MHz that is
  9.60 ms (< 10 ms, Section 5).

* The HOG extractor of [10] ingests one pixel per cycle, so an HDTV
  frame occupies it for 1080 x 1920 = 2,073,600 cycles = 16.59 ms at
  125 MHz — precisely the paper's 16.6 ms / 60 fps frame interval.
  The extractor, not the classifier, is the pipeline bottleneck
  ("ensuring that our classifier is as fast as the previous HOG
  extractor stage").

* Additional scales classify down-scaled feature grids.  With parallel
  classifier instances (the paper's design) scale classification
  overlaps; with time multiplexing (Hahnle et al. [9]) the per-scale
  cycles add up.

:class:`FrameTimingModel` is parametric in all of these quantities, so
ablation benches can sweep MACBAR count, frame size, scale count and
scheduling policy.
"""

from __future__ import annotations

import dataclasses

from repro.errors import HardwareConfigError


@dataclasses.dataclass(frozen=True)
class ScaleTiming:
    """Classifier cycle breakdown for one pyramid scale."""

    scale: float
    cell_rows: int
    cell_cols: int
    block_cols: int
    cycles_per_row: int
    cycles: int


@dataclasses.dataclass(frozen=True)
class FrameTimingReport:
    """Everything the throughput bench prints for one configuration."""

    extractor_cycles: int
    scale_timings: tuple[ScaleTiming, ...]
    classifier_cycles_total: int
    parallel_scales: bool
    clock_hz: float

    @property
    def classifier_cycles_effective(self) -> int:
        """Cycles the classifier stage occupies per frame interval."""
        if not self.scale_timings:
            return 0
        if self.parallel_scales:
            return max(t.cycles for t in self.scale_timings)
        return self.classifier_cycles_total

    @property
    def bottleneck_cycles(self) -> int:
        """The stage that paces the pipeline."""
        return max(self.extractor_cycles, self.classifier_cycles_effective)

    @property
    def frame_time_s(self) -> float:
        return self.bottleneck_cycles / self.clock_hz

    @property
    def frames_per_second(self) -> float:
        return 1.0 / self.frame_time_s

    @property
    def classifier_time_s(self) -> float:
        return self.classifier_cycles_effective / self.clock_hz

    def meets_rate(self, fps: float) -> bool:
        return self.frames_per_second >= fps


@dataclasses.dataclass(frozen=True)
class FrameTimingModel:
    """Parametric cycle model of the extractor + classifier pipeline.

    Defaults reproduce the paper's configuration: HDTV frames, 8-px
    cells, 2x2-cell blocks, 8 MACBARs at 36 cycles per block column,
    one pixel per cycle into the extractor, 125 MHz.
    """

    image_height: int = 1080
    image_width: int = 1920
    cell_size: int = 8
    block_size: int = 2
    n_macbars: int = 8
    cycles_per_column: int = 36
    pixels_per_cycle: int = 1
    clock_hz: float = 125e6

    def __post_init__(self) -> None:
        for name in (
            "image_height",
            "image_width",
            "cell_size",
            "block_size",
            "n_macbars",
            "cycles_per_column",
            "pixels_per_cycle",
        ):
            if getattr(self, name) < 1:
                raise HardwareConfigError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.clock_hz <= 0:
            raise HardwareConfigError(
                f"clock_hz must be positive, got {self.clock_hz}"
            )
        if self.image_height < self.cell_size or self.image_width < self.cell_size:
            raise HardwareConfigError(
                f"frame {self.image_height}x{self.image_width} smaller than "
                f"one {self.cell_size}-px cell"
            )

    # -- Geometry ---------------------------------------------------------

    @property
    def cell_rows(self) -> int:
        return self.image_height // self.cell_size

    @property
    def cell_cols(self) -> int:
        return self.image_width // self.cell_size

    @property
    def fill_cycles(self) -> int:
        """Pipeline fill per window row (paper: 8 * 36 = 288)."""
        return self.n_macbars * self.cycles_per_column

    # -- Stage cycle counts -------------------------------------------------

    @property
    def extractor_cycles(self) -> int:
        """HOG extractor occupancy for one frame (pixel-streaming)."""
        pixels = self.image_height * self.image_width
        return -(-pixels // self.pixels_per_cycle)  # ceil division

    def scale_timing(self, scale: float) -> ScaleTiming:
        """Classifier cycles for the feature grid at ``scale``.

        The grid at scale ``s`` has ``floor(dim / s)`` cells per axis
        (feature down-sampling shrinks the grid the same way pixel
        down-sampling would).
        """
        if scale <= 0:
            raise HardwareConfigError(f"scale must be positive, got {scale}")
        cell_rows = max(1, int(self.cell_rows / scale))
        cell_cols = max(1, int(self.cell_cols / scale))
        block_cols = max(1, cell_cols - self.block_size + 1)
        cycles_per_row = self.fill_cycles + self.cycles_per_column * block_cols
        return ScaleTiming(
            scale=float(scale),
            cell_rows=cell_rows,
            cell_cols=cell_cols,
            block_cols=block_cols,
            cycles_per_row=cycles_per_row,
            cycles=cell_rows * cycles_per_row,
        )

    def frame_report(
        self,
        scales: tuple[float, ...] = (1.0, 1.2),
        parallel_scales: bool = True,
    ) -> FrameTimingReport:
        """Assemble the full per-frame timing report.

        ``parallel_scales=True`` models the paper's parallel SVM
        classifier instances; ``False`` models a time-multiplexed single
        classifier (the approach of [9]).
        """
        if not scales:
            raise HardwareConfigError("scales must be non-empty")
        timings = tuple(self.scale_timing(s) for s in scales)
        return FrameTimingReport(
            extractor_cycles=self.extractor_cycles,
            scale_timings=timings,
            classifier_cycles_total=sum(t.cycles for t in timings),
            parallel_scales=parallel_scales,
            clock_hz=self.clock_hz,
        )
