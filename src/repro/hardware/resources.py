"""Parametric FPGA resource estimation (Table 2).

The estimator composes per-component cost models — the HOG extractor of
[10], the banked N-HOGMem, per-scale classifier instances (MACBARs,
column buffers, model memory) and the shift-add scaling modules — into
a device-level utilization summary for the Zynq ZC7020.

Calibration: the per-unit constants below were chosen so that the
paper's configuration (2 scales, 8 MACBARs x 16 MACs, 16 banks, 18-row
N-HOGMem, HDTV input) lands on Table 2's reported totals (LUT 26,051;
FF 40,190; LUTRAM 383; BRAM 98.5; DSP48 18; BUFG 1).  Sweeping a
structural parameter (MACBAR count, scale count, bit width, buffer
depth) then extrapolates along the component structure — the purpose
of the ablation benches.  This is an architectural estimate, not a
synthesis flow; see DESIGN.md.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import HardwareConfigError


@dataclasses.dataclass(frozen=True)
class ResourceBudget:
    """Capacity of one FPGA device."""

    name: str
    lut: int
    ff: int
    lutram: int
    bram36: float
    dsp48: int
    bufg: int


#: Xilinx Zynq XC7Z020 (the paper's target, Section 5).
Zc7020 = ResourceBudget(
    name="Zynq XC7Z020",
    lut=53_200,
    ff=106_400,
    lutram=17_400,
    bram36=140.0,
    dsp48=220,
    bufg=32,
)


@dataclasses.dataclass
class ResourceUsage:
    """Absolute resource counts, addable across components."""

    lut: float = 0.0
    ff: float = 0.0
    lutram: float = 0.0
    bram36: float = 0.0
    dsp48: float = 0.0
    bufg: float = 0.0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            lutram=self.lutram + other.lutram,
            bram36=self.bram36 + other.bram36,
            dsp48=self.dsp48 + other.dsp48,
            bufg=self.bufg + other.bufg,
        )

    def utilization(self, budget: ResourceBudget) -> dict[str, float]:
        """Percent of each budget column consumed."""
        return {
            "lut": 100.0 * self.lut / budget.lut,
            "ff": 100.0 * self.ff / budget.ff,
            "lutram": 100.0 * self.lutram / budget.lutram,
            "bram36": 100.0 * self.bram36 / budget.bram36,
            "dsp48": 100.0 * self.dsp48 / budget.dsp48,
            "bufg": 100.0 * self.bufg / budget.bufg,
        }

    def fits(self, budget: ResourceBudget) -> bool:
        return (
            self.lut <= budget.lut
            and self.ff <= budget.ff
            and self.lutram <= budget.lutram
            and self.bram36 <= budget.bram36
            and self.dsp48 <= budget.dsp48
            and self.bufg <= budget.bufg
        )


def bram_for_bits(bits: float) -> float:
    """BRAM36 blocks for a memory of ``bits``, at half-block granularity.

    Xilinx RAMB36 primitives split into two independent RAMB18 halves;
    utilization reports therefore come in 0.5 steps (which is why Table
    2 reads 98.5).
    """
    if bits < 0:
        raise HardwareConfigError(f"bits must be >= 0, got {bits}")
    half_blocks = math.ceil(bits / 18_432.0)  # 18 Kb per RAMB18
    return half_blocks / 2.0


@dataclasses.dataclass(frozen=True)
class ResourceEstimator:
    """Composable cost model of the accelerator's components.

    All structural inputs default to the paper's configuration; the
    per-unit constants are the Table 2 calibration (module docstring).
    """

    n_scales: int = 2
    n_macbars: int = 8
    macs_per_bar: int = 16
    n_banks: int = 16
    nhogmem_rows: int = 18
    cell_cols: int = 240
    n_bins: int = 9
    feature_bits: int = 16
    weight_bits: int = 16
    window_dim: int = 4608  # paper's 16x8 blocks x 36 features
    image_width: int = 1920

    # Per-unit constants (calibrated against Table 2).
    lut_per_mac: float = 37.0
    ff_per_mac: float = 66.0
    lut_per_macbar_tree: float = 260.0
    ff_per_macbar_tree: float = 210.0
    lut_hog_extractor: float = 6_200.0
    ff_hog_extractor: float = 9_400.0
    dsp_hog_extractor: int = 18  # magnitude/orientation/normalizer arithmetic
    lut_scaler: float = 950.0
    ff_scaler: float = 1_300.0
    lut_control_per_scale: float = 900.0
    ff_control_per_scale: float = 1_400.0
    lut_static: float = 3_349.0  # AXI/DMA/camera interface glue
    ff_static: float = 6_174.0
    lutram_static: float = 383.0  # interconnect FIFOs and shift registers
    bram_static: float = 2.0  # DMA buffers

    def __post_init__(self) -> None:
        for name in (
            "n_scales",
            "n_macbars",
            "macs_per_bar",
            "n_banks",
            "nhogmem_rows",
            "cell_cols",
            "n_bins",
            "feature_bits",
            "weight_bits",
            "window_dim",
            "image_width",
        ):
            if getattr(self, name) < 1:
                raise HardwareConfigError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )

    # -- Component estimates -------------------------------------------------

    def hog_extractor(self) -> ResourceUsage:
        """Gradient, cell histogram and block normalizer pipeline [10].

        BRAM: 8 pixel line buffers at the full image width, plus one
        cell-row histogram accumulation buffer.
        """
        line_buffer_bits = 8 * self.image_width * 8
        hist_bits = self.cell_cols * self.n_bins * self.feature_bits
        return ResourceUsage(
            lut=self.lut_hog_extractor,
            ff=self.ff_hog_extractor,
            bram36=bram_for_bits(line_buffer_bits) + bram_for_bits(hist_bits),
            dsp48=self.dsp_hog_extractor,
        )

    def nhogmem(self) -> ResourceUsage:
        """The 16-bank rolling normalized-feature memory.

        Each cell participates in four overlapping blocks and its
        *normalized* value differs per block, so N-HOGMem holds four
        normalized copies of each cell's 9 bins.  Each bank is an
        independent BRAM holding its parity group's share.
        """
        cells = self.nhogmem_rows * self.cell_cols
        bits_per_bank = (
            cells * 4 * self.n_bins * self.feature_bits / self.n_banks
        )
        return ResourceUsage(
            bram36=self.n_banks * bram_for_bits(bits_per_bank),
            lut=120.0,  # bank address decode
            ff=260.0,
        )

    def classifier_instance(self) -> ResourceUsage:
        """One per-scale SVM classifier: MACBAR array + buffers + model.

        BRAM: a double-buffered column FIFO per MACBAR plus the model
        memory holding the 4,608 x 16-bit weight vector.
        """
        n_macs = self.n_macbars * self.macs_per_bar
        column_bits = 2 * self.macs_per_bar * 36 * self.feature_bits
        model_bits = self.window_dim * self.weight_bits
        return ResourceUsage(
            lut=(
                n_macs * self.lut_per_mac
                + self.n_macbars * self.lut_per_macbar_tree
                + self.lut_control_per_scale
            ),
            ff=(
                n_macs * self.ff_per_mac
                + self.n_macbars * self.ff_per_macbar_tree
                + self.ff_control_per_scale
            ),
            bram36=(
                self.n_macbars * bram_for_bits(column_bits)
                + bram_for_bits(model_bits)
            ),
        )

    def scaler_instance(self) -> ResourceUsage:
        """One shift-add feature down-scaling stage with its temporary
        feature memory (Figure 6)."""
        temp_bits = (
            2 * self.cell_cols * self.n_bins * self.feature_bits
        )  # two rows of resampled features between pipeline stages
        return ResourceUsage(
            lut=self.lut_scaler,
            ff=self.ff_scaler,
            bram36=bram_for_bits(temp_bits) * 4,
        )

    def static_region(self) -> ResourceUsage:
        """Clocking, AXI interconnect, DMA — present in any Zynq design."""
        return ResourceUsage(
            lut=self.lut_static,
            ff=self.ff_static,
            lutram=self.lutram_static,
            bram36=self.bram_static,
            bufg=1.0,
        )

    def total(self) -> ResourceUsage:
        """Whole-accelerator usage for the configured scale count.

        Scale 1 needs no scaler; every further scale adds one scaler
        stage and one classifier instance.
        """
        usage = self.hog_extractor() + self.nhogmem() + self.static_region()
        for _ in range(self.n_scales):
            usage = usage + self.classifier_instance()
        for _ in range(self.n_scales - 1):
            usage = usage + self.scaler_instance()
        return usage


#: Table 2 of the paper, for benches to compare against.
PAPER_TABLE2 = ResourceUsage(
    lut=26_051,
    ff=40_190,
    lutram=383,
    bram36=98.5,
    dsp48=18,
    bufg=1,
)
