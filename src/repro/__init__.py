"""Reproduction of *Real-Time Multi-Scale Pedestrian Detection for Driver
Assistance Systems* (Hemmati, Biglari-Abhari, Niar, Berber — DAC 2017).

The package is organized as one sub-package per subsystem:

``repro.imgproc``
    Pure-NumPy image-processing substrate (resize, gradients, filtering,
    drawing) — replaces the OpenCV/MATLAB operations the paper relied on.
``repro.hog``
    Histogram-of-Oriented-Gradients feature extraction, block
    normalization, and the paper's novel *feature down-scaling* module
    used to build HOG feature pyramids.
``repro.svm``
    Linear support vector machine: model, LibLinear-style dual
    coordinate-descent trainer and a Pegasos SGD trainer.
``repro.dataset``
    Synthetic INRIA-substitute pedestrian dataset (seeded, deterministic)
    and the paper's test-set up-sampling protocol.
``repro.detect``
    Sliding-window detection, the conventional image-pyramid detector and
    the proposed feature-pyramid detector, non-maximum suppression.
``repro.eval``
    Accuracy / TP / TN tables, ROC curves, AUC and EER.
``repro.hardware``
    Cycle-level behavioural model of the FPGA accelerator: fixed-point
    arithmetic, banked N-HOGMem, MAC / MACBAR / pipelined SVM classifier
    array, shift-and-add scalers, timing and resource models.
``repro.das``
    Driver-assistance kinematics from the paper's introduction
    (perception-reaction time, braking and stopping distances).
``repro.telemetry``
    Stage-level observability: timing spans, counters, gauges and JSON
    snapshots for the detection hot path (off by default; enable with
    ``DetectorConfig(telemetry=True)`` or ``repro-das profile``).
``repro.stream``
    Streaming frame pipeline: bounded-queue producer/worker/collector
    around the detector with explicit backpressure, per-frame fault
    isolation and in-order emission (``repro-das stream``,
    docs/STREAMING.md).
``repro.core``
    The paper's primary contribution assembled into a user-facing API:
    :class:`repro.core.MultiScalePedestrianDetector`.

Quickstart
----------
>>> from repro.core import MultiScalePedestrianDetector, DetectorConfig
>>> from repro.dataset import SyntheticPedestrianDataset
>>> data = SyntheticPedestrianDataset(seed=0)
>>> det = MultiScalePedestrianDetector.train_default(data, seed=0)
>>> scene = data.make_scene(height=480, width=640, n_pedestrians=2)
>>> detections = det.detect(scene.image)
"""

from repro._version import __version__

__all__ = ["__version__"]
