"""Stage-boundary ndarray contracts, env-gated by ``REPRO_CONTRACTS``.

Hardware reproductions of this pipeline keep multi-stage dataflow
verifiable through stage-boundary *format* contracts — every block RAM
and stream port has a declared width, depth and numeric format.  This
module is the software equivalent: public functions that pass ndarrays
between stages declare the shape / dtype / finiteness they require, and
the declaration is checked at runtime when ``REPRO_CONTRACTS`` is set.

Disabled (the default), every check is a single environment-flag guard
and an immediate return — cheap enough to leave on the per-frame hot
path (contracts sit at stage boundaries, never per window).  Enabled::

    REPRO_CONTRACTS=1 python -m pytest ...

every violation raises :class:`~repro.errors.ContractError` naming the
argument, the expectation and the observed value.

Two forms:

:func:`check_array`
    Imperative, for use at the top of a function body::

        check_array(blocks, "blocks", shape="(R, C, 36)",
                    dtype=np.floating)

:func:`array_contract`
    Declarative decorator; one shared dimension namespace across all
    declared parameters, so ``H`` in two specs must bind to the same
    extent::

        @array_contract(magnitude="(H, W)", orientation="(H, W)")
        def histogram_stage(magnitude, orientation, params): ...

Shape specs are strings like ``"(H, W, 36)"``: integer dims are exact,
names bind on first use and must agree on reuse, and ``_`` is an
anonymous wildcard.  :func:`parse_shape_spec` is the (hypothesis-tested)
parser.  The ``ndarray-boundary-contract`` rule of
:mod:`repro.analysis` requires public array-taking functions in
``imgproc`` / ``hog`` / ``detect`` to route through this module.

See ``docs/CONTRACTS.md`` for the full reference.
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

import numpy as np

from repro.errors import ContractError

__all__ = [
    "ENV_VAR",
    "array_contract",
    "check_array",
    "contracts_enabled",
    "format_shape_spec",
    "parse_shape_spec",
]

#: Environment variable gating every runtime check.
ENV_VAR = "REPRO_CONTRACTS"

#: Values of :data:`ENV_VAR` that leave contracts disabled.
_DISABLED_VALUES = frozenset({"", "0", "false", "no", "off"})

#: One shape-spec token: an integer, a dimension name, or ``_``.
_TOKEN_RE = re.compile(r"\A(?:0|[1-9][0-9]*|[A-Za-z_][A-Za-z0-9_]*)\Z")

_F = TypeVar("_F", bound=Callable[..., Any])

#: A parsed dimension: exact extent, binding name, or ``None`` wildcard.
Dim = "int | str | None"


def contracts_enabled() -> bool:
    """Whether ``REPRO_CONTRACTS`` currently enables runtime checks.

    Read from the environment on every call (one dict lookup), so tests
    and long-lived processes can flip the flag without re-importing.
    """
    value = os.environ.get(ENV_VAR, "")
    return value.strip().lower() not in _DISABLED_VALUES


def parse_shape_spec(
    spec: "str | Sequence[int | str | None]",
) -> tuple[int | str | None, ...]:
    """Parse a shape contract into ``(dim, ...)`` tokens.

    String form: comma-separated dims, optionally parenthesized —
    ``"(H, W, 36)"``, ``"H,W,36"`` and ``"( H ,W, 36 )"`` all parse to
    ``("H", "W", 36)``; a single trailing comma is allowed (``"(N,)"``,
    the tuple idiom).  Each dim is a non-negative integer (exact
    extent), an identifier (named dim: binds on first use, must agree on
    reuse within one check or one decorated call), or ``_`` (anonymous
    wildcard).  ``"()"`` is the 0-d scalar shape.  Sequence form: the
    same tokens as Python values, with ``None`` as the wildcard.

    Raises :class:`~repro.errors.ContractError` on malformed input.
    """
    if not isinstance(spec, str):
        dims: list[int | str | None] = []
        for token in spec:
            if token is None or isinstance(token, int):
                if isinstance(token, int) and token < 0:
                    raise ContractError(
                        f"shape spec dims must be >= 0, got {token}"
                    )
                dims.append(token)
            elif isinstance(token, str):
                dims.extend(parse_shape_spec(token))
            else:
                raise ContractError(
                    f"shape spec token must be int, str or None, got "
                    f"{token!r}"
                )
        return tuple(dims)

    text = spec.strip()
    if text.startswith("(") and text.endswith(")"):
        text = text[1:-1]
    if text.strip() in ("", ","):
        if text.strip() == ",":
            raise ContractError(f"malformed shape spec: {spec!r}")
        return ()
    # Tuple idiom: one trailing comma after content is fine ("(N,)").
    stripped = text.rstrip()
    if stripped.endswith(","):
        text = stripped[:-1]
    dims = []
    for raw in text.split(","):
        token = raw.strip()
        if not _TOKEN_RE.match(token):
            raise ContractError(
                f"malformed shape spec {spec!r}: bad dim {raw.strip()!r}"
            )
        if token.isdigit():
            dims.append(int(token))
        elif token == "_":
            dims.append(None)
        else:
            dims.append(token)
    return tuple(dims)


def format_shape_spec(dims: Sequence[int | str | None]) -> str:
    """Render parsed dims back to canonical string form.

    Inverse of :func:`parse_shape_spec`:
    ``parse_shape_spec(format_shape_spec(d)) == tuple(d)``.
    """
    return "(" + ", ".join(
        "_" if d is None else str(d) for d in dims
    ) + ")"


def _check_dtype(
    x: np.ndarray, name: str, dtype: Any
) -> None:
    candidates = dtype if isinstance(dtype, (tuple, list)) else (dtype,)
    for candidate in candidates:
        if (
            isinstance(candidate, type)
            and issubclass(candidate, np.generic)
            and np.issubdtype(x.dtype, candidate)
        ):
            return
        if not (isinstance(candidate, type)
                and issubclass(candidate, np.generic)):
            if x.dtype == np.dtype(candidate):
                return
    wanted = ", ".join(
        getattr(c, "__name__", str(c)) for c in candidates
    )
    raise ContractError(
        f"{name} has dtype {x.dtype}, expected {wanted}"
    )


def _check_shape(
    x: np.ndarray,
    name: str,
    dims: tuple[int | str | None, ...],
    bindings: dict[str, int],
) -> None:
    if x.ndim != len(dims):
        raise ContractError(
            f"{name} has shape {x.shape} ({x.ndim}-d), expected "
            f"{format_shape_spec(dims)} ({len(dims)}-d)"
        )
    for axis, (actual, dim) in enumerate(zip(x.shape, dims)):
        if dim is None:
            continue
        if isinstance(dim, int):
            if actual != dim:
                raise ContractError(
                    f"{name} has shape {x.shape}, expected "
                    f"{format_shape_spec(dims)} (axis {axis}: "
                    f"{actual} != {dim})"
                )
            continue
        bound = bindings.setdefault(dim, actual)
        if bound != actual:
            raise ContractError(
                f"{name} has shape {x.shape}, expected "
                f"{format_shape_spec(dims)} (axis {axis}: dim {dim!r} "
                f"was {bound}, here {actual})"
            )


def _check_one(
    x: Any,
    name: str,
    *,
    shape: "str | Sequence[int | str | None] | None",
    dtype: Any,
    ndim: "int | tuple[int, ...] | None",
    finite: "bool | None",
    bindings: dict[str, int],
) -> np.ndarray:
    if not isinstance(x, np.ndarray):
        raise ContractError(
            f"{name} must be a numpy.ndarray, got {type(x).__name__}"
        )
    if ndim is not None:
        allowed = ndim if isinstance(ndim, tuple) else (ndim,)
        if x.ndim not in allowed:
            wanted = " or ".join(str(n) for n in allowed)
            raise ContractError(
                f"{name} is {x.ndim}-d (shape {x.shape}), expected "
                f"{wanted}-d"
            )
    if shape is not None:
        _check_shape(x, name, parse_shape_spec(shape), bindings)
    if dtype is not None:
        _check_dtype(x, name, dtype)
    if finite:
        # ``isfinite`` rejects integer dtypes' object cousins only; for
        # plain integer arrays it is vacuously true and cheap to skip.
        if np.issubdtype(x.dtype, np.inexact) and not np.isfinite(x).all():
            raise ContractError(
                f"{name} contains non-finite values (NaN or inf)"
            )
    return x


def check_array(
    x: Any,
    name: str = "array",
    *,
    shape: "str | Sequence[int | str | None] | None" = None,
    dtype: Any = None,
    ndim: "int | tuple[int, ...] | None" = None,
    finite: "bool | None" = None,
) -> Any:
    """Validate one ndarray against its declared stage-boundary contract.

    Returns ``x`` unchanged, so calls can wrap expressions.  When
    ``REPRO_CONTRACTS`` is unset/disabled this is one environment guard
    and a return — safe on the hot path.

    Parameters
    ----------
    x:
        The value to check; anything that is not an ``np.ndarray``
        fails immediately (checks run only when contracts are enabled).
    name:
        How to refer to the value in error messages.
    shape:
        Shape spec, e.g. ``"(H, W, 36)"`` — see :func:`parse_shape_spec`.
        Named dims bind within this single call.
    dtype:
        A dtype-like, an abstract scalar type (``np.floating``), or a
        tuple of either: the array must match one of them.
    ndim:
        Required dimensionality (int or tuple of acceptable ints);
        redundant when ``shape`` is given.
    finite:
        Require every element of an inexact-dtype array to be finite.
    """
    if not contracts_enabled():
        return x
    return _check_one(
        x, name, shape=shape, dtype=dtype, ndim=ndim, finite=finite,
        bindings={},
    )


def _normalize_spec(param: str, spec: Any) -> dict[str, Any]:
    if isinstance(spec, str):
        spec = {"shape": spec}
    elif isinstance(spec, (tuple, list)):
        spec = {"shape": tuple(spec)}
    elif not isinstance(spec, dict):
        raise ContractError(
            f"contract for parameter {param!r} must be a shape spec or a "
            f"dict of check_array keywords, got {type(spec).__name__}"
        )
    unknown = set(spec) - {"shape", "dtype", "ndim", "finite"}
    if unknown:
        raise ContractError(
            f"contract for parameter {param!r} has unknown keys "
            f"{sorted(unknown)}"
        )
    normalized = dict(spec)
    if normalized.get("shape") is not None:
        # Parse eagerly so a malformed spec fails at decoration time,
        # not on the first checked call.
        normalized["shape"] = parse_shape_spec(normalized["shape"])
    return normalized


def array_contract(**specs: Any) -> Callable[[_F], _F]:
    """Declare per-parameter ndarray contracts on a function.

    Keyword names are parameter names; values are either a shape spec
    (``"(H, W)"``) or a dict of :func:`check_array` keywords
    (``{"shape": "(H, W)", "dtype": np.floating, "finite": True}``).
    Named dims share one namespace across all declared parameters of a
    call.  Parameters bound to ``None`` at call time are skipped, so
    optional array arguments compose naturally.

    Spec errors (unknown parameter, malformed shape) raise at decoration
    time.  The disabled-path cost is one wrapper call and one
    environment guard per invocation.
    """
    def decorate(fn: _F) -> _F:
        signature = inspect.signature(fn)
        unknown = set(specs) - set(signature.parameters)
        if unknown:
            raise ContractError(
                f"{fn.__qualname__} has no parameter(s) "
                f"{sorted(unknown)} to put a contract on"
            )
        parsed = {
            param: _normalize_spec(param, spec)
            for param, spec in specs.items()
        }

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if contracts_enabled():
                bound = signature.bind_partial(*args, **kwargs)
                bindings: dict[str, int] = {}
                for param, spec in parsed.items():
                    if param not in bound.arguments:
                        continue
                    value = bound.arguments[param]
                    if value is None:
                        continue
                    _check_one(
                        value, param,
                        shape=spec.get("shape"),
                        dtype=spec.get("dtype"),
                        ndim=spec.get("ndim"),
                        finite=spec.get("finite"),
                        bindings=bindings,
                    )
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
