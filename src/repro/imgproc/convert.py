"""Color-space and intensity conversions."""

from __future__ import annotations

import numpy as np

from repro.contracts import check_array
from repro.errors import ImageError, ParameterError
from repro.imgproc.validate import as_float_image

# ITU-R BT.601 luma weights, the convention used by both OpenCV's
# cvtColor(BGR2GRAY) and MATLAB's rgb2gray.
_LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])


def rgb_to_gray(image: np.ndarray) -> np.ndarray:
    """Convert an ``(H, W, 3)`` RGB image to ``(H, W)`` grayscale.

    Uses the ITU-R BT.601 weights (0.299 R + 0.587 G + 0.114 B), matching
    MATLAB's ``rgb2gray`` which the paper's reference flow used.
    """
    arr = as_float_image(image)
    if arr.ndim != 3 or arr.shape[2] < 3:
        raise ImageError(
            f"rgb_to_gray expects an (H, W, 3) image, got shape {arr.shape}"
        )
    return arr[:, :, :3] @ _LUMA_WEIGHTS


def gamma_correct(image: np.ndarray, gamma: float) -> np.ndarray:
    """Apply power-law (gamma) correction ``out = image ** gamma``.

    Dalal & Triggs evaluate sqrt gamma compression (``gamma=0.5``) as an
    optional HOG preprocessing step.  Pixel values must be non-negative.
    """
    if gamma <= 0:
        raise ParameterError(f"gamma must be positive, got {gamma}")
    arr = as_float_image(image)
    if np.any(arr < 0):
        raise ImageError("gamma_correct requires non-negative pixel values")
    return np.power(arr, gamma)


def rescale_intensity(
    image: np.ndarray,
    out_range: tuple[float, float] = (0.0, 1.0),
) -> np.ndarray:
    """Linearly map the image's [min, max] onto ``out_range``.

    A constant image maps to the lower bound of ``out_range``.
    """
    lo, hi = out_range
    if hi <= lo:
        raise ParameterError(f"out_range must be increasing, got {out_range}")
    arr = as_float_image(image)
    a_min = float(arr.min())
    a_max = float(arr.max())
    if a_max == a_min:
        return np.full_like(arr, lo)
    return (arr - a_min) / (a_max - a_min) * (hi - lo) + lo


def to_uint8(image: np.ndarray) -> np.ndarray:
    """Convert a float image in ``[0, 1]`` to uint8 in ``[0, 255]``.

    Values outside ``[0, 1]`` are clipped before quantization.
    """
    arr = as_float_image(image)
    return np.clip(np.round(arr * 255.0), 0, 255).astype(np.uint8)


def from_uint8(image: np.ndarray) -> np.ndarray:
    """Convert a uint8 image in ``[0, 255]`` to float64 in ``[0, 1]``."""
    arr = np.asarray(image)
    if arr.dtype != np.uint8:
        raise ImageError(f"from_uint8 expects uint8 input, got {arr.dtype}")
    check_array(arr, "image", ndim=(2, 3), dtype=np.uint8)
    return arr.astype(np.float64) / 255.0
