"""Image resizing with nearest, bilinear and bicubic interpolation.

The conventional multi-scale HOG+SVM detector (Figure 1 of the paper)
builds an *image pyramid* by repeatedly resizing the input frame; this
module is that substrate.  The coordinate convention is the half-pixel-
center mapping used by OpenCV and MATLAB ``imresize``::

    src = (dst + 0.5) * (in_len / out_len) - 0.5

Interpolation is separable: rows then columns, each axis handled by a
gather with precomputed taps and weights.  Bicubic uses the Catmull-Rom
/ Keys kernel with ``a = -0.5``.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.contracts import check_array
from repro.errors import ParameterError
from repro.imgproc.validate import as_float_image


class Interpolation(enum.Enum):
    """Interpolation kernel for :func:`resize` and :func:`rescale`."""

    NEAREST = "nearest"
    BILINEAR = "bilinear"
    BICUBIC = "bicubic"


def _source_positions(out_len: int, in_len: int) -> np.ndarray:
    """Half-pixel-center source coordinates for each output index."""
    scale = in_len / out_len
    return (np.arange(out_len) + 0.5) * scale - 0.5


def _cubic_kernel(x: np.ndarray, a: float = -0.5) -> np.ndarray:
    """Keys cubic convolution kernel (Catmull-Rom for ``a = -0.5``)."""
    ax = np.abs(x)
    ax2 = ax * ax
    ax3 = ax2 * ax
    out = np.zeros_like(ax)
    near = ax <= 1.0
    far = (ax > 1.0) & (ax < 2.0)
    out[near] = ((a + 2.0) * ax3 - (a + 3.0) * ax2 + 1.0)[near]
    out[far] = (a * ax3 - 5.0 * a * ax2 + 8.0 * a * ax - 4.0 * a)[far]
    return out


def _interp_axis(
    arr: np.ndarray, out_len: int, axis: int, method: Interpolation
) -> np.ndarray:
    """Resample ``arr`` along ``axis`` to ``out_len`` samples."""
    in_len = arr.shape[axis]
    if out_len == in_len:
        return arr
    moved = np.moveaxis(arr, axis, 0)
    pos = _source_positions(out_len, in_len)

    if method is Interpolation.NEAREST:
        idx = np.clip(np.round(pos), 0, in_len - 1).astype(np.intp)
        out = moved[idx]
        return np.moveaxis(out, 0, axis)

    if method is Interpolation.BILINEAR:
        lo = np.floor(pos).astype(np.intp)
        frac = pos - lo
        i0 = np.clip(lo, 0, in_len - 1)
        i1 = np.clip(lo + 1, 0, in_len - 1)
        w1 = frac.reshape((-1,) + (1,) * (moved.ndim - 1))
        out = moved[i0] * (1.0 - w1) + moved[i1] * w1
        return np.moveaxis(out, 0, axis)

    if method is Interpolation.BICUBIC:
        lo = np.floor(pos).astype(np.intp)
        frac = pos - lo
        out = np.zeros((out_len,) + moved.shape[1:], dtype=np.float64)
        wsum = np.zeros(out_len, dtype=np.float64)
        for tap in (-1, 0, 1, 2):
            idx = np.clip(lo + tap, 0, in_len - 1)
            w = _cubic_kernel(frac - tap)
            wsum += w
            out += moved[idx] * w.reshape((-1,) + (1,) * (moved.ndim - 1))
        # Edge-clamped taps make the weights sum to slightly != 1 at the
        # borders; renormalize so constant images stay constant.
        out /= wsum.reshape((-1,) + (1,) * (moved.ndim - 1))
        return np.moveaxis(out, 0, axis)

    raise ParameterError(f"unsupported interpolation method: {method!r}")


def resize(
    image: np.ndarray,
    out_shape: tuple[int, int],
    method: Interpolation | str = Interpolation.BILINEAR,
) -> np.ndarray:
    """Resize ``image`` to ``out_shape = (height, width)``.

    Works on grayscale ``(H, W)`` and color ``(H, W, C)`` images; the
    channel axis is preserved.

    Parameters
    ----------
    image:
        Input image.
    out_shape:
        Target ``(height, width)``, both strictly positive.
    method:
        Interpolation kernel; a string alias (``"bilinear"`` etc.) is
        also accepted.
    """
    if isinstance(method, str):
        method = Interpolation(method)
    out_h, out_w = int(out_shape[0]), int(out_shape[1])
    if out_h <= 0 or out_w <= 0:
        raise ParameterError(f"out_shape must be positive, got {out_shape}")
    arr = as_float_image(image)
    arr = _interp_axis(arr, out_h, axis=0, method=method)
    arr = _interp_axis(arr, out_w, axis=1, method=method)
    return arr


def resize_grid(
    grid: np.ndarray,
    out_shape: tuple[int, int],
    method: Interpolation | str = Interpolation.BILINEAR,
) -> np.ndarray:
    """Resample a feature grid ``(H, W, ...)`` along its first two axes.

    Unlike :func:`resize` this places no constraint on trailing axes, so
    it can resample HOG cell-histogram grids ``(H, W, n_bins)`` or block
    grids ``(H, W, block_dim)``.  This is the computational core of the
    paper's HOG *feature pyramid*.
    """
    if isinstance(method, str):
        method = Interpolation(method)
    out_h, out_w = int(out_shape[0]), int(out_shape[1])
    if out_h <= 0 or out_w <= 0:
        raise ParameterError(f"out_shape must be positive, got {out_shape}")
    arr = np.asarray(grid, dtype=np.float64)
    if arr.ndim < 2 or arr.shape[0] == 0 or arr.shape[1] == 0:
        raise ParameterError(
            f"grid must be at least 2-D and non-empty, got shape {arr.shape}"
        )
    check_array(arr, "grid", dtype=np.float64)
    arr = _interp_axis(arr, out_h, axis=0, method=method)
    arr = _interp_axis(arr, out_w, axis=1, method=method)
    return arr


def rescale(
    image: np.ndarray,
    scale: float,
    method: Interpolation | str = Interpolation.BILINEAR,
) -> np.ndarray:
    """Resize ``image`` by a scalar ``scale`` factor (> 0).

    The output shape is ``round(dim * scale)`` per axis, with a minimum
    of one pixel.  ``scale > 1`` up-samples (the paper's test-set
    up-sampling protocol uses scales 1.1 … 2.0), ``scale < 1``
    down-samples (image-pyramid construction).
    """
    if scale <= 0:
        raise ParameterError(f"scale must be positive, got {scale}")
    check_array(image, "image", ndim=(2, 3))
    h, w = image.shape[:2]
    out_shape = (max(1, round(h * scale)), max(1, round(w * scale)))
    return resize(image, out_shape, method=method)
