"""Spatial filtering: 2-D convolution, separable filters, Gaussian blur.

Used by the synthetic dataset generator (background texture, camera
blur) and by the Sobel/Prewitt gradient options.  Convolution is
implemented with a vectorized sliding-window gather; borders replicate
edge pixels so outputs keep the input shape.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import check_array
from repro.errors import ParameterError
from repro.imgproc.validate import ensure_grayscale


def _sliding_windows(gray: np.ndarray, kh: int, kw: int) -> np.ndarray:
    """All ``(kh, kw)`` patches of the edge-padded image, shape (H, W, kh, kw)."""
    ph, pw = kh // 2, kw // 2
    padded = np.pad(gray, ((ph, kh - 1 - ph), (pw, kw - 1 - pw)), mode="edge")
    return np.lib.stride_tricks.sliding_window_view(padded, (kh, kw))


def convolve2d(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """2-D convolution (kernel flipped) with edge-replicated borders.

    The output has the same shape as the input.  Kernels may be any
    shape; odd sizes center naturally, even sizes bias half a pixel
    toward the top-left as is conventional.
    """
    gray = ensure_grayscale(image)
    k = np.asarray(kernel, dtype=np.float64)
    if k.ndim != 2 or k.size == 0:
        raise ParameterError(f"kernel must be non-empty 2-D, got shape {k.shape}")
    flipped = k[::-1, ::-1]
    windows = _sliding_windows(gray, k.shape[0], k.shape[1])
    return np.einsum("hwij,ij->hw", windows, flipped)


def separable_filter(
    image: np.ndarray, row_kernel: np.ndarray, col_kernel: np.ndarray
) -> np.ndarray:
    """Apply a separable filter: ``col_kernel`` along rows' axis first?

    Precisely: correlates each *column* direction (axis 0) with
    ``row_kernel`` and each *row* direction (axis 1) with ``col_kernel``,
    equivalent to convolving with ``outer(row_kernel, col_kernel)``.
    """
    rk = check_array(np.asarray(row_kernel, dtype=np.float64).ravel(),
                     "row_kernel", ndim=1, dtype=np.float64)
    ck = check_array(np.asarray(col_kernel, dtype=np.float64).ravel(),
                     "col_kernel", ndim=1, dtype=np.float64)
    if rk.size == 0 or ck.size == 0:
        raise ParameterError("separable kernels must be non-empty")
    return convolve2d(image, np.outer(rk, ck))


def gaussian_kernel1d(sigma: float, radius: int | None = None) -> np.ndarray:
    """Normalized 1-D Gaussian kernel.

    ``radius`` defaults to ``ceil(3 * sigma)`` which captures > 99.7 % of
    the mass.
    """
    if sigma <= 0:
        raise ParameterError(f"sigma must be positive, got {sigma}")
    if radius is None:
        radius = int(np.ceil(3.0 * sigma))
    if radius < 1:
        radius = 1
    x = np.arange(-radius, radius + 1, dtype=np.float64)
    k = np.exp(-0.5 * (x / sigma) ** 2)
    return k / k.sum()


def gaussian_blur(image: np.ndarray, sigma: float) -> np.ndarray:
    """Isotropic Gaussian blur (separable implementation)."""
    check_array(image, "image", ndim=(2, 3))
    k = gaussian_kernel1d(sigma)
    return separable_filter(image, k, k)


def box_blur(image: np.ndarray, size: int) -> np.ndarray:
    """Mean filter over a ``size x size`` neighborhood."""
    if size < 1:
        raise ParameterError(f"box size must be >= 1, got {size}")
    check_array(image, "image", ndim=(2, 3))
    k = np.full((size, size), 1.0 / (size * size))
    return convolve2d(image, k)
