"""Pure-NumPy image-processing substrate.

This sub-package replaces the OpenCV / MATLAB image operations used by
the paper's software reference flow: grayscale conversion, image
resizing (the *image pyramid* of the conventional detector), gradient
computation (the first HOG stage), smoothing filters, and the drawing
primitives used by the synthetic dataset generator.

All functions accept and return ``numpy.ndarray`` images.  Grayscale
images are ``(H, W)`` float64 arrays; color images are ``(H, W, 3)``.
Pixel values are conventionally in ``[0, 1]`` but are not clipped unless
a function documents otherwise.
"""

from repro.imgproc.convert import (
    from_uint8,
    gamma_correct,
    rescale_intensity,
    rgb_to_gray,
    to_uint8,
)
from repro.imgproc.draw import (
    alpha_blend_region,
    draw_line,
    fill_ellipse,
    fill_polygon,
    fill_rectangle,
)
from repro.imgproc.filters import (
    box_blur,
    convolve2d,
    gaussian_blur,
    gaussian_kernel1d,
    separable_filter,
)
from repro.imgproc.gradients import (
    GradientFilter,
    gradient_polar,
    gradient_xy,
)
from repro.imgproc.resize import Interpolation, rescale, resize, resize_grid
from repro.imgproc.validate import (
    as_float_image,
    check_canvas,
    ensure_grayscale,
    require_min_size,
)

__all__ = [
    "as_float_image",
    "check_canvas",
    "ensure_grayscale",
    "require_min_size",
    "rgb_to_gray",
    "gamma_correct",
    "rescale_intensity",
    "to_uint8",
    "from_uint8",
    "resize",
    "rescale",
    "resize_grid",
    "Interpolation",
    "gradient_xy",
    "gradient_polar",
    "GradientFilter",
    "convolve2d",
    "separable_filter",
    "gaussian_kernel1d",
    "gaussian_blur",
    "box_blur",
    "fill_rectangle",
    "fill_ellipse",
    "fill_polygon",
    "draw_line",
    "alpha_blend_region",
]
