"""Rasterization primitives for the synthetic pedestrian generator.

These draw *into* a float grayscale canvas in place, with optional
per-shape alpha, and clip silently at the canvas borders (shapes partly
outside the canvas are simply cropped).  Coordinates follow the image
convention: ``(row, col)`` with row 0 at the top.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError, ParameterError
from repro.imgproc.validate import check_canvas


def _blend(canvas: np.ndarray, mask: np.ndarray, value: float, alpha: float) -> None:
    if not 0.0 <= alpha <= 1.0:
        raise ParameterError(f"alpha must be in [0, 1], got {alpha}")
    canvas[mask] = (1.0 - alpha) * canvas[mask] + alpha * value


def fill_rectangle(
    canvas: np.ndarray,
    top: float,
    left: float,
    height: float,
    width: float,
    value: float,
    *,
    alpha: float = 1.0,
) -> None:
    """Fill an axis-aligned rectangle; fractional bounds are rounded."""
    check_canvas(canvas)
    if height <= 0 or width <= 0:
        return
    r0 = max(0, int(round(top)))
    c0 = max(0, int(round(left)))
    r1 = min(canvas.shape[0], int(round(top + height)))
    c1 = min(canvas.shape[1], int(round(left + width)))
    if r0 >= r1 or c0 >= c1:
        return
    region = canvas[r0:r1, c0:c1]
    region[:] = (1.0 - alpha) * region + alpha * value


def fill_ellipse(
    canvas: np.ndarray,
    center_row: float,
    center_col: float,
    radius_row: float,
    radius_col: float,
    value: float,
    *,
    alpha: float = 1.0,
    rotation: float = 0.0,
) -> None:
    """Fill an ellipse, optionally rotated by ``rotation`` radians."""
    check_canvas(canvas)
    if radius_row <= 0 or radius_col <= 0:
        return
    reach = max(radius_row, radius_col) + 1.0
    r0 = max(0, int(np.floor(center_row - reach)))
    r1 = min(canvas.shape[0], int(np.ceil(center_row + reach)) + 1)
    c0 = max(0, int(np.floor(center_col - reach)))
    c1 = min(canvas.shape[1], int(np.ceil(center_col + reach)) + 1)
    if r0 >= r1 or c0 >= c1:
        return
    rr, cc = np.mgrid[r0:r1, c0:c1]
    dr = rr - center_row
    dc = cc - center_col
    if rotation != 0.0:
        cos_t, sin_t = np.cos(rotation), np.sin(rotation)
        dr, dc = cos_t * dr - sin_t * dc, sin_t * dr + cos_t * dc
    mask = (dr / radius_row) ** 2 + (dc / radius_col) ** 2 <= 1.0
    _blend(canvas[r0:r1, c0:c1], mask, value, alpha)


def fill_polygon(
    canvas: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    value: float,
    *,
    alpha: float = 1.0,
) -> None:
    """Fill a simple polygon given by vertex ``rows`` / ``cols`` arrays.

    Uses the even-odd (crossing-number) rule evaluated on the polygon's
    bounding box, which is exact for the convex quads the dataset
    generator draws (torsos, limbs).
    """
    check_canvas(canvas)
    rows = np.asarray(rows, dtype=np.float64).ravel()
    cols = np.asarray(cols, dtype=np.float64).ravel()
    if rows.size != cols.size or rows.size < 3:
        raise ParameterError(
            f"polygon needs >= 3 matching vertices, got {rows.size}/{cols.size}"
        )
    r0 = max(0, int(np.floor(rows.min())))
    r1 = min(canvas.shape[0], int(np.ceil(rows.max())) + 1)
    c0 = max(0, int(np.floor(cols.min())))
    c1 = min(canvas.shape[1], int(np.ceil(cols.max())) + 1)
    if r0 >= r1 or c0 >= c1:
        return
    rr, cc = np.mgrid[r0:r1, c0:c1]
    inside = np.zeros(rr.shape, dtype=bool)
    n = rows.size
    for i in range(n):
        r_a, c_a = rows[i], cols[i]
        r_b, c_b = rows[(i + 1) % n], cols[(i + 1) % n]
        if r_a == r_b:
            continue
        crosses = (rr >= np.minimum(r_a, r_b)) & (rr < np.maximum(r_a, r_b))
        col_at = c_a + (rr - r_a) * (c_b - c_a) / (r_b - r_a)
        inside ^= crosses & (cc < col_at)
    _blend(canvas[r0:r1, c0:c1], inside, value, alpha)


def draw_line(
    canvas: np.ndarray,
    r0: float,
    c0: float,
    r1: float,
    c1: float,
    value: float,
    *,
    thickness: float = 1.0,
    alpha: float = 1.0,
) -> None:
    """Draw a line segment of the given ``thickness`` (a filled capsule)."""
    check_canvas(canvas)
    if thickness <= 0:
        raise ParameterError(f"thickness must be positive, got {thickness}")
    half = thickness / 2.0
    lo_r = max(0, int(np.floor(min(r0, r1) - half - 1)))
    hi_r = min(canvas.shape[0], int(np.ceil(max(r0, r1) + half + 1)) + 1)
    lo_c = max(0, int(np.floor(min(c0, c1) - half - 1)))
    hi_c = min(canvas.shape[1], int(np.ceil(max(c0, c1) + half + 1)) + 1)
    if lo_r >= hi_r or lo_c >= hi_c:
        return
    rr, cc = np.mgrid[lo_r:hi_r, lo_c:hi_c]
    dr, dc = r1 - r0, c1 - c0
    seg_len2 = dr * dr + dc * dc
    if seg_len2 == 0:
        dist2 = (rr - r0) ** 2 + (cc - c0) ** 2
    else:
        t = ((rr - r0) * dr + (cc - c0) * dc) / seg_len2
        t = np.clip(t, 0.0, 1.0)
        dist2 = (rr - (r0 + t * dr)) ** 2 + (cc - (c0 + t * dc)) ** 2
    mask = dist2 <= half * half
    _blend(canvas[lo_r:hi_r, lo_c:hi_c], mask, value, alpha)


def alpha_blend_region(
    canvas: np.ndarray,
    patch: np.ndarray,
    top: int,
    left: int,
    *,
    alpha: float = 1.0,
) -> None:
    """Blend ``patch`` onto ``canvas`` at ``(top, left)``, cropping at edges."""
    check_canvas(canvas)
    patch = np.asarray(patch, dtype=np.float64)
    if patch.ndim != 2:
        raise ImageError(f"patch must be 2-D, got shape {patch.shape}")
    r0, c0 = int(top), int(left)
    r1, c1 = r0 + patch.shape[0], c0 + patch.shape[1]
    pr0 = max(0, -r0)
    pc0 = max(0, -c0)
    cr0, cc0 = max(0, r0), max(0, c0)
    cr1, cc1 = min(canvas.shape[0], r1), min(canvas.shape[1], c1)
    if cr0 >= cr1 or cc0 >= cc1:
        return
    sub = patch[pr0 : pr0 + (cr1 - cr0), pc0 : pc0 + (cc1 - cc0)]
    region = canvas[cr0:cr1, cc0:cc1]
    region[:] = (1.0 - alpha) * region + alpha * sub
