"""Image gradients: the first stage of HOG feature extraction.

Implements the centered ``[-1, 0, 1]`` derivative mask that Dalal &
Triggs found optimal for HOG, plus Sobel and Prewitt alternatives, and
the conversion to polar form (magnitude ``m(x, y)`` and unsigned
orientation ``theta(x, y)``, equations (1)-(2) of the paper).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.contracts import check_array
from repro.errors import ParameterError
from repro.imgproc.validate import ensure_grayscale


class GradientFilter(enum.Enum):
    """Derivative mask used by :func:`gradient_xy`."""

    CENTERED = "centered"  # [-1, 0, 1] — the HOG default
    SOBEL = "sobel"
    PREWITT = "prewitt"


def _centered_diff(gray: np.ndarray, axis: int) -> np.ndarray:
    """Centered difference with replicated borders along ``axis``."""
    padded = np.pad(
        gray,
        [(1, 1) if ax == axis else (0, 0) for ax in range(gray.ndim)],
        mode="edge",
    )
    upper = np.take(padded, range(2, padded.shape[axis]), axis=axis)
    lower = np.take(padded, range(0, padded.shape[axis] - 2), axis=axis)
    return (upper - lower) / 2.0


def gradient_xy(
    image: np.ndarray,
    method: GradientFilter | str = GradientFilter.CENTERED,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute horizontal and vertical derivatives ``(fx, fy)``.

    ``fx`` is the derivative along columns (x, horizontal), ``fy`` along
    rows (y, vertical).  Borders are handled by edge replication so the
    output has the same shape as the input.

    Note the CENTERED mask keeps the conventional ``[-1, 0, 1] / 2``
    scaling; HOG is invariant to a common positive scale factor on both
    derivatives because block normalization divides it out.
    """
    if isinstance(method, str):
        method = GradientFilter(method)
    gray = ensure_grayscale(image)

    if method is GradientFilter.CENTERED:
        fx = _centered_diff(gray, axis=1)
        fy = _centered_diff(gray, axis=0)
        return fx, fy

    if method in (GradientFilter.SOBEL, GradientFilter.PREWITT):
        smooth = (
            np.array([1.0, 2.0, 1.0])
            if method is GradientFilter.SOBEL
            else np.array([1.0, 1.0, 1.0])
        )
        # Local import: filters depends only on validate, no cycle.
        from repro.imgproc.filters import separable_filter

        # separable_filter convolves (flips the kernel); writing the
        # derivative tap as [1, 0, -1] realizes correlation with the
        # conventional [-1, 0, 1] mask.
        deriv = np.array([1.0, 0.0, -1.0])
        fx = separable_filter(gray, row_kernel=smooth, col_kernel=deriv)
        fy = separable_filter(gray, row_kernel=deriv, col_kernel=smooth)
        return fx, fy

    raise ParameterError(f"unsupported gradient filter: {method!r}")


def gradient_polar(
    image: np.ndarray,
    method: GradientFilter | str = GradientFilter.CENTERED,
    *,
    signed: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Gradient magnitude and orientation per equations (1)-(2).

    Returns
    -------
    magnitude:
        ``sqrt(fx**2 + fy**2)``.
    orientation:
        Angle in radians.  Unsigned (the HOG default): folded into
        ``[0, pi)``.  Signed: in ``[0, 2*pi)``.
    """
    check_array(image, "image", ndim=(2, 3))
    fx, fy = gradient_xy(image, method=method)
    # sqrt(fx^2 + fy^2) rather than np.hypot: gradients of unit-range
    # images cannot overflow the square, and hypot's overflow-safe
    # scaling costs ~6x on full frames.
    magnitude = np.sqrt(fx * fx + fy * fy)
    orientation = np.arctan2(fy, fx)  # [-pi, pi]
    # Fold into [0, period) by adding one period to the negatives —
    # arctan2 output needs at most a single wrap, and np.mod costs more
    # than the rest of this function combined.
    period = 2.0 * np.pi if signed else np.pi
    np.add(orientation, period, out=orientation, where=orientation < 0.0)
    # The fold can land exactly on the right endpoint (angle == -pi
    # signed, or round-off near zero unsigned); pull it back to 0.
    orientation[orientation >= period] = 0.0
    return magnitude, orientation
