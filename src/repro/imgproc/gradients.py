"""Image gradients: the first stage of HOG feature extraction.

Implements the centered ``[-1, 0, 1]`` derivative mask that Dalal &
Triggs found optimal for HOG, plus Sobel and Prewitt alternatives, and
the conversion to polar form (magnitude ``m(x, y)`` and unsigned
orientation ``theta(x, y)``, equations (1)-(2) of the paper).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

import numpy as np

from repro.contracts import check_array
from repro.errors import ParameterError
from repro.imgproc.validate import ensure_grayscale

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.arena import BufferArena


class GradientFilter(enum.Enum):
    """Derivative mask used by :func:`gradient_xy`."""

    CENTERED = "centered"  # [-1, 0, 1] — the HOG default
    SOBEL = "sobel"
    PREWITT = "prewitt"


def _centered_diff(gray: np.ndarray, axis: int) -> np.ndarray:
    """Centered difference with replicated borders along ``axis``."""
    padded = np.pad(
        gray,
        [(1, 1) if ax == axis else (0, 0) for ax in range(gray.ndim)],
        mode="edge",
    )
    upper = np.take(padded, range(2, padded.shape[axis]), axis=axis)
    lower = np.take(padded, range(0, padded.shape[axis] - 2), axis=axis)
    return (upper - lower) / 2.0


def gradient_xy(
    image: np.ndarray,
    method: GradientFilter | str = GradientFilter.CENTERED,
) -> tuple[np.ndarray, np.ndarray]:
    """Compute horizontal and vertical derivatives ``(fx, fy)``.

    ``fx`` is the derivative along columns (x, horizontal), ``fy`` along
    rows (y, vertical).  Borders are handled by edge replication so the
    output has the same shape as the input.

    Note the CENTERED mask keeps the conventional ``[-1, 0, 1] / 2``
    scaling; HOG is invariant to a common positive scale factor on both
    derivatives because block normalization divides it out.
    """
    if isinstance(method, str):
        method = GradientFilter(method)
    gray = ensure_grayscale(image)

    if method is GradientFilter.CENTERED:
        fx = _centered_diff(gray, axis=1)
        fy = _centered_diff(gray, axis=0)
        return fx, fy

    if method in (GradientFilter.SOBEL, GradientFilter.PREWITT):
        smooth = (
            np.array([1.0, 2.0, 1.0])
            if method is GradientFilter.SOBEL
            else np.array([1.0, 1.0, 1.0])
        )
        # Local import: filters depends only on validate, no cycle.
        from repro.imgproc.filters import separable_filter

        # separable_filter convolves (flips the kernel); writing the
        # derivative tap as [1, 0, -1] realizes correlation with the
        # conventional [-1, 0, 1] mask.
        deriv = np.array([1.0, 0.0, -1.0])
        fx = separable_filter(gray, row_kernel=smooth, col_kernel=deriv)
        fy = separable_filter(gray, row_kernel=deriv, col_kernel=smooth)
        return fx, fy

    raise ParameterError(f"unsupported gradient filter: {method!r}")


def _centered_diff_into(
    gray: np.ndarray, axis: int, out: np.ndarray
) -> np.ndarray:
    """:func:`_centered_diff` written into ``out`` (2-D, no np.pad).

    Interior points use pure slice arithmetic in place; the replicated
    border collapses to a one-line difference per edge.  Bitwise
    identical to the padded formulation: both compute
    ``(upper - lower) / 2`` (``* 0.5`` is the same exact operation for
    a division by a power of two).
    """
    n = gray.shape[axis]
    if axis == 0:
        if n == 1:
            out.fill(0.0)
            return out
        np.subtract(gray[2:, :], gray[:-2, :], out=out[1:-1, :])
        np.subtract(gray[1, :], gray[0, :], out=out[0, :])
        np.subtract(gray[-1, :], gray[-2, :], out=out[-1, :])
    else:
        if n == 1:
            out.fill(0.0)
            return out
        np.subtract(gray[:, 2:], gray[:, :-2], out=out[:, 1:-1])
        np.subtract(gray[:, 1], gray[:, 0], out=out[:, 0])
        np.subtract(gray[:, -1], gray[:, -2], out=out[:, -1])
    out *= 0.5
    return out


def gradient_polar(
    image: np.ndarray,
    method: GradientFilter | str = GradientFilter.CENTERED,
    *,
    signed: bool = False,
    out_magnitude: np.ndarray | None = None,
    out_orientation: np.ndarray | None = None,
    arena: BufferArena | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Gradient magnitude and orientation per equations (1)-(2).

    ``out_magnitude`` / ``out_orientation`` preallocate the results
    (must both be given or both omitted): float64, the grayscale
    image's shape, C-contiguous, and not aliasing ``image`` — the
    ``out=`` contract of docs/MEMORY.md, violations raise
    :class:`~repro.errors.ParameterError`.  ``arena`` additionally
    supplies the ``fx`` / ``fy`` derivative scratch (names
    ``imgproc.fx`` / ``imgproc.fy``) for the CENTERED mask, making the
    whole stage allocation-free in steady state.  Results are bitwise
    identical to the allocating path.

    Returns
    -------
    magnitude:
        ``sqrt(fx**2 + fy**2)``.
    orientation:
        Angle in radians.  Unsigned (the HOG default): folded into
        ``[0, pi)``.  Signed: in ``[0, 2*pi)``.
    """
    check_array(image, "image", ndim=(2, 3))
    if (out_magnitude is None) != (out_orientation is None):
        raise ParameterError(
            "gradient_polar: out_magnitude and out_orientation must be "
            "given together"
        )
    if out_magnitude is None:
        fx, fy = gradient_xy(image, method=method)
        # sqrt(fx^2 + fy^2) rather than np.hypot: gradients of
        # unit-range images cannot overflow the square, and hypot's
        # overflow-safe scaling costs ~6x on full frames.
        magnitude = np.sqrt(fx * fx + fy * fy)
        orientation = np.arctan2(fy, fx)  # [-pi, pi]
    else:
        from repro.arena import check_out

        gray = ensure_grayscale(image)
        check_out(out_magnitude, "gradient_polar", gray.shape,
                  np.float64, image, out_orientation)
        check_out(out_orientation, "gradient_polar", gray.shape,
                  np.float64, image)
        if isinstance(method, str):
            method = GradientFilter(method)
        if arena is not None and method is GradientFilter.CENTERED:
            fx = _centered_diff_into(
                gray, 1, arena.get("imgproc.fx", gray.shape, np.float64)
            )
            fy = _centered_diff_into(
                gray, 0, arena.get("imgproc.fy", gray.shape, np.float64)
            )
        else:
            fx, fy = gradient_xy(gray, method=method)
        magnitude = out_magnitude
        orientation = out_orientation
        # orientation doubles as the fy^2 scratch: it is overwritten by
        # arctan2 right after the magnitude is finished.
        np.multiply(fy, fy, out=orientation)
        np.multiply(fx, fx, out=magnitude)
        np.add(magnitude, orientation, out=magnitude)
        np.sqrt(magnitude, out=magnitude)
        np.arctan2(fy, fx, out=orientation)  # [-pi, pi]
    # Fold into [0, period) by adding one period to the negatives —
    # arctan2 output needs at most a single wrap, and np.mod costs more
    # than the rest of this function combined.
    period = 2.0 * np.pi if signed else np.pi
    np.add(orientation, period, out=orientation, where=orientation < 0.0)
    # The fold can land exactly on the right endpoint (angle == -pi
    # signed, or round-off near zero unsigned); pull it back to 0.
    orientation[orientation >= period] = 0.0
    return magnitude, orientation
