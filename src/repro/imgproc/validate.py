"""Input validation helpers shared by the image-processing functions.

These are the always-on gatekeepers (they raise :class:`ImageError`
regardless of environment); each additionally routes through
:func:`repro.contracts.check_array`, so they double as stage-boundary
contract declarations and satisfy the ``ndarray-boundary-contract``
lint rule for every caller.
"""

from __future__ import annotations

import numpy as np

from repro.contracts import check_array
from repro.errors import ImageError


def as_float_image(image: np.ndarray, *, name: str = "image") -> np.ndarray:
    """Validate ``image`` and return it as a float64 array.

    Accepts 2-D grayscale or 3-D ``(H, W, C)`` arrays with 1, 3 or 4
    channels.  Integer inputs are converted to float64 *without*
    rescaling (use :func:`repro.imgproc.from_uint8` for ``[0, 255]`` →
    ``[0, 1]`` conversion).

    Raises
    ------
    ImageError
        If the array is empty, has an unsupported number of dimensions
        or channels, or contains non-finite values.
    """
    arr = np.asarray(image)
    if arr.ndim not in (2, 3):
        raise ImageError(
            f"{name} must be 2-D or 3-D, got {arr.ndim}-D shape {arr.shape}"
        )
    if arr.size == 0:
        raise ImageError(f"{name} is empty (shape {arr.shape})")
    if arr.ndim == 3 and arr.shape[2] not in (1, 3, 4):
        raise ImageError(
            f"{name} has {arr.shape[2]} channels; expected 1, 3 or 4"
        )
    out = arr.astype(np.float64, copy=False)
    if not np.all(np.isfinite(out)):
        raise ImageError(f"{name} contains NaN or infinite pixel values")
    # The checks above already guarantee this contract; restating it
    # through check_array declares the boundary for REPRO_CONTRACTS.
    return check_array(out, name, ndim=(2, 3), dtype=np.float64,
                       finite=True)


def ensure_grayscale(image: np.ndarray, *, name: str = "image") -> np.ndarray:
    """Validate ``image`` and collapse it to a 2-D float64 grayscale array.

    Color inputs are converted with the ITU-R BT.601 luma weights; a
    trailing singleton channel axis is squeezed away.
    """
    arr = as_float_image(image, name=name)
    if arr.ndim == 2:
        return arr
    if arr.shape[2] == 1:
        return arr[:, :, 0]
    # Local import avoids a circular dependency at module-import time.
    from repro.imgproc.convert import rgb_to_gray

    return rgb_to_gray(arr)


def require_min_size(
    image: np.ndarray, min_height: int, min_width: int, *, name: str = "image"
) -> None:
    """Raise :class:`ImageError` if ``image`` is smaller than the minimum."""
    h, w = image.shape[:2]
    if h < min_height or w < min_width:
        raise ImageError(
            f"{name} is {h}x{w}; the operation requires at least "
            f"{min_height}x{min_width}"
        )
    check_array(image, name, ndim=(2, 3))


def check_canvas(canvas: np.ndarray, *, name: str = "canvas") -> np.ndarray:
    """Validate an in-place drawing target: a 2-D float64 array.

    The drawing primitives mutate their canvas, so unlike
    :func:`as_float_image` no converting copy is acceptable — the input
    must already be float64.
    """
    if not isinstance(canvas, np.ndarray) or canvas.dtype != np.float64:
        raise ImageError(f"{name} must be a float64 numpy array")
    if canvas.ndim != 2:
        raise ImageError(
            f"drawing requires a 2-D grayscale {name}, got shape "
            f"{canvas.shape}"
        )
    return check_array(canvas, name, ndim=2, dtype=np.float64)
