"""Per-worker preallocated buffer arena for the frame hot path.

After the partial-score conv scorer (PR 4) and the exact early-reject
cascade (PR 7), the remaining steady-state cost of the frame path is
allocation: every frame allocated fresh gradient, histogram, block and
partial-score arrays even though consecutive frames of one stream have
identical shapes.  The paper's hardware (and the 58.6 mW DPM detector
of Suleiman et al., PAPERS.md) sidesteps this with fixed on-chip
buffers sized once for the configured resolution; :class:`BufferArena`
is the software transcription of that discipline.

An arena is a named collection of byte slabs.  Hot kernels request a
buffer by *name* (``arena.get("hog.magnitude", shape, dtype)``) and
receive an ndarray view over the slab registered under that name; the
slab is allocated on first use, grown when a larger shape arrives, and
**reused verbatim** on every later request — after the first frame
(warmup) the steady state performs no hot-path slab allocations at
all.  Keying is plan-style, like
:func:`repro.detect.scoring.plan_for`: the slab's identity is the
buffer's *role* in the pipeline, while the effective (shape, dtype)
key of a stream is whatever the current frame geometry and scale
ladder demand — a shape change shows up as an ``arena.resizes`` (grow)
or an ``arena.fallback_alloc`` (capped arena) instead of silently
churning the allocator.

Ownership contract (docs/MEMORY.md): an arena has a **single owner** —
one detector (and the extractor/scaler it owns) on one thread.  Buffers
returned by :meth:`BufferArena.get` are valid until the same name is
requested again; the detector stack requests each name at most once per
frame, so arena-backed arrays are frame-lifetime.  Arenas are never
shared across threads (the stream pipeline clones one detector — hence
one arena — per worker) and never cross the process boundary (each
pool worker rebuilds its detector, and with it a private arena, from
the pickled :class:`~repro.parallel.DetectorSpec`).

Telemetry (all ``arena.*``, docs/TELEMETRY.md): ``arena.hits`` /
``arena.misses`` / ``arena.resizes`` counters, ``arena.fallback_alloc``
for requests a capped arena declined, and the ``arena.slab_bytes``
gauge tracking total bytes held.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.telemetry import MetricsRegistry, NULL_TELEMETRY

__all__ = ["BufferArena", "check_out"]


def check_out(
    out: np.ndarray,
    name: str,
    shape: tuple[int, ...],
    dtype: np.dtype,
    *aliases: np.ndarray,
) -> np.ndarray:
    """Validate an ``out=`` destination against the kernel's contract.

    The single gatekeeper behind every ``out=`` kernel parameter
    (docs/MEMORY.md, "out= kernel conventions"): ``out`` must match the
    result's exact ``shape`` and ``dtype``, be writable and
    C-contiguous (kernels fill it with strided in-place ops that assume
    the default layout), and must not share memory with any of the
    kernel's input arrays (``aliases``) — an aliased destination would
    let partially-written results feed back into the same kernel's
    reads.  Violations raise :class:`~repro.errors.ParameterError`.
    """
    if not isinstance(out, np.ndarray):
        raise ParameterError(
            f"{name}: out= must be an ndarray, got {type(out).__name__}"
        )
    if tuple(out.shape) != tuple(shape):
        raise ParameterError(
            f"{name}: out= has shape {tuple(out.shape)}, expected "
            f"{tuple(shape)}"
        )
    if out.dtype != np.dtype(dtype):
        raise ParameterError(
            f"{name}: out= has dtype {out.dtype}, expected "
            f"{np.dtype(dtype)}"
        )
    if not out.flags.writeable:
        raise ParameterError(f"{name}: out= is not writable")
    if not out.flags.c_contiguous:
        raise ParameterError(f"{name}: out= must be C-contiguous")
    for other in aliases:
        if other is not None and np.shares_memory(out, other):
            raise ParameterError(
                f"{name}: out= shares memory with an input array; "
                f"aliased destinations are not supported"
            )
    return out


class BufferArena:
    """Named, growable byte slabs serving preallocated ndarray views.

    Parameters
    ----------
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; every
        request is counted (``arena.hits`` / ``arena.misses`` /
        ``arena.resizes`` / ``arena.fallback_alloc``) and the total
        held bytes are published as the ``arena.slab_bytes`` gauge.
    max_bytes:
        Optional cap on the total bytes the arena may hold.  A request
        that would push the arena past the cap is served by a plain
        allocation instead (counted as ``arena.fallback_alloc``) — the
        degenerate-but-safe path for one-off shape excursions (e.g. a
        single oversized frame in a stream).  ``None`` (default) means
        uncapped: the arena grows to the high-water mark of its
        workload and stays there.

    Not thread-safe by design — see the module docstring's ownership
    contract.  An arena is as cheap to construct as a dict; sharing one
    across threads to save its footprint buys a data race, not memory.
    """

    def __init__(
        self,
        telemetry: MetricsRegistry | None = None,
        *,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ParameterError(
                f"max_bytes must be >= 0, got {max_bytes}"
            )
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.max_bytes = max_bytes
        self._slabs: dict[str, np.ndarray] = {}
        self.hits = 0
        self.misses = 0
        self.resizes = 0
        self.fallback_allocs = 0

    @property
    def slab_bytes(self) -> int:
        """Total bytes currently held across all named slabs."""
        return sum(s.nbytes for s in self._slabs.values())

    @property
    def names(self) -> tuple[str, ...]:
        """Registered slab names, in first-request order."""
        return tuple(self._slabs)

    def capacity(self, name: str) -> int:
        """Byte capacity of the slab registered under ``name`` (0 if none)."""
        slab = self._slabs.get(name)
        return 0 if slab is None else slab.nbytes

    def get(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type | str = np.float64,
    ) -> np.ndarray:
        """A writable ``(shape, dtype)`` array backed by the ``name`` slab.

        The returned array's contents are **undefined** (whatever the
        previous user of the slab left behind); callers that need zeros
        must fill it themselves (:meth:`zeros`).  It is valid until the
        next ``get`` of the same name — requesting a name invalidates
        the view handed out for it before.
        """
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        slab = self._slabs.get(name)
        tm = self.telemetry
        if slab is not None and slab.nbytes >= nbytes:
            self.hits += 1
            if tm.enabled:
                tm.inc("arena.hits")
        else:
            grow = nbytes - (0 if slab is None else slab.nbytes)
            if (self.max_bytes is not None
                    and self.slab_bytes + grow > self.max_bytes):
                # Over the cap: serve a one-off plain allocation rather
                # than evicting a slab another stage still references.
                self.fallback_allocs += 1
                if tm.enabled:
                    tm.inc("arena.fallback_alloc")
                return np.empty(shape, dtype=dtype)
            if slab is None:
                self.misses += 1
                if tm.enabled:
                    tm.inc("arena.misses")
            else:
                self.resizes += 1
                if tm.enabled:
                    tm.inc("arena.resizes")
            slab = np.empty(nbytes, dtype=np.uint8)
            self._slabs[name] = slab
            if tm.enabled:
                tm.set_gauge("arena.slab_bytes", float(self.slab_bytes))
        return np.ndarray(shape, dtype=dtype, buffer=slab)

    def zeros(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type | str = np.float64,
    ) -> np.ndarray:
        """Like :meth:`get`, but zero-filled (in place, no allocation)."""
        out = self.get(name, shape, dtype)
        out.fill(0)
        return out

    def release_all(self) -> None:
        """Drop every slab (views handed out before become dangling)."""
        self._slabs.clear()
        if self.telemetry.enabled:
            self.telemetry.set_gauge("arena.slab_bytes", 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BufferArena(slabs={len(self._slabs)}, "
            f"bytes={self.slab_bytes}, hits={self.hits}, "
            f"misses={self.misses}, resizes={self.resizes})"
        )
