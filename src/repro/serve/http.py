"""Minimal asyncio HTTP/1.1 front end for :class:`DetectionService`.

The container ships no web framework, so this is a deliberately small
hand-rolled server on :func:`asyncio.start_server` — JSON bodies, raw
``float64`` frame payloads described by two headers.  That is all a
scraper, a load generator, or the bundled :class:`ServeClient` needs.

Connections run in one of two modes.  The default is
one-request-per-connection (every response carries ``Connection:
close``).  With ``keep_alive=True`` (``repro-das serve --keep-alive``)
each connection loops: requests are served until the client sends
``Connection: close``, the idle timeout expires between requests, or
the server starts draining — amortizing the TCP + handshake cost
across a session's frames the same way batched dispatch amortizes the
worker IPC cost.  ``Content-Length`` framing is used throughout (the
server never chunks), which is what makes response boundaries
unambiguous on a reused connection.

Endpoints
---------
``GET /healthz``
    Liveness: 200 while the process runs.
``GET /readyz``
    Readiness: 200 while sessions are accepted, 503 once draining.
``GET /metrics``
    The telemetry registry in Prometheus text exposition format.
``POST /v1/sessions``
    Open a session; JSON body may set ``policy`` / ``max_pending`` /
    ``max_fps``.
``POST /v1/sessions/<id>/frames``
    Submit one frame (raw bytes + ``X-Frame-Shape`` / ``X-Frame-Dtype``
    headers).  202 with the assigned ``seq``; **429** when admission
    control refused it (the frame still yields a ``DROPPED`` result).
``GET /v1/sessions/<id>/results?max=N&timeout=S``
    Long-poll for in-order results.
``DELETE /v1/sessions/<id>``
    Drain and close the session; returns its final report.

With ``auth_token`` set, every ``/v1/*`` request must carry
``Authorization: Bearer <token>`` or is refused with 401; the probe and
metrics endpoints stay open (liveness checks and scrapers do not carry
credentials).
"""

from __future__ import annotations

import asyncio
import json
import urllib.parse

import numpy as np

from repro.errors import ParameterError, ServeError
from repro.serve.prometheus import render_prometheus
from repro.serve.service import DetectionService

#: Seconds a request may spend arriving before the socket is dropped;
#: doubles as the keep-alive idle timeout between requests.
_READ_TIMEOUT_S = 30.0

#: Upper bound on a long-poll timeout requested by a client.
_MAX_POLL_S = 30.0

#: Largest accepted request body (a 4K mono float64 frame is ~66 MB).
_MAX_BODY = 128 * 1024 * 1024

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 400: "Bad Request",
    401: "Unauthorized", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _HttpError(Exception):
    """A request that maps cleanly onto an error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServeApp:
    """Routes HTTP requests onto one :class:`DetectionService`.

    Everything runs on the service's event loop, which is what keeps
    the telemetry registry single-threaded.

    Parameters
    ----------
    service:
        The :class:`DetectionService` behind every route.
    keep_alive:
        Serve multiple requests per connection (HTTP/1.1 persistent
        connections).  Off by default — the one-request-per-connection
        mode every pre-existing client already speaks.
    auth_token:
        Optional bearer token required on ``/v1/*`` routes.
    """

    def __init__(self, service: DetectionService, *,
                 keep_alive: bool = False,
                 auth_token: str | None = None) -> None:
        self.service = service
        self.keep_alive = keep_alive
        self.auth_token = auth_token
        self._server: asyncio.AbstractServer | None = None
        self._closing = False
        # Writers of connections idle between requests: stop() closes
        # them so a drain never waits out a keep-alive idle timeout.
        # A connection mid-request is *not* here; it closes itself
        # after its response (``_closing`` forces Connection: close).
        self._idle: set[asyncio.StreamWriter] = set()

    # -- server lifecycle ------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 8787) -> tuple[str, int]:
        """Bind and listen; returns the actual (host, port) bound."""
        self._closing = False
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        """Stop accepting connections (the service drains separately).

        Keep-alive connections waiting for their next request are
        closed immediately; connections mid-request finish that
        request (their response carries ``Connection: close``).
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._idle):
            writer.close()

    # -- request plumbing ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        telemetry = self.service.telemetry
        if telemetry.enabled:
            telemetry.inc("serve.http.connections")
        try:
            while True:
                self._idle.add(writer)
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), _READ_TIMEOUT_S
                    )
                except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                        asyncio.LimitOverrunError, ConnectionError):
                    return
                finally:
                    self._idle.discard(writer)
                if not await self._handle_request(reader, writer, head):
                    return
        finally:
            self._idle.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handle_request(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter,
                              head: bytes) -> bool:
        """Serve one parsed-head request; returns True to keep the
        connection open for the next one."""
        try:
            method, target, headers = self._parse_head(head)
            length = int(headers.get("content-length", "0"))
            if length < 0 or length > _MAX_BODY:
                raise _HttpError(413, "request body too large")
            body = (await reader.readexactly(length)
                    if length else b"")
        except _HttpError as exc:
            await self._respond_json(
                writer, exc.status, {"error": str(exc)}
            )
            return False
        except (ValueError, asyncio.IncompleteReadError):
            await self._respond_json(
                writer, 400, {"error": "malformed request"}
            )
            return False
        telemetry = self.service.telemetry
        if telemetry.enabled:
            telemetry.inc("serve.http.requests")
        try:
            status, content_type, payload = await self._route(
                method, target, headers, body
            )
        except _HttpError as exc:
            status = exc.status
            content_type = "application/json"
            payload = json.dumps({"error": str(exc)}).encode()
        except (ServeError, ParameterError) as exc:
            status = 409
            content_type = "application/json"
            payload = json.dumps({"error": str(exc)}).encode()
        except Exception as exc:  # keep the server alive
            status = 500
            content_type = "application/json"
            payload = json.dumps(
                {"error": f"{type(exc).__name__}: {exc}"}
            ).encode()
        keep = (self.keep_alive and not self._closing
                and headers.get("connection", "").lower() != "close")
        await self._write_response(
            writer, status, content_type, payload, keep_alive=keep
        )
        return keep

    @staticmethod
    def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header: {line!r}")
            headers[key.strip().lower()] = value.strip()
        return method.upper(), target, headers

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, content_type: str,
                              payload: bytes, *,
                              keep_alive: bool = False) -> None:
        telemetry = self.service.telemetry
        if telemetry.enabled:
            telemetry.inc(f"serve.http.responses[{status}]")
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        try:
            await writer.drain()
        except ConnectionError:
            pass

    async def _respond_json(self, writer: asyncio.StreamWriter,
                            status: int, doc: dict) -> None:
        await self._write_response(
            writer, status, "application/json",
            json.dumps(doc).encode(),
        )

    # -- routing ---------------------------------------------------------

    def _check_auth(self, headers: dict[str, str]) -> None:
        if self.auth_token is None:
            return
        supplied = headers.get("authorization", "")
        if supplied != f"Bearer {self.auth_token}":
            raise _HttpError(401, "missing or invalid bearer token")

    async def _route(self, method: str, target: str,
                     headers: dict[str, str],
                     body: bytes) -> tuple[int, str, bytes]:
        path, _, query = target.partition("?")
        params = urllib.parse.parse_qs(query)
        segments = [s for s in path.split("/") if s]
        if path == "/healthz" and method == "GET":
            return 200, "text/plain; charset=utf-8", b"ok\n"
        if path == "/readyz" and method == "GET":
            if self.service.ready:
                return 200, "text/plain; charset=utf-8", b"ready\n"
            return 503, "text/plain; charset=utf-8", b"draining\n"
        if path == "/metrics" and method == "GET":
            text = render_prometheus(self.service.snapshot())
            return (200, "text/plain; version=0.0.4; charset=utf-8",
                    text.encode())
        if segments[:2] == ["v1", "sessions"]:
            self._check_auth(headers)
            if len(segments) == 2 and method == "POST":
                return await self._open_session(body)
            if len(segments) >= 3:
                session = self.service.get_session(segments[2])
                if session is None:
                    raise _HttpError(
                        404, f"no such session: {segments[2]}"
                    )
                if len(segments) == 3 and method == "DELETE":
                    report = await session.close(drain=True)
                    return self._json(200, report.to_dict())
                if segments[3:] == ["frames"] and method == "POST":
                    return await self._submit_frame(
                        session, headers, body
                    )
                if segments[3:] == ["results"] and method == "GET":
                    return await self._poll_results(session, params)
        raise _HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _json(status: int, doc: dict) -> tuple[int, str, bytes]:
        return status, "application/json", json.dumps(doc).encode()

    async def _open_session(self, body: bytes) -> tuple[int, str, bytes]:
        options = {}
        if body:
            try:
                options = json.loads(body)
            except json.JSONDecodeError as exc:
                raise _HttpError(400, f"bad JSON body: {exc}") from exc
            if not isinstance(options, dict):
                raise _HttpError(400, "session options must be an object")
        policy = options.get("policy")
        max_pending = options.get("max_pending")
        if max_pending is not None and (
                not isinstance(max_pending, int) or max_pending < 1):
            raise _HttpError(400, "max_pending must be a positive int")
        max_fps = options.get("max_fps")
        if max_fps is not None and (
                not isinstance(max_fps, (int, float))
                or isinstance(max_fps, bool) or max_fps <= 0):
            raise _HttpError(400, "max_fps must be a positive number")
        try:
            session = self.service.open_session(
                policy=policy, max_pending=max_pending,
                max_fps=float(max_fps) if max_fps is not None else None,
            )
        except ValueError as exc:
            raise _HttpError(400, f"bad policy: {exc}") from exc
        except ServeError as exc:
            raise _HttpError(503, str(exc)) from exc
        return self._json(201, {
            "session": session.id,
            "policy": session.policy.value,
            "max_pending": session.max_pending,
            "max_fps": session.max_fps,
        })

    async def _submit_frame(self, session, headers: dict[str, str],
                            body: bytes) -> tuple[int, str, bytes]:
        frame = self._decode_frame(headers, body)
        try:
            ticket = await session.submit(frame)
        except ServeError as exc:
            raise _HttpError(409, str(exc)) from exc
        if not ticket.accepted:
            return self._json(429, {
                "seq": ticket.seq, "accepted": False,
                "reason": ticket.reason,
                "error": (
                    f"session {session.id} refused the frame "
                    f"({ticket.reason}; policy {session.policy.value}, "
                    f"max_pending {session.max_pending}, "
                    f"max_fps {session.max_fps})"
                ),
            })
        return self._json(202, ticket.to_dict())

    @staticmethod
    def _decode_frame(headers: dict[str, str],
                      body: bytes) -> np.ndarray:
        shape_header = headers.get("x-frame-shape")
        if not shape_header:
            raise _HttpError(400, "missing X-Frame-Shape header")
        try:
            shape = tuple(
                int(part) for part in shape_header.split(",") if part
            )
        except ValueError as exc:
            raise _HttpError(
                400, f"bad X-Frame-Shape: {shape_header!r}"
            ) from exc
        dtype_name = headers.get("x-frame-dtype", "float64")
        try:
            dtype = np.dtype(dtype_name)
        except TypeError as exc:
            raise _HttpError(
                400, f"bad X-Frame-Dtype: {dtype_name!r}"
            ) from exc
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if expected != len(body):
            raise _HttpError(
                400,
                f"body is {len(body)} bytes but shape {shape} with "
                f"dtype {dtype_name} needs {expected}",
            )
        return np.frombuffer(body, dtype=dtype).reshape(shape).copy()

    async def _poll_results(self, session,
                            params: dict) -> tuple[int, str, bytes]:
        def _int_param(name: str, default: int | None) -> int | None:
            values = params.get(name)
            if not values:
                return default
            try:
                return int(values[0])
            except ValueError as exc:
                raise _HttpError(
                    400, f"bad {name}: {values[0]!r}"
                ) from exc
        max_items = _int_param("max", None)
        timeout_values = params.get("timeout")
        timeout = 0.0
        if timeout_values:
            try:
                timeout = float(timeout_values[0])
            except ValueError as exc:
                raise _HttpError(
                    400, f"bad timeout: {timeout_values[0]!r}"
                ) from exc
        timeout = max(0.0, min(timeout, _MAX_POLL_S))
        results = await session.results(
            max_items=max_items, timeout=timeout
        )
        return self._json(200, {
            "results": [r.to_dict() for r in results],
            "done": session.done,
        })


async def start_http_server(
    service: DetectionService, host: str = "127.0.0.1", port: int = 0,
    *, keep_alive: bool = False, auth_token: str | None = None,
) -> tuple[ServeApp, str, int]:
    """Convenience: wrap ``service`` in an app and bind it."""
    app = ServeApp(service, keep_alive=keep_alive, auth_token=auth_token)
    bound_host, bound_port = await app.start(host, port)
    return app, bound_host, bound_port
