"""Small synchronous client for the serving front end.

Used by the tests, the benchmark, and the CI smoke job — anything that
wants to exercise a running ``repro-das serve`` instance without
writing raw HTTP.  One connection per request (the server closes after
each response), stdlib :mod:`http.client` only.
"""

from __future__ import annotations

import http.client
import json
import time

import numpy as np

from repro.errors import ServeError


class ServeClient:
    """Talks to one ``repro-das serve`` endpoint.

    Methods return the decoded JSON payloads of the API; 4xx/5xx
    responses outside the expected protocol raise :class:`ServeError`
    with the server's message.  A 429 from ``submit_frame`` is part of
    the protocol (the drop-newest policy speaking) and comes back as a
    normal ticket dict with ``accepted: False``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _request(self, method: str, path: str, body: bytes = b"",
                 headers: dict | None = None) -> tuple[int, str, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=body,
                               headers=headers or {})
            response = connection.getresponse()
            payload = response.read()
            content_type = response.getheader("Content-Type", "")
            return response.status, content_type, payload
        finally:
            connection.close()

    def _json(self, method: str, path: str, body: bytes = b"",
              headers: dict | None = None,
              expect: tuple[int, ...] = (200,)) -> dict:
        status, _, payload = self._request(method, path, body, headers)
        try:
            doc = json.loads(payload) if payload else {}
        except json.JSONDecodeError:
            doc = {"error": payload.decode("utf-8", "replace")}
        if status not in expect:
            raise ServeError(
                f"{method} {path} -> {status}: "
                f"{doc.get('error', payload[:200])}"
            )
        return doc

    # -- probes ----------------------------------------------------------

    def health(self) -> bool:
        status, _, _ = self._request("GET", "/healthz")
        return status == 200

    def ready(self) -> bool:
        status, _, _ = self._request("GET", "/readyz")
        return status == 200

    def metrics_text(self) -> str:
        status, _, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(f"GET /metrics -> {status}")
        return payload.decode("utf-8")

    def metrics(self) -> dict:
        """Scrape ``/metrics`` and parse it (types + samples)."""
        from repro.serve.prometheus import parse_exposition

        return parse_exposition(self.metrics_text())

    # -- session lifecycle -----------------------------------------------

    def open_session(self, policy: str | None = None,
                     max_pending: int | None = None) -> str:
        options: dict = {}
        if policy is not None:
            options["policy"] = policy
        if max_pending is not None:
            options["max_pending"] = max_pending
        doc = self._json(
            "POST", "/v1/sessions",
            body=json.dumps(options).encode() if options else b"",
            headers={"Content-Type": "application/json"},
            expect=(201,),
        )
        return doc["session"]

    def submit_frame(self, session: str, frame: np.ndarray) -> dict:
        """Submit one frame; returns the ticket (202 accepted, 429 not)."""
        array = np.ascontiguousarray(frame)
        return self._json(
            "POST", f"/v1/sessions/{session}/frames",
            body=array.tobytes(),
            headers={
                "Content-Type": "application/octet-stream",
                "X-Frame-Shape": ",".join(
                    str(dim) for dim in array.shape
                ),
                "X-Frame-Dtype": array.dtype.name,
            },
            expect=(202, 429),
        )

    def results(self, session: str, max_items: int | None = None,
                timeout: float = 5.0) -> dict:
        query = f"timeout={timeout:g}"
        if max_items is not None:
            query += f"&max={max_items}"
        return self._json(
            "GET", f"/v1/sessions/{session}/results?{query}"
        )

    def collect(self, session: str, count: int,
                deadline_s: float = 60.0) -> list[dict]:
        """Poll until ``count`` results arrived (or the session drained)."""
        collected: list[dict] = []
        deadline = time.monotonic() + deadline_s
        while len(collected) < count:
            if time.monotonic() > deadline:
                raise ServeError(
                    f"collected {len(collected)}/{count} results "
                    f"within {deadline_s:g}s"
                )
            doc = self.results(session, timeout=2.0)
            collected.extend(doc["results"])
            if doc["done"]:
                break
        return collected

    def close_session(self, session: str) -> dict:
        """Drain the session and return its final report."""
        return self._json("DELETE", f"/v1/sessions/{session}")
