"""Small synchronous client for the serving front end.

Used by the tests, the benchmark, and the CI smoke job — anything that
wants to exercise a running ``repro-das serve`` instance without
writing raw HTTP.  Stdlib :mod:`http.client` only.

The client keeps one :class:`~http.client.HTTPConnection` and reuses
it across requests.  Against a keep-alive server every request after
the first skips the TCP handshake; against the default
one-request-per-connection server the server's ``Connection: close``
makes the stdlib connection reconnect transparently on the next
request.  A request that fails on a *reused* socket (the server closed
it between requests — keep-alive idle timeout, server restart) is
retried once on a fresh connection; a failure on a fresh connection
propagates, since retrying a non-idempotent ``POST /frames`` blindly
could double-submit.
"""

from __future__ import annotations

import http.client
import json
import time

import numpy as np

from repro.errors import ServeError


class ServeClient:
    """Talks to one ``repro-das serve`` endpoint.

    Methods return the decoded JSON payloads of the API; 4xx/5xx
    responses outside the expected protocol raise :class:`ServeError`
    with the server's message.  A 429 from ``submit_frame`` is part of
    the protocol (admission control speaking) and comes back as a
    normal ticket dict with ``accepted: False``.

    Parameters
    ----------
    auth_token:
        Sent as ``Authorization: Bearer <token>`` on every request when
        set; required against a server started with ``--auth-token``.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: float = 60.0,
                 auth_token: str | None = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.auth_token = auth_token
        self._connection: http.client.HTTPConnection | None = None

    # -- plumbing --------------------------------------------------------

    def close(self) -> None:
        """Drop the cached connection (safe to call repeatedly)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _send(self, connection: http.client.HTTPConnection,
              method: str, path: str, body: bytes,
              headers: dict) -> tuple[int, str, bytes]:
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        payload = response.read()
        content_type = response.getheader("Content-Type", "")
        if response.getheader("Connection", "").lower() == "close":
            # The server will not take another request on this socket;
            # drop it now so the next request dials fresh instead of
            # tripping the retry path.
            self.close()
        return response.status, content_type, payload

    def _request(self, method: str, path: str, body: bytes = b"",
                 headers: dict | None = None) -> tuple[int, str, bytes]:
        headers = dict(headers or {})
        if self.auth_token is not None:
            headers["Authorization"] = f"Bearer {self.auth_token}"
        reused = self._connection is not None
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        try:
            return self._send(
                self._connection, method, path, body, headers
            )
        except (http.client.HTTPException, ConnectionError, OSError):
            self.close()
            if not reused:
                raise
            # The reused socket had gone stale under us; one retry on a
            # fresh connection is safe because the dead socket never
            # delivered the request.
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            return self._send(
                self._connection, method, path, body, headers
            )

    def _json(self, method: str, path: str, body: bytes = b"",
              headers: dict | None = None,
              expect: tuple[int, ...] = (200,)) -> dict:
        status, _, payload = self._request(method, path, body, headers)
        try:
            doc = json.loads(payload) if payload else {}
        except json.JSONDecodeError:
            doc = {"error": payload.decode("utf-8", "replace")}
        if status not in expect:
            raise ServeError(
                f"{method} {path} -> {status}: "
                f"{doc.get('error', payload[:200])}"
            )
        return doc

    # -- probes ----------------------------------------------------------

    def health(self) -> bool:
        status, _, _ = self._request("GET", "/healthz")
        return status == 200

    def ready(self) -> bool:
        status, _, _ = self._request("GET", "/readyz")
        return status == 200

    def metrics_text(self) -> str:
        status, _, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(f"GET /metrics -> {status}")
        return payload.decode("utf-8")

    def metrics(self) -> dict:
        """Scrape ``/metrics`` and parse it (types + samples)."""
        from repro.serve.prometheus import parse_exposition

        return parse_exposition(self.metrics_text())

    # -- session lifecycle -----------------------------------------------

    def open_session(self, policy: str | None = None,
                     max_pending: int | None = None,
                     max_fps: float | None = None) -> str:
        options: dict = {}
        if policy is not None:
            options["policy"] = policy
        if max_pending is not None:
            options["max_pending"] = max_pending
        if max_fps is not None:
            options["max_fps"] = max_fps
        doc = self._json(
            "POST", "/v1/sessions",
            body=json.dumps(options).encode() if options else b"",
            headers={"Content-Type": "application/json"},
            expect=(201,),
        )
        return doc["session"]

    def submit_frame(self, session: str, frame: np.ndarray) -> dict:
        """Submit one frame; returns the ticket (202 accepted, 429 not)."""
        array = np.ascontiguousarray(frame)
        return self._json(
            "POST", f"/v1/sessions/{session}/frames",
            body=array.tobytes(),
            headers={
                "Content-Type": "application/octet-stream",
                "X-Frame-Shape": ",".join(
                    str(dim) for dim in array.shape
                ),
                "X-Frame-Dtype": array.dtype.name,
            },
            expect=(202, 429),
        )

    def results(self, session: str, max_items: int | None = None,
                timeout: float = 5.0) -> dict:
        query = f"timeout={timeout:g}"
        if max_items is not None:
            query += f"&max={max_items}"
        return self._json(
            "GET", f"/v1/sessions/{session}/results?{query}"
        )

    def collect(self, session: str, count: int,
                deadline_s: float = 60.0) -> list[dict]:
        """Poll until ``count`` results arrived (or the session drained)."""
        collected: list[dict] = []
        deadline = time.monotonic() + deadline_s
        while len(collected) < count:
            if time.monotonic() > deadline:
                raise ServeError(
                    f"collected {len(collected)}/{count} results "
                    f"within {deadline_s:g}s"
                )
            doc = self.results(session, timeout=2.0)
            collected.extend(doc["results"])
            if doc["done"]:
                break
        return collected

    def close_session(self, session: str) -> dict:
        """Drain the session and return its final report."""
        return self._json("DELETE", f"/v1/sessions/{session}")
