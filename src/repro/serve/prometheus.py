"""Render a :class:`TelemetrySnapshot` in Prometheus text exposition.

The ``/metrics`` endpoint of the serving front end speaks the
Prometheus text format (version 0.0.4) so a standard scraper ingests
the registry without an adapter.  The mapping:

* Telemetry keys become metric names prefixed ``repro_`` with every
  character outside ``[a-zA-Z0-9_:]`` folded to ``_``
  (``serve.latency_ms`` → ``repro_serve_latency_ms``).
* Bracketed template instances become labels, keyed by the placeholder
  variable of the registered template:
  ``detect.scale[1.20].windows_scanned`` →
  ``repro_detect_scale_windows_scanned{s="1.20"}``.
* Counters and gauges map one-to-one.
* Histograms render as *summaries* — ``{quantile="0.5"}`` /
  ``{quantile="0.95"}`` samples plus ``_sum`` and ``_count`` — because
  :class:`~repro.telemetry.HistogramSummary` keeps quantiles, not
  buckets.  There are deliberately no ``_bucket`` lines.
* Spans aggregate into one ``repro_stage_duration_seconds`` summary
  family labelled by span path (durations converted from ns).

:func:`parse_exposition` is the inverse used by tests and the CI smoke
job to prove the output is scrapeable.
"""

from __future__ import annotations

import re

from repro.telemetry.names import resolve
from repro.telemetry.registry import HistogramSummary, TelemetrySnapshot

#: Characters Prometheus forbids in metric names.
_INVALID_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: One bracketed template-instance segment of a telemetry key.
_BRACKET_RE = re.compile(r"\[([^\]]*)\]")

#: ``<var>`` placeholder inside a registered template's brackets.
_VAR_RE = re.compile(r"^<([a-z_]+)>$")

#: One ``label="value"`` pair (value may contain escapes).
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: One sample line: name, optional label block, value.
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)

_SPAN_FAMILY = "repro_stage_duration_seconds"


def escape_label(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _unescape_label(value: str) -> str:
    return (value.replace("\\n", "\n")
                 .replace('\\"', '"')
                 .replace("\\\\", "\\"))


def metric_identity(name: str) -> tuple[str, dict[str, str]]:
    """Map a concrete telemetry key to ``(metric_name, labels)``.

    Bracketed instance values are pulled out as labels; the label key
    comes from the registered template's placeholder variable when the
    key resolves (``[<s>]`` → ``s``), else ``instance`` (numbered when
    a key somehow carries several brackets).
    """
    values = _BRACKET_RE.findall(name)
    labels: dict[str, str] = {}
    if values:
        entry = resolve(name)
        keys: list[str] = []
        if entry is not None:
            template_vars = _BRACKET_RE.findall(entry.name)
            if len(template_vars) == len(values):
                for var in template_vars:
                    match = _VAR_RE.match(var)
                    keys.append(match.group(1) if match else "")
        for i, value in enumerate(values):
            key = keys[i] if i < len(keys) and keys[i] else (
                "instance" if len(values) == 1 else f"instance{i}"
            )
            labels[key] = value
    base = _BRACKET_RE.sub("", name)
    metric = "repro_" + _INVALID_RE.sub("_", base)
    return metric, labels


def _label_block(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    return repr(float(value))


class _Family:
    def __init__(self, kind: str, help_text: str = "") -> None:
        self.kind = kind
        self.help = help_text
        self.samples: list[str] = []


def _summary_samples(metric: str, labels: dict[str, str],
                     summary: HistogramSummary,
                     scale: float = 1.0) -> list[str]:
    lines = []
    for quantile, value in (("0.5", summary.p50), ("0.95", summary.p95)):
        q_labels = dict(labels)
        q_labels["quantile"] = quantile
        lines.append(
            f"{metric}{_label_block(q_labels)} "
            f"{_format_value(value * scale)}"
        )
    block = _label_block(labels)
    lines.append(
        f"{metric}_sum{block} {_format_value(summary.total * scale)}"
    )
    lines.append(f"{metric}_count{block} {float(summary.count):g}")
    return lines


def render_prometheus(snapshot: TelemetrySnapshot) -> str:
    """The full ``/metrics`` payload for one snapshot (deterministic)."""
    families: dict[str, _Family] = {}

    def family(metric: str, kind: str, source_name: str) -> _Family:
        existing = families.get(metric)
        if existing is not None:
            return existing
        entry = resolve(source_name)
        created = _Family(
            kind, entry.description if entry is not None else ""
        )
        families[metric] = created
        return created

    for name in sorted(snapshot.counters):
        metric, labels = metric_identity(name)
        fam = family(metric, "counter", name)
        fam.samples.append(
            f"{metric}{_label_block(labels)} "
            f"{float(snapshot.counters[name]):g}"
        )
    for name in sorted(snapshot.gauges):
        metric, labels = metric_identity(name)
        fam = family(metric, "gauge", name)
        fam.samples.append(
            f"{metric}{_label_block(labels)} "
            f"{_format_value(snapshot.gauges[name])}"
        )
    for name in sorted(snapshot.histograms):
        metric, labels = metric_identity(name)
        fam = family(metric, "summary", name)
        fam.samples.extend(
            _summary_samples(metric, labels, snapshot.histograms[name])
        )
    if snapshot.spans:
        span_family = _Family(
            "summary",
            "span durations by path (seconds, converted from ns)",
        )
        families[_SPAN_FAMILY] = span_family
        for path in sorted(snapshot.spans):
            span_family.samples.extend(
                _summary_samples(
                    _SPAN_FAMILY, {"path": path},
                    snapshot.spans[path], scale=1e-9,
                )
            )

    lines: list[str] = []
    for metric in sorted(families):
        fam = families[metric]
        if fam.help:
            help_text = fam.help.replace("\\", "\\\\").replace("\n", " ")
            lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {fam.kind}")
        lines.extend(fam.samples)
    return "\n".join(lines) + "\n" if lines else ""


def parse_exposition(text: str) -> dict:
    """Parse exposition text back into types + samples (test helper).

    Returns ``{"types": {metric: kind}, "samples": {(metric,
    ((label, value), ...)): float}}`` with label tuples sorted.  Raises
    :class:`ValueError` on any line that is neither a comment nor a
    well-formed sample — which is exactly what makes it useful as a
    scrapeability check.
    """
    types: dict[str, str] = {}
    samples: dict[tuple, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        metric, label_block, raw_value = match.groups()
        labels = []
        if label_block:
            consumed = 0
            for pair in _LABEL_RE.finditer(label_block):
                labels.append((pair.group(1),
                               _unescape_label(pair.group(2))))
                consumed = pair.end()
            rest = label_block[consumed:].strip(", ")
            if rest:
                raise ValueError(
                    f"line {lineno}: malformed labels: {label_block!r}"
                )
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: malformed value: {raw_value!r}"
            ) from exc
        samples[(metric, tuple(sorted(labels)))] = value
    return {"types": types, "samples": samples}
