"""Detection-as-a-service: shared warm pools behind concurrent clients.

The stream layer (PRs 2–3) made the detector warm and parallel for
*one* caller; this package makes that capacity shareable.  A
:class:`DetectionService` multiplexes any number of client sessions
onto worker pools keyed by
:meth:`~repro.parallel.DetectorSpec.cache_key` (same-config clients
share workers), demultiplexes ordered
:class:`~repro.stream.types.FrameResult` records back per session, and
applies the stream layer's backpressure vocabulary (``block`` /
``drop-oldest`` / ``drop-newest``) per session as admission control.

On top sits a stdlib-only asyncio HTTP front end (:class:`ServeApp`)
with ``/healthz``, ``/readyz`` and a Prometheus-format ``/metrics``,
plus a small synchronous :class:`ServeClient` for tests, benchmarks
and the CI smoke job.  ``repro-das serve`` wires it all to the command
line.  Operator guide: docs/SERVING.md.
"""

from repro.serve.client import ServeClient
from repro.serve.http import ServeApp, start_http_server
from repro.serve.prometheus import (
    metric_identity,
    parse_exposition,
    render_prometheus,
)
from repro.serve.service import DetectionService, ServeSession
from repro.serve.types import ServeReport, SessionReport, SubmitTicket

__all__ = [
    "DetectionService",
    "ServeApp",
    "ServeClient",
    "ServeReport",
    "ServeSession",
    "SessionReport",
    "SubmitTicket",
    "metric_identity",
    "parse_exposition",
    "render_prometheus",
    "start_http_server",
]
