"""Asyncio detection service multiplexing client sessions onto warm pools.

``DetectionService`` is the batching layer of ``repro.serve``: any
number of concurrent client sessions submit frames, a single dispatch
task round-robins the backlogs into shared worker pools, and each
session gets its own frames back — and *only* its own frames — in
submission order.

Pool sharing
------------
Pools are keyed by :meth:`~repro.parallel.DetectorSpec.cache_key`, the
same digest the process workers use for their per-process detector
cache.  Two sessions opened with byte-identical model + config attach
to the same warm pool (a ``serve.pool_cache_hits`` counter proves it);
a session with a different config gets its own pool without disturbing
anyone else.

Backpressure
------------
Admission control reuses the
:class:`~repro.stream.types.BackpressurePolicy` vocabulary of the
bounded frame queue, applied per session against a ``max_pending``
quota (frames admitted but not yet emitted):

* ``block`` — ``submit`` awaits until the backlog shrinks; lossless.
* ``drop-oldest`` — the oldest *queued* frame is evicted (it still
  yields an in-order ``DROPPED`` result) to admit the newcomer.  When
  every pending frame is already on a worker there is nothing to evict
  and the newcomer is refused instead.
* ``drop-newest`` — the newcomer is refused outright (the HTTP layer
  maps this to a 429 response); queued frames keep their place.

Refusals are not silent: a refused frame consumes a sequence number and
produces a ``DROPPED`` result, so a client that counts results can
never deadlock waiting for a frame the service discarded.

Threading contract
------------------
The :class:`~repro.telemetry.MetricsRegistry` is not thread-safe, so
every telemetry record and every piece of session state is touched only
from the event-loop thread.  Worker threads hand results back through
``loop.call_soon_threadsafe`` — the one crossing point.
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
import queue
import threading
import time
from typing import Any, Callable, Iterable

import numpy as np

from repro.errors import ParameterError, ServeError
from repro.parallel.spec import DetectorSpec
from repro.serve.types import ServeReport, SessionReport, SubmitTicket
from repro.stream.types import (
    BackpressurePolicy,
    ExecutionBackend,
    FrameResult,
    FrameStatus,
    validate_backend,
)
from repro.telemetry import NULL_TELEMETRY, MetricsRegistry

#: Seconds the process-backend receiver waits per poll for a result.
_POLL_S = 0.05

#: Seconds to wait for a worker thread to exit during close.
_JOIN_TIMEOUT_S = 5.0

#: Sentinel queued after the final result of a drained session.
_DONE = object()

#: A callable the backends use to hand one finished frame back to the
#: event loop: ``(tag, status, result, error, worker, busy_s)``.
DeliverFn = Callable[[int, str, Any, "str | None", "int | None", float],
                     None]


class _ThreadBackend:
    """Worker threads sharing the process, one private detector each.

    Detectors are rebuilt from the spec with telemetry disabled — the
    service's registry lives on the event-loop thread and worker-side
    recording would race it (same reasoning as ``StreamPipeline``'s
    thread backend).

    One task-queue item is one *batch* — a list of ``(tag, frame)``
    pairs one worker serves in order.  Fault isolation stays per frame
    (each frame delivers its own outcome), matching the process
    backend's batched contract.
    """

    kind = ExecutionBackend.THREAD

    def __init__(self, spec: DetectorSpec, workers: int,
                 max_batch: int = 1) -> None:
        self.spec = spec
        self.workers = workers
        self.max_batch = max_batch
        self._tasks: queue.Queue = queue.Queue()
        self._threads: list[threading.Thread] = []

    @property
    def capacity(self) -> int:
        """Frames worth keeping in flight: one batch per worker plus
        hand-off headroom, scaled by the batch size so a batching pump
        can still keep every worker busy."""
        return (self.workers + 2) * self.max_batch

    def start(self, deliver: DeliverFn) -> None:
        quiet = DetectorSpec(
            self.spec.weights, self.spec.bias,
            dataclasses.replace(self.spec.config, telemetry=False),
        )
        for wid in range(self.workers):
            thread = threading.Thread(
                target=self._run, args=(wid, quiet, deliver),
                name=f"serve-worker-{wid}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _run(self, wid: int, spec: DetectorSpec,
             deliver: DeliverFn) -> None:
        startup_error: str | None = None
        try:
            detector = spec.build()
        except Exception as exc:  # fail tasks, never kill the service
            detector = None
            startup_error = f"{type(exc).__name__}: {exc}"
        while True:
            task = self._tasks.get()
            if task is None:
                break
            for tag, frame in task:
                start = time.perf_counter()
                if detector is None:
                    deliver(tag, "failed", None,
                            f"worker failed to start: {startup_error}",
                            wid, 0.0)
                    continue
                try:
                    result = detector.detect(frame)
                except Exception as exc:
                    deliver(tag, "failed", None,
                            f"{type(exc).__name__}: {exc}", wid,
                            time.perf_counter() - start)
                else:
                    deliver(tag, "ok", result, None, wid,
                            time.perf_counter() - start)

    def submit(self, tag: int, frame: np.ndarray) -> None:
        self._tasks.put([(tag, frame)])

    def submit_batch(
        self, items: "list[tuple[int, np.ndarray]]"
    ) -> None:
        self._tasks.put(list(items))

    def close(self) -> list:
        for _ in self._threads:
            self._tasks.put(None)
        for thread in self._threads:
            thread.join(timeout=_JOIN_TIMEOUT_S)
        self._threads.clear()
        return []


class _ProcessBackend:
    """A warm :class:`~repro.parallel.ProcessWorkerPool` behind threads.

    A dispatcher thread feeds the pool's shared-memory ring (its
    ``submit`` may block briefly on a full ring) and a receiver thread
    polls ``next_message`` — both so the event loop never blocks.
    Worker telemetry snapshots come back from ``close`` for the service
    to merge.
    """

    kind = ExecutionBackend.PROCESS

    def __init__(self, spec: DetectorSpec, workers: int,
                 start_method: str | None = None,
                 max_batch: int = 1) -> None:
        from repro.parallel.pool import ProcessWorkerPool

        self.spec = spec
        self.workers = workers
        self.max_batch = max_batch
        # The ring must hold a whole batch per worker plus headroom, or
        # a full-size batch could block on slots its own batchmates
        # hold (max_batch=1 keeps the pool's workers+2 default).
        self._pool = ProcessWorkerPool(
            spec, workers, start_method=start_method,
            slots=(workers + 2) * max_batch,
        )
        self._tasks: queue.Queue = queue.Queue()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    @property
    def capacity(self) -> int:
        return (self.workers + 2) * self.max_batch

    def start(self, deliver: DeliverFn) -> None:
        for target, name in ((self._dispatch, "serve-dispatch"),
                             (self._receive, "serve-receive")):
            thread = threading.Thread(
                target=target, args=(deliver,), name=name, daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _dispatch(self, deliver: DeliverFn) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                break
            now = time.perf_counter()
            try:
                self._pool.submit_batch(
                    0, [(tag, frame, now) for tag, frame in task]
                )
            except Exception as exc:
                # submit_batch is all-or-nothing: nothing of the batch
                # reached a worker, so every frame fails here and the
                # no-silent-loss accounting stays frame-for-frame.
                for tag, _ in task:
                    deliver(tag, "failed", None,
                            f"{type(exc).__name__}: {exc}", None, 0.0)

    def _receive(self, deliver: DeliverFn) -> None:
        while not self._stop.is_set():
            message = self._pool.next_message(timeout=_POLL_S)
            if message is None:
                continue
            if message[0] == "result":
                (_, _, tag, status, result, error,
                 wid, busy_s, _) = message
            elif message[0] == "dead":
                continue  # the pool marks itself broken; submits fail
            else:
                continue
            deliver(tag, status, result, error, wid, busy_s)

    def submit(self, tag: int, frame: np.ndarray) -> None:
        self._tasks.put([(tag, frame)])

    def submit_batch(
        self, items: "list[tuple[int, np.ndarray]]"
    ) -> None:
        self._tasks.put(list(items))

    def transport_counts(self) -> dict[str, int]:
        """The pool's result-transport tallies (see
        :meth:`~repro.parallel.ProcessWorkerPool.transport_counts`)."""
        return self._pool.transport_counts()

    def close(self) -> list:
        self._tasks.put(None)
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=_JOIN_TIMEOUT_S)
        self._threads.clear()
        return self._pool.close()


class ServeSession:
    """One client's ordered view of the shared service.

    Created by :meth:`DetectionService.open_session`; not constructed
    directly.  All methods must be called from the service's event
    loop.  Sequence numbers are assigned in ``submit`` call order, so
    a session with several concurrent submitters should serialize its
    own submits if it needs a deterministic ordering between them.
    """

    def __init__(self, service: "DetectionService", session_id: str,
                 pool_key: str, policy: BackpressurePolicy,
                 max_pending: int, max_fps: float | None = None) -> None:
        if max_pending < 1:
            raise ParameterError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_fps is not None and max_fps <= 0:
            raise ParameterError(
                f"max_fps must be > 0, got {max_fps}"
            )
        self.id = session_id
        self.policy = policy
        self.max_pending = max_pending
        self.max_fps = max_fps
        # Token bucket for the admission cap: one token per frame,
        # refilled at max_fps with one second of burst headroom.
        self._allowance = max(1.0, max_fps) if max_fps else 0.0
        self._last_tick = time.monotonic()
        self._service = service
        self._pool_key = pool_key
        self._next_seq = 0
        self._emit_next = 0
        self._pending = 0
        self._waiting: collections.deque = collections.deque()
        self._reorder: dict[int, tuple] = {}
        self._t0: dict[int, float] = {}
        self._out: asyncio.Queue = asyncio.Queue()
        self._space = asyncio.Event()
        self._space.set()
        self._drained = asyncio.Event()
        self._closed = False
        self._done = False
        self._counts = {status: 0 for status in FrameStatus}
        self._rejected = 0
        self._evicted = 0
        self._throttled = 0

    # -- submission ------------------------------------------------------

    def _throttled_now(self) -> bool:
        """Apply the frames-per-second admission cap to one submit.

        Returns ``True`` when the cap refuses the frame.  Decoupled
        from the queue-quota policies: a throttled frame is refused
        under *every* policy (blocking to pace a too-fast client would
        hide the overrun instead of reporting it), and like every other
        refusal it still consumes a sequence number and yields an
        in-order ``DROPPED`` result.
        """
        if self.max_fps is None:
            return False
        now = time.monotonic()
        self._allowance = min(
            max(1.0, self.max_fps),
            self._allowance + (now - self._last_tick) * self.max_fps,
        )
        self._last_tick = now
        if self._allowance < 1.0:
            return True
        self._allowance -= 1.0
        return False

    async def submit(self, frame: np.ndarray) -> SubmitTicket:
        """Admit one frame; return its sequence number and fate.

        Applies this session's backpressure policy against its
        ``max_pending`` quota.  Under ``block`` this coroutine waits
        for space; under the lossy policies it returns immediately and
        the ticket says whether the *submitted* frame was accepted.
        """
        if self._closed:
            raise ServeError(f"session {self.id} is closed")
        service = self._service
        if not service.ready:
            raise ServeError("service is draining; no new frames")
        if self.policy is BackpressurePolicy.BLOCK:
            while self._pending >= self.max_pending and not self._closed:
                self._space.clear()
                await self._space.wait()
            if self._closed:
                raise ServeError(f"session {self.id} is closed")
        telemetry = service.telemetry
        seq = self._next_seq
        self._next_seq += 1
        self._pending += 1
        self._t0[seq] = time.perf_counter()
        service._counts["submitted"] += 1
        if telemetry.enabled:
            telemetry.inc("serve.frames_submitted")
            telemetry.observe("serve.queue_depth", float(self._pending))
        if self._throttled_now():
            self._throttled += 1
            service._counts["throttled"] += 1
            if telemetry.enabled:
                telemetry.inc("serve.frames_throttled")
            self._finish(seq, FrameStatus.DROPPED)
            return SubmitTicket(seq=seq, accepted=False,
                                reason="throttled")
        if self._pending > self.max_pending:
            if (self.policy is BackpressurePolicy.DROP_OLDEST
                    and self._waiting):
                evicted_seq, _ = self._waiting.popleft()
                self._evicted += 1
                service._counts["evicted"] += 1
                if telemetry.enabled:
                    telemetry.inc("serve.frames_evicted")
                self._finish(evicted_seq, FrameStatus.DROPPED)
            else:
                # drop-newest, or drop-oldest with every pending frame
                # already on a worker: refuse the newcomer.
                self._rejected += 1
                service._counts["rejected"] += 1
                if telemetry.enabled:
                    telemetry.inc("serve.frames_rejected")
                self._finish(seq, FrameStatus.DROPPED)
                return SubmitTicket(seq=seq, accepted=False,
                                    reason="saturated")
        self._waiting.append((seq, np.asarray(frame)))
        service._wake.set()
        return SubmitTicket(seq=seq, accepted=True)

    # -- results ---------------------------------------------------------

    async def results(self, max_items: int | None = None,
                      timeout: float | None = None) -> list[FrameResult]:
        """Collect in-order results; long-polls for the first one.

        Returns an empty list on timeout, or once the session has
        emitted its final result (check :attr:`done` to tell the two
        apart).
        """
        items: list[FrameResult] = []
        if self._done:
            return items
        try:
            if timeout is not None and timeout <= 0:
                first = self._out.get_nowait()
            elif timeout is not None:
                first = await asyncio.wait_for(self._out.get(), timeout)
            else:
                first = await self._out.get()
        except (asyncio.TimeoutError, asyncio.QueueEmpty):
            return items
        if first is _DONE:
            self._done = True
            return items
        items.append(first)
        while max_items is None or len(items) < max_items:
            try:
                nxt = self._out.get_nowait()
            except asyncio.QueueEmpty:
                break
            if nxt is _DONE:
                self._done = True
                break
            items.append(nxt)
        return items

    async def __aiter__(self):
        while not self._done:
            item = await self._out.get()
            if item is _DONE:
                self._done = True
                return
            yield item

    @property
    def done(self) -> bool:
        """True once the final result has been consumed."""
        return self._done

    @property
    def pending(self) -> int:
        """Frames admitted but not yet emitted."""
        return self._pending

    # -- lifecycle -------------------------------------------------------

    async def close(self, drain: bool = True) -> SessionReport:
        """Stop admitting frames, settle the backlog, and detach.

        ``drain=True`` waits for every pending frame to come back;
        ``drain=False`` discards queued frames as ``DROPPED`` (counted
        as evictions) but still waits for frames already on a worker —
        in-flight work cannot be recalled.
        """
        if not self._closed:
            self._closed = True
            self._space.set()  # release blocked submitters to the raise
            if not drain:
                service = self._service
                while self._waiting:
                    seq, _ = self._waiting.popleft()
                    self._evicted += 1
                    service._counts["evicted"] += 1
                    if service.telemetry.enabled:
                        service.telemetry.inc("serve.frames_evicted")
                    self._finish(seq, FrameStatus.DROPPED)
            if self._pending == 0 and not self._drained.is_set():
                self._drained.set()
                self._out.put_nowait(_DONE)
        await self._drained.wait()
        self._service._on_session_closed(self)
        return self.report()

    def report(self) -> SessionReport:
        return SessionReport(
            session=self.id,
            policy=self.policy.value,
            max_pending=self.max_pending,
            submitted=self._next_seq,
            ok=self._counts[FrameStatus.OK],
            failed=self._counts[FrameStatus.FAILED],
            dropped=self._counts[FrameStatus.DROPPED],
            rejected=self._rejected,
            evicted=self._evicted,
            throttled=self._throttled,
            pool=self._pool_key[:12],
        )

    # -- internals (event-loop thread only) ------------------------------

    def _finish(self, seq: int, status: FrameStatus,
                detections: tuple = (), result: Any = None,
                error: str | None = None,
                worker: int | None = None) -> None:
        """Record one frame's outcome and emit everything now in order."""
        self._reorder[seq] = (status, detections, result, error, worker)
        service = self._service
        telemetry = service.telemetry
        while self._emit_next in self._reorder:
            entry = self._reorder.pop(self._emit_next)
            status_i, detections_i, result_i, error_i, worker_i = entry
            seq_i = self._emit_next
            self._emit_next += 1
            t0 = self._t0.pop(seq_i)
            if status_i is FrameStatus.DROPPED:
                latency_s = 0.0
            else:
                latency_s = time.perf_counter() - t0
            frame_result = FrameResult(
                index=seq_i, status=status_i, detections=detections_i,
                result=result_i, error=error_i, latency_s=latency_s,
                worker=worker_i,
            )
            self._counts[status_i] += 1
            service._counts[status_i.value] += 1
            if telemetry.enabled:
                telemetry.inc(f"serve.frames_{status_i.value}")
                if status_i is not FrameStatus.DROPPED:
                    telemetry.observe("serve.latency_ms", latency_s * 1e3)
            self._pending -= 1
            if self._pending < self.max_pending:
                self._space.set()
            self._out.put_nowait(frame_result)
        if (self._closed and self._pending == 0
                and not self._drained.is_set()):
            self._drained.set()
            self._out.put_nowait(_DONE)


class DetectionService:
    """The multiplexer: shared warm pools behind per-client sessions.

    Parameters
    ----------
    detector:
        A built detector to serve (its model + config become the
        default :class:`~repro.parallel.DetectorSpec`).  Alternatively
        pass ``spec`` directly.
    workers:
        Detection workers per pool.
    backend:
        ``"thread"`` (default) or ``"process"`` — same trade-off as
        the stream layer; see docs/STREAMING.md.
    default_policy, max_pending, max_fps:
        Session defaults; each ``open_session`` may override.
        ``max_fps`` is the per-session frames-per-second admission cap
        (``None`` — the default — means uncapped).
    max_batch, batch_window_ms:
        Micro-batched dispatch policy.  The pump coalesces up to
        ``max_batch`` pending frames *across sessions* into one worker
        task (amortizing the per-message IPC cost); with
        ``batch_window_ms > 0`` it lingers that long for more arrivals
        before dispatching a partial batch.  ``max_batch=1`` (the
        default) is the unbatched behaviour: one frame per task, no
        added latency.  Per-session ordering and per-frame fault
        isolation are preserved either way.
    telemetry:
        A :class:`~repro.telemetry.MetricsRegistry` for ``serve.*``
        metrics (only ever touched from the event-loop thread).
    """

    def __init__(self, detector: object = None, *,
                 spec: DetectorSpec | None = None,
                 workers: int = 2,
                 backend: "ExecutionBackend | str" = (
                     ExecutionBackend.THREAD),
                 default_policy: "BackpressurePolicy | str" = (
                     BackpressurePolicy.BLOCK),
                 max_pending: int = 8,
                 max_fps: float | None = None,
                 max_batch: int = 1,
                 batch_window_ms: float = 0.0,
                 telemetry: MetricsRegistry | None = None,
                 mp_start_method: str | None = None) -> None:
        if spec is None:
            if detector is None:
                raise ParameterError(
                    "DetectionService needs a detector or a DetectorSpec"
                )
            spec = DetectorSpec.from_detector(detector)
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ParameterError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        if max_fps is not None and max_fps <= 0:
            raise ParameterError(f"max_fps must be > 0, got {max_fps}")
        if max_batch < 1:
            raise ParameterError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        if batch_window_ms < 0:
            raise ParameterError(
                f"batch_window_ms must be >= 0, got {batch_window_ms}"
            )
        self.spec = spec
        self.workers = workers
        self.backend = validate_backend(backend)
        self.default_policy = BackpressurePolicy(default_policy)
        self.max_pending = max_pending
        self.max_fps = max_fps
        self.max_batch = max_batch
        self.batch_window_ms = batch_window_ms
        self._batch_window_s = batch_window_ms / 1e3
        self.telemetry = (
            telemetry if telemetry is not None else NULL_TELEMETRY
        )
        self.mp_start_method = mp_start_method
        self._pools: dict[str, Any] = {}
        self._inflight: dict[str, int] = {}
        self._tags: dict[int, tuple[ServeSession, int, str]] = {}
        self._sessions: dict[str, ServeSession] = {}
        self._next_tag = 0
        self._next_session = 0
        self._pools_built = 0
        self._sessions_opened = 0
        self._sessions_closed = 0
        self._counts = {
            "submitted": 0, "ok": 0, "failed": 0, "dropped": 0,
            "rejected": 0, "evicted": 0, "throttled": 0,
        }
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event = None  # type: ignore[assignment]
        self._pump_task: asyncio.Task | None = None
        self._started = False
        self._draining = False
        self._drained_clean = True

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Warm the default pool and start the dispatch task."""
        if self._started:
            raise ServeError("service already started")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._get_pool(self.spec)
        self._pump_task = asyncio.create_task(
            self._pump(), name="serve-pump"
        )
        self._started = True
        self._draining = False
        if self.telemetry.enabled:
            self.telemetry.set_gauge("serve.ready", 1.0)

    async def shutdown(self, drain: bool = True, *,
                       settle_timeout_s: float | None = None) -> ServeReport:
        """Close every session, stop the pools, report the totals.

        With ``drain=True`` every admitted frame is served (or
        accounted as dropped) before the pools die — a clean drain,
        recorded in the ``serve.drained_clean`` gauge.

        ``settle_timeout_s`` bounds how long each session drain may
        wait (a wedged worker would otherwise hang shutdown forever).
        On timeout — and in every case where frames are still queued or
        in flight once the pools are gone — the leftovers are settled
        as evicted ``DROPPED`` results rather than silently vanishing:
        the session totals, service counters and ``serve.frames_*``
        telemetry still reconcile with ``frames_submitted``, and the
        unclean drain is visible in ``drained_clean``.
        """
        telemetry = self.telemetry
        if self._started:
            self._draining = True
            if telemetry.enabled:
                telemetry.set_gauge("serve.ready", 0.0)
            for session in list(self._sessions.values()):
                try:
                    await asyncio.wait_for(
                        session.close(drain=drain), settle_timeout_s
                    )
                except asyncio.TimeoutError:
                    pass  # leftovers settled as DROPPED below
            if self._pump_task is not None:
                self._pump_task.cancel()
                try:
                    await self._pump_task
                except asyncio.CancelledError:
                    pass
                self._pump_task = None
            self._drained_clean = (
                not self._tags
                and all(not s._waiting for s in self._sessions.values())
            )
            self._settle_leftovers()
            snapshots = []
            for pool in self._pools.values():
                if telemetry.enabled and hasattr(pool, "transport_counts"):
                    # Process backends tally which return path each
                    # result took; fold the counts in before the pool
                    # (and its tallies) are gone.
                    counts = pool.transport_counts()
                    if counts["results_shm"]:
                        telemetry.inc(
                            "parallel.results_shm", counts["results_shm"]
                        )
                    if counts["results_pickled"]:
                        telemetry.inc(
                            "parallel.results_pickled",
                            counts["results_pickled"],
                        )
                    if counts.get("batches"):
                        telemetry.inc(
                            "parallel.batches", counts["batches"]
                        )
                # close() joins worker threads/processes (seconds under
                # the join timeout) — off the loop, or every other
                # connection stalls for the duration.
                snapshots.extend(
                    await asyncio.to_thread(pool.close) or []
                )
            self._pools.clear()
            self._inflight.clear()
            if telemetry.enabled and snapshots:
                for snapshot in snapshots:
                    if snapshot is not None:
                        telemetry.absorb_snapshot(snapshot)
                telemetry.inc(
                    "parallel.worker_snapshots_merged", len(snapshots)
                )
            if telemetry.enabled:
                telemetry.set_gauge("serve.pools_active", 0.0)
                telemetry.set_gauge("serve.workers", 0.0)
                telemetry.set_gauge("serve.inflight", 0.0)
                telemetry.set_gauge(
                    "serve.drained_clean",
                    1.0 if self._drained_clean else 0.0,
                )
            self._started = False
        return self.report()

    def _settle_leftovers(self) -> None:
        """Account every frame shutdown is about to abandon.

        Runs after the pump stops and before the pools die: anything
        still in flight (``_tags``) or queued (``_waiting``) at this
        point would otherwise disappear from the per-session and
        service totals.  Each is counted as evicted and finished as a
        ``DROPPED`` result — the same settlement a no-drain session
        close applies to its backlog — which also releases any
        session drain still blocked on a wedged worker.
        """
        telemetry = self.telemetry
        leftovers: list[tuple[ServeSession, int]] = [
            (session, seq) for session, seq, _ in self._tags.values()
        ]
        self._tags.clear()
        for session in self._sessions.values():
            while session._waiting:
                seq, _ = session._waiting.popleft()
                leftovers.append((session, seq))
        for session, seq in leftovers:
            session._evicted += 1
            self._counts["evicted"] += 1
            if telemetry.enabled:
                telemetry.inc("serve.frames_evicted")
            session._finish(seq, FrameStatus.DROPPED)
        for session in list(self._sessions.values()):
            if session._closed:
                self._on_session_closed(session)

    @property
    def ready(self) -> bool:
        """True while the service accepts sessions and frames."""
        return self._started and not self._draining

    # -- sessions --------------------------------------------------------

    def open_session(self, *,
                     policy: "BackpressurePolicy | str | None" = None,
                     max_pending: int | None = None,
                     max_fps: float | None = None,
                     spec: DetectorSpec | None = None) -> ServeSession:
        """Attach a new client session (sharing a pool when specs match)."""
        if not self.ready:
            raise ServeError("service is not accepting sessions")
        resolved_policy = BackpressurePolicy(
            policy if policy is not None else self.default_policy
        )
        key = self._get_pool(spec if spec is not None else self.spec)
        session_id = f"s-{self._next_session}"
        self._next_session += 1
        session = ServeSession(
            self, session_id, key, resolved_policy,
            max_pending if max_pending is not None else self.max_pending,
            max_fps if max_fps is not None else self.max_fps,
        )
        self._sessions[session_id] = session
        self._sessions_opened += 1
        if self.telemetry.enabled:
            self.telemetry.inc("serve.sessions_opened")
            self.telemetry.set_gauge(
                "serve.sessions_active", float(len(self._sessions))
            )
        return session

    def get_session(self, session_id: str) -> ServeSession | None:
        return self._sessions.get(session_id)

    def sessions(self) -> Iterable[ServeSession]:
        return list(self._sessions.values())

    def _on_session_closed(self, session: ServeSession) -> None:
        if self._sessions.pop(session.id, None) is None:
            return
        self._sessions_closed += 1
        if self.telemetry.enabled:
            self.telemetry.inc("serve.sessions_closed")
            self.telemetry.set_gauge(
                "serve.sessions_active", float(len(self._sessions))
            )

    # -- introspection ---------------------------------------------------

    def snapshot(self):
        """Point-in-time view of the service's telemetry registry."""
        return self.telemetry.snapshot()

    def report(self) -> ServeReport:
        return ServeReport(
            sessions_opened=self._sessions_opened,
            sessions_closed=self._sessions_closed,
            frames_submitted=self._counts["submitted"],
            frames_ok=self._counts["ok"],
            frames_failed=self._counts["failed"],
            frames_dropped=self._counts["dropped"],
            frames_rejected=self._counts["rejected"],
            frames_evicted=self._counts["evicted"],
            frames_throttled=self._counts["throttled"],
            pools_built=self._pools_built,
            backend=self.backend.value,
            workers=self.workers,
            drained_clean=self._drained_clean,
        )

    # -- internals (event-loop thread only) ------------------------------

    def _get_pool(self, spec: DetectorSpec) -> str:
        key = spec.cache_key()
        telemetry = self.telemetry
        if key in self._pools:
            if telemetry.enabled:
                telemetry.inc("serve.pool_cache_hits")
            return key
        if telemetry.enabled:
            telemetry.inc("serve.pool_cache_misses")
        if self.backend is ExecutionBackend.PROCESS:
            pool: Any = _ProcessBackend(
                spec, self.workers, start_method=self.mp_start_method,
                max_batch=self.max_batch,
            )
        else:
            pool = _ThreadBackend(spec, self.workers,
                                  max_batch=self.max_batch)
        pool.start(self._deliver)
        self._pools[key] = pool
        self._inflight[key] = 0
        self._pools_built += 1
        if telemetry.enabled:
            telemetry.set_gauge(
                "serve.pools_active", float(len(self._pools))
            )
            telemetry.set_gauge(
                "serve.workers",
                float(len(self._pools) * self.workers),
            )
        return key

    def _deliver(self, tag: int, status: str, result: Any,
                 error: str | None, worker: int | None,
                 busy_s: float) -> None:
        """Called from worker threads: bounce onto the event loop."""
        loop = self._loop
        if loop is None:
            return
        try:
            loop.call_soon_threadsafe(
                self._on_result, tag, status, result, error, worker
            )
        except RuntimeError:
            pass  # loop already closed during interpreter teardown

    def _on_result(self, tag: int, status: str, result: Any,
                   error: str | None, worker: int | None) -> None:
        entry = self._tags.pop(tag, None)
        if entry is None:
            return
        session, seq, key = entry
        self._inflight[key] -= 1
        if self.telemetry.enabled:
            self.telemetry.set_gauge(
                "serve.inflight", float(sum(self._inflight.values()))
            )
        self._wake.set()
        if status == "ok" and result is not None:
            session._finish(
                seq, FrameStatus.OK,
                detections=tuple(result.detections), result=result,
                worker=worker,
            )
        else:
            session._finish(
                seq, FrameStatus.FAILED,
                error=error or "unknown worker failure", worker=worker,
            )

    def _waiting_total(self) -> int:
        return sum(len(s._waiting) for s in self._sessions.values())

    async def _pump(self) -> None:
        """Round-robin session backlogs into the pools, forever.

        Frames are taken one per session per sweep — that fairness is
        what keeps a chatty client from starving a quiet one — and
        coalesced into per-pool batches of up to ``max_batch`` frames,
        so concurrent sessions share one task message (and, on the
        process backend, one queue hop each way) instead of paying the
        fixed dispatch cost per frame.  With ``batch_window_ms > 0``
        the pump lingers once per wake to let slower submitters join a
        partial batch.  A pool stops admitting once its in-flight count
        reaches capacity, which is what makes per-session quotas back
        up and the backpressure policies bite.
        """
        rotate = 0
        telemetry = self.telemetry
        while True:
            await self._wake.wait()
            self._wake.clear()
            if (self.max_batch > 1 and self._batch_window_s > 0
                    and 0 < self._waiting_total() < self.max_batch):
                # Linger for the batch window, then dispatch whatever
                # arrived — bounded extra latency traded for fuller
                # batches under trickling load.
                await asyncio.sleep(self._batch_window_s)
                self._wake.clear()
            progressed = True
            while progressed:
                progressed = False
                sessions = list(self._sessions.values())
                if not sessions:
                    break
                rotate = (rotate + 1) % len(sessions)
                ordered = sessions[rotate:] + sessions[:rotate]
                batches: dict[str, list[tuple[int, np.ndarray]]] = {}
                sweeping = True
                while sweeping:
                    sweeping = False
                    for session in ordered:
                        key = session._pool_key
                        pool = self._pools.get(key)
                        if pool is None or not session._waiting:
                            continue
                        batch = batches.setdefault(key, [])
                        if len(batch) >= self.max_batch:
                            continue
                        if self._inflight[key] + len(batch) >= pool.capacity:
                            continue
                        seq, frame = session._waiting.popleft()
                        tag = self._next_tag
                        self._next_tag += 1
                        self._tags[tag] = (session, seq, key)
                        batch.append((tag, frame))
                        sweeping = True
                for key, batch in batches.items():
                    if not batch:
                        continue
                    self._inflight[key] += len(batch)
                    self._pools[key].submit_batch(batch)
                    progressed = True
                    if telemetry.enabled:
                        telemetry.inc("serve.batch.formed")
                        telemetry.observe(
                            "serve.batch.size", float(len(batch))
                        )
                        if len(batch) > 1:
                            telemetry.inc("serve.batch.multi_frame")
                if progressed and telemetry.enabled:
                    telemetry.set_gauge(
                        "serve.inflight",
                        float(sum(self._inflight.values())),
                    )
