"""Record types for the detection-as-a-service front end.

The serving layer speaks the same per-frame vocabulary as the stream
layer — every admitted frame eventually yields exactly one
:class:`~repro.stream.types.FrameResult` — and adds two aggregate
records of its own: a per-session summary returned when a client
drains, and a service-wide report returned by shutdown.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ParameterError


@dataclasses.dataclass(frozen=True)
class SubmitTicket:
    """Receipt for one :meth:`ServeSession.submit` call.

    Attributes
    ----------
    seq:
        The session-local sequence number assigned to the frame.  The
        matching :class:`~repro.stream.types.FrameResult` carries the
        same value in ``index`` — even when the frame was refused, so
        the client's accounting never has holes.
    accepted:
        ``False`` when admission control refused the frame (drop-newest
        saturation, drop-oldest with nothing evictable, or the
        per-session rate cap).  A refused frame still produces an
        in-order ``DROPPED`` result.
    reason:
        Why admission refused the frame: ``"saturated"`` (queue quota)
        or ``"throttled"`` (``max_fps`` admission cap); ``None`` for an
        accepted frame.
    """

    seq: int
    accepted: bool
    reason: str | None = None

    def to_dict(self) -> dict:
        return {
            "seq": self.seq, "accepted": self.accepted,
            "reason": self.reason,
        }


@dataclasses.dataclass(frozen=True)
class SessionReport:
    """Final accounting for one client session.

    ``submitted == ok + failed + dropped`` once the session has fully
    drained; ``rejected``, ``evicted`` and ``throttled`` break the
    ``dropped`` total down by cause (refused at a saturated queue,
    displaced from the queue, refused by the ``max_fps`` admission
    cap).
    """

    session: str
    policy: str
    max_pending: int
    submitted: int
    ok: int
    failed: int
    dropped: int
    rejected: int
    evicted: int
    throttled: int
    pool: str

    def __post_init__(self) -> None:
        for name in ("submitted", "ok", "failed", "dropped",
                     "rejected", "evicted", "throttled"):
            if getattr(self, name) < 0:
                raise ParameterError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ServeReport:
    """Service-wide totals, returned by ``DetectionService.shutdown``.

    ``drained_clean`` is ``True`` when shutdown emitted a result for
    every admitted frame — the property the CI smoke job asserts.
    """

    sessions_opened: int
    sessions_closed: int
    frames_submitted: int
    frames_ok: int
    frames_failed: int
    frames_dropped: int
    frames_rejected: int
    frames_evicted: int
    frames_throttled: int
    pools_built: int
    backend: str
    workers: int
    drained_clean: bool

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)
