"""Picklable detector hand-off for worker processes.

The process backend cannot ship a live detector: it holds NumPy views,
an open telemetry registry and (for the accelerator) banked-memory
state.  What crosses the process boundary instead is a
:class:`DetectorSpec` — the trained hyper-plane plus the
:class:`~repro.core.config.DetectorConfig`, which together are the
*complete* recipe for a detector (that is the point of the config
object).  Workers rebuild from the spec exactly once and cache the
result per process, keyed by :meth:`DetectorSpec.cache_key`, so a
long-lived worker re-used across pools warm-starts for free.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
from typing import Any, TYPE_CHECKING

import numpy as np

from repro.errors import ParallelError

if TYPE_CHECKING:
    from repro.core.pipeline import MultiScalePedestrianDetector


@dataclasses.dataclass(frozen=True, eq=False)
class DetectorSpec:
    """Everything a worker process needs to rebuild a detector.

    Attributes
    ----------
    weights, bias:
        The trained linear SVM hyper-plane (model data).
    config:
        The full :class:`~repro.core.config.DetectorConfig`; its
        ``telemetry`` flag decides whether the rebuilt worker detector
        records per-stage telemetry (each worker owns a private
        registry — process isolation is what makes per-worker
        telemetry safe where the thread backend must disable it).
        The config also carries the ``scorer`` strategy and its
        ``cascade_k`` / ``threshold`` knobs, so a
        ``scorer="conv-cascade"`` parent rebuilds cascade-scoring
        workers with the identical rejection bound (and a different
        ``cascade_k`` yields a different :meth:`cache_key`, keeping
        warm pools honest); the conv scorers' partial-score plan cache
        (:func:`repro.detect.scoring.plan_for`) lives on each worker's
        rebuilt model, so every worker pays one plan build per window
        geometry and hits the cache for the rest of its lifetime —
        plans never cross the process boundary.
    """

    weights: np.ndarray
    bias: float
    config: Any  # DetectorConfig; typed loosely to avoid import cycle

    @classmethod
    def from_detector(cls, detector: object) -> "DetectorSpec":
        """Extract a spec from anything with ``.model`` and ``.config``."""
        model = getattr(detector, "model", None)
        config = getattr(detector, "config", None)
        if model is None or config is None:
            raise ParallelError(
                "the process backend needs detector.model/.config to "
                "rebuild per-worker detectors; "
                f"{type(detector).__name__} exposes neither"
            )
        return cls(
            weights=np.asarray(model.weights, dtype=np.float64),
            bias=float(model.bias),
            config=config,
        )

    def to_bytes(self) -> bytes:
        """Pickle the spec, raising :class:`ParallelError` if it cannot.

        Failing here — in the parent, before any process exists —
        turns an obscure worker-side crash into an actionable error.
        """
        try:
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise ParallelError(
                f"detector spec is not picklable: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def cache_key(self) -> str:
        """Stable digest of the model + config (per-process cache key)."""
        payload = pickle.dumps(
            (self.weights.tobytes(), self.weights.shape, self.bias,
             self.config),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return hashlib.sha256(payload).hexdigest()

    def build(self) -> "MultiScalePedestrianDetector":
        """Construct the detector this spec describes."""
        from repro.core.pipeline import MultiScalePedestrianDetector
        from repro.svm.model import LinearSvmModel

        return MultiScalePedestrianDetector(
            LinearSvmModel(self.weights, self.bias), self.config
        )
