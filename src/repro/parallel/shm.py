"""Shared-memory frame transport for the process backend.

Frames are the only large objects that cross the parent/worker boundary
(a 1080p float64 frame is ~16 MiB; the detections coming back are a few
hundred bytes), so they are the only thing worth moving over
``multiprocessing.shared_memory`` instead of the pickle channel.  The
transport is a fixed ring of equally-sized slots inside one shared
segment:

* the parent acquires a free slot index from a multiprocessing queue,
  copies the frame's bytes into the slot, and sends a tiny
  :class:`FrameHandle` (segment name, slot, shape, dtype) down the task
  queue — one copy, no pickling of pixel data;
* the worker maps the slot as a read-only ndarray view, runs the
  detector directly on the view (zero copy), and returns the slot index
  to the free queue when the frame is done.

A frame larger than the slot size does not break the pipeline — the
caller falls back to pickling that frame (see
``ProcessWorkerPool.submit``), it just loses the zero-copy fast path.

Cleanup discipline: the parent owns the segment and is the only side
that ever unlinks it.  Worker-side attachments deliberately suppress
``multiprocessing.resource_tracker`` registration (Python < 3.13
registers every attach), otherwise the first worker to exit would tear
the segment down under everyone else — and the CI leak check
(`parallel-smoke`) would still find tracker-spawned warnings.
"""

from __future__ import annotations

import dataclasses
import os
import secrets
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from multiprocessing.queues import Queue

from repro.errors import ParallelError

#: Prefix of every segment this module creates; the CI smoke job greps
#: /dev/shm for it to assert nothing leaked.
SEGMENT_PREFIX = "repro-shm"

#: Slot sizes are rounded up to this granularity (one page).
_SLOT_ALIGN = 4096


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the segment
    with the resource tracker; when the attaching process exits, the
    tracker "cleans up" — unlinking a segment the parent still owns.
    ``track=False`` exists only from 3.13.  Unregistering *after* the
    attach is also wrong: under the fork start method all processes
    share one tracker, so a worker's unregister would erase the
    parent's own registration and its eventual ``unlink()`` would spew
    tracker KeyErrors.  Suppress registration during the attach
    instead; the patch window is worker-side and single-threaded.
    """
    try:
        from multiprocessing import resource_tracker
    except Exception:
        return shared_memory.SharedMemory(name=name)
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclasses.dataclass(frozen=True)
class FrameHandle:
    """Locator of one frame inside a shared ring (cheap to pickle)."""

    segment: str
    slot: int
    offset: int
    shape: tuple[int, ...]
    dtype: str


class SharedFrameRing:
    """Parent-side ring of shared-memory frame slots.

    Parameters
    ----------
    slots:
        Number of slots; bounds the frames concurrently in flight
        (queued for a worker or being detected on).
    slot_bytes:
        Capacity of one slot; frames up to this size travel zero-copy.
    free_queue:
        Multiprocessing queue carrying free slot indices.  Created by
        the pool (it must reach the workers through ``Process`` args)
        and preloaded here.
    """

    def __init__(
        self, slots: int, slot_bytes: int, free_queue: Queue[int]
    ) -> None:
        if slots < 1:
            raise ParallelError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1:
            raise ParallelError(f"slot_bytes must be >= 1, got {slot_bytes}")
        self.slots = int(slots)
        self.slot_bytes = (
            (int(slot_bytes) + _SLOT_ALIGN - 1) // _SLOT_ALIGN * _SLOT_ALIGN
        )
        self._free = free_queue
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.slots * self.slot_bytes, name=name
        )
        self._closed = False
        for i in range(self.slots):
            self._free.put(i)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def closed(self) -> bool:
        return self._closed

    def fits(self, frame: np.ndarray) -> bool:
        return frame.nbytes <= self.slot_bytes

    def acquire(self, timeout: float | None = None) -> int | None:
        """Next free slot index; ``None`` on timeout."""
        import queue as _queue

        if self._closed:
            raise ParallelError("acquire() on a closed SharedFrameRing")
        try:
            return self._free.get(timeout=timeout)
        except _queue.Empty:
            return None

    def write(self, slot: int, frame: np.ndarray) -> FrameHandle:
        """Copy ``frame`` into ``slot`` and return its handle."""
        if self._closed:
            raise ParallelError("write() on a closed SharedFrameRing")
        frame = np.ascontiguousarray(frame)
        if frame.nbytes > self.slot_bytes:
            raise ParallelError(
                f"frame of {frame.nbytes} bytes exceeds the "
                f"{self.slot_bytes}-byte slot; use the pickle fallback"
            )
        offset = slot * self.slot_bytes
        view = np.ndarray(
            frame.shape, dtype=frame.dtype, buffer=self._shm.buf,
            offset=offset,
        )
        view[...] = frame
        return FrameHandle(
            segment=self._shm.name,
            slot=slot,
            offset=offset,
            shape=tuple(int(s) for s in frame.shape),
            dtype=frame.dtype.str,
        )

    def release(self, slot: int) -> None:
        """Return a slot to the free pool (parent-side convenience)."""
        self._free.put(slot)

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent, parent only)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


# -- Worker side -----------------------------------------------------------

#: Per-process cache of attached segments, keyed by segment name.  One
#: attach per worker per ring, reused for every frame.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def attach_view(handle: FrameHandle) -> np.ndarray:
    """Map the frame a handle points at (worker side, zero copy).

    The returned array aliases the shared slot: it is only valid until
    the slot index is returned to the free queue.
    """
    shm = _ATTACHED.get(handle.segment)
    if shm is None:
        shm = _attach_untracked(handle.segment)
        _ATTACHED[handle.segment] = shm
    return np.ndarray(
        handle.shape,
        dtype=np.dtype(handle.dtype),
        buffer=shm.buf,
        offset=handle.offset,
    )


def detach_all() -> None:
    """Close every cached attachment (worker shutdown path)."""
    for shm in _ATTACHED.values():
        try:
            shm.close()
        except Exception:
            pass
    _ATTACHED.clear()
