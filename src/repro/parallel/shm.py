"""Shared-memory frame transport for the process backend.

Frames are the only large objects that cross the parent/worker boundary
(a 1080p float64 frame is ~16 MiB; the detections coming back are a few
hundred bytes), so they are the only thing worth moving over
``multiprocessing.shared_memory`` instead of the pickle channel.  The
transport is a fixed ring of equally-sized slots inside one shared
segment:

* the parent acquires a free slot index from a multiprocessing queue,
  copies the frame's bytes into the slot, and sends a tiny
  :class:`FrameHandle` (segment name, slot, shape, dtype) down the task
  queue — one copy, no pickling of pixel data;
* the worker maps the slot as a read-only ndarray view, runs the
  detector directly on the view (zero copy), and returns the slot index
  to the free queue when the frame is done.

A frame larger than the slot size does not break the pipeline — the
caller falls back to pickling that frame (see
``ProcessWorkerPool.submit``), it just loses the zero-copy fast path.

Cleanup discipline: the parent owns the segment and is the only side
that ever unlinks it.  Worker-side attachments deliberately suppress
``multiprocessing.resource_tracker`` registration (Python < 3.13
registers every attach), otherwise the first worker to exit would tear
the segment down under everyone else — and the CI leak check
(`parallel-smoke`) would still find tracker-spawned warnings.
"""

from __future__ import annotations

import collections
import dataclasses
import os
import secrets
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from multiprocessing.queues import Queue

from repro.contracts import check_array
from repro.errors import ParallelError

#: Prefix of every segment this module creates; the CI smoke job greps
#: /dev/shm for it to assert nothing leaked.
SEGMENT_PREFIX = "repro-shm"

#: Slot sizes are rounded up to this granularity (one page).
_SLOT_ALIGN = 4096


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    On Python < 3.13 ``SharedMemory(name=...)`` registers the segment
    with the resource tracker; when the attaching process exits, the
    tracker "cleans up" — unlinking a segment the parent still owns.
    ``track=False`` exists only from 3.13.  Unregistering *after* the
    attach is also wrong: under the fork start method all processes
    share one tracker, so a worker's unregister would erase the
    parent's own registration and its eventual ``unlink()`` would spew
    tracker KeyErrors.  Suppress registration during the attach
    instead; the patch window is worker-side and single-threaded.
    """
    try:
        from multiprocessing import resource_tracker
    except Exception:
        return shared_memory.SharedMemory(name=name)
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclasses.dataclass(frozen=True)
class FrameHandle:
    """Locator of one frame inside a shared ring (cheap to pickle)."""

    segment: str
    slot: int
    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclasses.dataclass(frozen=True)
class ResultSlot:
    """Locator of one result-lane slot lent to a frame at submit time.

    Travels parent→worker alongside the frame; the worker writes the
    frame's flat-encoded result (:mod:`repro.parallel.results`) at
    ``offset`` if it fits in ``capacity`` bytes.  The free list is
    parent-local (only the parent acquires and releases result slots —
    a slot is freed when the parent has decoded, or discarded, the
    frame's result message), so unlike frame slots no multiprocessing
    queue is involved.
    """

    segment: str
    slot: int
    offset: int
    capacity: int


class SharedFrameRing:
    """Parent-side ring of shared-memory frame slots.

    Parameters
    ----------
    slots:
        Number of slots; bounds the frames concurrently in flight
        (queued for a worker or being detected on).
    slot_bytes:
        Capacity of one slot; frames up to this size travel zero-copy.
    free_queue:
        Multiprocessing queue carrying free slot indices.  Created by
        the pool (it must reach the workers through ``Process`` args)
        and preloaded here.
    result_slots, result_slot_bytes:
        Optional result lane: ``result_slots`` extra slots of
        ``result_slot_bytes`` each at the tail of the same segment,
        through which workers return flat-encoded detection results
        (:mod:`repro.parallel.results`) instead of pickling them.
        Zero (the default) disables the lane.  Result slots are managed
        by a parent-local free list — see :class:`ResultSlot`.
    """

    def __init__(
        self, slots: int, slot_bytes: int, free_queue: Queue[int],
        *,
        result_slots: int = 0,
        result_slot_bytes: int = 0,
    ) -> None:
        if slots < 1:
            raise ParallelError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1:
            raise ParallelError(f"slot_bytes must be >= 1, got {slot_bytes}")
        if result_slots < 0:
            raise ParallelError(
                f"result_slots must be >= 0, got {result_slots}"
            )
        if result_slots and result_slot_bytes < 1:
            raise ParallelError(
                f"result_slot_bytes must be >= 1 with a result lane, got "
                f"{result_slot_bytes}"
            )
        self.slots = int(slots)
        self.slot_bytes = (
            (int(slot_bytes) + _SLOT_ALIGN - 1) // _SLOT_ALIGN * _SLOT_ALIGN
        )
        # Result slots hold flat float64 words, so word alignment is
        # all the dtype needs; page-rounding them like frame slots
        # would multiply the lane's footprint ~64x for nothing.
        self.result_slots = int(result_slots)
        self.result_slot_bytes = 0 if not result_slots else (
            (int(result_slot_bytes) + 7) // 8 * 8
        )
        self._result_base = self.slots * self.slot_bytes
        self._free_results: collections.deque[int] = collections.deque(
            range(self.result_slots)
        )
        self._free = free_queue
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        self._shm = shared_memory.SharedMemory(
            create=True,
            size=(self._result_base
                  + self.result_slots * self.result_slot_bytes),
            name=name,
        )
        self._closed = False
        for i in range(self.slots):
            self._free.put(i)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def closed(self) -> bool:
        return self._closed

    def fits(self, frame: np.ndarray) -> bool:
        return frame.nbytes <= self.slot_bytes

    def acquire(self, timeout: float | None = None) -> int | None:
        """Next free slot index; ``None`` on timeout."""
        import queue as _queue

        if self._closed:
            raise ParallelError("acquire() on a closed SharedFrameRing")
        try:
            return self._free.get(timeout=timeout)
        except _queue.Empty:
            return None

    def write(self, slot: int, frame: np.ndarray) -> FrameHandle:
        """Copy ``frame`` into ``slot`` and return its handle."""
        if self._closed:
            raise ParallelError("write() on a closed SharedFrameRing")
        # Boundary contract (env-gated): the ring carries raw ndarrays
        # of any shape/dtype — including deliberately corrupt frames,
        # whose faults must surface in the worker's detect(), not here.
        check_array(frame, "frame")
        frame = np.ascontiguousarray(frame)
        if frame.nbytes > self.slot_bytes:
            raise ParallelError(
                f"frame of {frame.nbytes} bytes exceeds the "
                f"{self.slot_bytes}-byte slot; use the pickle fallback"
            )
        offset = slot * self.slot_bytes
        view = np.ndarray(
            frame.shape, dtype=frame.dtype, buffer=self._shm.buf,
            offset=offset,
        )
        view[...] = frame
        return FrameHandle(
            segment=self._shm.name,
            slot=slot,
            offset=offset,
            shape=tuple(int(s) for s in frame.shape),
            dtype=frame.dtype.str,
        )

    def release(self, slot: int) -> None:
        """Return a slot to the free pool (parent-side convenience)."""
        self._free.put(slot)

    # -- Result lane (parent side) ------------------------------------------

    def acquire_result(self) -> ResultSlot | None:
        """Lend a result-lane slot, or ``None`` if the lane is dry.

        Non-blocking by design: a frame without a result slot simply
        gets its result back over the pickle channel — the lane is an
        opportunistic fast path, never a point of backpressure.
        """
        if self._closed:
            raise ParallelError("acquire_result() on a closed SharedFrameRing")
        if not self._free_results:
            return None
        slot = self._free_results.popleft()
        return ResultSlot(
            segment=self._shm.name,
            slot=slot,
            offset=self._result_base + slot * self.result_slot_bytes,
            capacity=self.result_slot_bytes,
        )

    def release_result(self, slot: int) -> None:
        """Return a result-lane slot to the parent-local free list."""
        self._free_results.append(slot)

    def read_result(self, rslot: ResultSlot, n_words: int) -> np.ndarray:
        """Copy ``n_words`` float64 words out of a lent result slot.

        Returns an owning copy: the caller releases the slot right
        after, so a view would dangle.
        """
        if self._closed:
            raise ParallelError("read_result() on a closed SharedFrameRing")
        nbytes = n_words * np.dtype(np.float64).itemsize
        if n_words < 0 or nbytes > rslot.capacity:
            raise ParallelError(
                f"result of {n_words} words exceeds the "
                f"{rslot.capacity}-byte result slot"
            )
        view = np.ndarray(
            (n_words,), dtype=np.float64, buffer=self._shm.buf,
            offset=rslot.offset,
        )
        return view.copy()

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent, parent only)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


# -- Worker side -----------------------------------------------------------

#: Per-process cache of attached segments, keyed by segment name.  One
#: attach per worker per ring, reused for every frame.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach_cached(segment: str) -> shared_memory.SharedMemory:
    """The worker's cached attachment of ``segment`` (attach on first use)."""
    shm = _ATTACHED.get(segment)
    if shm is None:
        shm = _attach_untracked(segment)
        _ATTACHED[segment] = shm
    return shm


def attach_view(handle: FrameHandle) -> np.ndarray:
    """Map the frame a handle points at (worker side, zero copy).

    The returned array aliases the shared slot: it is only valid until
    the slot index is returned to the free queue.
    """
    shm = _attach_cached(handle.segment)
    view = np.ndarray(
        handle.shape,
        dtype=np.dtype(handle.dtype),
        buffer=shm.buf,
        offset=handle.offset,
    )
    # Boundary contract (env-gated): mirror of the write() side — the
    # mapped view must be a real ndarray of the handle's declared
    # geometry, nothing stricter (corrupt pixel *values* are the
    # detector's fault domain, not the transport's).
    return check_array(view, "frame")


def write_result_words(rslot: "ResultSlot", words: np.ndarray) -> bool:
    """Copy a flat-encoded result into a lent result slot (worker side).

    Returns False — leaving the slot untouched — when ``words`` exceeds
    the slot's capacity; the caller then falls back to the pickle
    channel (``parallel.results_pickled``).
    """
    check_array(words, "words", ndim=1, dtype=np.float64)
    if words.nbytes > rslot.capacity:
        return False
    shm = _attach_cached(rslot.segment)
    view = np.ndarray(
        words.shape, dtype=np.float64, buffer=shm.buf, offset=rslot.offset
    )
    view[...] = words
    return True


def detach_all() -> None:
    """Close every cached attachment (worker shutdown path)."""
    for shm in _ATTACHED.values():
        try:
            shm.close()
        except Exception:
            pass
    _ATTACHED.clear()
