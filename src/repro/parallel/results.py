"""Flat float64 codec for :class:`~repro.detect.DetectionResult`.

The worker→parent hop of the process backend used to pickle every
frame's :class:`~repro.detect.DetectionResult` through the result
queue, even though the parent→worker hop already moves pixels over
shared memory.  A detection result is tiny but *structured* — a list of
frozen dataclasses plus timings — and pickling structure costs far more
than its byte count: every frame pays object graph traversal in the
worker and reconstruction plus queue-feeder latency in the parent.

This module flattens a result into one 1-D float64 array (and back) so
it can travel through the :class:`~repro.parallel.shm.SharedFrameRing`
result lane with a single memcpy per side:

========  =============================================================
words     contents
========  =============================================================
0..6      header: n_detections, n_windows_evaluated, extraction,
          pyramid, classification, nms, n_scales
7..        ``n_scales`` pyramid scales, in order
then      one 6-word row per detection:
          top, left, height, width, score, scale
========  =============================================================

The codec is **lossless for the single-class detector**: every field of
:class:`~repro.detect.Detection` except ``label`` is a float, and
``label`` is the class default (``"pedestrian"``) for everything this
pipeline produces.  A result carrying any other label (future
multi-class detectors) is *not encodable* — :func:`encode_result`
returns ``None`` and the caller falls back to the pickle channel, which
is exactly the degradation the ``parallel.results_pickled`` counter
makes visible.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING

import numpy as np

from repro.detect.types import Detection, DetectionResult, StageTimings

if TYPE_CHECKING:
    from repro.parallel.shm import ResultSlot

__all__ = [
    "ResultHandle",
    "decode_result",
    "encode_reply",
    "encode_result",
    "encoded_words",
]

#: Words in the fixed header (see the module table).
_HEADER_WORDS = 7

#: Words per detection row.
_DET_WORDS = 6

#: The only label the flat codec can carry (the Detection default).
_CODEC_LABEL = "pedestrian"


@dataclasses.dataclass(frozen=True)
class ResultHandle:
    """Worker's receipt for a result written to the ring's result lane.

    Travels through the result queue *in place of* the pickled
    :class:`~repro.detect.DetectionResult`; the parent reads
    ``n_words`` float64 words from the result slot it assigned to that
    frame at submit time and decodes them.  Deliberately carries no
    segment/offset — the parent already knows which slot it lent the
    frame (``ProcessWorkerPool`` keeps the pending map), so a corrupt
    or malicious worker message cannot redirect the read.
    """

    n_words: int


def encoded_words(result: DetectionResult) -> int:
    """Words :func:`encode_result` needs for ``result``."""
    return (_HEADER_WORDS + len(result.scales_used)
            + _DET_WORDS * len(result.detections))


def encode_result(result: DetectionResult) -> np.ndarray | None:
    """Flatten ``result`` to a 1-D float64 array, or ``None``.

    ``None`` means the result is not representable in the flat layout
    (a detection carries a non-default ``label``); callers must fall
    back to pickling the object.
    """
    if any(d.label != _CODEC_LABEL for d in result.detections):
        return None
    words = np.empty(encoded_words(result), dtype=np.float64)
    t = result.timings
    words[0] = float(len(result.detections))
    words[1] = float(result.n_windows_evaluated)
    words[2] = t.extraction
    words[3] = t.pyramid
    words[4] = t.classification
    words[5] = t.nms
    words[6] = float(len(result.scales_used))
    pos = _HEADER_WORDS
    for s in result.scales_used:
        words[pos] = float(s)
        pos += 1
    for d in result.detections:
        words[pos:pos + _DET_WORDS] = (
            d.top, d.left, d.height, d.width, d.score, d.scale
        )
        pos += _DET_WORDS
    return words


def encode_reply(
    result: DetectionResult, rslot: "ResultSlot | None"
) -> "ResultHandle | DetectionResult":
    """The worker's preferred reply for one frame's result.

    Flat-encodes ``result`` into the lent result-lane slot and returns
    a :class:`ResultHandle` when it fits; otherwise returns the result
    object itself, which the queue pickles (no slot lent, non-default
    label, or the encoding outgrew the slot).  One helper shared by the
    single-frame and batched worker paths so the fallback ladder cannot
    drift between them.
    """
    if rslot is None:
        return result
    from repro.parallel.shm import write_result_words

    words = encode_result(result)
    if words is not None and write_result_words(rslot, words):
        return ResultHandle(n_words=words.size)
    return result


def decode_result(words: np.ndarray) -> DetectionResult:
    """Rebuild the :class:`~repro.detect.DetectionResult` of ``words``.

    Exact inverse of :func:`encode_result` (floats are copied verbatim,
    so a decoded result compares equal to the original).
    """
    words = np.asarray(words, dtype=np.float64)
    n_det = int(words[0])
    n_scales = int(words[6])
    timings = StageTimings(
        extraction=float(words[2]),
        pyramid=float(words[3]),
        classification=float(words[4]),
        nms=float(words[5]),
    )
    pos = _HEADER_WORDS
    scales = [float(s) for s in words[pos:pos + n_scales]]
    pos += n_scales
    detections = []
    for _ in range(n_det):
        top, left, height, width, score, scale = words[pos:pos + _DET_WORDS]
        detections.append(
            Detection(
                top=float(top), left=float(left), height=float(height),
                width=float(width), score=float(score), scale=float(scale),
            )
        )
        pos += _DET_WORDS
    return DetectionResult(
        detections=detections,
        timings=timings,
        n_windows_evaluated=int(words[1]),
        scales_used=scales,
    )
