"""Multiprocess execution backend for the streaming pipeline.

The thread backend (`repro.stream`) scales only as far as NumPy's
GIL-released inner loops allow; Python-level work — window bookkeeping,
NMS, small-frame extraction — serializes.  This package is the
process-pool escape hatch, modelled on the worker decomposition of the
GPU pedestrian-detection line of work (Campmany et al. 2016, PAPERS.md):
decouple the stages, give each worker a whole detector, and keep the
frame transport cheap.

:class:`DetectorSpec`
    The picklable detector hand-off (model weights + config) with a
    content hash, so workers warm-start once per process and cache by
    configuration.
:class:`SharedFrameRing` / :class:`FrameHandle`
    Shared-memory ring slots that move frames parent → worker with one
    copy and no pickling of pixel data.  The ring's **result lane**
    (:class:`ResultSlot`, :mod:`repro.parallel.results`) carries the
    detections back the same way: flat-encoded float64 words in shared
    memory, with only a tiny :class:`ResultHandle` crossing the queue.
:class:`ProcessWorkerPool`
    Warm worker processes around :func:`repro.parallel.worker.worker_main`;
    submits frames, yields result/snapshot messages, merges nothing
    itself — the stream pipeline keeps ordering/fault semantics so the
    thread and process backends behave identically.

Select it per-run with ``StreamPipeline(..., backend="process")`` or
``repro-das stream --backend process``; see docs/STREAMING.md for
when each backend wins, and docs/TELEMETRY.md for the ``parallel.*``
keys.
"""

from repro.parallel.spec import DetectorSpec
from repro.parallel.results import (
    ResultHandle,
    decode_result,
    encode_result,
)
from repro.parallel.shm import (
    SEGMENT_PREFIX,
    FrameHandle,
    ResultSlot,
    SharedFrameRing,
    attach_view,
    detach_all,
    write_result_words,
)
from repro.parallel.pool import ProcessWorkerPool, default_start_method

__all__ = [
    "DetectorSpec",
    "SEGMENT_PREFIX",
    "FrameHandle",
    "ResultHandle",
    "ResultSlot",
    "SharedFrameRing",
    "attach_view",
    "decode_result",
    "detach_all",
    "encode_result",
    "write_result_words",
    "ProcessWorkerPool",
    "default_start_method",
]
