"""The warm-started detector worker pool.

:class:`ProcessWorkerPool` owns everything process-shaped about the
parallel backend: the worker processes (started once, reused across
runs), the shared-memory frame ring, and the task/result queues.  The
streaming pipeline drives it through three calls — :meth:`submit`,
:meth:`next_message`, :meth:`close` — and keeps all ordering, fault and
backpressure semantics on its own side, which is what lets the thread
and process backends share one collector implementation.

Start method: ``fork`` where the platform offers it (cheapest warm
start — the child inherits the imported NumPy), else ``spawn``; the
``REPRO_MP_START`` environment variable overrides.  The pool is created
*before* the pipeline starts its own producer/collector threads, so the
fork-with-threads hazard does not arise from this package.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import pickle
import queue as _queue
import time
import weakref
from types import TracebackType
from typing import Any

import numpy as np

from repro.errors import ParallelError
from repro.parallel.results import ResultHandle, decode_result
from repro.parallel.shm import FrameHandle, ResultSlot, SharedFrameRing
from repro.parallel.spec import DetectorSpec
from repro.parallel.worker import worker_main
from repro.telemetry import TelemetrySnapshot

#: Seconds between liveness re-checks while waiting on queues.
_POLL_S = 0.05

#: Default result-lane slot capacity.  64 KiB holds the flat encoding
#: of ~1 300 detections per frame (6 float64 words each plus header);
#: anything larger falls back to the pickle channel and is counted by
#: ``parallel.results_pickled``.
_RESULT_SLOT_BYTES = 64 * 1024

#: Default seconds to wait for a free ring slot before declaring the
#: pool wedged (a healthy worker frees a slot per detect, i.e. well
#: under a second for any frame this library processes).
_SUBMIT_TIMEOUT_S = 30.0

#: Seconds close() grants the workers to flush snapshots and exit.
_SHUTDOWN_TIMEOUT_S = 10.0


def default_start_method() -> str:
    """``REPRO_MP_START`` override, else fork where available."""
    env = os.environ.get("REPRO_MP_START")
    if env:
        return env
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _emergency_cleanup(state: dict[str, Any]) -> None:
    """GC/interpreter-exit safety net: never leak processes or segments."""
    for proc in state.get("procs", ()):
        if proc.is_alive():
            proc.terminate()
    ring = state.get("ring")
    if ring is not None:
        ring.close()


class ProcessWorkerPool:
    """N warm detector processes fed over a shared-memory frame ring.

    Parameters
    ----------
    spec:
        The :class:`~repro.parallel.spec.DetectorSpec` every worker
        rebuilds (pickled once, at pool construction).
    workers:
        Process count.
    slots:
        Ring slots, bounding frames concurrently in flight; defaults to
        ``workers + 2`` (one being detected per worker plus hand-off
        headroom).
    slot_bytes:
        Slot capacity; defaults to the first submitted frame's size, so
        memory matches the workload.  Larger frames fall back to the
        pickle channel (counted by the pipeline's
        ``parallel.frames_pickled``).
    result_slot_bytes:
        Capacity of one result-lane slot (the shared-memory return path
        for detection results; see :mod:`repro.parallel.results`).
        Zero disables the lane — every result is pickled, as before the
        lane existed.  Defaults to 64 KiB per slot.
    start_method:
        ``multiprocessing`` start method; see :func:`default_start_method`.
    """

    def __init__(
        self,
        spec: DetectorSpec,
        workers: int,
        *,
        slots: int | None = None,
        slot_bytes: int | None = None,
        result_slot_bytes: int = _RESULT_SLOT_BYTES,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ParallelError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.start_method = start_method or default_start_method()
        self._ctx = multiprocessing.get_context(self.start_method)
        self._slots = int(slots) if slots is not None else self.workers + 2
        self._slot_bytes = slot_bytes
        self._result_slot_bytes = int(result_slot_bytes)
        # Result slots lent at submit time, keyed by (generation, index)
        # and reclaimed when that frame's message is decoded.  The map
        # is authoritative: a worker's ResultHandle carries only a word
        # count, never an address.
        self._pending_results: dict[tuple[int, int], ResultSlot] = {}
        self._results_shm = 0
        self._results_pickled = 0
        self._batches = 0
        # Per-frame ("result", ...) tuples expanded out of a worker's
        # combined ("batch_result", ...) message, drained FIFO by
        # next_message before the queue is consulted again.
        self._expanded: collections.deque = collections.deque()
        spec_bytes = spec.to_bytes()
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        self._free_q = self._ctx.Queue()
        self._ring: SharedFrameRing | None = None
        self._closed = False
        self._broken = False
        self._final_snapshots: list[TelemetrySnapshot] = []
        self._procs = [
            self._ctx.Process(
                target=worker_main,
                args=(wid, spec_bytes, self._task_q, self._result_q,
                      self._free_q),
                name=f"repro-parallel-{wid}",
                daemon=True,
            )
            for wid in range(self.workers)
        ]
        self._state: dict[str, Any] = {"procs": self._procs, "ring": None}
        self._finalizer = weakref.finalize(
            self, _emergency_cleanup, self._state
        )
        for proc in self._procs:
            proc.start()

    # -- Introspection ------------------------------------------------------

    @property
    def healthy(self) -> bool:
        """True while every worker process is alive and none reported
        a startup failure."""
        return (not self._broken and not self._closed
                and all(p.is_alive() for p in self._procs))

    @property
    def closed(self) -> bool:
        return self._closed

    def mark_broken(self) -> None:
        """Record that the pool can no longer be trusted (the pipeline
        will close it and build a fresh one on the next run)."""
        self._broken = True

    # -- Submission ---------------------------------------------------------

    def _ensure_ring(self, frame: np.ndarray) -> SharedFrameRing:
        if self._ring is None:
            slot_bytes = (
                self._slot_bytes if self._slot_bytes is not None
                else max(int(frame.nbytes), 1)
            )
            # Result lane sized for every in-flight frame plus one per
            # worker: a frame's slot is reclaimed only when its message
            # is decoded, which can lag the frame slot's release.
            result_slots = (
                self._slots + self.workers if self._result_slot_bytes else 0
            )
            self._ring = SharedFrameRing(
                self._slots, slot_bytes, self._free_q,
                result_slots=result_slots,
                result_slot_bytes=self._result_slot_bytes,
            )
            self._state["ring"] = self._ring
        return self._ring

    def _stage_frame(
        self,
        ring: SharedFrameRing,
        frame: np.ndarray,
        deadline: float,
    ) -> tuple[FrameHandle | None, bytes | None, str]:
        """Move one frame into a ring slot (or pickle it).

        Blocks while the ring is full (that is the backpressure that
        keeps the bounded intake queue, not the ring, the policy
        point); raises :class:`~repro.errors.ParallelError` if no slot
        frees before ``deadline`` or the workers died.
        """
        if not ring.fits(frame):
            payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
            return None, payload, "pickle"
        while True:
            slot = ring.acquire(timeout=_POLL_S)
            if slot is not None:
                break
            if not self.healthy:
                raise ParallelError(
                    "worker pool lost its processes while waiting "
                    "for a shared-memory slot"
                )
            if time.perf_counter() > deadline:
                raise ParallelError(
                    "no shared-memory slot freed in time; "
                    "worker pool is wedged"
                )
        return ring.write(slot, frame), None, "shm"

    def submit(
        self,
        generation: int,
        index: int,
        frame: np.ndarray,
        t0: float,
        timeout: float = _SUBMIT_TIMEOUT_S,
    ) -> str:
        """Queue one frame; returns the transport used, ``"shm"`` or
        ``"pickle"``.
        """
        if self._closed:
            raise ParallelError("submit() on a closed ProcessWorkerPool")
        frame = np.ascontiguousarray(frame)
        ring = self._ensure_ring(frame)
        deadline = time.perf_counter() + timeout
        handle, payload, transport = self._stage_frame(ring, frame, deadline)
        # Lend a result-lane slot (non-blocking: the lane is an
        # opportunistic fast path, never backpressure — a frame without
        # one just gets its result pickled).  Independent of the frame
        # transport: an oversized pickled frame can still return its
        # result through the lane.
        rslot = ring.acquire_result() if ring.result_slots else None
        if rslot is not None:
            self._pending_results[(generation, index)] = rslot
        self._task_q.put(
            ("frame", generation, index, t0, handle, payload, rslot)
        )
        return transport

    def submit_batch(
        self,
        generation: int,
        items: "list[tuple[int, np.ndarray, float]]",
        timeout: float = _SUBMIT_TIMEOUT_S,
    ) -> list[str]:
        """Queue N frames as one task message to one worker.

        ``items`` is a list of ``(index, frame, t0)`` tuples; the whole
        batch travels as a single ``("batch", generation, entries)``
        task and comes back as a single combined message (expanded by
        :meth:`next_message` into the usual per-frame ``("result",
        ...)`` tuples, so consumers are transport- and batch-agnostic).
        Fault isolation stays per frame: a frame that fails inside the
        batch fails alone.

        Returns the per-frame transports, ``"shm"`` / ``"pickle"``, in
        item order.  All-or-nothing on failure: if staging any frame
        raises, every slot already acquired for the batch is released
        and *no* frame of the batch was dispatched.

        A batch may not exceed the ring's slot count (the frames all
        hold slots concurrently until the worker drains them).
        """
        if self._closed:
            raise ParallelError(
                "submit_batch() on a closed ProcessWorkerPool"
            )
        if not items:
            return []
        frames = [np.ascontiguousarray(frame) for _, frame, _ in items]
        ring = self._ensure_ring(frames[0])
        if len(items) > self._slots:
            raise ParallelError(
                f"batch of {len(items)} frames exceeds the ring's "
                f"{self._slots} slots; it could never be staged"
            )
        deadline = time.perf_counter() + timeout
        entries: list[tuple[int, float, FrameHandle | None,
                            bytes | None, ResultSlot | None]] = []
        transports: list[str] = []
        try:
            for (index, _, t0), frame in zip(items, frames):
                handle, payload, transport = self._stage_frame(
                    ring, frame, deadline
                )
                rslot = ring.acquire_result() if ring.result_slots else None
                entries.append((index, t0, handle, payload, rslot))
                transports.append(transport)
        except Exception:
            # Unwind so a failed batch leaves no slot lent and no
            # frame half-dispatched: the caller can account every
            # frame of the batch as undelivered.
            for _, _, handle, _, rslot in entries:
                if handle is not None:
                    ring.release(handle.slot)
                if rslot is not None:
                    ring.release_result(rslot.slot)
            raise
        for index, _, _, _, rslot in entries:
            if rslot is not None:
                self._pending_results[(generation, index)] = rslot
        self._batches += 1
        self._task_q.put(("batch", generation, entries))
        return transports

    # -- Results ------------------------------------------------------------

    def next_message(self, timeout: float = _POLL_S) -> tuple[Any, ...] | None:
        """Next worker message, or ``None`` on timeout.

        Message shapes (tuples, kind first):

        * ``("result", generation, index, status, result, error,
          worker_id, busy_s, t0)`` — one frame's outcome;
        * ``("snapshot", worker_id, snapshot_dict | None)`` — shutdown
          telemetry flush;
        * ``("dead", worker_id, error)`` — a worker failed to start.

        A result that travelled through the shared-memory result lane
        arrives here as a :class:`~repro.parallel.results.ResultHandle`;
        it is decoded back into a
        :class:`~repro.detect.DetectionResult` before the message is
        returned, so callers always see the same tuple shape regardless
        of transport.  A worker's combined ``("batch_result", ...)``
        reply is likewise expanded here into per-frame ``("result",
        ...)`` tuples, returned one per call in batch order — consumers
        never see batching on the result side.
        """
        if self._expanded:
            return self._expanded.popleft()
        try:
            message = self._result_q.get(timeout=timeout)
        except _queue.Empty:
            return None
        if message[0] == "dead":
            self._broken = True
        elif message[0] == "result":
            message = self._decode_result_message(message)
        elif message[0] == "batch_result":
            _, generation, worker_id, outcomes = message
            for index, status, reply, error, busy_s, t0 in outcomes:
                self._expanded.append(self._decode_result_message(
                    ("result", generation, index, status, reply,
                     error, worker_id, busy_s, t0)
                ))
            message = self._expanded.popleft()
        return message

    def _decode_result_message(
        self, message: tuple[Any, ...]
    ) -> tuple[Any, ...]:
        """Reclaim the frame's lent result slot; decode a lane result."""
        _, generation, index, status, result, *_rest = message
        rslot = self._pending_results.pop((generation, index), None)
        try:
            if isinstance(result, ResultHandle):
                if rslot is None or self._ring is None:
                    raise ParallelError(
                        f"worker returned a result-lane handle for frame "
                        f"{index} but no result slot was lent to it"
                    )
                words = self._ring.read_result(rslot, result.n_words)
                decoded = decode_result(words)
                self._results_shm += 1
                message = message[:4] + (decoded,) + message[5:]
            elif status == "ok":
                self._results_pickled += 1
        finally:
            if rslot is not None and self._ring is not None:
                self._ring.release_result(rslot.slot)
        return message

    def transport_counts(self) -> dict[str, int]:
        """Result-transport tallies so far: how many frame results came
        back through the shared-memory lane vs the pickle channel, and
        how many batched task messages were dispatched.  Keys match the
        telemetry counters ``parallel.results_shm`` /
        ``parallel.results_pickled`` / ``parallel.batches`` (failed
        frames carry no result and count toward neither transport)."""
        return {
            "results_shm": self._results_shm,
            "results_pickled": self._results_pickled,
            "batches": self._batches,
        }

    # -- Shutdown -----------------------------------------------------------

    def close(
        self, timeout: float = _SHUTDOWN_TIMEOUT_S
    ) -> list[TelemetrySnapshot]:
        """Stop the workers and return their final telemetry snapshots.

        Idempotent; repeated calls return the snapshots collected the
        first time.  Workers that fail to exit in ``timeout`` seconds
        are terminated (their snapshot is lost, nothing else is).
        """
        if self._closed:
            return self._final_snapshots
        self._closed = True
        alive = [p for p in self._procs if p.is_alive()]
        for _ in alive:
            try:
                self._task_q.put(("stop",))
            except Exception:
                break
        snapshots: list[TelemetrySnapshot | None] = []
        deadline = time.perf_counter() + timeout
        while len(snapshots) < len(alive):
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                message = self._result_q.get(
                    timeout=min(_POLL_S * 4, remaining)
                )
            except _queue.Empty:
                if not any(p.is_alive() for p in self._procs):
                    break
                continue
            if message[0] == "snapshot" and message[2] is not None:
                snapshots.append(TelemetrySnapshot.from_dict(message[2]))
            elif message[0] == "snapshot":
                snapshots.append(None)
        self._final_snapshots = [s for s in snapshots if s is not None]
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.perf_counter()))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (self._task_q, self._result_q, self._free_q):
            q.close()
            q.cancel_join_thread()
        self._pending_results.clear()
        if self._ring is not None:
            self._ring.close()
        self._state["ring"] = None
        return self._final_snapshots

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()
