"""Worker-process entry point for the process backend.

Each worker is warm-started exactly once: the parent ships a pickled
:class:`~repro.parallel.spec.DetectorSpec` at process creation, the
worker rebuilds the detector through a per-process cache
(:data:`_DETECTOR_CACHE`, keyed by the spec's content hash) and then
loops over the shared task queue.  Frames arrive either as
:class:`~repro.parallel.shm.FrameHandle` ring slots (zero-copy view) or
as a pickled-array fallback for frames that outgrew the ring slot.
Results go back the same way when they can: flat-encoded into the
ring's result lane (:mod:`repro.parallel.results`) with only a
:class:`~repro.parallel.results.ResultHandle` crossing the queue, else
pickled whole.

Fault isolation mirrors the thread backend exactly: a frame that makes
``detect()`` raise produces a ``("result", ..., "failed", ...)`` message
— never a dead worker.  On the terminal ``("stop",)`` task the worker
replies with its telemetry snapshot (the parent merges it; see
``MetricsRegistry.absorb_snapshot``) and exits cleanly.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, TYPE_CHECKING

from repro.parallel.results import encode_reply
from repro.parallel.shm import attach_view, detach_all

if TYPE_CHECKING:
    from multiprocessing.queues import Queue

    from repro.parallel.shm import FrameHandle, ResultSlot
    from repro.parallel.spec import DetectorSpec

#: Per-process detector cache: spec content hash -> built detector.
#: Lets a pool restart (same spec, same process via fork COW page reuse)
#: and any future in-process reuse skip model rebuild + validation.
_DETECTOR_CACHE: dict[str, Any] = {}


def get_detector(spec: "DetectorSpec") -> Any:
    """Rebuild (or reuse) the detector a spec describes."""
    key = spec.cache_key()
    detector = _DETECTOR_CACHE.get(key)
    if detector is None:
        detector = spec.build()
        _DETECTOR_CACHE[key] = detector
    return detector


def _snapshot_dict(detector: Any) -> dict[str, Any] | None:
    registry = getattr(detector, "telemetry", None)
    if registry is None or not getattr(registry, "enabled", False):
        return None
    return registry.snapshot().to_dict()


def _serve_frame(
    detector: Any,
    entry: "tuple[int, float, FrameHandle | None, bytes | None, ResultSlot | None]",  # noqa: E501
    free_queue: "Queue[int]",
) -> tuple[int, str, Any, "str | None", float, float]:
    """Detect one staged frame; returns its outcome tuple.

    ``(index, status, reply, error, busy_s, t0)`` — the per-frame
    payload of both the single-frame ``("result", ...)`` message and
    the combined ``("batch_result", ...)`` message.  The frame's ring
    slot is freed the moment ``detect()`` returns (or raises): nothing
    reads the view afterwards.  The reply prefers the shared-memory
    result lane (see :func:`~repro.parallel.results.encode_reply`).
    Exceptions never escape — per-frame fault isolation is this
    function's contract, which is what keeps one corrupt frame in a
    batch from failing its batchmates.
    """
    index, t0, handle, payload, rslot = entry
    start = time.perf_counter()
    try:
        try:
            if handle is not None:
                frame = attach_view(handle)
            else:
                frame = pickle.loads(payload)
            result = detector.detect(frame)
        finally:
            if handle is not None:
                free_queue.put(handle.slot)
        return (index, "ok", encode_reply(result, rslot), None,
                time.perf_counter() - start, t0)
    except Exception as exc:  # per-frame fault isolation
        return (index, "failed", None, f"{type(exc).__name__}: {exc}",
                time.perf_counter() - start, t0)


def worker_main(worker_id: int, spec_bytes: bytes,
                task_queue: "Queue[Any]", result_queue: "Queue[Any]",
                free_queue: "Queue[int]") -> None:
    """Process target: rebuild the detector, then serve frame tasks."""
    try:
        spec = pickle.loads(spec_bytes)
        detector = get_detector(spec)
    except BaseException as exc:  # startup failure: report, then die
        result_queue.put(
            ("dead", worker_id, f"{type(exc).__name__}: {exc}")
        )
        raise
    try:
        while True:
            task = task_queue.get()
            kind = task[0]
            if kind == "stop":
                result_queue.put(
                    ("snapshot", worker_id, _snapshot_dict(detector))
                )
                break
            if kind == "batch":
                # N frames, one task message, one combined reply: the
                # fixed per-message costs (queue pickling, pipe write,
                # feeder-thread wakeups) are paid once per batch
                # instead of once per frame.  Outcomes keep batch
                # order; the parent expands them back into per-frame
                # messages.
                _, generation, entries = task
                outcomes = [
                    _serve_frame(detector, entry, free_queue)
                    for entry in entries
                ]
                result_queue.put(
                    ("batch_result", generation, worker_id, outcomes)
                )
                continue
            _, generation, index, t0, handle, payload, rslot = task
            outcome = _serve_frame(
                detector, (index, t0, handle, payload, rslot), free_queue
            )
            index, status, reply, error, busy_s, t0 = outcome
            result_queue.put(
                ("result", generation, index, status, reply, error,
                 worker_id, busy_s, t0)
            )
    finally:
        detach_all()
